#!/usr/bin/env python3
"""Quickstart: design, calibrate and use the proposed delay line.

Walks the public API end to end:

1. size the proposed delay line for a 100 MHz / 6-bit specification with the
   paper's design procedure;
2. synthesize it against the 32 nm-class library and print the Table-5-style
   area report;
3. lock it at each process corner with the proposed controller;
4. generate DPWM duty cycles through the mapping block and show that the
   requested duty is achieved at every corner.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.core.design import DesignSpec, design_proposed
from repro.core.proposed import ProposedController
from repro.dpwm.calibrated import CalibratedDelayLineDPWM
from repro.technology.corners import OperatingConditions, ProcessCorner
from repro.technology.library import intel32_like_library
from repro.technology.synthesis import Synthesizer


def main() -> None:
    library = intel32_like_library()

    # 1. Size the delay line (paper section 4.2.2).
    spec = DesignSpec(clock_frequency_mhz=100.0, resolution_bits=6)
    design = design_proposed(spec, library)
    print(
        f"Proposed design for {spec.clock_frequency_mhz:.0f} MHz / "
        f"{spec.resolution_bits}-bit: {design.num_cells} cells x "
        f"{design.buffers_per_cell} buffers"
    )

    # 2. Synthesize and report area (paper Table 5).
    line = design.build_line(library=library)
    report = Synthesizer(library).synthesize(line.netlist())
    print()
    print(report.format())

    # 3. Calibrate at every corner (paper Figures 47-48).
    print()
    rows = []
    for corner in ProcessCorner:
        conditions = OperatingConditions(corner=corner)
        result = ProposedController(line).lock(conditions)
        rows.append(
            [
                corner.name.lower(),
                result.control_state,
                result.lock_cycles,
                f"{result.locked_delay_ps / 1000:.2f} ns",
            ]
        )
    print(
        format_table(
            ["Corner", "Cells per half period (tap_sel)", "Lock cycles", "Locked delay"],
            rows,
            title="Calibration at each process corner",
        )
    )

    # 4. Use the calibrated line as a DPWM.
    print()
    duty_rows = []
    for corner in ProcessCorner:
        conditions = OperatingConditions(corner=corner)
        dpwm = CalibratedDelayLineDPWM(line, conditions)
        duties = [f"{100 * dpwm.duty_fraction(word):.1f} %" for word in (64, 128, 192)]
        duty_rows.append([corner.name.lower(), *duties])
    print(
        format_table(
            ["Corner", "word 64 (25 %)", "word 128 (50 %)", "word 192 (75 %)"],
            duty_rows,
            title="Achieved duty cycles after calibration (mapping block in action)",
        )
    )


if __name__ == "__main__":
    main()

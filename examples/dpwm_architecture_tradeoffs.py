#!/usr/bin/env python3
"""DPWM architecture trade-offs: counter vs delay line vs hybrid.

Reproduces the reasoning of paper section 2.2 and Table 2 quantitatively for
a 1 MHz switching regulator: how the required clock frequency, synthesized
area and dynamic power of the three DPWM architectures scale with the target
resolution, and where each architecture is the right choice.  Also simulates
the three 5-bit variants on the same duty word to show they produce the same
pulse.

Run with:  python examples/dpwm_architecture_tradeoffs.py
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.dpwm.counter_dpwm import CounterDPWM, CounterDPWMConfig
from repro.dpwm.delay_line_dpwm import DelayLineDPWM, DelayLineDPWMConfig
from repro.dpwm.hybrid_dpwm import HybridDPWM, HybridDPWMConfig
from repro.technology.library import intel32_like_library
from repro.technology.synthesis import Synthesizer

SWITCHING_FREQUENCY_MHZ = 1.0
RESOLUTIONS = (4, 6, 8, 10, 13)


def scaling_table() -> None:
    library = intel32_like_library()
    synthesizer = Synthesizer(library)
    rows = []
    for bits in RESOLUTIONS:
        counter = CounterDPWM(
            CounterDPWMConfig(bits=bits, switching_frequency_mhz=SWITCHING_FREQUENCY_MHZ),
            library=library,
        )
        line = DelayLineDPWM(
            DelayLineDPWMConfig(bits=bits, switching_frequency_mhz=SWITCHING_FREQUENCY_MHZ),
            library=library,
        )
        hybrid = HybridDPWM(
            HybridDPWMConfig(
                msb_bits=bits // 2,
                lsb_bits=bits - bits // 2,
                switching_frequency_mhz=SWITCHING_FREQUENCY_MHZ,
            ),
            library=library,
        )
        rows.append(
            [
                bits,
                f"{counter.required_clock_frequency_mhz():.0f}",
                f"{hybrid.required_clock_frequency_mhz():.0f}",
                f"{synthesizer.synthesize(counter.netlist()).total_area_um2:.0f}",
                f"{synthesizer.synthesize(line.netlist()).total_area_um2:.0f}",
                f"{synthesizer.synthesize(hybrid.netlist()).total_area_um2:.0f}",
                f"{counter.dynamic_power_w() * 1e6:.1f}",
                f"{hybrid.dynamic_power_w() * 1e6:.1f}",
            ]
        )
    print(
        format_table(
            [
                "bits",
                "counter clk (MHz)",
                "hybrid clk (MHz)",
                "counter area (um2)",
                "line area (um2)",
                "hybrid area (um2)",
                "counter power (uW)",
                "hybrid power (uW)",
            ],
            rows,
            title=(
                "DPWM scaling at f_sw = 1 MHz -- the counter pays in clock/power, "
                "the delay line pays in area, the hybrid splits the difference (Table 2)"
            ),
        )
    )


def same_pulse_from_all_three() -> None:
    duty_word = 0b10110  # the paper's Figure 23 example
    bits = 5
    counter = CounterDPWM(
        CounterDPWMConfig(bits=bits, switching_frequency_mhz=SWITCHING_FREQUENCY_MHZ)
    )
    line = DelayLineDPWM(
        DelayLineDPWMConfig(bits=bits, switching_frequency_mhz=SWITCHING_FREQUENCY_MHZ)
    )
    hybrid = HybridDPWM(
        HybridDPWMConfig(
            msb_bits=3, lsb_bits=2, switching_frequency_mhz=SWITCHING_FREQUENCY_MHZ
        )
    )
    rows = []
    for name, dpwm in (("counter", counter), ("delay line", line), ("hybrid", hybrid)):
        waveform = dpwm.generate(duty_word)
        rows.append(
            [
                name,
                f"{dpwm.required_clock_frequency_mhz():.0f} MHz",
                f"{100 * waveform.measured_duty:.2f} %",
            ]
        )
    print(
        format_table(
            ["Architecture", "Clock needed", "Measured duty for word 10110"],
            rows,
            title="All three architectures produce the same 71.9 % pulse (Figures 19/21/23)",
        )
    )


def main() -> None:
    scaling_table()
    print()
    same_pulse_from_all_three()


if __name__ == "__main__":
    main()

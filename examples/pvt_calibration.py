#!/usr/bin/env python3
"""PVT calibration study: why the delay line must be calibrated, and how well
the two schemes do it.

Three parts:

1. **The problem** -- an uncalibrated delay line produces wildly different
   duty cycles for the same tap across process corners (paper Figure 28).
2. **The two fixes** -- the conventional adjustable-cells DLL and the
   proposed variable-cell-count controller both re-center the line; their
   locking traces, calibration times and residual errors are compared
   (paper Figures 37 and 47-48, Table 4).
3. **Temperature tracking** -- the proposed controller keeps re-calibrating
   while the die heats up, so the achieved duty cycle stays on target
   (the continuous-calibration requirement of paper section 3.1).

Run with:  python examples/pvt_calibration.py
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.core.conventional import ShiftRegisterController
from repro.core.design import DesignSpec, design_conventional, design_proposed
from repro.core.proposed import ProposedController
from repro.technology.corners import OperatingConditions, ProcessCorner
from repro.technology.library import intel32_like_library


def uncalibrated_problem(library) -> None:
    """Part 1: the same tap means a different duty at every corner."""
    line = design_proposed(DesignSpec(100.0, 6), library).build_line(library=library)
    period = line.config.clock_period_ps
    mid_tap = 63  # the tap a typical-corner design would use for ~50 %
    rows = []
    for corner in ProcessCorner:
        taps = line.tap_delays_ps(OperatingConditions(corner=corner))
        rows.append(
            [
                corner.name.lower(),
                f"{taps[mid_tap - 1] / 1000:.2f} ns",
                f"{100 * min(taps[mid_tap - 1] / period, 1.0):.0f} %",
            ]
        )
    print(
        format_table(
            ["Corner", f"Delay of tap {mid_tap}", "Resulting duty cycle"],
            rows,
            title="Part 1 -- uncalibrated line: the same tap across corners (Figure 28)",
        )
    )


def calibration_comparison(library) -> None:
    """Part 2: both schemes re-center the line; the proposed one does it faster."""
    proposed_line = design_proposed(DesignSpec(100.0, 6), library).build_line(
        library=library
    )
    conventional_line = design_conventional(DesignSpec(100.0, 6), library).build_line(
        library=library
    )
    rows = []
    for corner in ProcessCorner:
        conditions = OperatingConditions(corner=corner)
        proposed = ProposedController(proposed_line).lock(conditions)
        conventional = ShiftRegisterController(conventional_line).lock(conditions)
        rows.append(
            [
                corner.name.lower(),
                f"{proposed.lock_cycles} cycles",
                f"{abs(proposed.residual_error_ps):.0f} ps",
                f"{conventional.lock_cycles} cycles"
                + ("" if conventional.locked else " (saturated)"),
                f"{abs(conventional.residual_error_ps):.0f} ps",
            ]
        )
    print(
        format_table(
            [
                "Corner",
                "Proposed: lock time",
                "Proposed: |error|",
                "Conventional: lock time",
                "Conventional: |error|",
            ],
            rows,
            title="Part 2 -- calibration comparison (Figures 37, 47-48; Table 4)",
        )
    )


def temperature_tracking(library) -> None:
    """Part 3: continuous calibration follows a heating die."""
    line = design_proposed(DesignSpec(100.0, 6), library).build_line(library=library)
    controller = ProposedController(line)
    schedule = [
        (0, OperatingConditions(temperature_c=25.0)),
        (1_000, OperatingConditions(temperature_c=65.0)),
        (2_000, OperatingConditions(temperature_c=105.0)),
    ]
    trace = controller.track(schedule, total_cycles=3_000, sample_every=250)
    rows = [
        [
            cycle,
            f"{temperature:.0f} C",
            state,
            f"{100 * abs(delay - target) / target:.2f} %",
        ]
        for cycle, temperature, state, delay, target in zip(
            trace.times_cycles,
            trace.temperatures_c,
            trace.control_states,
            trace.locked_delays_ps,
            trace.targets_ps,
        )
    ]
    print(
        format_table(
            ["Cycle", "Die temperature", "tap_sel", "Tracking error"],
            rows,
            title="Part 3 -- continuous calibration while the die heats up",
        )
    )


def main() -> None:
    library = intel32_like_library()
    uncalibrated_problem(library)
    print()
    calibration_comparison(library)
    print()
    temperature_tracking(library)


if __name__ == "__main__":
    main()

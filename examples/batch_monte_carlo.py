#!/usr/bin/env python3
"""Monte-Carlo regulation sweeps with the vectorized batch engine.

The scalar closed loop advances one converter per Python loop iteration;
the batch engine (:mod:`repro.simulation.batch`) advances a whole fleet of
converter variants with exact state-space steps, so statistical questions
about the regulation loop -- the Section 5.2 mindset applied to the
converter itself -- cost a single vectorized run:

* How tightly does the output voltage distribute when L, C and the
  parasitics vary from part to part?
* What fraction of parts regulates within a tolerance (the "regulation
  yield")?
* How does the fleet ride through a realistic pulsed workload?
* What fraction of *fabricated chips* -- process-varied delay-line DPWM
  plus component-varied buck, fused by :mod:`repro.pipeline` -- meets the
  composed linearity + regulation specification?

Run with:  python examples/batch_monte_carlo.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reports import format_table
from repro.converter.buck import BuckParameters
from repro.converter.load import PulseTrainLoad
from repro.core.design import DesignSpec
from repro.core.yield_analysis import (
    ComponentVariation,
    LinearitySpec,
    RegulationSpec,
    closed_loop_yield,
    regulation_yield,
)
from repro.simulation.batch import BatchClosedLoop, BatchQuantizer
from repro.technology.corners import OperatingConditions
from repro.technology.variation import VariationModel

VIN_V = 1.8
VREF_V = 0.9
NUM_VARIANTS = 512
PERIODS = 300


def main() -> None:
    nominal = BuckParameters(input_voltage_v=VIN_V, switching_frequency_hz=100e6)
    variation = ComponentVariation(
        inductance_sigma=0.08,
        capacitance_sigma=0.08,
        resistance_sigma=0.15,
        input_voltage_sigma=0.02,
        seed=2012,
    )

    # 1. Regulation yield under component spread, one vectorized run.
    result = regulation_yield(
        nominal,
        reference_v=VREF_V,
        variation=variation,
        num_variants=NUM_VARIANTS,
        periods=PERIODS,
        tolerance_v=0.02,
        dpwm_bits=8,
    )
    spread_mv = result.steady_state_voltages_v * 1e3
    print(
        format_table(
            headers=["Metric", "Value"],
            rows=[
                ["Variants", str(NUM_VARIANTS)],
                ["Regulation yield (+/- 20 mV)", f"{result.regulation_yield:.3f}"],
                ["Steady-state Vout mean (mV)", f"{spread_mv.mean():.2f}"],
                ["Steady-state Vout std (mV)", f"{spread_mv.std():.2f}"],
                ["Worst deviation from Vref (mV)", f"{result.worst_error_v * 1e3:.2f}"],
            ],
            title=(
                f"Monte-Carlo regulation sweep: {VIN_V} V -> {VREF_V} V, "
                f"{NUM_VARIANTS} component draws in one batch run"
            ),
        )
    )

    # 2. The same fleet riding a pulsed microprocessor-style workload.
    parameters = variation.sample_batch(nominal, NUM_VARIANTS)
    loop = BatchClosedLoop(
        parameters,
        BatchQuantizer.ideal(8, NUM_VARIANTS),
        reference_v=VREF_V,
        load=PulseTrainLoad(
            light_ohm=2.0, heavy_ohm=0.9, pulse_periods=40, train_period=160
        ),
    )
    trace = loop.run(PERIODS)
    voltages = trace.output_voltages_v
    worst_dip = voltages.min(axis=0)
    worst_peak = voltages.max(axis=0)
    print()
    print(
        format_table(
            headers=["Metric", "Fleet min", "Fleet median", "Fleet max"],
            rows=[
                [
                    "Worst dip under pulses (V)",
                    f"{worst_dip.min():.3f}",
                    f"{np.median(worst_dip):.3f}",
                    f"{worst_dip.max():.3f}",
                ],
                [
                    "Worst overshoot (V)",
                    f"{worst_peak.min():.3f}",
                    f"{np.median(worst_peak):.3f}",
                    f"{worst_peak.max():.3f}",
                ],
                [
                    "Final-period Vout (V)",
                    f"{voltages[-1].min():.3f}",
                    f"{np.median(voltages[-1]):.3f}",
                    f"{voltages[-1].max():.3f}",
                ],
            ],
            title="Pulse-train workload across the fleet (40-on / 120-off periods)",
        )
    )

    # 3. The fused silicon-to-regulation pipeline: every fabricated
    #    proposed-scheme delay line calibrated, converted to a DPWM duty
    #    table and closed around its own component-varied buck.
    silicon = closed_loop_yield(
        "proposed",
        DesignSpec(clock_frequency_mhz=100.0, resolution_bits=6),
        OperatingConditions.slow(),
        nominal=nominal,
        reference_v=VREF_V,
        variation=VariationModel(seed=2012),
        component_variation=variation,
        num_instances=NUM_VARIANTS,
        periods=PERIODS,
        linearity_spec=LinearitySpec(error_limit_fraction=0.045),
        regulation_spec=RegulationSpec(tolerance_v=0.02),
    )
    print()
    print(
        format_table(
            headers=["Metric", "Value"],
            rows=[
                ["Fabricated instances", str(silicon.num_instances)],
                ["Closed-loop yield", f"{silicon.closed_loop_yield:.3f}"],
                ["Linearity yield", f"{silicon.linearity_yield:.3f}"],
                ["Regulation yield", f"{silicon.regulation_yield:.3f}"],
                [
                    "Worst limit-cycle amplitude (mV)",
                    f"{silicon.limit_cycle_amplitudes_v.max() * 1e3:.2f}",
                ],
            ],
            title=(
                "Silicon-to-regulation pipeline at the slow corner: "
                "process-varied DPWM silicon + component-varied bucks"
            ),
        )
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Statistical sizing of the proposed delay line (the paper's future work).

The paper sizes the proposed delay line for the worst case: enough cells that
100 % of chips cover the clock period even at the fastest corner.  Section
5.2 proposes a statistical alternative — characterize the technology, compute
the locking yield as a function of the cell count, and let the designer trade
delay-line area against yield.

This example runs that analysis for the 100 MHz / 6-bit design point:

1. Monte-Carlo yield curve: cell count vs fraction of chips whose line covers
   the 10 ns period (and the corresponding delay-line area).
2. The smallest cell count meeting 90 %, 99 %, 99.9 % and ~100 % yield
   targets, compared with the paper's worst-case 256 cells.
3. The MTBF of the controller's two-flop synchronizer, the other
   robustness knob the paper discusses (section 3.2.1).

Run with:  python examples/statistical_sizing.py
"""

from __future__ import annotations

from repro.analysis.metastability import synchronizer_mtbf_years
from repro.analysis.reports import format_table
from repro.core.design import DesignSpec, design_proposed
from repro.core.yield_analysis import YieldModel, cells_for_yield, yield_curve
from repro.technology.library import intel32_like_library

SPEC = DesignSpec(clock_frequency_mhz=100.0, resolution_bits=6)
BUFFERS_PER_CELL = 2
NUM_CHIPS = 3000


def yield_curve_section(library) -> None:
    model = YieldModel(seed=2012)
    points = yield_curve(
        SPEC,
        buffers_per_cell=BUFFERS_PER_CELL,
        model=model,
        library=library,
        num_chips=NUM_CHIPS,
    )
    rows = [
        [
            point.num_cells,
            f"{100 * point.locking_yield:.1f} %",
            f"{point.line_area_um2:.0f}",
        ]
        for point in points
    ]
    print(
        format_table(
            ["Cells in the line", "Locking yield", "Delay-line area (um^2)"],
            rows,
            title=(
                "Part 1 -- Monte-Carlo locking yield vs cell count "
                f"({NUM_CHIPS} chips, 100 MHz, 2 buffers/cell)"
            ),
        )
    )


def sizing_section(library) -> None:
    design = design_proposed(SPEC, library)
    model = YieldModel(seed=2012)
    rows = []
    for target in (0.90, 0.99, 0.999):
        point = cells_for_yield(
            SPEC,
            buffers_per_cell=BUFFERS_PER_CELL,
            target_yield=target,
            model=model,
            library=library,
            num_chips=NUM_CHIPS,
        )
        saving = 100.0 * (1.0 - point.num_cells / design.num_cells)
        rows.append(
            [
                f"{100 * target:.1f} %",
                point.num_cells,
                f"{100 * point.locking_yield:.2f} %",
                f"{saving:.0f} %",
            ]
        )
    rows.append(["worst-case (paper)", design.num_cells, "~100 %", "0 %"])
    print(
        format_table(
            ["Yield target", "Cells needed", "Achieved yield", "Delay-line cells saved"],
            rows,
            title="Part 2 -- statistical sizing vs the paper's worst-case 256 cells",
        )
    )


def mtbf_section() -> None:
    rows = []
    for stages in (1, 2, 3):
        mtbf = synchronizer_mtbf_years(
            clock_frequency_mhz=SPEC.clock_frequency_mhz,
            data_frequency_mhz=SPEC.clock_frequency_mhz,
            synchronizer_stages=stages,
            logic_settling_ps=9_800.0,
        )
        label = f"{mtbf:.3g} years" if mtbf < 1e30 else "effectively unbounded"
        rows.append([stages, label])
    print(
        format_table(
            ["Synchronizer stages", "MTBF"],
            rows,
            title="Part 3 -- metastability MTBF of the controller's tap sampler",
        )
    )


def main() -> None:
    library = intel32_like_library()
    yield_curve_section(library)
    print()
    sizing_section(library)
    print()
    mtbf_section()


if __name__ == "__main__":
    main()

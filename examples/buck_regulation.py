#!/usr/bin/env python3
"""Closed-loop voltage regulation with the calibrated delay-line DPWM.

The scenario the paper motivates in chapter 2: a digitally controlled buck
converter supplies a processor core at 0.9 V from a 1.8 V rail, switching at
100 MHz.  The DPWM is the proposed calibrated delay line; the load steps from
light (a sleeping core) to heavy (a busy core) and back, and the loop
recovers the output voltage after each transient.

The example also repeats the run at the slow and fast process corners to show
that the delay-line calibration keeps the regulation intact across PVT.

Run with:  python examples/buck_regulation.py
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reports import format_series, format_table
from repro.converter.buck import BuckParameters
from repro.converter.closed_loop import DigitallyControlledBuck
from repro.converter.load import SteppedLoad
from repro.core.design import DesignSpec, design_proposed
from repro.dpwm.calibrated import CalibratedDelayLineDPWM
from repro.technology.corners import OperatingConditions, ProcessCorner
from repro.technology.library import intel32_like_library

VIN_V = 1.8
VREF_V = 0.9
SWITCHING_FREQUENCY_HZ = 100e6
LIGHT_LOAD_OHM = 2.0
HEAVY_LOAD_OHM = 0.9
STEP_UP_PERIOD = 500
STEP_DOWN_PERIOD = 1500
TOTAL_PERIODS = 2500


def run_at_corner(corner: ProcessCorner) -> dict:
    """Run the full load-transient scenario at one process corner."""
    library = intel32_like_library()
    design = design_proposed(
        DesignSpec(clock_frequency_mhz=100.0, resolution_bits=6), library
    )
    line = design.build_line(library=library)
    dpwm = CalibratedDelayLineDPWM(line, OperatingConditions(corner=corner))

    parameters = BuckParameters(
        input_voltage_v=VIN_V, switching_frequency_hz=SWITCHING_FREQUENCY_HZ
    )
    load = SteppedLoad(
        light_ohm=LIGHT_LOAD_OHM,
        heavy_ohm=HEAVY_LOAD_OHM,
        step_up_period=STEP_UP_PERIOD,
        step_down_period=STEP_DOWN_PERIOD,
    )
    loop = DigitallyControlledBuck(
        parameters, dpwm, reference_v=VREF_V, load=load
    )
    trace = loop.run(TOTAL_PERIODS)
    voltages = np.asarray(trace.output_voltages_v)
    return {
        "corner": corner.name.lower(),
        "trace": trace,
        "voltages": voltages,
        "pre_step_v": float(voltages[STEP_UP_PERIOD - 10 : STEP_UP_PERIOD].mean()),
        "dip_v": float(voltages[STEP_UP_PERIOD : STEP_UP_PERIOD + 120].min()),
        "recovered_v": float(voltages[STEP_DOWN_PERIOD - 60 : STEP_DOWN_PERIOD].mean()),
        "final_v": float(voltages[-60:].mean()),
        "tap_sel": dpwm.calibration.control_state,
    }


def main() -> None:
    results = [run_at_corner(corner) for corner in ProcessCorner]

    rows = [
        [
            result["corner"],
            result["tap_sel"],
            f"{result['pre_step_v']:.3f}",
            f"{result['dip_v']:.3f}",
            f"{result['recovered_v']:.3f}",
            f"{result['final_v']:.3f}",
        ]
        for result in results
    ]
    print(
        format_table(
            [
                "Corner",
                "Locked tap_sel",
                "Vout before step (V)",
                "Worst dip (V)",
                "Vout under heavy load (V)",
                "Vout after release (V)",
            ],
            rows,
            title=(
                f"Digitally controlled buck: {VIN_V} V -> {VREF_V} V at "
                f"{SWITCHING_FREQUENCY_HZ / 1e6:.0f} MHz with the proposed delay-line DPWM"
            ),
        )
    )

    # A coarse time series of the typical-corner run for inspection.
    typical = next(r for r in results if r["corner"] == "typical")
    sample_every = 50
    indices = list(range(0, TOTAL_PERIODS, sample_every))
    print()
    print(
        format_series(
            x_label="period",
            x_values=indices,
            series={
                "Vout (V)": [float(typical["voltages"][i]) for i in indices],
                "duty": [float(typical["trace"].duty_fractions[i]) for i in indices],
            },
            title="Typical-corner regulation trace (load steps at periods "
            f"{STEP_UP_PERIOD} and {STEP_DOWN_PERIOD})",
            max_rows=25,
        )
    )


if __name__ == "__main__":
    main()

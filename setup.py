"""Setuptools shim.

The execution environment has no ``wheel`` package, so PEP 517 editable
installs fail with ``invalid command 'bdist_wheel'``.  This shim lets
``pip install -e . --no-use-pep517 --no-build-isolation`` (and plain
``pip install -e .`` on environments where pip falls back to it) work from
the metadata declared in ``pyproject.toml``.
"""

from setuptools import setup

setup()

"""Setuptools shim.

All project metadata (name, version, dependencies, the
``repro-experiments`` console script) lives in ``pyproject.toml``; this file
only exists for legacy install paths.  On environments with the ``wheel``
package, plain ``pip install -e .`` works.  The offline containers this
repository targets ship setuptools without ``wheel``, where PEP 517
editable installs fail with ``invalid command 'bdist_wheel'``; there, use
``python setup.py develop`` (or just run with ``PYTHONPATH=src``, which the
test suite's ``conftest.py`` sets up automatically).
"""

from setuptools import setup

setup()

"""Benchmark: regenerate Figure 28 (cell delays across process corners)."""

import pytest

from repro.experiments.figure28 import run as run_fig28


def test_bench_fig28(benchmark):
    result = benchmark(run_fig28)
    per_corner = result.data["per_corner"]
    # The 4x fast-to-slow spread of the paper's 32 nm technology.
    assert per_corner["fast"]["buffer_delay_ps"] == pytest.approx(20.0)
    assert per_corner["slow"]["buffer_delay_ps"] == pytest.approx(80.0)
    # Without calibration the same tap gives wildly different duty cycles.
    assert per_corner["fast"]["uncalibrated_duty_at_mid_tap"] == pytest.approx(0.25, abs=0.02)
    assert per_corner["typical"]["uncalibrated_duty_at_mid_tap"] == pytest.approx(0.5, abs=0.02)
    assert per_corner["slow"]["uncalibrated_duty_at_mid_tap"] >= 0.98

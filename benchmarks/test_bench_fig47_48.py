"""Benchmark: regenerate Figures 47-48 (proposed controller locking)."""

from repro.experiments.figure47_48 import run as run_fig47_48


def test_bench_fig47_48(benchmark):
    result = benchmark(run_fig47_48)
    per_corner = result.data["per_corner"]
    # The proposed controller locks at every corner, with the locked cell
    # count scaling with the corner speed (more cells at the fast corner).
    for record in per_corner.values():
        assert record["proposed_locked"]
    assert (
        per_corner["fast"]["proposed_tap_sel"]
        > per_corner["typical"]["proposed_tap_sel"]
        > per_corner["slow"]["proposed_tap_sel"]
    )
    # Fast-calibration claim: fewer cycles than the conventional DLL wherever
    # the latter actually locks.
    for corner in ("fast", "typical"):
        assert (
            per_corner[corner]["proposed_lock_cycles"]
            < per_corner[corner]["conventional_lock_cycles"]
        )

"""Benchmark: regenerate Table 6 (proposed scheme across 50/100/200 MHz)."""

import pytest

from repro.experiments.table6 import FREQUENCIES_MHZ, PAPER_TABLE6, run as run_table6


def test_bench_table6(benchmark):
    result = benchmark(run_table6)
    for frequency in FREQUENCIES_MHZ:
        record = result.data["per_frequency"][frequency]
        paper = PAPER_TABLE6[frequency]
        assert record["buffers_per_cell"] == paper["buffers_per_cell"]
        assert record["total_area_um2"] == pytest.approx(
            paper["total_area_um2"], rel=0.05
        )
        assert record["distribution"]["Delay Line"] == pytest.approx(
            paper["delay_line_pct"], abs=2.0
        )
    # Area decreases and the delay-line share shrinks as frequency rises.
    areas = [result.data["per_frequency"][f]["total_area_um2"] for f in FREQUENCIES_MHZ]
    assert areas == sorted(areas, reverse=True)

"""Pytest configuration for the benchmark suite.

Each benchmark regenerates one of the paper's tables or figures through the
experiment harnesses in :mod:`repro.experiments`, asserts the paper's
qualitative claims on the result, and (when run with ``--benchmark-only``)
reports how long the regeneration takes.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

"""Pytest configuration for the benchmark suite.

Each benchmark regenerates one of the paper's tables or figures through the
experiment harnesses in :mod:`repro.experiments`, asserts the paper's
qualitative claims on the result, and (when run with ``--benchmark-only``)
reports how long the regeneration takes.

Benchmarks that archive a ``BENCH_*.json`` artifact stamp it with the
machine provenance from :func:`machine_provenance` (also available as the
``bench_provenance`` fixture): a throughput number is only comparable to
another run when you know the core count, the numpy version and the
kernel backend it was measured on.
"""

import os
import platform
import sys
from pathlib import Path

import pytest

_SRC = Path(__file__).parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))


def machine_provenance() -> dict[str, object]:
    """Environment facts every archived benchmark report must carry."""
    import numpy

    from repro.kernels import active_backend_name

    return {
        "cpu_count": os.cpu_count(),
        "numpy_version": numpy.__version__,
        "backend": active_backend_name(),
        "platform": platform.platform(),
    }


@pytest.fixture
def bench_provenance() -> dict[str, object]:
    return machine_provenance()

"""Benchmark: regenerate Figures 50-51 (proposed scheme linearity)."""

from repro.experiments.figure50_51 import FREQUENCIES_MHZ, run as run_fig50_51


def test_bench_fig50_51(benchmark):
    result = benchmark(run_fig50_51)
    # Figure 50 (slow corner): plateaus -- fewer distinct output levels than
    # at the fast corner (Figure 51) for every frequency.
    for frequency in FREQUENCIES_MHZ:
        assert (
            result.data["slow"][frequency]["distinct_levels"]
            < result.data["fast"][frequency]["distinct_levels"]
        )
    # All curves are monotonic and stay within a few percent of ideal.
    for corner in ("slow", "fast"):
        for record in result.data[corner].values():
            assert record["monotonic"]
            assert record["max_error_fraction"] < 0.06
    # Linearity is better at lower frequency (more buffers per cell).
    assert (
        result.data["fast"][50.0]["rms_inl_lsb"]
        < result.data["fast"][200.0]["rms_inl_lsb"]
    )
    # The frequency-normalized curves share the 20 ns full scale.
    for corner in ("slow", "fast"):
        finals = [rec["scaled_delay_ns"][-1] for rec in result.data[corner].values()]
        assert max(finals) - min(finals) < 1.5

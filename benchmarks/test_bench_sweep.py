"""Benchmark: the sweep orchestrator (worker fan-out + content-addressed cache).

The acceptance workload is the full set of Monte-Carlo grid experiments
(``fig15``, ``fig15_mc``, ``fig50_51_mc`` -- 30 sweep cells) run three
ways: serially with no orchestrator (the reference), cold through a worker
pool populating a fresh cache, and warm out of that cache.  All three must
produce **bit-identical** ``--json``-schema output; the warm run must
finish in under 10 % of the cold serial time.

The parallel cold-run speedup gate scales with the machine: the full >= 4x
target is enforced where the cells can actually land on four-plus cores
(``cpu count >= 8``, e.g. the CI benchmark runners); on smaller machines a
proportional floor of ``0.5 * cpus`` applies, and on a single-core box
(where a process pool cannot beat the serial loop) only the identity and
warm-cache gates run.

When ``BENCH_SWEEP_JSON`` is set, every measurement is written there so CI
can archive the perf trajectory (the ``BENCH_sweep.json`` artifact).
"""

from __future__ import annotations

import json
import os
import time

from repro.experiments import run_experiment
from repro.sweep import SweepConfig, SweepOrchestrator, canonical_json

#: The grid experiments: every Monte-Carlo sweep in the registry.
MC_EXPERIMENTS = ("fig15", "fig15_mc", "fig50_51_mc")


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux fallback
        return os.cpu_count() or 1


def _run_all(sweep=None) -> str:
    """Canonical JSON of every MC experiment's --json payload."""
    collected = {}
    for experiment_id in MC_EXPERIMENTS:
        result = run_experiment(experiment_id, sweep=sweep)
        collected[experiment_id] = {
            "title": result.title,
            "data": result.data,
            "paper_reference": result.paper_reference,
        }
    return canonical_json(collected)


def test_bench_sweep_speedup_identity_and_warm_cache(tmp_path, bench_provenance):
    cpus = _cpu_count()
    cache_dir = tmp_path / "sweep-cache"

    # Reference: the plain serial path (no orchestrator, no cache).
    start = time.perf_counter()
    serial_json = _run_all()
    serial_seconds = time.perf_counter() - start

    # Cold orchestrated run: fan out across all cores, populate the cache.
    with SweepOrchestrator(
        SweepConfig(workers=cpus, cache_dir=cache_dir)
    ) as sweep:
        start = time.perf_counter()
        cold_json = _run_all(sweep)
        cold_seconds = time.perf_counter() - start
        assert sweep.misses > 0 and sweep.hits == 0

    # Warm run: every cell resolves from the content-addressed cache.
    with SweepOrchestrator(
        SweepConfig(workers=cpus, cache_dir=cache_dir)
    ) as warm_sweep:
        start = time.perf_counter()
        warm_json = _run_all(warm_sweep)
        warm_seconds = time.perf_counter() - start
        assert warm_sweep.misses == 0 and warm_sweep.hits > 0

    speedup = serial_seconds / cold_seconds
    warm_fraction = warm_seconds / serial_seconds

    # Archive the measurements *before* the gates: a perf regression is
    # exactly the run whose numbers must survive for diagnosis.
    report_path = os.environ.get("BENCH_SWEEP_JSON")
    if report_path:
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "workload": "all Monte-Carlo grid experiments "
                    f"({', '.join(MC_EXPERIMENTS)}; 30 sweep cells)",
                    "cpus": cpus,
                    "serial_seconds": serial_seconds,
                    "cold_parallel_seconds": cold_seconds,
                    "warm_seconds": warm_seconds,
                    "parallel_speedup": speedup,
                    "warm_fraction_of_serial": warm_fraction,
                    "bit_identical": serial_json == cold_json == warm_json,
                    "provenance": bench_provenance,
                },
                handle,
                indent=2,
            )

    # Acceptance 1: serial, cold-parallel and warm runs agree bit for bit.
    assert cold_json == serial_json, "parallel cold run diverged from serial"
    assert warm_json == serial_json, "warm cached run diverged from serial"

    # Acceptance 2: a warm re-run costs under 10 % of the cold time.
    assert warm_fraction < 0.10, (
        f"warm cache re-run took {warm_seconds:.2f}s "
        f"({100 * warm_fraction:.1f}% of the {serial_seconds:.2f}s cold run)"
    )

    # Acceptance 3: cold-run fan-out speedup, scaled to the machine
    # (>= 4x wherever four-plus cells can actually run concurrently).
    if cpus >= 2:
        required = min(4.0, 0.5 * cpus)
        assert speedup >= required, (
            f"sweep fan-out only {speedup:.2f}x on {cpus} cpus "
            f"(required {required:.2f}x; serial {serial_seconds:.2f}s, "
            f"cold parallel {cold_seconds:.2f}s)"
        )

"""Benchmark: statistical sizing (paper future work, section 5.2).

Not a paper table -- the paper leaves this as future work -- but DESIGN.md
lists it as the natural ablation of the worst-case design methodology: how
many of the 256 worst-case cells are actually needed for a given yield.
"""


from repro.core.design import DesignSpec, design_proposed
from repro.core.yield_analysis import YieldModel, cells_for_yield, coverage_yield
from repro.technology.library import intel32_like_library

SPEC = DesignSpec(clock_frequency_mhz=100.0, resolution_bits=6)
LIBRARY = intel32_like_library()
MODEL = YieldModel(seed=2012)


def test_bench_yield_of_worst_case_design(benchmark):
    design = design_proposed(SPEC, LIBRARY)
    result = benchmark(
        coverage_yield,
        design.num_cells,
        design.buffers_per_cell,
        SPEC.clock_period_ps,
        MODEL,
        LIBRARY,
        2000,
    )
    # The paper's worst-case sizing gives essentially 100 % locking yield.
    assert result > 0.999


def test_bench_statistical_sizing_saves_cells(benchmark):
    def size_for_three_nines():
        return cells_for_yield(
            SPEC,
            buffers_per_cell=2,
            target_yield=0.999,
            model=MODEL,
            library=LIBRARY,
            num_chips=2000,
        )

    point = benchmark(size_for_three_nines)
    worst_case = design_proposed(SPEC, LIBRARY).num_cells
    assert point.locking_yield >= 0.999
    # Three-nines yield needs meaningfully fewer cells than the worst case.
    assert point.num_cells < worst_case
    assert point.num_cells > worst_case // 2

"""Benchmark: importance sampling versus brute force in the ppm regime.

The rare-event estimators' reason to exist is the tail: the slow-corner
``fig15_rare`` cell fails at ~1e-4 (30/262144 by brute force), so a
vanilla adaptive run needs ~1.5e5 fleet simulations before the Wilson
interval reaches a half-width that separates the estimate from zero.
The acceptance gate: at the same precision target the tilted
importance-sampling run must stop on precision with **at most 10 % of
the vanilla sample budget**, its interval must bracket the brute-force
answer, and the two estimates must agree within their summed
half-widths.

When ``BENCH_RARE_EVENT_JSON`` is set, the measurements are written
there so CI can archive the perf trajectory (the ``BENCH_rare_event``
artifact).
"""

from __future__ import annotations

import json
import os
import time

from repro.converter.buck import BuckParameters
from repro.core.yield_analysis import (
    ComponentTilt,
    ComponentVariation,
    rare_event_regulation_yield,
)
from repro.experiments.figure15_rare import (
    DEFAULT_TILT_SCALE,
    DIP_LIMIT_V,
    FREQUENCY_MHZ,
    LOAD,
    PERIODS,
    REFERENCE_V,
    SETTLE_PERIODS,
    TILT_CAPACITANCE_SHIFT,
    TILT_INDUCTANCE_SHIFT,
    _duty_levels,
)

#: Half the slow-corner cell's true failure rate (~1.14e-4), so a
#: resolved interval actually separates the estimate from zero.
PRECISION = 5.5e-5
SEED = 2012
VANILLA_CAP = 262_144
IMPORTANCE_CAP = 32_768


def _run(estimator: str, *, max_instances: int, chunk_size: int, tilt=None):
    quantizer = _duty_levels("slow")
    return rare_event_regulation_yield(
        BuckParameters(switching_frequency_hz=FREQUENCY_MHZ * 1e6),
        REFERENCE_V,
        dip_limit_v=DIP_LIMIT_V,
        variation=ComponentVariation(seed=SEED),
        estimator=estimator,
        tilt=tilt,
        load=LOAD,
        quantizer_levels=quantizer.levels[0],
        periods=PERIODS,
        settle_periods=SETTLE_PERIODS,
        precision=PRECISION,
        max_instances=max_instances,
        chunk_size=chunk_size,
    )


def test_bench_importance_budget_reduction_on_ppm_cell(bench_provenance):
    # The brute-force reference: vanilla adaptive sampling to the same
    # precision target.  It doubles as the budget baseline and as the
    # unbiased estimate the importance interval must bracket.
    start = time.perf_counter()
    vanilla = _run("vanilla", max_instances=VANILLA_CAP, chunk_size=4096)
    vanilla_seconds = time.perf_counter() - start

    start = time.perf_counter()
    importance = _run(
        "importance",
        max_instances=IMPORTANCE_CAP,
        chunk_size=2048,
        tilt=ComponentTilt(
            inductance_shift=TILT_INDUCTANCE_SHIFT,
            capacitance_shift=TILT_CAPACITANCE_SHIFT,
            sigma_scale=DEFAULT_TILT_SCALE,
        ),
    )
    importance_seconds = time.perf_counter() - start

    budget_fraction = importance.samples / vanilla.samples
    report = {
        "workload": (
            "fig15_rare slow-corner cell, dip limit "
            f"{DIP_LIMIT_V} V, precision {PRECISION}"
        ),
        "vanilla_samples": vanilla.samples,
        "vanilla_seconds": vanilla_seconds,
        "vanilla_failure_ppm": vanilla.failure_probability * 1e6,
        "vanilla_ci_ppm": [vanilla.lower * 1e6, vanilla.upper * 1e6],
        "vanilla_stop_reason": vanilla.stop_reason,
        "importance_samples": importance.samples,
        "importance_seconds": importance_seconds,
        "importance_failure_ppm": importance.failure_probability * 1e6,
        "importance_ci_ppm": [importance.lower * 1e6, importance.upper * 1e6],
        "importance_stop_reason": importance.stop_reason,
        "importance_ess": importance.effective_sample_size,
        "budget_fraction": budget_fraction,
        "budget_reduction_x": vanilla.samples / importance.samples,
        "provenance": bench_provenance,
    }
    report_path = os.environ.get("BENCH_RARE_EVENT_JSON")
    if report_path:
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)

    # The headline gate: same precision, <= 10 % of the vanilla budget.
    assert importance.stop_reason == "precision", report
    assert importance.half_width <= PRECISION, report
    assert budget_fraction <= 0.10, report

    # Statistical sanity: the cheap interval brackets the brute-force
    # estimate, and the two estimates agree within their summed widths.
    assert importance.lower <= vanilla.failure_probability <= importance.upper, (
        report
    )
    assert abs(
        importance.failure_probability - vanilla.failure_probability
    ) <= importance.half_width + vanilla.half_width, report

    # The weight stream is healthy, not a handful of dominant draws.
    assert importance.effective_sample_size is not None
    assert importance.effective_sample_size >= 32.0, report

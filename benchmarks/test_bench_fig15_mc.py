"""Benchmark: the Monte-Carlo silicon-to-regulation sweep (Figure 15 at scale)."""

from repro.experiments.figure15_mc import run as run_fig15_mc


def test_bench_fig15_mc(benchmark):
    # One round is enough: the experiment itself sweeps 16 cells x 128
    # fabricated instances through the fused pipeline.
    result = benchmark.pedantic(run_fig15_mc, rounds=1, iterations=1)
    # The proposed scheme's population locks and meets the composed spec at
    # every corner, frequency and load scenario.
    for corner in ("slow", "fast"):
        for per_load in result.data["proposed"][corner].values():
            for record in per_load.values():
                assert record["lock_yield"] == 1.0
                assert record["closed_loop_yield"] > 0.9
    # The conventional DLL's slow-corner lock collapse is invisible to a
    # regulation-only screen and fatal to the composed one.
    for per_load in result.data["conventional"]["slow"].values():
        for record in per_load.values():
            assert record["regulation_yield"] > 0.9
            assert record["closed_loop_yield"] < 0.1

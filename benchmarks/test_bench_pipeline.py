"""Benchmark: the fused silicon-to-regulation pipeline vs scalar composition.

The acceptance workload is a 512-instance Monte-Carlo run of the paper's
100 MHz / 6-bit proposed design at the typical corner, with per-chip
component variation on the buck: the scalar composition fabricates each
instance, runs the cycle-accurate lock inside a
``CalibratedDelayLineDPWM``, and advances a scalar
``DigitallyControlledBuck`` period by period; the fused pipeline draws the
same instances as one ensemble, locks them closed-form, converts the
``(instances, words)`` curve matrix straight into a ``BatchQuantizer`` and
advances the whole fleet per period.  The pipeline must be at least 10x
faster end to end at *bit-exact* agreement: identical duty-word decisions in
every period and identical (not merely close) steady-state voltages.

When ``BENCH_PIPELINE_JSON`` is set, the measured throughput is written
there so CI can archive the perf trajectory (the ``BENCH_pipeline.json``
artifact).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.converter.closed_loop import DigitallyControlledBuck
from repro.core.design import DesignSpec, design_proposed
from repro.core.yield_analysis import ComponentVariation
from repro.dpwm.calibrated import CalibratedDelayLineDPWM
from repro.pipeline import SiliconToRegulationPipeline
from repro.technology.corners import OperatingConditions
from repro.technology.library import intel32_like_library
from repro.technology.variation import VariationModel

NUM_INSTANCES = 512
PERIODS = 300
REFERENCE_V = 0.9
SPEC = DesignSpec(clock_frequency_mhz=100.0, resolution_bits=6)
CONDITIONS = OperatingConditions.typical()
VARIATION = VariationModel(random_sigma=0.04, gradient_peak=0.015, seed=2012)
COMPONENTS = ComponentVariation(seed=2012)

LIBRARY = intel32_like_library()
DESIGN = design_proposed(SPEC, LIBRARY)


def _run_pipeline():
    pipeline = SiliconToRegulationPipeline(
        "proposed",
        SPEC,
        CONDITIONS,
        variation=VARIATION,
        num_instances=NUM_INSTANCES,
        reference_v=REFERENCE_V,
        component_variation=COMPONENTS,
        library=LIBRARY,
    )
    return pipeline, pipeline.run(PERIODS)


def _run_scalar_composition(pipeline):
    """The seed-style path: one scalar DPWM + one scalar loop per instance."""
    duty_words = np.empty((PERIODS, NUM_INSTANCES), dtype=np.int64)
    voltages = np.empty((PERIODS, NUM_INSTANCES))
    for index in range(NUM_INSTANCES):
        sample = VARIATION.sample(
            pipeline.ensemble.config.num_cells,
            pipeline.ensemble.config.buffers_per_cell,
            instance=index,
        )
        line = DESIGN.build_line(library=LIBRARY, variation=sample)
        dpwm = CalibratedDelayLineDPWM(line, CONDITIONS)
        loop = DigitallyControlledBuck(
            pipeline.parameters.variant(index), dpwm, reference_v=REFERENCE_V
        )
        trace = loop.run(PERIODS)
        duty_words[:, index] = trace.duty_words
        voltages[:, index] = trace.output_voltages_v
    return duty_words, voltages


def test_bench_pipeline_speedup_and_bit_exactness(benchmark, bench_provenance):
    # One warm construction outside the timers hands the scalar path its
    # (identical) electrical parameter draws.
    reference_pipeline, _ = _run_pipeline()

    # Reference: the scalar composition, timed once (it is the slow side;
    # timing it through the benchmark fixture would dominate the suite).
    start = time.perf_counter()
    scalar_words, scalar_voltages = _run_scalar_composition(reference_pipeline)
    scalar_seconds = time.perf_counter() - start

    _, result = benchmark(_run_pipeline)
    batch_seconds = benchmark.stats.stats.mean
    speedup = scalar_seconds / batch_seconds

    words_equal = bool(
        np.array_equal(result.regulation.duty_words, scalar_words)
    )
    voltages_equal = bool(
        np.array_equal(result.regulation.output_voltages_v, scalar_voltages)
    )

    # Archive the measurements *before* the gates: a perf regression is
    # exactly the run whose numbers must survive for diagnosis.
    report_path = os.environ.get("BENCH_PIPELINE_JSON")
    if report_path:
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "workload": "512-instance silicon-to-regulation Monte-Carlo "
                    "(proposed, 100 MHz, 6-bit, typical corner, component "
                    f"variation, {PERIODS} periods)",
                    "num_instances": NUM_INSTANCES,
                    "periods": PERIODS,
                    "scalar_seconds": scalar_seconds,
                    "batch_seconds": batch_seconds,
                    "scalar_instances_per_sec": NUM_INSTANCES / scalar_seconds,
                    "batch_instances_per_sec": NUM_INSTANCES / batch_seconds,
                    "speedup": speedup,
                    "duty_words_bit_exact": words_equal,
                    "voltages_bit_exact": voltages_equal,
                    "provenance": bench_provenance,
                },
                handle,
                indent=2,
            )

    # Acceptance: >= 10x over the scalar composition, bit-for-bit.
    assert speedup >= 10.0, (
        f"pipeline only {speedup:.1f}x faster "
        f"({scalar_seconds:.2f}s scalar vs {batch_seconds:.3f}s fused)"
    )
    assert words_equal, "per-period duty-word decisions diverged"
    assert voltages_equal, "output-voltage histories diverged"
    # The workload is sane: every instance locked and the fleet regulates.
    assert bool(result.calibration.locked.all())
    np.testing.assert_allclose(
        result.steady_state_voltages_v(), REFERENCE_V, atol=0.02
    )

"""Benchmark: kernel backends head-to-head on the vectorized engines.

Every *available* backend (see ``repro.kernels``; ``numba`` only counts
when it is importable, since otherwise it resolves to the numpy
reference) runs the two flagship workloads:

* the 512-instance silicon-to-regulation pipeline sweep of
  ``test_bench_pipeline`` (proposed scheme, 100 MHz, 6-bit, typical
  corner, 300 periods);
* the 1000-instance proposed-scheme linearity sweep of
  ``test_bench_linearity_engine``.

All backends must agree with the numpy reference — bit-identical duty
words, voltages and transfer curves within the documented
``repro.kernels.TOLERANCES`` — and the numba backend must be at least
2x faster than numpy on the pipeline sweep (JIT compilation is warmed
up outside the timers; the gate is skipped when numba is not
installed).

When ``BENCH_BACKENDS_JSON`` is set, per-backend throughput is written
there so CI can archive the perf trajectory (the ``BENCH_backends.json``
artifact).
"""

from __future__ import annotations

import importlib.util
import json
import os
import time

import numpy as np
import pytest

from repro.core.design import DesignSpec, design_proposed
from repro.core.ensemble import ProposedEnsemble
from repro.core.yield_analysis import ComponentVariation
from repro.kernels import available_backends, get_backend
from repro.pipeline import SiliconToRegulationPipeline
from repro.technology.corners import OperatingConditions
from repro.technology.library import intel32_like_library
from repro.technology.variation import VariationModel

PIPELINE_INSTANCES = 512
PERIODS = 300
LINEARITY_INSTANCES = 1000
REFERENCE_V = 0.9
REPEATS = 3
SPEC = DesignSpec(clock_frequency_mhz=100.0, resolution_bits=6)
CONDITIONS = OperatingConditions.typical()
VARIATION = VariationModel(random_sigma=0.04, gradient_peak=0.015, seed=2012)
COMPONENTS = ComponentVariation(seed=2012)

LIBRARY = intel32_like_library()
CONFIG = design_proposed(SPEC, LIBRARY).build_line(library=LIBRARY).config

NUMBA_AVAILABLE = importlib.util.find_spec("numba") is not None

#: Memoized per-backend measurements, shared between the report test and
#: the speedup gate so the workloads run once per session.
_MEASURED: dict[str, dict[str, object]] = {}


def _backend_names() -> list[str]:
    """Registered backends that resolve to themselves in this environment."""
    return [
        name for name in available_backends() if get_backend(name).name == name
    ]


def _run_pipeline(backend: str):
    pipeline = SiliconToRegulationPipeline(
        "proposed",
        SPEC,
        CONDITIONS,
        variation=VARIATION,
        num_instances=PIPELINE_INSTANCES,
        reference_v=REFERENCE_V,
        component_variation=COMPONENTS,
        library=LIBRARY,
        backend=backend,
    )
    return pipeline.run(PERIODS)


def _run_linearity(backend: str):
    ensemble = ProposedEnsemble.sample(
        CONFIG, LINEARITY_INSTANCES, VARIATION, library=LIBRARY, backend=backend
    )
    calibration = ensemble.lock(CONDITIONS)
    return ensemble.transfer_curves(CONDITIONS, calibration=calibration)


def _measure(name: str) -> dict[str, object]:
    """Best-of-N timings plus result arrays for one backend."""
    if name in _MEASURED:
        return _MEASURED[name]
    if get_backend(name).compiled:
        from repro.kernels.numba_backend import warm_up

        warm_up()
    # One untimed run warms every remaining code path (JIT specializations,
    # coefficient tables) and supplies the arrays for the equivalence check.
    regulation = _run_pipeline(name)
    curves = _run_linearity(name)

    pipeline_seconds = min(
        _timed(_run_pipeline, name) for _ in range(REPEATS)
    )
    linearity_seconds = min(
        _timed(_run_linearity, name) for _ in range(REPEATS)
    )
    _MEASURED[name] = {
        "duty_words": regulation.regulation.duty_words,
        "voltages": regulation.regulation.output_voltages_v,
        "locked": bool(regulation.calibration.locked.all()),
        "delays_ps": curves.delays_ps,
        "pipeline_seconds": pipeline_seconds,
        "linearity_seconds": linearity_seconds,
    }
    return _MEASURED[name]


def _timed(workload, name: str) -> float:
    start = time.perf_counter()
    workload(name)
    return time.perf_counter() - start


def test_bench_backends_agree_and_report(bench_provenance):
    names = _backend_names()
    assert "numpy" in names, "the numpy reference backend must always exist"
    measured = {name: _measure(name) for name in names}
    reference = measured["numpy"]

    # Archive the measurements *before* the gates: a perf regression is
    # exactly the run whose numbers must survive for diagnosis.
    report_path = os.environ.get("BENCH_BACKENDS_JSON")
    if report_path:
        report = {
            "workloads": {
                "pipeline": f"{PIPELINE_INSTANCES}-instance "
                "silicon-to-regulation sweep (proposed, 100 MHz, 6-bit, "
                f"typical corner, {PERIODS} periods)",
                "linearity": f"{LINEARITY_INSTANCES}-instance "
                "proposed-scheme linearity sweep (100 MHz, 6-bit, "
                "typical corner)",
            },
            "numba_available": NUMBA_AVAILABLE,
            "backends": {
                name: {
                    "compiled": get_backend(name).compiled,
                    "pipeline_seconds": stats["pipeline_seconds"],
                    "pipeline_instances_per_sec": PIPELINE_INSTANCES
                    / stats["pipeline_seconds"],
                    "linearity_seconds": stats["linearity_seconds"],
                    "linearity_instances_per_sec": LINEARITY_INSTANCES
                    / stats["linearity_seconds"],
                }
                for name, stats in measured.items()
            },
            "pipeline_speedup_numba_over_numpy": (
                reference["pipeline_seconds"]
                / measured["numba"]["pipeline_seconds"]
                if "numba" in measured
                else None
            ),
            "provenance": bench_provenance,
        }
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)

    # Sanity on the reference run, then equivalence of every other backend.
    assert reference["locked"], "reference run failed to lock"
    for name, stats in measured.items():
        if name == "numpy":
            continue
        assert stats["locked"], f"{name}: fleet failed to lock"
        np.testing.assert_array_equal(
            stats["duty_words"],
            reference["duty_words"],
            err_msg=f"{name}: per-period duty-word decisions diverged",
        )
        # Voltages and curves inherit interval_coefficients' documented
        # transcendental tolerance (repro.kernels.TOLERANCES), compounded
        # over the run; everything beyond ~1e-9 is a real divergence.
        np.testing.assert_allclose(
            stats["voltages"],
            reference["voltages"],
            rtol=1e-9,
            atol=1e-12,
            err_msg=f"{name}: output-voltage histories diverged",
        )
        np.testing.assert_allclose(
            stats["delays_ps"],
            reference["delays_ps"],
            rtol=1e-9,
            atol=1e-9,
            err_msg=f"{name}: transfer curves diverged",
        )


@pytest.mark.skipif(not NUMBA_AVAILABLE, reason="numba is not installed")
def test_bench_numba_pipeline_speedup_gate():
    numpy_stats = _measure("numpy")
    numba_stats = _measure("numba")
    speedup = numpy_stats["pipeline_seconds"] / numba_stats["pipeline_seconds"]
    assert speedup >= 2.0, (
        f"numba backend only {speedup:.2f}x faster on the pipeline sweep "
        f"({numpy_stats['pipeline_seconds']:.3f}s numpy vs "
        f"{numba_stats['pipeline_seconds']:.3f}s numba)"
    )

"""Benchmark: regenerate Figure 23 (hybrid DPWM timing, duty word 10110)."""

import pytest

from repro.experiments.figure23 import run as run_fig23


def test_bench_fig23(benchmark):
    result = benchmark(run_fig23)
    # The paper's featured word 10110 produces a 23/32 = 71.9 % duty cycle.
    assert result.data["featured_duty"] == pytest.approx(23 / 32, abs=0.005)
    # Hybrid hardware compromise: 8x clock (not 32x), 4 cells (not 32).
    assert result.data["counter_clock_mhz"] == pytest.approx(8.0)
    assert result.data["num_cells"] == 4
    # The full 5-bit sweep is monotonic.
    duties = [result.data["sweep"][word] for word in sorted(result.data["sweep"])]
    assert duties == sorted(duties)

"""Benchmark: the exact-step batch engine vs the seed Euler loop.

The acceptance workload is a 256-variant Monte-Carlo regulation sweep (the
paper's Figure 15 loop under component variation): the seed implementation
runs each variant through the scalar closed loop with the explicit-Euler
power stage (128 Python sub-steps per switching period), while the batch
engine advances all variants at once with closed-form state-space updates.
The engine must be at least 10x faster at matched accuracy (steady-state
voltages within 1 mV of the Euler reference).
"""

from __future__ import annotations

import time

import numpy as np

from repro.converter.buck import BuckParameters
from repro.converter.closed_loop import DigitallyControlledBuck, IdealDPWM
from repro.core.yield_analysis import ComponentVariation
from repro.simulation.batch import BatchClosedLoop, BatchQuantizer

NUM_VARIANTS = 256
PERIODS = 300
REFERENCE_V = 0.9
# 9-bit DPWM: finer than the ADC LSB, so the loop satisfies the
# no-limit-cycle condition and the steady state is deterministic -- a 6-bit
# DPWM limit-cycles, and the dither phase (not the stepper) then dominates
# the tail mean for a handful of variants.
DPWM_BITS = 9

NOMINAL = BuckParameters(input_voltage_v=1.8, switching_frequency_hz=100e6)
VARIATION = ComponentVariation(seed=2012)


def _run_batch(parameters):
    loop = BatchClosedLoop(
        parameters,
        BatchQuantizer.ideal(DPWM_BITS, NUM_VARIANTS),
        reference_v=REFERENCE_V,
    )
    return loop.run(PERIODS)


def _run_euler_sweep(parameters):
    steady_states = np.empty(NUM_VARIANTS)
    for index in range(NUM_VARIANTS):
        loop = DigitallyControlledBuck(
            parameters.variant(index),
            IdealDPWM(bits=DPWM_BITS),
            reference_v=REFERENCE_V,
            stepper="euler",
        )
        steady_states[index] = loop.run(PERIODS).steady_state_voltage_v()
    return steady_states


def test_bench_batch_engine_speedup_and_accuracy(benchmark):
    parameters = VARIATION.sample_batch(NOMINAL, NUM_VARIANTS)

    # Reference: the seed scalar Euler sweep, timed once (it is the slow
    # side; timing it through the benchmark fixture would dominate the
    # suite's runtime).
    start = time.perf_counter()
    euler_steady_states = _run_euler_sweep(parameters)
    euler_seconds = time.perf_counter() - start

    result = benchmark(_run_batch, parameters)
    batch_seconds = benchmark.stats.stats.mean

    batch_steady_states = result.steady_state_voltage_v()
    worst_disagreement = np.max(np.abs(batch_steady_states - euler_steady_states))
    speedup = euler_seconds / batch_seconds

    # Acceptance: >= 10x over the seed loop, steady state within 1 mV.
    assert speedup >= 10.0, (
        f"batch engine only {speedup:.1f}x faster "
        f"({euler_seconds:.2f}s Euler vs {batch_seconds:.3f}s batch)"
    )
    assert worst_disagreement < 1e-3, (
        f"steady-state disagreement {worst_disagreement * 1e3:.3f} mV"
    )
    # And the sweep itself is sane: every variant regulates near the target.
    assert np.all(np.abs(batch_steady_states - REFERENCE_V) < 0.03)

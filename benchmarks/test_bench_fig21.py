"""Benchmark: regenerate Figure 21 (2-bit delay-line DPWM timing)."""

import pytest

from repro.experiments.figure21 import run as run_fig21


def test_bench_fig21(benchmark):
    result = benchmark(run_fig21)
    for word, duty in result.data["measured_duties"].items():
        assert duty == pytest.approx((word + 1) / 4, abs=0.01)
    # Only the switching clock is required (the power advantage of Table 2).
    assert result.data["required_clock_mhz"] == pytest.approx(1.0)

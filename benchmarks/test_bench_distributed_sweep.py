"""Benchmark: the pluggable sweep executors on a 10x-scale grid.

The workload is a synthetic 300-cell grid (ten times the 30 cells of the
real Monte-Carlo experiments) of deterministic numpy busy-work, sized so
the paper-scale grids of the roadmap ("10-100x of today's 30 cells") are
what is actually measured.  Four gates (see ``docs/sweeps.md``):

* **Unordered beats ordered under a straggler** -- one cell is injected
  with ~150x the work; the ``process-pool`` executor's
  ``imap_unordered`` drain must finish no later than an order-preserving
  ``imap``-with-``chunksize=1`` drain of the same grid, because the
  ordered consumer cannot normalize-and-store a single payload until the
  straggler (dispatched first) completes.
* **Cooperation scales** -- two independent ``shared-cache`` invocations
  pointed at one cache directory must drain the grid >= 1.5x faster than
  one invocation.
* **Resume is nearly free** -- a warm re-run against the populated cache
  must cost < 5 % of the cold run.
* **Bit-identity everywhere** -- serial, ordered-pool, unordered-pool
  and shared-cache payloads agree byte for byte on the synthetic grid,
  and all three named executors reproduce the plain-serial ``--json``
  payloads of the real ``fig15_mc`` / ``fig50_51_mc`` experiments.

The timing gates scale with the machine: straggler and cooperation need
real concurrency and only bind on >= 2 cpus (identity and the warm-resume
gate always bind).  When ``BENCH_DISTRIBUTED_SWEEP_JSON`` is set, every
measurement is archived there (the ``BENCH_distributed_sweep.json`` CI
artifact), stamped with the machine provenance.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np

from repro.experiments import run_experiment
from repro.sweep import (
    ParameterGrid,
    ResultCache,
    SweepConfig,
    SweepOrchestrator,
    canonical_json,
    cell_key,
    sweep_map,
)
from repro.sweep.executors import _call_indexed

SRC_DIR = Path(__file__).resolve().parents[1] / "src"

#: Ten times the 30 cells of the real Monte-Carlo grid experiments.
N_CELLS = 300
GRID = ParameterGrid(x=tuple(range(N_CELLS)))

#: Busy-work iterations of a normal cell (~milliseconds of numpy work).
WORK = 350
#: The straggler's work multiplier.
STRAGGLER_FACTOR = 150

REAL_EXPERIMENTS = ("fig15_mc", "fig50_51_mc")


def bench_cell(params: dict) -> dict:
    """Deterministic numpy busy-work: pure function of the cell dict."""
    arr = np.linspace(0.0, 1.0, 4096) + (params["x"] % 97) / 97.0
    for _ in range(params["work"]):
        arr = np.sin(arr) + 0.1
    return {"x": params["x"], "series": arr[: params["series"]].tolist()}


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-linux fallback
        return os.cpu_count() or 1


def _fork_context() -> multiprocessing.context.BaseContext:
    if "fork" in multiprocessing.get_all_start_methods():
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()  # pragma: no cover - non-posix


def _straggler_cells() -> list[dict]:
    # Large payloads (the full 4096-sample series) make the consumer-side
    # normalize-and-store cost non-trivial -- which is exactly the work an
    # ordered drain serializes behind the straggler.
    cells = GRID.cells(seed=0, work=WORK, series=4096)
    cells[0] = dict(cells[0], work=WORK * STRAGGLER_FACTOR)
    return cells


def _ordered_pool_drain(cells, experiment_id, cache_dir, workers) -> list:
    """The pre-executor baseline: ordered ``imap`` with ``chunksize=1``.

    Same worker count, same per-result normalize-and-store consumer work
    as the orchestrator's process-pool path -- the only difference is
    that results come back in submission order, so everything queued
    behind the straggler waits for it.
    """
    cache = ResultCache(cache_dir)
    keys = [cell_key(experiment_id, cell) for cell in cells]
    work = [(bench_cell, index, dict(cell)) for index, cell in enumerate(cells)]
    payloads: list = [None] * len(cells)
    with _fork_context().Pool(processes=workers) as pool:
        for index, raw in pool.imap(_call_indexed, work, chunksize=1):
            payload = json.loads(canonical_json(raw))
            cache.store(experiment_id, keys[index], payload, params=cells[index])
            payloads[index] = payload
    return payloads


COOPERATION_SCRIPT = """
import sys

import numpy as np

from repro.sweep import ParameterGrid, SweepConfig, SweepOrchestrator

CACHE_DIR = sys.argv[1]
N_CELLS, WORK = int(sys.argv[2]), int(sys.argv[3])


def bench_cell(params):
    arr = np.linspace(0.0, 1.0, 4096) + (params["x"] % 97) / 97.0
    for _ in range(params["work"]):
        arr = np.sin(arr) + 0.1
    return {"x": params["x"], "series": arr[: params["series"]].tolist()}


cells = ParameterGrid(x=tuple(range(N_CELLS))).cells(seed=0, work=WORK, series=32)
config = SweepConfig(
    cache_dir=CACHE_DIR, executor="shared-cache", poll_interval_s=0.01
)
with SweepOrchestrator(config) as sweep:
    sweep.map_cells(bench_cell, cells, experiment_id="coop")
"""


def _cooperative_run(tmp_path, cache_dir, n_workers) -> float:
    """Wall seconds for ``n_workers`` invocations to drain one fresh grid."""
    script_path = tmp_path / "coop_worker.py"
    script_path.write_text(COOPERATION_SCRIPT)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC_DIR) + os.pathsep + env.get("PYTHONPATH", "")
    start = time.perf_counter()
    workers = [
        subprocess.Popen(
            [sys.executable, str(script_path), str(cache_dir), str(N_CELLS), "700"],
            env=env,
        )
        for _ in range(n_workers)
    ]
    for worker in workers:
        if worker.wait(timeout=600.0) != 0:
            raise RuntimeError("cooperative sweep worker failed")
    return time.perf_counter() - start


def _run_real_experiments(sweep=None) -> str:
    """Canonical JSON of the real MC grid experiments' --json payloads."""
    collected = {}
    for experiment_id in REAL_EXPERIMENTS:
        result = run_experiment(experiment_id, sweep=sweep)
        collected[experiment_id] = {
            "title": result.title,
            "data": result.data,
            "paper_reference": result.paper_reference,
        }
    return canonical_json(collected)


def test_bench_distributed_sweep(tmp_path, bench_provenance):
    cpus = _cpu_count()
    pool_workers = max(2, min(4, cpus))

    # --- straggler: ordered baseline vs unordered process-pool ------------
    straggler_cells = _straggler_cells()
    serial_payloads = sweep_map(
        bench_cell, straggler_cells, experiment_id="straggler"
    )

    start = time.perf_counter()
    ordered_payloads = _ordered_pool_drain(
        straggler_cells, "straggler", tmp_path / "ordered", pool_workers
    )
    ordered_seconds = time.perf_counter() - start

    with SweepOrchestrator(
        SweepConfig(
            workers=pool_workers,
            cache_dir=tmp_path / "unordered",
            executor="process-pool",
        )
    ) as sweep:
        start = time.perf_counter()
        unordered_payloads = sweep.map_cells(
            bench_cell, straggler_cells, experiment_id="straggler"
        )
        unordered_seconds = time.perf_counter() - start

    # --- shared-cache: in-process identity + warm resume ------------------
    resume_cells = GRID.cells(seed=0, work=WORK, series=32)
    resume_reference = sweep_map(bench_cell, resume_cells, experiment_id="resume")
    resume_cache = tmp_path / "resume"
    with SweepOrchestrator(
        SweepConfig(cache_dir=resume_cache, executor="shared-cache")
    ) as sweep:
        start = time.perf_counter()
        shared_payloads = sweep.map_cells(
            bench_cell, resume_cells, experiment_id="resume"
        )
        cold_seconds = time.perf_counter() - start
    with SweepOrchestrator(
        SweepConfig(cache_dir=resume_cache, executor="shared-cache")
    ) as warm_sweep:
        start = time.perf_counter()
        warm_payloads = warm_sweep.map_cells(
            bench_cell, resume_cells, experiment_id="resume"
        )
        warm_seconds = time.perf_counter() - start
    warm_fraction = warm_seconds / cold_seconds

    # --- cooperation: one worker vs two against fresh caches --------------
    solo_seconds = _cooperative_run(tmp_path, tmp_path / "coop-solo", 1)
    duo_seconds = _cooperative_run(tmp_path, tmp_path / "coop-duo", 2)
    cooperation_speedup = solo_seconds / duo_seconds

    # --- real experiments: every executor vs the plain serial baseline ----
    real_baseline = _run_real_experiments()
    real_results = {}
    for executor in ("serial", "process-pool", "shared-cache"):
        with SweepOrchestrator(
            SweepConfig(
                workers=pool_workers,
                cache_dir=tmp_path / f"real-{executor}",
                executor=executor,
            )
        ) as sweep:
            real_results[executor] = _run_real_experiments(sweep)

    synthetic_identical = (
        canonical_json(serial_payloads)
        == canonical_json(ordered_payloads)
        == canonical_json(unordered_payloads)
    ) and (
        canonical_json(resume_reference)
        == canonical_json(shared_payloads)
        == canonical_json(warm_payloads)
    )
    real_identical = all(
        result == real_baseline for result in real_results.values()
    )

    # Archive the measurements *before* the gates: a perf regression is
    # exactly the run whose numbers must survive for diagnosis.
    report_path = os.environ.get("BENCH_DISTRIBUTED_SWEEP_JSON")
    if report_path:
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "workload": f"synthetic {N_CELLS}-cell grid "
                    f"(10x the 30 real MC cells) + {', '.join(REAL_EXPERIMENTS)}",
                    "cpus": cpus,
                    "pool_workers": pool_workers,
                    "straggler_ordered_seconds": ordered_seconds,
                    "straggler_unordered_seconds": unordered_seconds,
                    "straggler_ordered_over_unordered": ordered_seconds
                    / unordered_seconds,
                    "cold_shared_cache_seconds": cold_seconds,
                    "warm_seconds": warm_seconds,
                    "warm_fraction_of_cold": warm_fraction,
                    "cooperation_solo_seconds": solo_seconds,
                    "cooperation_duo_seconds": duo_seconds,
                    "cooperation_speedup": cooperation_speedup,
                    "synthetic_bit_identical": synthetic_identical,
                    "real_experiments_bit_identical": real_identical,
                    "provenance": bench_provenance,
                },
                handle,
                indent=2,
            )

    # Acceptance 1: bit-identity across every execution strategy.
    assert synthetic_identical, "executors diverged on the synthetic grid"
    assert real_identical, (
        "an executor diverged from the serial baseline on "
        f"{'/'.join(REAL_EXPERIMENTS)}"
    )

    # Acceptance 2: a warm resume costs under 5 % of the cold run.
    assert warm_fraction < 0.05, (
        f"warm resume took {warm_seconds:.2f}s "
        f"({100 * warm_fraction:.1f}% of the {cold_seconds:.2f}s cold run)"
    )

    # Acceptance 3 (needs real concurrency): the unordered drain is never
    # slower than the ordered baseline under a straggler.
    if cpus >= 2:
        assert unordered_seconds <= ordered_seconds * 1.05, (
            f"unordered drain {unordered_seconds:.2f}s vs ordered "
            f"{ordered_seconds:.2f}s on {cpus} cpus"
        )

    # Acceptance 4 (needs real concurrency): two cooperating workers beat
    # one by >= 1.5x.
    if cpus >= 2:
        assert cooperation_speedup >= 1.5, (
            f"two shared-cache workers only {cooperation_speedup:.2f}x one "
            f"({solo_seconds:.2f}s solo, {duo_seconds:.2f}s duo) on "
            f"{cpus} cpus"
        )

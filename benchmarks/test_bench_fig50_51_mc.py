"""Benchmark: the Monte-Carlo linearity-yield sweep (Figures 50-51 at scale)."""

from repro.experiments.figure50_51_mc import FREQUENCIES_MHZ, run as run_fig50_51_mc


def test_bench_fig50_51_mc(benchmark):
    # One round is enough: the experiment itself sweeps 12 x 1000 instances,
    # so repeated rounds only multiply the suite's wall-clock.
    result = benchmark.pedantic(run_fig50_51_mc, rounds=1, iterations=1)
    # The proposed scheme locks for the whole population at every corner and
    # frequency; the conventional DLL's lock yield collapses at the slow
    # corner (paper fig37's saturation, now as a population statement).
    for corner in ("slow", "fast"):
        for record in result.data["proposed"][corner].values():
            assert record["lock_yield"] == 1.0
    for record in result.data["conventional"]["slow"].values():
        assert record["lock_yield"] < 0.1
    # Lower frequencies are more linear (more buffers per cell average out
    # mismatch), so the slow-corner linearity yield decreases with frequency.
    yields = [
        result.data["proposed"]["slow"][frequency]["linearity_yield"]
        for frequency in FREQUENCIES_MHZ
    ]
    assert yields == sorted(yields, reverse=True)
    # Every sampled instance of both schemes stays monotonic post-APR.
    for scheme in ("proposed", "conventional"):
        for corner in ("slow", "fast"):
            for record in result.data[scheme][corner].values():
                assert record["monotonic_fraction"] == 1.0

"""Ablation benchmarks for the design choices DESIGN.md calls out.

These go beyond the paper's tables and probe *why* the proposed scheme wins:

* what happens to the conventional scheme's area if the corner spread (and
  hence the number of branches per tunable cell) changes;
* how much of the proposed scheme's area is the price of calibration
  (calibration MUX + controller + mapper) versus the functional delay line;
* how the calibration time of both schemes scales with the line length;
* how the half-period locking choice (versus full-period locking) halves the
  proposed controller's search range.
"""

import pytest

from repro.core.conventional import (
    ConventionalDelayLine,
    ConventionalDelayLineConfig,
    ShiftRegisterController,
)
from repro.core.design import DesignSpec, design_proposed
from repro.core.proposed import (
    ProposedController,
    ProposedDelayLine,
    ProposedDelayLineConfig,
)
from repro.technology.corners import OperatingConditions
from repro.technology.library import intel32_like_library
from repro.technology.synthesis import Synthesizer


LIBRARY = intel32_like_library()
SYNTH = Synthesizer(LIBRARY)


def _conventional_area_for_branches(branches: int) -> float:
    line = ConventionalDelayLine(
        ConventionalDelayLineConfig(
            num_cells=64,
            branches=branches,
            buffers_per_element=2,
            clock_period_ps=10_000.0,
        ),
        library=LIBRARY,
    )
    return SYNTH.synthesize(line.netlist()).total_area_um2


def test_bench_ablation_branch_count_drives_conventional_area(benchmark):
    """The tunable cell's redundancy is the conventional scheme's area cost."""

    def sweep():
        return {branches: _conventional_area_for_branches(branches) for branches in (2, 3, 4, 6)}

    areas = benchmark(sweep)
    assert areas[2] < areas[3] < areas[4] < areas[6]
    # Even a 2-branch conventional line is larger than the proposed design.
    proposed_area = SYNTH.synthesize(
        design_proposed(DesignSpec(100.0, 6), LIBRARY).build_line(LIBRARY).netlist()
    ).total_area_um2
    assert areas[4] > 1.5 * proposed_area


def test_bench_ablation_calibration_overhead_of_proposed_scheme(benchmark):
    """Quantify the area spent on calibration in the proposed scheme."""

    def measure():
        line = design_proposed(DesignSpec(100.0, 6), LIBRARY).build_line(LIBRARY)
        report = SYNTH.synthesize(line.netlist())
        distribution = report.distribution()
        calibration_share = (
            distribution["Calibration MUX"]
            + distribution["Controller"]
            + distribution["Mapper"]
        )
        return report.total_area_um2, calibration_share

    total, calibration_share = benchmark(measure)
    # More than half of the proposed scheme's area is calibration overhead --
    # and it still beats the conventional scheme's total (paper Table 5).
    assert 50.0 < calibration_share < 70.0
    assert total < 1500.0


@pytest.mark.parametrize("num_cells", [64, 128, 256, 512])
def test_bench_ablation_lock_time_scales_linearly_with_cells(benchmark, num_cells):
    """Proposed-controller calibration time grows linearly with line length."""
    line = ProposedDelayLine(
        ProposedDelayLineConfig(
            num_cells=num_cells,
            buffers_per_cell=512 // num_cells,
            clock_period_ps=10_000.0,
        ),
        library=LIBRARY,
    )
    controller = ProposedController(line)
    result = benchmark(controller.lock, OperatingConditions.fast())
    assert result.locked
    # Worst case: about half the cells (the fast corner needs the most).
    assert result.lock_cycles <= num_cells // 2 + controller.synchronizer_latency_cycles + 2


def test_bench_ablation_conventional_update_rate(benchmark):
    """The conventional DLL's calibration time is set by its update period."""
    line = ConventionalDelayLine(
        ConventionalDelayLineConfig(
            num_cells=64, branches=4, buffers_per_element=2, clock_period_ps=10_000.0
        ),
        library=LIBRARY,
    )

    def lock_with_update_rates():
        fast_update = ShiftRegisterController(line, cycles_per_update=1).lock(
            OperatingConditions.fast()
        )
        slow_update = ShiftRegisterController(line, cycles_per_update=4).lock(
            OperatingConditions.fast()
        )
        return fast_update, slow_update

    fast_update, slow_update = benchmark(lock_with_update_rates)
    assert fast_update.locked and slow_update.locked
    assert slow_update.lock_cycles > 3 * fast_update.lock_cycles
    # Even with a per-cycle update the conventional DLL is slower than the
    # proposed controller because it has ~3x more steps to walk through.
    proposed = ProposedController(
        design_proposed(DesignSpec(100.0, 6), LIBRARY).build_line(LIBRARY)
    ).lock(OperatingConditions.fast())
    assert proposed.lock_cycles < fast_update.lock_cycles

"""Benchmark: regenerate Figure 19 (2-bit counter DPWM timing)."""

import pytest

from repro.experiments.figure19 import run as run_fig19


def test_bench_fig19(benchmark):
    result = benchmark(run_fig19)
    # The four duty words produce the paper's 25 / 50 / 75 / 100 % pulses.
    for word, duty in result.data["measured_duties"].items():
        assert duty == pytest.approx((word + 1) / 4, abs=0.01)
    # The counter clock is 2**n times the switching clock (eq. 13).
    assert result.data["counter_clock_mhz"] == pytest.approx(4.0)

"""Benchmark: the vectorized ensemble engine vs the scalar per-instance loop.

The acceptance workload is a 1000-instance Monte-Carlo linearity sweep of the
paper's 100 MHz / 6-bit proposed design at the typical corner: the seed-style
implementation samples each fabricated instance, runs the cycle-accurate
``ProposedController`` lock and extracts the transfer curve one word at a
time; the ensemble engine draws the same instances as one batch, locks them
closed-form and produces the whole ``(instances, words)`` curve matrix in
vectorized numpy.  The engine must be at least 10x faster end to end with
transfer-curve agreement tighter than 1e-6 ps and identical locked tap
counts.

When ``BENCH_LINEARITY_ENGINE_JSON`` is set, the measured throughput
(instances/second for both paths) is written there so CI can archive the perf
trajectory (the ``BENCH_linearity_engine.json`` artifact).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core.design import DesignSpec, design_proposed
from repro.core.ensemble import ProposedEnsemble
from repro.core.proposed import ProposedController
from repro.technology.corners import OperatingConditions
from repro.technology.library import intel32_like_library
from repro.technology.variation import VariationModel

NUM_INSTANCES = 1000
SPEC = DesignSpec(clock_frequency_mhz=100.0, resolution_bits=6)
CONDITIONS = OperatingConditions.typical()
VARIATION = VariationModel(random_sigma=0.04, gradient_peak=0.015, seed=2012)

LIBRARY = intel32_like_library()
DESIGN = design_proposed(SPEC, LIBRARY)
CONFIG = DESIGN.build_line(library=LIBRARY).config


def _run_batch():
    ensemble = ProposedEnsemble.sample(
        CONFIG, NUM_INSTANCES, VARIATION, library=LIBRARY
    )
    calibration = ensemble.lock(CONDITIONS)
    curves = ensemble.transfer_curves(CONDITIONS, calibration=calibration)
    return calibration, curves


def _run_scalar_sweep():
    tap_sels = np.empty(NUM_INSTANCES, dtype=int)
    delays = None
    for index in range(NUM_INSTANCES):
        sample = VARIATION.sample(
            CONFIG.num_cells, CONFIG.buffers_per_cell, instance=index
        )
        line = DESIGN.build_line(library=LIBRARY, variation=sample)
        result = ProposedController(line).lock(CONDITIONS)
        tap_sels[index] = result.control_state
        words = range(1, line.mapper.max_word + 1)
        row = np.array(
            [
                line.output_delay_ps(word, result.control_state, CONDITIONS)
                for word in words
            ]
        )
        if delays is None:
            delays = np.empty((NUM_INSTANCES, row.size))
        delays[index] = row
    return tap_sels, delays


def test_bench_linearity_engine_speedup_and_agreement(benchmark, bench_provenance):
    # Reference: the seed per-instance loop, timed once (it is the slow side;
    # timing it through the benchmark fixture would dominate the suite).
    start = time.perf_counter()
    scalar_tap_sels, scalar_delays = _run_scalar_sweep()
    scalar_seconds = time.perf_counter() - start

    calibration, curves = benchmark(_run_batch)
    batch_seconds = benchmark.stats.stats.mean

    worst_disagreement = np.max(np.abs(curves.delays_ps - scalar_delays))
    speedup = scalar_seconds / batch_seconds

    # Archive the measurements *before* the gates: a perf regression is
    # exactly the run whose numbers must survive for diagnosis.
    report_path = os.environ.get("BENCH_LINEARITY_ENGINE_JSON")
    if report_path:
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "workload": "1000-instance proposed-scheme linearity sweep "
                    "(100 MHz, 6-bit, typical corner)",
                    "num_instances": NUM_INSTANCES,
                    "scalar_seconds": scalar_seconds,
                    "batch_seconds": batch_seconds,
                    "scalar_instances_per_sec": NUM_INSTANCES / scalar_seconds,
                    "batch_instances_per_sec": NUM_INSTANCES / batch_seconds,
                    "speedup": speedup,
                    "worst_disagreement_ps": float(worst_disagreement),
                    "provenance": bench_provenance,
                },
                handle,
                indent=2,
            )

    # Acceptance: >= 10x over the scalar loop at sub-1e-6 ps agreement.
    assert speedup >= 10.0, (
        f"ensemble engine only {speedup:.1f}x faster "
        f"({scalar_seconds:.2f}s scalar vs {batch_seconds:.3f}s batch)"
    )
    assert worst_disagreement < 1e-6, (
        f"transfer-curve disagreement {worst_disagreement:.3e} ps"
    )
    np.testing.assert_array_equal(calibration.control_state, scalar_tap_sels)
    # The sweep itself is sane: every instance locks at the typical corner.
    assert bool(calibration.locked.all())

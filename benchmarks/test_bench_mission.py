"""Benchmark: batched mission-profile sweep vs the scalar per-instance loop.

The acceptance workload is a 32-instance mission run of the paper's
100 MHz / 6-bit proposed design: every instance rides its own randomized
6-segment mission from a chunk-invariant :class:`MissionGenerator` while a
25 -> 85 -> 25 degC temperature trace re-locks and re-derates the fleet at
each thermal epoch.  The scalar reference issues one ``run_chunk(i, 1)``
per instance -- fabricating, locking and advancing a one-variant fleet 32
times; the batched path issues a single ``run_chunk(0, 32)``.  Because
both sides draw from the same per-instance ``(seed, tag, i)`` streams, the
batched run must reproduce the scalar columns *bit for bit* -- the
benchmark doubles as the chunk-invariance gate under thermal epoching.

When ``BENCH_MISSION_JSON`` is set, the measured throughput is written
there so CI can archive the perf trajectory (the ``BENCH_mission.json``
artifact).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.converter.missions import MissionGenerator
from repro.core.design import DesignSpec
from repro.core.yield_analysis import ComponentVariation
from repro.pipeline import ChunkedSiliconToRegulation
from repro.technology.corners import OperatingConditions
from repro.technology.thermal import TemperatureTrace, ThermalDerating
from repro.technology.variation import VariationModel

NUM_INSTANCES = 32
PERIODS = 360
REFERENCE_V = 0.9
SPEC = DesignSpec(clock_frequency_mhz=100.0, resolution_bits=6)
MISSIONS = MissionGenerator(
    total_periods=PERIODS, num_segments=6, seed=2012, heavy_ohm=1.4
)
TRACE = TemperatureTrace(
    temperatures_c=(25.0, 85.0, 25.0), durations_periods=(120, 120, 120)
)
THERMAL = ThermalDerating()


def _build_pipeline() -> ChunkedSiliconToRegulation:
    return ChunkedSiliconToRegulation(
        "proposed",
        SPEC,
        OperatingConditions.typical(),
        variation=VariationModel(seed=2012),
        component_variation=ComponentVariation(seed=2012),
        reference_v=REFERENCE_V,
    )


def _run_batched(pipeline: ChunkedSiliconToRegulation):
    return pipeline.run_chunk(
        0,
        NUM_INSTANCES,
        periods=PERIODS,
        missions=MISSIONS,
        temperature_trace=TRACE,
        thermal=THERMAL,
    )


def _run_scalar_loop(pipeline: ChunkedSiliconToRegulation):
    """One single-instance chunk per chip -- the pre-batching composition."""
    voltages = np.empty((PERIODS, NUM_INSTANCES))
    words = np.empty((PERIODS, NUM_INSTANCES), dtype=np.int64)
    for instance in range(NUM_INSTANCES):
        result = pipeline.run_chunk(
            instance,
            1,
            periods=PERIODS,
            missions=MISSIONS,
            temperature_trace=TRACE,
            thermal=THERMAL,
        )
        voltages[:, instance] = result.regulation.output_voltages_v[:, 0]
        words[:, instance] = result.regulation.duty_words[:, 0]
    return words, voltages


def test_bench_mission_speedup_and_bit_exactness(benchmark, bench_provenance):
    pipeline = _build_pipeline()

    # Reference: the scalar loop, timed once (it is the slow side; timing
    # it through the benchmark fixture would dominate the suite).
    start = time.perf_counter()
    scalar_words, scalar_voltages = _run_scalar_loop(pipeline)
    scalar_seconds = time.perf_counter() - start

    result = benchmark(_run_batched, pipeline)
    batch_seconds = benchmark.stats.stats.mean
    speedup = scalar_seconds / batch_seconds

    words_equal = bool(
        np.array_equal(result.regulation.duty_words, scalar_words)
    )
    voltages_equal = bool(
        np.array_equal(result.regulation.output_voltages_v, scalar_voltages)
    )

    # Archive the measurements *before* the gates: a perf regression is
    # exactly the run whose numbers must survive for diagnosis.
    report_path = os.environ.get("BENCH_MISSION_JSON")
    if report_path:
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "workload": "32-instance randomized-mission fleet "
                    "(proposed, 100 MHz, 6-bit, typical corner, per-instance "
                    f"missions, 25->85->25 degC trace, {PERIODS} periods)",
                    "num_instances": NUM_INSTANCES,
                    "periods": PERIODS,
                    "num_segments": MISSIONS.num_segments,
                    "scalar_seconds": scalar_seconds,
                    "batch_seconds": batch_seconds,
                    "scalar_instances_per_sec": NUM_INSTANCES / scalar_seconds,
                    "batch_instances_per_sec": NUM_INSTANCES / batch_seconds,
                    "speedup": speedup,
                    "duty_words_bit_exact": words_equal,
                    "voltages_bit_exact": voltages_equal,
                    "provenance": bench_provenance,
                },
                handle,
                indent=2,
            )

    # Acceptance: >= 5x over the scalar loop, bit-for-bit columns.
    assert speedup >= 5.0, (
        f"batched mission run only {speedup:.1f}x faster "
        f"({scalar_seconds:.2f}s scalar vs {batch_seconds:.3f}s batched)"
    )
    assert words_equal, "per-period duty-word decisions diverged"
    assert voltages_equal, "output-voltage histories diverged"
    # The workload is sane: the fleet regulates near the reference at the
    # light-load legs (mission tails hold within the coarse window).
    assert np.isfinite(result.regulation.output_voltages_v).all()

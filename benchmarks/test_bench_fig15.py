"""Benchmark: regenerate Figure 15 (closed-loop regulation at scale)."""

from repro.experiments.figure15 import REFERENCE_V, run as run_fig15


def test_bench_fig15(benchmark):
    result = benchmark(run_fig15)
    architectures = result.data["architectures"]
    # Every DPWM architecture regulates to the reference (paper eq. 11) and
    # recovers after both load steps.
    for entry in architectures.values():
        assert abs(entry["pre_step_v"] - REFERENCE_V) < 0.02
        assert abs(entry["heavy_v"] - REFERENCE_V) < 0.02
        assert abs(entry["final_v"] - REFERENCE_V) < 0.02
        # The load step visibly dips the output before the loop recovers.
        assert entry["dip_v"] < REFERENCE_V - 0.05
    # The calibrated delay-line DPWMs regulate as well as the ideal one.
    ideal_error = abs(architectures["ideal 6-bit"]["final_v"] - REFERENCE_V)
    for name in ("calibrated proposed", "calibrated conventional"):
        assert abs(architectures[name]["final_v"] - REFERENCE_V) < ideal_error + 0.01
    # Monte-Carlo sweep: essentially every component draw still regulates.
    monte_carlo = result.data["monte_carlo"]
    assert monte_carlo["regulation_yield"] > 0.99
    assert monte_carlo["worst_error_v"] < 0.02
    # Fused silicon Monte-Carlo: fabricated proposed-scheme delay lines at
    # the typical corner all lock, stay linear and regulate their own
    # component-varied bucks.
    silicon = result.data["silicon_monte_carlo"]
    assert silicon["lock_yield"] == 1.0
    assert silicon["closed_loop_yield"] > 0.95
    assert silicon["worst_error_v"] < 0.02

"""Benchmark: regenerate the section 4.2 worked design examples."""

import pytest

from repro.experiments.design_example import run as run_design_example


def test_bench_design_example(benchmark):
    result = benchmark(run_design_example)
    conventional = result.data["conventional"]
    proposed = result.data["proposed"]
    assert (conventional["num_cells"], conventional["branches"]) == (64, 4)
    assert conventional["buffers_per_element"] == 2
    assert (proposed["num_cells"], proposed["buffers_per_cell"]) == (256, 2)
    # Both worst-case line delays equal 10.24 ns > the 10 ns period, so both
    # schemes lock at every corner (paper eqs. 29 and 36).
    assert conventional["worst_case_total_delay_ps"] == pytest.approx(10_240.0)
    assert proposed["worst_case_total_delay_ps"] == pytest.approx(10_240.0)
    assert conventional["guarantees_locking"] and proposed["guarantees_locking"]

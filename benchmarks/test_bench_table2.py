"""Benchmark: regenerate Table 2 (counter vs delay-line DPWM comparison)."""

from repro.experiments.table2 import run as run_table2


def test_bench_table2(benchmark):
    result = benchmark(run_table2)
    rows = {row["bits"]: row for row in result.data["rows"]}
    # Counter: exponentially growing clock; delay line: switching clock only.
    assert rows[13]["counter_clock_mhz"] == 8192.0
    assert rows[13]["delay_line_clock_mhz"] == 1.0
    # Delay line: exponentially growing area; counter stays small.
    assert rows[13]["delay_line_area_um2"] > 50 * rows[13]["counter_area_um2"]
    # Hybrid sits between the two on both axes at high resolution.
    assert rows[13]["hybrid_clock_mhz"] < rows[13]["counter_clock_mhz"]
    assert rows[13]["hybrid_area_um2"] < rows[13]["delay_line_area_um2"]

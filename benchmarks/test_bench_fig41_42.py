"""Benchmark: regenerate Figures 41-42 (tuning-order scenarios and linearity)."""

from repro.experiments.figure41_42 import run as run_fig41_42


def test_bench_fig41_42(benchmark):
    result = benchmark(run_fig41_42)
    scenarios = result.data["scenarios"]
    # Paper claim: clustering the tuned cells at the start of the line
    # (scenario 1 / sequential) is the worst case for linearity; spreading
    # them (scenario 2 / distributed) is the best.
    assert (
        scenarios["sequential"]["max_inl_lsb"]
        > scenarios["round_robin"]["max_inl_lsb"]
        >= scenarios["distributed"]["max_inl_lsb"] * 0.9
    )
    assert (
        scenarios["sequential"]["max_error_fraction_of_period"]
        > scenarios["distributed"]["max_error_fraction_of_period"]
    )
    # All scenarios still lock to the clock period.
    for record in scenarios.values():
        assert record["lock_cycles"] > 0

"""Benchmark: regenerate Table 5 (post-synthesis area at 100 MHz)."""

import pytest

from repro.experiments.table5 import PAPER_TABLE5, run as run_table5


def test_bench_table5(benchmark):
    result = benchmark(run_table5)
    proposed = result.data["proposed"]
    conventional = result.data["conventional"]
    # Same design points as the paper.
    assert proposed["taps"] == 256
    assert conventional["taps"] == 64
    # Absolute areas within 5 % of the paper's 1337 / 2330 um^2.
    assert proposed["total_area_um2"] == pytest.approx(
        PAPER_TABLE5["proposed"]["total_area_um2"], rel=0.05
    )
    assert conventional["total_area_um2"] == pytest.approx(
        PAPER_TABLE5["conventional"]["total_area_um2"], rel=0.05
    )
    # The headline claim: the proposed scheme is substantially smaller.
    assert result.data["area_ratio"] == pytest.approx(2330 / 1337, rel=0.1)
    # Area-distribution shape: conventional dominated by line + controller.
    assert conventional["distribution"]["Delay Line"] > 45.0
    assert conventional["distribution"]["Controller"] > 40.0
    assert proposed["distribution"]["Calibration MUX"] > proposed["distribution"]["Controller"]

"""Benchmark: adaptive confidence-bounded Monte-Carlo versus the fixed budget.

The adaptive engine's reason to exist is budget: a cell whose yield is
pinned should not burn the same 1000 samples as a cell teetering at a
corner.  The acceptance workload is the high-yield ``fig50_51_mc`` cell
(proposed scheme, fast corner, 100 MHz -- linearity yield 1.0): at a 2 %
confidence-interval half-width the adaptive run must spend **less than
25 % of the fixed 1000-instance budget** (a >= 4x sample-budget
reduction), stop on precision, and produce an estimate the fixed run's
answer falls inside the confidence interval of.

A second measurement covers the opposite regime: the marginal
slow-corner proposed cell must *keep* sampling (spending more than the
high-yield cell) -- the adaptive budget concentrates where the
uncertainty is, it does not starve hard cells.

When ``BENCH_ADAPTIVE_MC_JSON`` is set, the measurements are written
there so CI can archive the perf trajectory (the ``BENCH_adaptive_mc``
artifact).
"""

from __future__ import annotations

import json
import os
import time

from repro.core.design import DesignSpec
from repro.core.yield_analysis import adaptive_linearity_yield, linearity_yield
from repro.experiments.figure50_51_mc import (
    DNL_LIMIT_LSB,
    ERROR_LIMIT_FRACTION,
    INL_LIMIT_LSB,
    NUM_INSTANCES,
)
from repro.technology.corners import OperatingConditions
from repro.technology.library import intel32_like_library
from repro.technology.variation import VariationModel

PRECISION = 0.02
SEED = 2012
FREQUENCY_MHZ = 100.0


def _cell_kwargs(corner: OperatingConditions) -> dict:
    return dict(
        spec=DesignSpec(clock_frequency_mhz=FREQUENCY_MHZ, resolution_bits=6),
        conditions=corner,
        variation=VariationModel(
            random_sigma=0.04, gradient_peak=0.015, seed=SEED
        ),
        dnl_limit_lsb=DNL_LIMIT_LSB,
        inl_limit_lsb=INL_LIMIT_LSB,
        error_limit_fraction=ERROR_LIMIT_FRACTION,
        library=intel32_like_library(),
    )


def test_bench_adaptive_budget_reduction_on_a_high_yield_cell(bench_provenance):
    # The fixed reference: the stock fig50_51_mc budget of 1000 instances.
    start = time.perf_counter()
    fixed = linearity_yield(
        "proposed",
        num_instances=NUM_INSTANCES,
        **_cell_kwargs(OperatingConditions.fast()),
    )
    fixed_seconds = time.perf_counter() - start

    start = time.perf_counter()
    adaptive = adaptive_linearity_yield(
        "proposed",
        precision=PRECISION,
        max_instances=NUM_INSTANCES,
        **_cell_kwargs(OperatingConditions.fast()),
    )
    adaptive_seconds = time.perf_counter() - start

    # The opposite regime: the marginal slow-corner cell keeps drawing.
    marginal = adaptive_linearity_yield(
        "proposed",
        precision=PRECISION,
        max_instances=NUM_INSTANCES,
        **_cell_kwargs(OperatingConditions.slow()),
    )

    budget_fraction = adaptive.samples / NUM_INSTANCES
    report = {
        "workload": (
            "fig50_51_mc cell: proposed scheme, fast corner, "
            f"{FREQUENCY_MHZ:.0f} MHz, precision {PRECISION}"
        ),
        "fixed_instances": NUM_INSTANCES,
        "fixed_seconds": fixed_seconds,
        "fixed_yield": fixed.linearity_yield,
        "adaptive_samples": adaptive.samples,
        "adaptive_seconds": adaptive_seconds,
        "adaptive_yield": adaptive.yield_estimate,
        "adaptive_ci": [adaptive.lower, adaptive.upper],
        "adaptive_stop_reason": adaptive.stop_reason,
        "budget_fraction": budget_fraction,
        "budget_reduction_x": NUM_INSTANCES / adaptive.samples,
        "marginal_cell_samples": marginal.samples,
        "marginal_cell_yield": marginal.yield_estimate,
        "provenance": bench_provenance,
    }
    report_path = os.environ.get("BENCH_ADAPTIVE_MC_JSON")
    if report_path:
        with open(report_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)

    # The headline gate: < 25 % of the fixed budget (>= 4x reduction).
    assert adaptive.stop_reason == "precision", report
    assert budget_fraction < 0.25, report

    # Statistical sanity: the tight interval really brackets the answer
    # the full fixed budget converges to.
    assert adaptive.half_width <= PRECISION, report
    assert adaptive.lower <= fixed.linearity_yield <= adaptive.upper, report

    # The saved budget is concentration, not starvation: the marginal
    # slow-corner cell spends strictly more than the pinned fast cell.
    assert marginal.samples > adaptive.samples, report

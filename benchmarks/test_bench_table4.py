"""Benchmark: regenerate Table 4 (preliminary scheme comparison)."""

from repro.experiments.table4 import run as run_table4


def test_bench_table4(benchmark):
    result = benchmark(run_table4)
    # Paper Table 4: proposed has the simpler cell, better linearity and
    # faster calibration; it pays with the mapper and the extra multiplexer.
    assert result.data["proposed_wins_linearity"]
    assert result.data["proposed_wins_calibration_time"]
    assert result.data["proposed_lock_cycles"] < result.data["conventional_lock_cycles"]
    assert (
        result.data["proposed_max_error_fraction"]
        < result.data["conventional_max_error_fraction"]
    )

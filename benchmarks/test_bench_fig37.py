"""Benchmark: regenerate Figure 37 (conventional controller locking)."""

from repro.experiments.figure37 import run as run_fig37


def test_bench_fig37(benchmark):
    result = benchmark(run_fig37)
    per_corner = result.data["per_corner"]
    # The DLL locks where tuning range allows (fast/typical); at the deep
    # slow corner the all-minimum line already overshoots the period.
    assert per_corner["fast"]["locked"]
    assert per_corner["typical"]["locked"]
    assert per_corner["fast"]["shift_steps"] > per_corner["typical"]["shift_steps"]
    assert abs(per_corner["typical"]["residual_error_ps"]) < 200.0
    assert per_corner["slow"]["residual_error_ps"] < 300.0

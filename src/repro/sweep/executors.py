"""Pluggable sweep executors: how cache-miss cells actually get computed.

The orchestrator (:mod:`repro.sweep.orchestrator`) decides *which* cells
need computing (everything the cache cannot answer) and *what* happens to
each payload (canonical-JSON normalization, cache stores, progress
accounting).  This module owns the *how*: an :class:`Executor` receives the
missing cells as index-tagged :class:`WorkItem` objects and streams back
:class:`CellResult` objects **in completion order** -- the orchestrator
re-assembles cell order, so a slow cell never head-of-line-blocks the
bookkeeping (or the progress stream) of fast ones.

Three executors ship, selected by name through
``SweepConfig(executor=...)`` / the CLI's ``--executor``:

* ``serial`` -- the plain in-process loop.  No pool start-up cost, trivial
  to debug; what ``sweep=None`` experiment runs use.
* ``process-pool`` -- a ``multiprocessing`` pool fed through
  ``imap_unordered`` with a cost-aware chunk size
  (:func:`pool_chunksize`): one box, all cores, results surface the moment
  any worker finishes.
* ``shared-cache`` -- multi-process *and* multi-host: the content-addressed
  :class:`~repro.sweep.cache.ResultCache` is the coordination point.
  Workers claim cells idempotently via atomic claim files
  (:meth:`~repro.sweep.cache.ResultCache.try_claim`), compute what they
  win, store before releasing, and drain peers' finished cells straight
  from the cache.  N independent invocations pointed at one cache
  directory cooperatively drain one grid; a crashed worker loses at most
  its in-flight cells, whose claims expire and are stolen.

Every executor computes cells as pure functions of their parameter dicts,
so all of them -- and any interleaving of cooperating workers -- produce
bit-identical payloads (gated in ``benchmarks/test_bench_distributed_sweep.py``).

Worker entry points (the cell function handed to an executor) must be
module-level picklable, exactly as for :func:`~repro.sweep.orchestrator.sweep_map`
-- the ``cache-safety`` lint rule enforces this at rest.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import platform
import time
from collections import deque
from dataclasses import dataclass
from multiprocessing import pool
from multiprocessing.context import BaseContext
from typing import Any, Callable, Iterator, Protocol, Sequence

from repro.sweep.cache import MISS, ResultCache, canonical_json

__all__ = [
    "EXECUTOR_NAMES",
    "CellResult",
    "Executor",
    "ProcessPoolExecutor",
    "SerialExecutor",
    "SharedCacheExecutor",
    "WorkItem",
    "make_executor",
    "pool_chunksize",
]

#: One sweep cell: a JSON-scalar parameter dict.
CellParams = dict[str, Any]
#: What a cell function returns: a JSON-serializable payload dict.
CellPayload = dict[str, Any]
#: The module-level picklable function computing one cell.
CellFunction = Callable[[CellParams], CellPayload]

#: The executor names ``SweepConfig`` / ``--executor`` accept.
EXECUTOR_NAMES = ("serial", "process-pool", "shared-cache")

#: Provenance labels on :class:`CellResult`.
COMPUTED = "computed"  #: raw payload; the orchestrator normalizes + stores it
STORED = "stored"  #: normalized and already stored by the executor itself
FROM_CACHE = "cache"  #: normalized payload drained from a cooperating worker


@dataclass(frozen=True)
class WorkItem:
    """One missing cell: its position in the sweep, parameters and key.

    Attributes:
        index: the cell's position in the orchestrator's cell list --
            results stream back unordered, so every item carries its slot.
        params: the cell's JSON-scalar parameter dict.
        key: the cell's content address in the result cache
            (:func:`~repro.sweep.cache.cell_key`).
    """

    index: int
    params: CellParams
    key: str


@dataclass(frozen=True)
class CellResult:
    """One finished cell, tagged with where its payload came from.

    Attributes:
        index: the originating :class:`WorkItem` index.
        payload: the cell payload.  Raw (straight from the cell function)
            when ``provenance`` is ``"computed"``; already canonical-JSON
            normalized for ``"stored"`` and ``"cache"``.
        provenance: ``"computed"`` (this executor ran the cell; the
            orchestrator still normalizes and stores it), ``"stored"``
            (the executor normalized and stored it itself, as the
            shared-cache executor must before releasing a claim) or
            ``"cache"`` (drained from a cooperating worker's store).
    """

    index: int
    payload: Any
    provenance: str


class Executor(Protocol):
    """The contract the orchestrator programs against.

    ``run_missing`` receives the cache-miss cells and yields one
    :class:`CellResult` per item **in completion order**; the caller owns
    re-ordering.  ``close`` shuts resources down gracefully (in-flight
    work finishes); ``abort`` tears them down immediately (in-flight work
    is killed) -- the distinction the orchestrator's context-manager exit
    vs. explicit :meth:`~repro.sweep.orchestrator.SweepOrchestrator.abort`
    relies on.
    """

    name: str

    def run_missing(
        self,
        func: CellFunction,
        items: Sequence[WorkItem],
        *,
        experiment_id: str,
    ) -> Iterator[CellResult]: ...  # pragma: no cover - protocol

    def close(self) -> None: ...  # pragma: no cover - protocol

    def abort(self) -> None: ...  # pragma: no cover - protocol


def pool_chunksize(num_items: int, workers: int) -> int:
    """Cost-aware chunk size for pool dispatch (replaces ``chunksize=1``).

    The cost model: a sweep cell is an expensive vectorized computation
    (milliseconds to minutes), while dispatching one work item over the
    pool's pipe costs well under a millisecond.  Chunking therefore buys
    little until the grid dwarfs the worker count -- and it actively hurts
    balance near the end of a sweep, where a chunk holding a straggler
    pins its chunk-mates behind it.  So: chunks of 1 until there are more
    than four waves of work per worker, then grow proportionally, capped
    at 8 so the worst-case head-of-line blocking inside one chunk stays
    bounded regardless of grid size.
    """
    if num_items <= 0:
        return 1
    return max(1, min(num_items // (max(1, workers) * 4), 8))


def _call_indexed(
    item: tuple[CellFunction, int, CellParams],
) -> tuple[int, CellPayload]:
    """Top-level pool target: run one cell, echo its index back.

    Lives at module level so it pickles by reference into worker
    processes; the index tag is what lets ``imap_unordered`` return
    results in completion order without losing their cell slots.
    """
    func, index, params = item
    return index, func(params)


class SerialExecutor:
    """The in-process reference executor: one cell at a time, in order."""

    name = "serial"

    def run_missing(
        self,
        func: CellFunction,
        items: Sequence[WorkItem],
        *,
        experiment_id: str,
    ) -> Iterator[CellResult]:
        for item in items:
            yield CellResult(item.index, func(item.params), COMPUTED)

    def close(self) -> None:
        """Nothing to shut down."""

    def abort(self) -> None:
        """Nothing to tear down."""


class ProcessPoolExecutor:
    """One box, all cores: a ``multiprocessing`` pool fed unordered.

    Work items go out index-tagged through ``imap_unordered`` with the
    cost-aware :func:`pool_chunksize`, so results surface the moment any
    worker finishes and a straggler cell only ever delays itself (plus at
    most its chunk-mates) -- not the collection of every cell queued
    behind it.  The pool is created lazily on first dispatch and reused
    across calls (and therefore across experiments in one CLI run).
    """

    name = "process-pool"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._pool: pool.Pool | None = None

    def run_missing(
        self,
        func: CellFunction,
        items: Sequence[WorkItem],
        *,
        experiment_id: str,
    ) -> Iterator[CellResult]:
        if self.workers == 1 or len(items) == 1:
            # A pool cannot beat the in-process loop here; skip its
            # start-up cost (and keep single-cell dispatch debuggable).
            for item in items:
                yield CellResult(item.index, func(item.params), COMPUTED)
            return
        work = [(func, item.index, item.params) for item in items]
        chunksize = pool_chunksize(len(work), self.workers)
        for index, payload in self._pool_instance().imap_unordered(
            _call_indexed, work, chunksize=chunksize
        ):
            yield CellResult(index, payload, COMPUTED)

    def _pool_instance(self) -> pool.Pool:
        if self._pool is None:
            # Prefer fork where available (instant start-up, inherits the
            # already-imported numpy/repro stack); fall back to the
            # platform default elsewhere -- cell functions are module-level
            # and cells are plain dicts, so both pickle fine.
            context: BaseContext
            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            else:
                context = multiprocessing.get_context()
            self._pool = context.Pool(processes=self.workers)
        return self._pool

    def close(self) -> None:
        """Graceful shutdown: outstanding work finishes, then workers exit."""
        if self._pool is not None:
            self._pool.close()
            self._pool.join()
            self._pool = None

    def abort(self) -> None:
        """Immediate teardown: in-flight cells are killed mid-computation."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None


class SharedCacheExecutor:
    """Cooperating workers draining one grid through one result cache.

    Each invocation walks the missing cells in rounds.  Per cell it
    (1) checks the cache -- a cooperating worker may have finished it,
    (2) otherwise tries to claim it; a won claim is re-checked against the
    cache (a peer may have stored and released since the miss) and only a
    still-missing cell is computed, normalized and stored by *this*
    worker before the claim is released,
    (3) otherwise (someone else holds a fresh claim) re-queues the cell
    for a later round.  A round that makes no progress sleeps
    ``poll_interval_s`` before re-polling, so blocked workers cost almost
    nothing while a peer grinds through a long cell.

    Crash safety is inherited from the claim protocol
    (:meth:`~repro.sweep.cache.ResultCache.try_claim`): a dead worker's
    claims expire (immediately when its pid is provably gone on this host,
    after ``claim_ttl_s`` otherwise) and its cells are stolen; the store
    happens *before* the release, so a released claim always means the
    payload is readable.  Everything else -- bit-identity, idempotence --
    follows from cells being pure functions of their parameters.
    """

    name = "shared-cache"

    def __init__(
        self,
        cache: ResultCache,
        *,
        claim_ttl_s: float = 900.0,
        poll_interval_s: float = 0.05,
    ) -> None:
        if claim_ttl_s <= 0.0:
            raise ValueError("claim_ttl_s must be > 0")
        if poll_interval_s <= 0.0:
            raise ValueError("poll_interval_s must be > 0")
        self.cache = cache
        self.claim_ttl_s = claim_ttl_s
        self.poll_interval_s = poll_interval_s
        #: Owner token on this worker's claims; host+pid is unique among
        #: live cooperating workers (and is how peers detect our death).
        self.owner = f"{platform.node()}:{os.getpid()}"
        #: Cells this executor computed itself vs. drained from peers.
        self.claimed_count = 0
        self.drained_count = 0

    def run_missing(
        self,
        func: CellFunction,
        items: Sequence[WorkItem],
        *,
        experiment_id: str,
    ) -> Iterator[CellResult]:
        pending = deque(items)
        while pending:
            progressed = False
            for _ in range(len(pending)):
                item = pending.popleft()
                cached = self.cache.load(experiment_id, item.key)
                if cached is not MISS:
                    self.drained_count += 1
                    progressed = True
                    yield CellResult(item.index, cached, FROM_CACHE)
                    continue
                if self.cache.try_claim(
                    experiment_id,
                    item.key,
                    owner=self.owner,
                    ttl_seconds=self.claim_ttl_s,
                ):
                    try:
                        # Re-check under the claim: a peer may have stored
                        # the cell between our miss above and its release
                        # (stores happen before releases, so a post-claim
                        # load is authoritative).
                        cached = self.cache.load(experiment_id, item.key)
                        if cached is not MISS:
                            self.drained_count += 1
                            progressed = True
                            yield CellResult(item.index, cached, FROM_CACHE)
                            continue
                        payload = json.loads(canonical_json(func(item.params)))
                        self.cache.store(
                            experiment_id, item.key, payload, params=item.params
                        )
                    finally:
                        self.cache.release_claim(
                            experiment_id, item.key, owner=self.owner
                        )
                    self.claimed_count += 1
                    progressed = True
                    yield CellResult(item.index, payload, STORED)
                else:
                    pending.append(item)
            if pending and not progressed:
                time.sleep(self.poll_interval_s)

    def close(self) -> None:
        """Nothing held between calls; claims are released per cell."""

    def abort(self) -> None:
        """Nothing to tear down; unfinished claims expire on their own."""


def make_executor(
    name: str,
    *,
    workers: int,
    cache: ResultCache | None,
    claim_ttl_s: float = 900.0,
    poll_interval_s: float = 0.05,
) -> Executor:
    """Construct a named executor (the ``SweepConfig`` -> executor factory).

    Args:
        name: one of :data:`EXECUTOR_NAMES`.
        workers: pool width for ``process-pool``; the other executors
            compute in-process (``shared-cache`` scales by *invocations*,
            not threads -- point more processes at the same cache dir).
        cache: the shared result cache; required by ``shared-cache``.
        claim_ttl_s: age after which a ``shared-cache`` claim may be stolen.
        poll_interval_s: sleep between no-progress polling rounds of
            ``shared-cache``.
    """
    if name == "serial":
        return SerialExecutor()
    if name == "process-pool":
        return ProcessPoolExecutor(workers)
    if name == "shared-cache":
        if cache is None:
            raise ValueError(
                "the shared-cache executor coordinates through the result "
                "cache; configure cache_dir"
            )
        return SharedCacheExecutor(
            cache, claim_ttl_s=claim_ttl_s, poll_interval_s=poll_interval_s
        )
    raise ValueError(
        f"unknown executor {name!r}; available: {', '.join(EXECUTOR_NAMES)}"
    )

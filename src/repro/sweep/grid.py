"""Declarative parameter grids: named axes crossed into sweep cells.

The Monte-Carlo experiments sweep small cross-products -- scheme x corner x
frequency x load scenario -- that used to live as nested ``for`` loops
inside each experiment.  :class:`ParameterGrid` lifts the cross-product into
a declarative object so the cells become first-class, independently
schedulable units: the orchestrator can fan them out across worker
processes and address each one in the result cache.

Axis values are restricted to JSON scalars (strings, numbers, booleans,
``None``) because every cell must serialize canonically into its cache key;
richer objects (load scenarios, variation models) are reconstructed *inside*
the cell function from these scalar coordinates.
"""

from __future__ import annotations

import itertools
from collections.abc import Iterable, Iterator
from math import prod

__all__ = ["ParameterGrid"]

#: Axis values must be JSON scalars so cells content-address canonically.
_SCALAR_TYPES = (str, int, float, bool)


class ParameterGrid:
    """The cross-product of named parameter axes, iterated as cell dicts.

    Iteration order is row-major over the axes in declaration order (the
    last axis varies fastest) -- exactly the order the equivalent nested
    ``for`` loops would visit, so a grid port preserves an experiment's
    row ordering.

    Example::

        >>> grid = ParameterGrid(scheme=("proposed", "conventional"),
        ...                      frequency_mhz=(100.0, 200.0))
        >>> len(grid)
        4
        >>> list(grid)[1]
        {'scheme': 'proposed', 'frequency_mhz': 200.0}
    """

    def __init__(self, **axes: Iterable[object]) -> None:
        if not axes:
            raise ValueError("a parameter grid needs at least one axis")
        validated: dict[str, tuple[object, ...]] = {}
        for name, values in axes.items():
            axis_values = tuple(values)
            if not axis_values:
                raise ValueError(f"axis {name!r} has no values")
            for value in axis_values:
                if value is not None and not isinstance(value, _SCALAR_TYPES):
                    raise TypeError(
                        f"axis {name!r} value {value!r} is not a JSON scalar; "
                        "reconstruct rich objects inside the cell function"
                    )
            if len(set(axis_values)) != len(axis_values):
                raise ValueError(f"axis {name!r} has duplicate values")
            validated[name] = axis_values
        self.axes = validated

    def __len__(self) -> int:
        return prod(len(values) for values in self.axes.values())

    def __iter__(self) -> Iterator[dict[str, object]]:
        names = list(self.axes)
        for combination in itertools.product(*self.axes.values()):
            yield dict(zip(names, combination))

    def cells(self, **extra: object) -> list[dict[str, object]]:
        """All cells as dicts, each extended with the ``extra`` parameters.

        The extras (typically the resolved RNG seed) become part of every
        cell's parameter dict and therefore of its cache key.
        """
        return [{**cell, **extra} for cell in self]

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        axes = ", ".join(f"{name}={values!r}" for name, values in self.axes.items())
        return f"ParameterGrid({axes})"

"""Progress/ETA streaming for long sweeps (the CLI's ``--progress``).

A hundred-fold grid that takes an hour is unusable without visibility:
which cells are done, how many came free from the cache, how fast the rest
are computing, and when the sweep will finish.  :class:`ProgressReporter`
answers all four on **stderr** (stdout stays reserved for reports and
``--json`` data), one line per update::

    sweep fig15_mc: 12/16 cells (3 hit, 9 computed), 1.8 cells/s, ETA 2.2s

Field semantics (this format is a documented contract, see
``docs/sweeps.md``):

* ``done/total`` -- cells resolved so far out of the sweep's cell count;
* ``hit`` -- cells answered by the cache (the orchestrator's own cache
  scan plus, under the shared-cache executor, cells drained from
  cooperating workers);
* ``computed`` -- cells this process actually ran;
* ``cells/s`` -- completion rate over the sweep so far (hits included:
  the number answers "how fast is this grid draining", not "how fast is
  this CPU");
* ``ETA`` -- remaining cells over that rate, or ``?`` before the first
  cell lands.

Updates are throttled to one line per ``interval_s`` so a fast (or warm)
sweep cannot flood the terminal; the final line always prints, so the
last state on screen is the true total.  Timing uses the monotonic clock
-- progress is observability, and must never touch the wall-clock-free
determinism of the cells themselves.
"""

from __future__ import annotations

import sys
import time
from typing import TextIO

__all__ = ["ProgressReporter"]


class ProgressReporter:
    """Streams ``done/total`` + hit/miss split + rate + ETA for one sweep.

    Args:
        experiment_id: label prefixed to every line.
        total: number of cells in the sweep.
        stream: where lines go; defaults to ``sys.stderr``.
        interval_s: minimum seconds between lines (the final line is
            always emitted); 0 streams every cell.
    """

    def __init__(
        self,
        experiment_id: str,
        total: int,
        *,
        stream: TextIO | None = None,
        interval_s: float = 1.0,
    ) -> None:
        if total < 0:
            raise ValueError("total must be >= 0")
        if interval_s < 0.0:
            raise ValueError("interval_s must be >= 0")
        self.experiment_id = experiment_id
        self.total = total
        self.stream = stream if stream is not None else sys.stderr
        self.interval_s = interval_s
        self.done = 0
        self.hits = 0
        self.computed = 0
        self._start = time.monotonic()
        self._last_emit: float | None = None

    def cell_done(self, *, hit: bool) -> None:
        """Record one finished cell; emit a line if the throttle allows."""
        self.done += 1
        if hit:
            self.hits += 1
        else:
            self.computed += 1
        now = time.monotonic()
        if (
            self.done >= self.total
            or self._last_emit is None
            or now - self._last_emit >= self.interval_s
        ):
            self._emit(now)

    def finish(self) -> None:
        """Emit the final line unless the last cell already did."""
        if self._last_emit is None or self.done < self.total:
            self._emit(time.monotonic())

    def _emit(self, now: float) -> None:
        elapsed = now - self._start
        if self.done > 0 and elapsed > 0.0:
            rate = self.done / elapsed
            remaining = (self.total - self.done) / rate
            tail = f"{rate:.1f} cells/s, ETA {remaining:.1f}s"
        else:
            tail = "? cells/s, ETA ?"
        print(
            f"sweep {self.experiment_id}: {self.done}/{self.total} cells "
            f"({self.hits} hit, {self.computed} computed), {tail}",
            file=self.stream,
            flush=True,
        )
        self._last_emit = now

"""Worker-pool orchestration of sweep cells with cache memoization.

The orchestrator turns a list of sweep cells -- JSON-scalar parameter dicts
plus a module-level cell function -- into payloads, with two accelerations
layered transparently on top of the plain serial loop:

* **Memoization** -- when a :class:`~repro.sweep.cache.ResultCache` is
  configured, each cell is looked up by its content address first and only
  misses are computed (then stored for the next run).
* **Fan-out** -- cache misses are dispatched to a ``multiprocessing`` pool
  when more than one worker is configured.  Cells are pure functions of
  their parameters (every RNG is seeded from the cell dict), so the fan-out
  is bit-deterministic: serial, parallel, cold and warm runs all produce
  identical payloads.

Payload determinism is enforced structurally: every computed payload is
normalized through one canonical JSON round trip before it is returned or
stored, so a payload that came out of a worker, out of the serial loop or
out of the cache is byte-for-byte the same object tree.
"""

from __future__ import annotations

import json
import multiprocessing
from dataclasses import dataclass
from multiprocessing import pool
from multiprocessing.context import BaseContext
from pathlib import Path
from typing import Any, Callable, Iterable

from repro.sweep.cache import MISS, ResultCache, canonical_json, cell_key

__all__ = ["SweepConfig", "SweepOrchestrator", "sweep_map"]

#: One sweep cell: a JSON-scalar parameter dict.
CellParams = dict[str, Any]
#: What a cell function returns: a JSON-serializable payload dict.
CellPayload = dict[str, Any]


def _call_cell(
    item: tuple[Callable[[CellParams], CellPayload], CellParams],
) -> CellPayload:
    """Top-level pool target: unpack (function, params) and invoke.

    Lives at module level so it pickles by reference into worker processes.
    """
    func, params = item
    return func(params)


@dataclass(frozen=True)
class SweepConfig:
    """How a sweep should execute.

    Attributes:
        workers: worker processes for cache misses; 1 computes in-process.
        cache_dir: root of the on-disk result cache; ``None`` disables
            memoization.
    """

    workers: int = 1
    cache_dir: str | Path | None = None

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")


class SweepOrchestrator:
    """Executes sweep cells through one shared pool and one shared cache.

    The pool is created lazily on the first parallel dispatch and reused
    across :meth:`map_cells` calls (and therefore across experiments within
    one CLI invocation), so per-experiment grids do not pay repeated pool
    start-up costs.  Use as a context manager, or call :meth:`close`.
    """

    def __init__(self, config: SweepConfig | None = None) -> None:
        self.config = config or SweepConfig()
        self.cache = (
            ResultCache(self.config.cache_dir) if self.config.cache_dir else None
        )
        self.hits = 0
        self.misses = 0
        self._pool: pool.Pool | None = None

    def map_cells(
        self,
        func: Callable[[CellParams], CellPayload],
        cells: Iterable[CellParams],
        *,
        experiment_id: str,
    ) -> list[CellPayload]:
        """Payloads for all cells, in cell order.

        Args:
            func: module-level (picklable) cell function mapping one
                parameter dict to a JSON-serializable payload.
            cells: parameter dicts; each must canonicalize to JSON (see
                :func:`~repro.sweep.cache.cell_key`).
            experiment_id: namespace for the cache keys.
        """
        cells = [dict(cell) for cell in cells]
        keys = [cell_key(experiment_id, cell) for cell in cells]
        payloads: list[Any] = [None] * len(cells)
        missing: list[int] = []
        for index, key in enumerate(keys):
            cached = (
                self.cache.load(experiment_id, key) if self.cache is not None else MISS
            )
            if cached is not MISS:
                payloads[index] = cached
                self.hits += 1
            else:
                missing.append(index)
                self.misses += 1
        if missing:
            work = [(func, cells[index]) for index in missing]
            if self.config.workers > 1 and len(missing) > 1:
                computed = self._pool_instance().map(_call_cell, work, chunksize=1)
            else:
                computed = [_call_cell(item) for item in work]
            for index, raw in zip(missing, computed):
                # One canonical round trip makes fresh payloads
                # indistinguishable from cached ones (bit-identical floats,
                # string keys, no numpy types).
                payload = json.loads(canonical_json(raw))
                if self.cache is not None:
                    self.cache.store(
                        experiment_id, keys[index], payload, params=cells[index]
                    )
                payloads[index] = payload
        return payloads

    def _pool_instance(self) -> pool.Pool:
        if self._pool is None:
            # Prefer fork where available (instant start-up, inherits the
            # already-imported numpy/repro stack); fall back to the
            # platform default elsewhere -- cell functions are module-level
            # and cells are plain dicts, so both pickle fine.
            context: BaseContext
            if "fork" in multiprocessing.get_all_start_methods():
                context = multiprocessing.get_context("fork")
            else:
                context = multiprocessing.get_context()
            self._pool = context.Pool(processes=self.config.workers)
        return self._pool

    def close(self) -> None:
        """Shut the worker pool down (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "SweepOrchestrator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def sweep_map(
    func: Callable[[CellParams], CellPayload],
    cells: Iterable[CellParams],
    *,
    experiment_id: str,
    sweep: SweepOrchestrator | None = None,
) -> list[CellPayload]:
    """Run cells through an orchestrator, or serially when none is given.

    This is the entry point the experiments call: with ``sweep=None`` (the
    plain ``run()`` path) the cells execute serially in-process with no
    cache, but still through the same normalization, so the payloads are
    bit-identical to an orchestrated run.
    """
    if sweep is not None:
        return sweep.map_cells(func, cells, experiment_id=experiment_id)
    with SweepOrchestrator() as transient:
        return transient.map_cells(func, cells, experiment_id=experiment_id)

"""Orchestration of sweep cells: cache scan, executor dispatch, progress.

The orchestrator turns a list of sweep cells -- JSON-scalar parameter dicts
plus a module-level cell function -- into payloads, with three
accelerations layered transparently on top of the plain serial loop:

* **Memoization** -- when a :class:`~repro.sweep.cache.ResultCache` is
  configured, each cell is looked up by its content address first and only
  misses are computed (then stored for the next run).
* **Fan-out** -- cache misses are handed to a pluggable
  :class:`~repro.sweep.executors.Executor` (``serial``, ``process-pool``
  or ``shared-cache``; see :mod:`repro.sweep.executors`).  Cells are pure
  functions of their parameters (every RNG is seeded from the cell dict),
  so every executor -- and any interleaving of cooperating workers -- is
  bit-deterministic: all of them produce identical payloads.
* **Progress** -- with ``SweepConfig(progress=True)`` (the CLI's
  ``--progress``), a :class:`~repro.sweep.progress.ProgressReporter`
  streams cells done/total, the hit/computed split, cells/sec and an ETA
  to stderr as results land.

Payload determinism is enforced structurally: every computed payload is
normalized through one canonical JSON round trip before it is returned or
stored, so a payload that came out of a worker, out of the serial loop or
out of the cache is byte-for-byte the same object tree.

Executors stream results **in completion order** (a straggler cell no
longer blocks collection of the cells behind it); the orchestrator slots
each result back by its index, so :meth:`SweepOrchestrator.map_cells`
still returns payloads in cell order.

Resumability is a contract, not an accident: a killed sweep restarted
against the same cache recomputes zero completed cells, because every
payload is stored the moment it exists (by the orchestrator, or -- under
the shared-cache executor -- by the worker itself before it releases the
cell's claim).  ``tests/test_sweep_executors.py`` kills a mid-grid sweep
with SIGKILL and asserts exactly this.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Iterable, TextIO

from repro.sweep.cache import MISS, ResultCache, canonical_json, cell_key
from repro.sweep.executors import (
    COMPUTED,
    EXECUTOR_NAMES,
    FROM_CACHE,
    Executor,
    WorkItem,
    make_executor,
)
from repro.sweep.progress import ProgressReporter

__all__ = ["SweepConfig", "SweepOrchestrator", "sweep_map"]

#: One sweep cell: a JSON-scalar parameter dict.
CellParams = dict[str, Any]
#: What a cell function returns: a JSON-serializable payload dict.
CellPayload = dict[str, Any]


@dataclass(frozen=True)
class SweepConfig:
    """How a sweep should execute.

    Attributes:
        workers: worker processes for the ``process-pool`` executor; 1
            computes in-process.
        cache_dir: root of the on-disk result cache; ``None`` disables
            memoization (and rules out the ``shared-cache`` executor).
        executor: executor name (see
            :data:`~repro.sweep.executors.EXECUTOR_NAMES`); ``None``
            selects automatically -- ``process-pool`` when more than one
            worker is configured, ``serial`` otherwise -- preserving the
            pre-executor behavior of ``workers``/``cache_dir`` alone.
        progress: stream per-cell progress/ETA lines (see
            :mod:`repro.sweep.progress`).
        progress_interval_s: throttle between progress lines.
        progress_stream: where progress lines go; ``None`` means stderr
            (tests inject a buffer here).
        claim_ttl_s: age after which a ``shared-cache`` claim counts as
            abandoned and may be stolen.
        poll_interval_s: sleep between no-progress polling rounds of the
            ``shared-cache`` executor.
    """

    workers: int = 1
    cache_dir: str | Path | None = None
    executor: str | None = None
    progress: bool = False
    progress_interval_s: float = 1.0
    progress_stream: TextIO | None = None
    claim_ttl_s: float = 900.0
    poll_interval_s: float = 0.05

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.executor is not None and self.executor not in EXECUTOR_NAMES:
            raise ValueError(
                f"unknown executor {self.executor!r}; available: "
                f"{', '.join(EXECUTOR_NAMES)}"
            )
        if self.executor == "shared-cache" and self.cache_dir is None:
            raise ValueError(
                "the shared-cache executor coordinates through the result "
                "cache; configure cache_dir"
            )
        if self.claim_ttl_s <= 0.0:
            raise ValueError("claim_ttl_s must be > 0")
        if self.poll_interval_s <= 0.0:
            raise ValueError("poll_interval_s must be > 0")
        if self.progress_interval_s < 0.0:
            raise ValueError("progress_interval_s must be >= 0")

    @property
    def executor_name(self) -> str:
        """The effective executor: explicit choice, or the workers-based auto."""
        if self.executor is not None:
            return self.executor
        return "process-pool" if self.workers > 1 else "serial"


class SweepOrchestrator:
    """Executes sweep cells through one shared executor and one shared cache.

    The executor is created lazily on the first dispatch and reused across
    :meth:`map_cells` calls (and therefore across experiments within one
    CLI invocation), so per-experiment grids do not pay repeated pool
    start-up costs.  Use as a context manager, or call :meth:`close`;
    :meth:`abort` is the hard stop that kills in-flight cells.
    """

    def __init__(self, config: SweepConfig | None = None) -> None:
        self.config = config or SweepConfig()
        self.cache = (
            ResultCache(self.config.cache_dir) if self.config.cache_dir else None
        )
        self.hits = 0
        self.misses = 0
        self._executor: Executor | None = None

    def map_cells(
        self,
        func: Callable[[CellParams], CellPayload],
        cells: Iterable[CellParams],
        *,
        experiment_id: str,
    ) -> list[CellPayload]:
        """Payloads for all cells, in cell order.

        Args:
            func: module-level (picklable) cell function mapping one
                parameter dict to a JSON-serializable payload.
            cells: parameter dicts; each must canonicalize to JSON (see
                :func:`~repro.sweep.cache.cell_key`).
            experiment_id: namespace for the cache keys.

        ``hits``/``misses`` count against this process's *initial* cache
        scan; a cell another shared-cache worker computes mid-sweep stays
        a miss here (it was dispatched) but reaches the progress stream as
        a hit (it cost this process nothing to obtain).
        """
        cells = [dict(cell) for cell in cells]
        keys = [cell_key(experiment_id, cell) for cell in cells]
        payloads: list[Any] = [None] * len(cells)
        progress = (
            ProgressReporter(
                experiment_id,
                len(cells),
                stream=self.config.progress_stream,
                interval_s=self.config.progress_interval_s,
            )
            if self.config.progress
            else None
        )
        missing: list[WorkItem] = []
        for index, key in enumerate(keys):
            cached = (
                self.cache.load(experiment_id, key) if self.cache is not None else MISS
            )
            if cached is not MISS:
                payloads[index] = cached
                self.hits += 1
                if progress is not None:
                    progress.cell_done(hit=True)
            else:
                missing.append(WorkItem(index, cells[index], key))
                self.misses += 1
        if missing:
            executor = self._executor_instance()
            for result in executor.run_missing(
                func, missing, experiment_id=experiment_id
            ):
                if result.provenance == COMPUTED:
                    # One canonical round trip makes fresh payloads
                    # indistinguishable from cached ones (bit-identical
                    # floats, string keys, no numpy types).
                    payload = json.loads(canonical_json(result.payload))
                    if self.cache is not None:
                        self.cache.store(
                            experiment_id,
                            keys[result.index],
                            payload,
                            params=cells[result.index],
                        )
                else:
                    # "stored" / "cache": normalized (and persisted) by the
                    # executor already.
                    payload = result.payload
                payloads[result.index] = payload
                if progress is not None:
                    progress.cell_done(hit=result.provenance == FROM_CACHE)
        if progress is not None:
            progress.finish()
        return payloads

    def _executor_instance(self) -> Executor:
        if self._executor is None:
            self._executor = make_executor(
                self.config.executor_name,
                workers=self.config.workers,
                cache=self.cache,
                claim_ttl_s=self.config.claim_ttl_s,
                poll_interval_s=self.config.poll_interval_s,
            )
        return self._executor

    def close(self) -> None:
        """Shut the executor down gracefully (idempotent).

        In-flight cells are allowed to finish -- this is the normal path
        (and the context-manager exit), so a sweep that stops early never
        truncates partial work mid-computation.  Use :meth:`abort` to kill
        in-flight cells instead.
        """
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def abort(self) -> None:
        """Tear the executor down immediately, killing in-flight cells."""
        if self._executor is not None:
            self._executor.abort()
            self._executor = None

    def __enter__(self) -> "SweepOrchestrator":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def sweep_map(
    func: Callable[[CellParams], CellPayload],
    cells: Iterable[CellParams],
    *,
    experiment_id: str,
    sweep: SweepOrchestrator | None = None,
) -> list[CellPayload]:
    """Run cells through an orchestrator, or serially when none is given.

    This is the entry point the experiments call: with ``sweep=None`` (the
    plain ``run()`` path) the cells execute serially in-process with no
    cache, but still through the same normalization, so the payloads are
    bit-identical to an orchestrated run.
    """
    if sweep is not None:
        return sweep.map_cells(func, cells, experiment_id=experiment_id)
    with SweepOrchestrator() as transient:
        return transient.map_cells(func, cells, experiment_id=experiment_id)

"""Content-addressed on-disk cache for sweep-cell results.

Every sweep cell -- one (experiment, parameter-cell) unit of work -- is a
pure function of its JSON-scalar parameters and the code that computes it,
so its result can be memoized on disk under a key that captures exactly
those inputs:

``key = sha256(experiment id + canonical parameter JSON + code fingerprint)``

The *code fingerprint* hashes every source file of the :mod:`repro` package,
so editing any module silently invalidates the whole cache (stale results
can never leak across code changes) while re-runs of unchanged code hit it.
Entries are JSON documents mirroring the runner's ``--json`` payloads; loads
validate the entry's structure and its embedded key echo, and anything
corrupted, truncated or tampered with is discarded (and deleted) so the
orchestrator transparently recomputes it.  Writes go through a temporary
file plus :func:`os.replace`, so a crashed or concurrent writer can never
leave a half-written entry behind.

Beyond memoization, the cache doubles as the **coordination point** of the
``shared-cache`` sweep executor (:mod:`repro.sweep.executors`): independent
worker processes -- possibly on different hosts sharing one filesystem --
claim cells idempotently through atomic *claim files* next to the entries
(:meth:`ResultCache.try_claim` / :meth:`ResultCache.release_claim`).  A
claim is advisory and crash-safe: losing a worker loses at most its
in-flight claims, which expire by age (or immediately, when the claiming
process is provably dead on the same host) and are then stolen by a
surviving worker through the same tmp+rename path.  Because cell payloads
are pure functions of their parameters and entry writes are atomic, a
double-compute during a claim race is wasted work, never wrong data.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import tempfile
from dataclasses import asdict, is_dataclass
from functools import lru_cache
from pathlib import Path
from typing import Any

import numpy as np

__all__ = [
    "MISS",
    "ResultCache",
    "canonical_json",
    "cell_key",
    "code_fingerprint",
    "jsonable",
]

#: Version of the on-disk entry schema; bump to invalidate old layouts.
ENTRY_FORMAT = 1


class _Miss:
    """Sentinel for a cache miss (distinct from a legitimately-null payload)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return "MISS"


#: Returned by :meth:`ResultCache.load` when no valid entry exists; using a
#: sentinel (rather than ``None``) lets cells cache null payloads.
MISS = _Miss()


def jsonable(value: Any) -> Any:
    """Recursively convert result data into JSON-serializable types.

    Numpy arrays become (nested) lists, numpy scalars become Python
    scalars, dataclasses become dicts and mapping keys are coerced to
    strings -- the same conversion the experiment runner applies to
    ``--json`` dumps, so cached cell payloads and CLI output share one
    schema.
    """
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    if is_dataclass(value) and not isinstance(value, type):
        return jsonable(asdict(value))
    if isinstance(value, dict):
        return {str(key): jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(item) for item in value]
    return value


def canonical_json(value: Any) -> str:
    """The canonical (sorted, compact) JSON text of a value.

    Canonicalization makes the text -- and therefore the content address
    derived from it -- independent of dict insertion order.
    """
    return json.dumps(jsonable(value), sort_keys=True, separators=(",", ":"))


@lru_cache(maxsize=1)
def code_fingerprint() -> str:
    """Hash of every ``repro`` source file, as one hex digest.

    File paths (relative to the package root) and contents both enter the
    hash, so renames, edits, additions and deletions all change it.  The
    result is cached for the life of the process: the sources of an
    imported package do not change under a running sweep.
    """
    import repro

    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(path.relative_to(root).as_posix().encode("utf-8"))
        digest.update(b"\x00")
        digest.update(path.read_bytes())
        digest.update(b"\x00")
    return digest.hexdigest()


def cell_key(
    experiment_id: str,
    params: dict[str, Any],
    fingerprint: str | None = None,
    backend: str | None = None,
) -> str:
    """Content address of one sweep cell.

    Args:
        experiment_id: the registered experiment the cell belongs to.
        params: the cell's full parameter dict (including the RNG seed for
            Monte-Carlo cells); must be JSON-serializable after
            :func:`jsonable` conversion.
        fingerprint: override for the code fingerprint (tests use this to
            simulate code changes); defaults to :func:`code_fingerprint`.
        backend: override for the kernel-backend name entering the key;
            defaults to the *effective* backend of the current selection
            (:func:`repro.kernels.active_backend_name`, after any numba ->
            numpy fallback), so cells computed under different backends
            never collide and a fallback run shares the numpy entries it
            actually computed.
    """
    if backend is None:
        from repro.kernels import active_backend_name

        backend = active_backend_name()
    document = {
        "experiment": experiment_id,
        "params": jsonable(params),
        "fingerprint": fingerprint if fingerprint is not None else code_fingerprint(),
        "backend": backend,
    }
    return hashlib.sha256(canonical_json(document).encode("utf-8")).hexdigest()


def _payload_digest(payload: Any) -> str:
    """Integrity checksum of a stored payload (canonical-JSON sha256)."""
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


class ResultCache:
    """On-disk store of sweep-cell payloads, one JSON file per cell.

    Layout: ``<root>/<experiment_id>/<key>.json`` where ``key`` is the
    cell's content address (:func:`cell_key`).  Each file holds the entry
    schema version, the experiment id, the key echo, the (jsonable) cell
    parameters for human inspection, and the payload itself.
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def entry_path(self, experiment_id: str, key: str) -> Path:
        """Where the entry for a cell key lives (whether or not it exists)."""
        return self.root / experiment_id / f"{key}.json"

    def load(self, experiment_id: str, key: str) -> Any:
        """The cached payload for a key, or the :data:`MISS` sentinel.

        A present-but-invalid entry (unreadable, corrupt JSON, wrong schema
        version, mismatched key echo, missing payload, payload checksum
        mismatch) counts as a miss and is deleted so the recomputed result
        can take its place.
        """
        path = self.entry_path(experiment_id, key)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError:
            return MISS
        except ValueError:  # undecodable bytes: corruption, not a miss
            self._discard(path)
            return MISS
        try:
            entry = json.loads(text)
        except ValueError:
            self._discard(path)
            return MISS
        if (
            not isinstance(entry, dict)
            or entry.get("format") != ENTRY_FORMAT
            or entry.get("experiment") != experiment_id
            or entry.get("key") != key
            or "payload" not in entry
            or entry.get("checksum") != _payload_digest(entry["payload"])
        ):
            self._discard(path)
            return MISS
        return entry["payload"]

    def store(
        self,
        experiment_id: str,
        key: str,
        payload: Any,
        params: dict[str, Any] | None = None,
    ) -> None:
        """Atomically write a payload under its content address."""
        path = self.entry_path(experiment_id, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        entry = {
            "format": ENTRY_FORMAT,
            "experiment": experiment_id,
            "key": key,
            # The fingerprint is part of the content address; recording it
            # here too lets prune() recognize entries stranded by code
            # edits (their keys can never be recomputed).
            "fingerprint": code_fingerprint(),
            "params": jsonable(params) if params is not None else None,
            "payload": payload,
            "checksum": _payload_digest(payload),
        }
        handle = tempfile.NamedTemporaryFile(
            mode="w",
            encoding="utf-8",
            dir=path.parent,
            prefix=f".{key}.",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                json.dump(entry, handle, sort_keys=True)
            os.replace(handle.name, path)
        except BaseException:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise

    def claim_path(self, experiment_id: str, key: str) -> Path:
        """Where the claim file for a cell key lives (whether or not it exists)."""
        return self.root / experiment_id / f"{key}.claim"

    def try_claim(
        self,
        experiment_id: str,
        key: str,
        *,
        owner: str,
        ttl_seconds: float = 900.0,
    ) -> bool:
        """Attempt to claim a cell for computation; ``True`` on success.

        The claim protocol is what lets N independent workers drain one
        grid against a shared cache without a coordinator:

        * Acquisition is an atomic create-if-absent (:func:`os.link` from a
          private temporary file), so exactly one of any number of
          concurrent claimants wins a free cell.
        * A claim held by someone else blocks -- unless it is *stale*: its
          file age exceeds ``ttl_seconds``, its holder is a provably-dead
          process on this host, or its content is unreadable.  Stale claims
          are stolen by atomically replacing the file (tmp+rename) and then
          re-reading it: concurrent stealers all replace, but only the one
          whose ``owner`` token survives in the file proceeds.

        Claims are advisory.  The worst a race can cost is a duplicate
        computation of a pure cell -- entry writes are atomic and
        content-addressed, so correctness never depends on mutual
        exclusion, only throughput does.
        """
        path = self.claim_path(experiment_id, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp_name = self._claim_write_atomic(path, owner)
        try:
            try:
                os.link(tmp_name, path)
                return True
            except FileExistsError:
                pass
            if not self._claim_is_stale(path, ttl_seconds):
                return False
            # Steal: tmp+rename replaces atomically; last replacer wins and
            # every loser sees the winner's token on the re-read below.
            os.replace(tmp_name, path)
            tmp_name = None
        finally:
            if tmp_name is not None:
                try:
                    os.unlink(tmp_name)
                except OSError:  # pragma: no cover - already gone
                    pass
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return False
        return isinstance(entry, dict) and entry.get("owner") == owner

    def release_claim(self, experiment_id: str, key: str, *, owner: str) -> None:
        """Drop a claim this owner holds (a stolen/foreign claim is left alone)."""
        path = self.claim_path(experiment_id, key)
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if isinstance(entry, dict) and entry.get("owner") == owner:
            self._discard(path)

    @staticmethod
    def _claim_write_atomic(path: Path, owner: str) -> str:
        """Write a claim document to a private temporary file, return its name.

        All claim-file content passes through here before an atomic
        :func:`os.link` (acquire) or :func:`os.replace` (steal) publishes
        it -- a claim is never written in place, so readers can never see a
        torn one.  The document records the owner token plus the host and
        pid of the claimant, which is what lets :meth:`_claim_is_stale`
        expire claims of crashed processes immediately instead of waiting
        out the TTL.
        """
        handle = tempfile.NamedTemporaryFile(
            mode="w",
            encoding="utf-8",
            dir=path.parent,
            prefix=f".{path.stem}.",
            suffix=".tmp",
            delete=False,
        )
        with handle:
            json.dump(
                {"owner": owner, "host": platform.node(), "pid": os.getpid()},
                handle,
            )
        return handle.name

    def _claim_is_stale(self, path: Path, ttl_seconds: float) -> bool:
        """Whether an existing claim no longer protects its cell."""
        try:
            age_reference = path.stat().st_mtime
        except OSError:
            return True  # released between our link attempt and now
        try:
            entry = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return True  # unreadable claims protect nothing
        if not isinstance(entry, dict):
            return True
        pid = entry.get("pid")
        if (
            entry.get("host") == platform.node()
            and isinstance(pid, int)
            and not self._pid_alive(pid)
        ):
            return True
        # Age against the *filesystem's* clock, not this process's wall
        # clock: claim mtimes are stamped by whichever host wrote them, so
        # comparing them to a freshly-stamped local mtime is immune to
        # clock skew between cooperating hosts (and keeps cell results
        # independent of any wall-clock read).
        return self._filesystem_now(path.parent) - age_reference > ttl_seconds

    @staticmethod
    def _pid_alive(pid: int) -> bool:
        if pid <= 0:
            return False
        try:
            os.kill(pid, 0)
        except ProcessLookupError:
            return False
        except OSError:  # e.g. EPERM: alive but owned by someone else
            return True
        return True

    @staticmethod
    def _filesystem_now(directory: Path) -> float:
        """The filesystem's current time, read off a throwaway file's mtime."""
        handle = tempfile.NamedTemporaryFile(dir=directory, suffix=".now")
        with handle:
            return os.fstat(handle.fileno()).st_mtime

    def prune(self, fingerprint: str | None = None) -> int:
        """Delete entries not written by the given code fingerprint.

        Keys embed the source fingerprint, so entries written under older
        package sources can never be hits again (unless that exact code is
        restored) -- they only accumulate.  ``prune`` reclaims them,
        returning the number of entries removed.  Defaults to keeping only
        entries matching the current :func:`code_fingerprint`.
        """
        fingerprint = (
            fingerprint if fingerprint is not None else code_fingerprint()
        )
        removed = 0
        for path in sorted(self.root.glob("*/*.json")):
            try:
                entry = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                self._discard(path)
                removed += 1
                continue
            if (
                not isinstance(entry, dict)
                or entry.get("fingerprint") != fingerprint
            ):
                self._discard(path)
                removed += 1
        return removed

    @staticmethod
    def _discard(path: Path) -> None:
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing deleters are fine
            pass

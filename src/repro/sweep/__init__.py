"""Declarative parameter sweeps: grids, orchestration and result caching.

The paper's headline numbers are statistics over parameter grids -- yield
per (scheme x corner x frequency x load) -- and the engines underneath
(:mod:`repro.core.ensemble`, :mod:`repro.simulation.batch`,
:mod:`repro.pipeline`) already vectorize *within* a cell.  This package
scales *across* cells:

* :class:`~repro.sweep.grid.ParameterGrid` -- named axes crossed into
  JSON-scalar cell dicts, in deterministic (nested-loop) order.
* :class:`~repro.sweep.cache.ResultCache` -- content-addressed on-disk
  memoization of cell payloads; keys cover the experiment id, the full
  parameter cell (seed included) and a fingerprint of the package sources,
  so code edits invalidate and warm re-runs are near-instant.
* :class:`~repro.sweep.orchestrator.SweepOrchestrator` -- scans the cache,
  hands the misses to a pluggable executor and re-assembles cell order;
  serial, parallel, cold and warm runs produce bit-identical payloads.
* :mod:`repro.sweep.executors` -- the pluggable execution strategies:
  ``serial`` (in-process loop), ``process-pool`` (one box, all cores, fed
  through ``imap_unordered`` so stragglers never head-of-line-block) and
  ``shared-cache`` (multi-process/multi-host: workers claim cells
  idempotently through atomic claim files in the result cache, so N
  independent invocations cooperatively drain one grid and a crash loses
  at most the in-flight cells).
* :class:`~repro.sweep.progress.ProgressReporter` -- the ``--progress``
  stderr stream: cells done/total, hit/computed split, cells/sec, ETA.

Experiments opt in by exposing a module-level cell function plus a grid and
routing through :func:`~repro.sweep.orchestrator.sweep_map`; the CLI flags
``--workers``, ``--cache-dir``, ``--executor`` and ``--progress`` (see
:mod:`repro.experiments.runner`) thread an orchestrator into every
sweep-enabled experiment of a run.  Resumability is a tested contract: a
killed sweep restarted against the same cache recomputes zero completed
cells (see ``docs/sweeps.md``).

Adaptive Monte-Carlo cells (:mod:`repro.mc`, the CLI's ``--precision``)
need no special handling here: the adaptive coordinates (``precision``,
``max_instances``) join the cell's parameter dict via
:meth:`ParameterGrid.cells`, so they are part of the content address --
fixed-N and adaptive results never collide, a warm adaptive re-run with
the same ``(seed, precision, cap)`` triple is bit-identical, and changing
any of the three recomputes the cell.
"""

from repro.sweep.cache import (
    MISS,
    ResultCache,
    canonical_json,
    cell_key,
    code_fingerprint,
    jsonable,
)
from repro.sweep.executors import (
    EXECUTOR_NAMES,
    CellResult,
    Executor,
    ProcessPoolExecutor,
    SerialExecutor,
    SharedCacheExecutor,
    WorkItem,
    make_executor,
    pool_chunksize,
)
from repro.sweep.grid import ParameterGrid
from repro.sweep.orchestrator import SweepConfig, SweepOrchestrator, sweep_map
from repro.sweep.progress import ProgressReporter

__all__ = [
    "EXECUTOR_NAMES",
    "MISS",
    "CellResult",
    "Executor",
    "ParameterGrid",
    "ProcessPoolExecutor",
    "ProgressReporter",
    "ResultCache",
    "SerialExecutor",
    "SharedCacheExecutor",
    "SweepConfig",
    "SweepOrchestrator",
    "WorkItem",
    "canonical_json",
    "cell_key",
    "code_fingerprint",
    "jsonable",
    "make_executor",
    "pool_chunksize",
    "sweep_map",
]

"""Voltage-regulator substrate (paper chapters 1-2).

The DPWM exists to drive a digitally controlled buck converter (paper Figure
15).  This package provides behavioural models of that application so the
delay-line DPWM can be exercised end to end, plus the background regulator
topologies the paper compares in chapter 2:

* :mod:`repro.converter.buck` -- synchronous buck power stage with exact
  piecewise-linear integration of the LC filter state.
* :mod:`repro.converter.adc` -- the windowed error ADC of the digital
  feedback loop.
* :mod:`repro.converter.delay_line_adc` -- the synthesizable delay-line
  implementation of that ADC (as in the cited digital PWM controller ICs)
  plus the no-limit-cycle DPWM/ADC resolution rule.
* :mod:`repro.converter.compensator` -- discrete PID compensator producing
  the duty command.
* :mod:`repro.converter.load` -- load profiles (static, stepped, ramp,
  pulse-train, random-burst) plus reference-step and line-transient
  scenarios for transient-response studies.
* :mod:`repro.converter.missions` -- mission profiles: seeded,
  chunk-invariant composition of the load primitives into long randomized
  workload missions.
* :mod:`repro.converter.closed_loop` -- the digitally controlled buck: ADC +
  compensator + DPWM + power stage in a cycle-by-cycle loop.
* :mod:`repro.converter.linear_regulator` -- standard / LDO / quasi-LDO
  linear regulators (paper eqs. 3-8).
* :mod:`repro.converter.switched_capacitor` -- the ideal switched-capacitor
  (charge-pump) converter of paper Figure 14.
"""

from repro.converter.adc import WindowedADC
from repro.converter.buck import BuckPowerStage, BuckParameters
from repro.converter.closed_loop import DigitallyControlledBuck, RegulationTrace
from repro.converter.compensator import PIDCompensator
from repro.converter.delay_line_adc import DelayLineADC, no_limit_cycle_condition
from repro.converter.linear_regulator import (
    LinearRegulator,
    LinearRegulatorType,
)
from repro.converter.load import (
    ConstantLoad,
    LineTransient,
    PulseTrainLoad,
    RampLoad,
    RandomBurstLoad,
    ReferenceStep,
    SteppedLoad,
)
from repro.converter.missions import (
    MissionGenerator,
    MissionProfile,
    MissionSegment,
    OffsetLoad,
    resolve_missions,
)
from repro.converter.switched_capacitor import SwitchedCapacitorConverter

__all__ = [
    "BuckParameters",
    "BuckPowerStage",
    "ConstantLoad",
    "DelayLineADC",
    "DigitallyControlledBuck",
    "LinearRegulator",
    "LinearRegulatorType",
    "LineTransient",
    "MissionGenerator",
    "MissionProfile",
    "MissionSegment",
    "OffsetLoad",
    "PIDCompensator",
    "PulseTrainLoad",
    "RampLoad",
    "RandomBurstLoad",
    "ReferenceStep",
    "RegulationTrace",
    "SteppedLoad",
    "SwitchedCapacitorConverter",
    "WindowedADC",
    "no_limit_cycle_condition",
    "resolve_missions",
]

"""Linear regulator models (paper section 2.1.1, Figures 6-9, eqs. 3-8).

Three pass-device topologies are modelled through their dropout voltage and
ground-pin current:

* **Standard (NPN Darlington)**: dropout ``2 V_BE + V_CE`` (about 1.7 V),
  very low ground-pin current.
* **LDO (single PNP)**: dropout ``V_CE`` (about 0.3 V), high ground-pin
  current (load current divided by the single transistor's gain).
* **Quasi-LDO (NPN + PNP)**: dropout ``V_BE + V_CE`` (about 1.0 V), moderate
  ground-pin current.

The models answer the questions the paper's comparison table asks: can the
regulator hold regulation for a given input/output pair, and at what
efficiency / power loss.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = ["LinearRegulatorType", "LinearRegulator"]

#: Representative junction drops (volts) used by the dropout formulas.
_VBE_V = 0.7
_VCE_SAT_V = 0.3


class LinearRegulatorType(enum.Enum):
    """Pass-device topology of a linear regulator."""

    STANDARD = "standard"
    LDO = "ldo"
    QUASI_LDO = "quasi-ldo"

    @property
    def dropout_voltage_v(self) -> float:
        """Minimum input-output differential that keeps regulation (eqs. 6-8)."""
        if self is LinearRegulatorType.STANDARD:
            return 2.0 * _VBE_V + _VCE_SAT_V
        if self is LinearRegulatorType.LDO:
            return _VCE_SAT_V
        return _VBE_V + _VCE_SAT_V

    @property
    def pass_device_gain(self) -> float:
        """Effective current gain of the pass device (sets ground-pin current)."""
        if self is LinearRegulatorType.STANDARD:
            return 3000.0
        if self is LinearRegulatorType.LDO:
            return 40.0
        return 400.0


@dataclass(frozen=True)
class LinearRegulator:
    """A linear regulator operating point.

    Attributes:
        kind: pass-device topology.
        output_voltage_v: regulated output.
        quiescent_current_a: bias current of the control circuitry.
    """

    kind: LinearRegulatorType
    output_voltage_v: float
    quiescent_current_a: float = 1e-4

    def __post_init__(self) -> None:
        if self.output_voltage_v <= 0:
            raise ValueError("output voltage must be positive")
        if self.quiescent_current_a < 0:
            raise ValueError("quiescent current must be non-negative")

    @property
    def dropout_voltage_v(self) -> float:
        return self.kind.dropout_voltage_v

    @property
    def minimum_input_voltage_v(self) -> float:
        """Lowest input voltage that keeps the output in regulation."""
        return self.output_voltage_v + self.dropout_voltage_v

    def can_regulate(self, input_voltage_v: float) -> bool:
        """Whether the regulator holds regulation from this input voltage."""
        return input_voltage_v >= self.minimum_input_voltage_v

    def ground_pin_current_a(self, load_current_a: float) -> float:
        """Ground-pin (wasted) current: load current / pass-device gain."""
        if load_current_a < 0:
            raise ValueError("load current must be non-negative")
        return load_current_a / self.kind.pass_device_gain + self.quiescent_current_a

    def efficiency(self, input_voltage_v: float, load_current_a: float) -> float:
        """Efficiency ``P_out / P_in`` (paper eqs. 3-5)."""
        if load_current_a <= 0:
            raise ValueError("load current must be positive")
        if not self.can_regulate(input_voltage_v):
            raise ValueError(
                f"{self.kind.value} regulator cannot regulate "
                f"{self.output_voltage_v} V from {input_voltage_v} V "
                f"(needs at least {self.minimum_input_voltage_v:.2f} V)"
            )
        p_out = self.output_voltage_v * load_current_a
        total_input_current = load_current_a + self.ground_pin_current_a(load_current_a)
        p_in = input_voltage_v * total_input_current
        return p_out / p_in

    def power_loss_w(self, input_voltage_v: float, load_current_a: float) -> float:
        """Internal dissipation (paper eq. 5 plus ground-pin losses)."""
        eta = self.efficiency(input_voltage_v, load_current_a)
        p_out = self.output_voltage_v * load_current_a
        return p_out * (1.0 / eta - 1.0)

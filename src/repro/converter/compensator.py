"""Discrete-time PID compensator for the digitally controlled buck.

The compensator consumes the signed error code from the windowed ADC once per
switching period and produces a duty-cycle command in [0, 1].  The integral
term carries the steady-state duty; anti-windup clamping keeps the integrator
inside the achievable duty range so large transients recover cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["PIDCompensator"]


@dataclass
class PIDCompensator:
    """Incremental PID controller operating on ADC error codes.

    Attributes:
        kp: proportional gain (duty per error code).
        ki: integral gain (duty per error code per period).
        kd: derivative gain (duty per error-code change).
        initial_duty: integrator preload, typically ``Vref / Vg``.
        min_duty / max_duty: actuator limits used for anti-windup.
    """

    kp: float = 0.001
    ki: float = 5e-5
    kd: float = 0.0
    initial_duty: float = 0.5
    min_duty: float = 0.0
    max_duty: float = 1.0
    _integral: float = field(init=False, repr=False)
    _previous_error: float = field(init=False, default=0.0, repr=False)

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_duty < self.max_duty <= 1.0:
            raise ValueError("require 0 <= min_duty < max_duty <= 1")
        if not self.min_duty <= self.initial_duty <= self.max_duty:
            raise ValueError("initial_duty must lie inside the duty limits")
        self._integral = self.initial_duty
        self._previous_error = 0.0

    def reset(self) -> None:
        """Restore the initial state (integrator preload, no error history)."""
        self._integral = self.initial_duty
        self._previous_error = 0.0

    @property
    def integral(self) -> float:
        """Current integrator value (the slowly varying duty estimate)."""
        return self._integral

    @property
    def previous_error(self) -> float:
        """Error code seen on the previous update (the derivative memory)."""
        return self._previous_error

    def update(self, error_code: int) -> float:
        """Advance one switching period and return the new duty command."""
        error = float(error_code)
        self._integral += self.ki * error
        # Anti-windup: never integrate past the achievable duty range.
        self._integral = max(self.min_duty, min(self.max_duty, self._integral))
        derivative = error - self._previous_error
        self._previous_error = error
        duty = self._integral + self.kp * error + self.kd * derivative
        return max(self.min_duty, min(self.max_duty, duty))

"""Ideal switched-capacitor (charge-pump) converter (paper Figure 14).

The paper lists the switched-capacitor regulator as the other on-chip
switching topology, with its characteristic drawbacks: the conversion ratio
is fixed by the circuit structure, regulation is weak (the output follows the
input), and loading the output away from the ideal ratio costs efficiency.
The model captures exactly those properties through the standard
output-impedance abstraction: a converter with ideal ratio ``n`` behaves as
an ideal transformer followed by an equivalent output resistance
``R_out = 1 / (f_sw * C_fly)`` (slow-switching limit).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SwitchedCapacitorConverter"]


@dataclass(frozen=True)
class SwitchedCapacitorConverter:
    """A fixed-ratio switched-capacitor converter.

    Attributes:
        conversion_ratio: ideal ``V_out / V_in`` set by the topology
            (e.g. 0.5 for the 2:1 divider of the paper's figure).
        flying_capacitance_f: total flying capacitance.
        switching_frequency_hz: switching frequency of the charge pump.
    """

    conversion_ratio: float = 0.5
    flying_capacitance_f: float = 1e-9
    switching_frequency_hz: float = 50e6

    def __post_init__(self) -> None:
        if not 0.0 < self.conversion_ratio <= 1.0:
            raise ValueError("conversion ratio must be in (0, 1]")
        if self.flying_capacitance_f <= 0:
            raise ValueError("flying capacitance must be positive")
        if self.switching_frequency_hz <= 0:
            raise ValueError("switching frequency must be positive")

    @property
    def output_resistance_ohm(self) -> float:
        """Equivalent output resistance in the slow-switching limit."""
        return 1.0 / (self.switching_frequency_hz * self.flying_capacitance_f)

    def output_voltage_v(self, input_voltage_v: float, load_current_a: float) -> float:
        """Loaded output voltage: ideal ratio minus the IR drop."""
        if input_voltage_v <= 0:
            raise ValueError("input voltage must be positive")
        if load_current_a < 0:
            raise ValueError("load current must be non-negative")
        unloaded = self.conversion_ratio * input_voltage_v
        return max(0.0, unloaded - load_current_a * self.output_resistance_ohm)

    def efficiency(self, input_voltage_v: float, load_current_a: float) -> float:
        """Efficiency = V_out / (ratio * V_in): the charge-sharing loss only."""
        if load_current_a <= 0:
            raise ValueError("load current must be positive")
        v_out = self.output_voltage_v(input_voltage_v, load_current_a)
        ideal = self.conversion_ratio * input_voltage_v
        if ideal == 0:
            return 0.0
        return v_out / ideal

    def regulation_error_v(
        self, nominal_input_v: float, actual_input_v: float, load_current_a: float
    ) -> float:
        """Output error caused by an input-voltage change (weak line regulation)."""
        nominal = self.output_voltage_v(nominal_input_v, load_current_a)
        actual = self.output_voltage_v(actual_input_v, load_current_a)
        return actual - nominal

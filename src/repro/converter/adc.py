"""The windowed error ADC of the digital feedback loop (paper Figure 15).

The digitally controlled buck compares the output voltage against the
reference and quantizes the *error* (not the absolute voltage): a small
window around zero error is digitized with a configurable LSB so the
compensator sees a signed integer error code.  Saturation at the window edges
is modelled, as is an optional zero-error dead band (the "zero-error bin"
used by real controllers to avoid limit cycling).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import numpy.typing as npt

__all__ = ["WindowedADC"]


@dataclass(frozen=True)
class WindowedADC:
    """Windowed, signed error quantizer.

    Attributes:
        lsb_v: voltage per code.
        bits: total resolution; codes span ``[-2**(bits-1), 2**(bits-1) - 1]``.
        dead_band_v: errors smaller than this report code 0.
    """

    lsb_v: float = 0.005
    bits: int = 5
    dead_band_v: float = 0.0

    def __post_init__(self) -> None:
        if self.lsb_v <= 0:
            raise ValueError("ADC LSB must be positive")
        if self.bits < 2:
            raise ValueError("ADC needs at least 2 bits")
        if self.dead_band_v < 0:
            raise ValueError("dead band must be non-negative")

    @property
    def max_code(self) -> int:
        return (1 << (self.bits - 1)) - 1

    @property
    def min_code(self) -> int:
        return -(1 << (self.bits - 1))

    @property
    def full_scale_v(self) -> float:
        """Largest positive error representable before saturation."""
        return self.max_code * self.lsb_v

    def _unclamped_code(self, reference_v: float, measured_v: float) -> int:
        """Signed code before window clamping (dead band already applied).

        Both :meth:`quantize_error` and :meth:`is_saturated` derive from this
        single quantization so the two can never disagree about dead band or
        rounding.
        """
        error = reference_v - measured_v
        if abs(error) <= self.dead_band_v:
            return 0
        return int(round(error / self.lsb_v))

    def quantize_error(self, reference_v: float, measured_v: float) -> int:
        """Quantize ``reference - measured`` into a signed error code."""
        code = self._unclamped_code(reference_v, measured_v)
        return max(self.min_code, min(self.max_code, code))

    def is_saturated(self, reference_v: float, measured_v: float) -> bool:
        """Whether the error falls outside the ADC window."""
        code = self._unclamped_code(reference_v, measured_v)
        return code > self.max_code or code < self.min_code

    def quantize_error_array(
        self, reference_v: npt.ArrayLike, measured_v: npt.ArrayLike
    ) -> npt.NDArray[np.int64]:
        """Vectorized :meth:`quantize_error` over arrays of voltages.

        Used by the batch simulation engine; element-for-element identical to
        the scalar method (``np.rint`` and Python's ``round`` both round half
        to even).
        """
        error = np.asarray(reference_v, dtype=float) - np.asarray(
            measured_v, dtype=float
        )
        codes = np.clip(
            np.rint(error / self.lsb_v).astype(np.int64), self.min_code, self.max_code
        )
        return np.where(np.abs(error) <= self.dead_band_v, 0, codes)

"""The digitally controlled buck converter (paper Figure 15).

One object wires the full loop together: every switching period the output
voltage is compared against the reference and quantized by the windowed ADC,
the PID compensator turns the error code into a duty command, the DPWM
quantizes that command into a duty word and reports the duty it can actually
produce (including the delay line's calibration and non-linearity), and the
buck power stage is advanced one period at that duty.

The DPWM can be any object exposing ``duty_word_for`` / ``duty_fraction`` /
``max_word`` (duck-typed), which lets the same loop run with the calibrated
proposed line, the calibrated conventional line, or an ideal quantizer -- the
basis of the regulation examples and of the resolution experiments (paper
eq. 12: output-voltage resolution = Vg / 2**n_DPWM).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

import numpy.typing as npt

from repro.converter.adc import WindowedADC
from repro.converter.buck import BuckParameters, BuckPowerStage
from repro.converter.compensator import PIDCompensator
from repro.converter.load import (
    ConstantLoad,
    LoadProfile,
    ReferenceProfile,
    SourceProfile,
)

__all__ = ["DutyQuantizer", "IdealDPWM", "RegulationTrace", "DigitallyControlledBuck"]


def validate_reference_profile(
    reference_profile: object, input_voltage_v: float | npt.ArrayLike
) -> None:
    """Reject reference profiles that peak above the input voltage.

    Shared by the scalar loop and the batch engine.  ``input_voltage_v`` may
    be a scalar or a per-variant array; profiles without a
    ``max_reference_v`` attribute (custom duck-typed ones) are accepted
    as-is.

    Raises:
        ValueError: if the profile's peak exceeds any input voltage.
    """
    max_reference = getattr(reference_profile, "max_reference_v", None)
    if max_reference is not None and np.any(
        np.asarray(max_reference) > np.asarray(input_voltage_v)
    ):
        raise ValueError(
            f"reference profile peaks at {max_reference} V, above the input "
            "voltage"
        )


def steady_state_tail(voltages: np.ndarray, tail_fraction: float) -> np.ndarray:
    """Validated tail slice (along axis 0) for steady-state statistics.

    Shared by the scalar :class:`RegulationTrace` and the batch engine's
    result container so the two can never diverge on validation or slicing.

    Raises:
        ValueError: if the history is empty or ``tail_fraction`` is outside
            ``(0, 1]``.
    """
    num_periods = voltages.shape[0]
    if num_periods == 0:
        raise ValueError(
            "cannot compute steady-state statistics of an empty trace; "
            "run the loop for at least one period first"
        )
    if not 0.0 < tail_fraction <= 1.0:
        raise ValueError("tail_fraction must be in (0, 1]")
    start = int(num_periods * (1.0 - tail_fraction))
    return voltages[min(start, num_periods - 1) :]


class DutyQuantizer(Protocol):
    """The interface the closed loop needs from a DPWM."""

    @property
    def max_word(self) -> int:  # pragma: no cover - protocol definition
        ...

    def duty_word_for(self, duty_fraction: float) -> int:  # pragma: no cover
        ...

    def duty_fraction(self, duty_word: int) -> float:  # pragma: no cover
        ...


@dataclass(frozen=True)
class IdealDPWM:
    """An ideal n-bit DPWM: perfect quantization, no delay-line error.

    Used as the baseline the calibrated delay-line DPWMs are compared
    against in the regulation experiments.
    """

    bits: int

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("resolution must be at least 1 bit")

    @property
    def max_word(self) -> int:
        return (1 << self.bits) - 1

    def duty_word_for(self, duty_fraction: float) -> int:
        duty_fraction = min(max(duty_fraction, 0.0), 1.0)
        return min(int(round(duty_fraction * (1 << self.bits))), self.max_word)

    def duty_fraction(self, duty_word: int) -> float:
        if not 0 <= duty_word <= self.max_word:
            raise ValueError("duty word out of range")
        return duty_word / float(1 << self.bits)

    def duty_table(self) -> np.ndarray:
        """The whole word -> duty staircase as one array (the batch engine's
        :meth:`~repro.simulation.batch.BatchQuantizer.from_quantizers` fast
        path consumes this instead of calling :meth:`duty_fraction` per
        word)."""
        return np.arange(1 << self.bits, dtype=float) / float(1 << self.bits)


@dataclass
class RegulationTrace:
    """Per-period history of a closed-loop run."""

    times_s: list[float] = field(default_factory=list)
    output_voltages_v: list[float] = field(default_factory=list)
    inductor_currents_a: list[float] = field(default_factory=list)
    duty_words: list[int] = field(default_factory=list)
    duty_fractions: list[float] = field(default_factory=list)
    error_codes: list[int] = field(default_factory=list)
    load_resistances_ohm: list[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.times_s)

    def as_arrays(self) -> dict[str, np.ndarray]:
        """All columns as numpy arrays (for analysis and plotting)."""
        return {
            "time_s": np.asarray(self.times_s),
            "vout_v": np.asarray(self.output_voltages_v),
            "il_a": np.asarray(self.inductor_currents_a),
            "duty_word": np.asarray(self.duty_words),
            "duty": np.asarray(self.duty_fractions),
            "error_code": np.asarray(self.error_codes),
            "rload_ohm": np.asarray(self.load_resistances_ohm),
        }

    def _tail(self, tail_fraction: float) -> np.ndarray:
        """Last ``tail_fraction`` of the voltage history, validated non-empty."""
        return steady_state_tail(np.asarray(self.output_voltages_v), tail_fraction)

    def steady_state_voltage_v(self, tail_fraction: float = 0.25) -> float:
        """Mean output voltage over the last ``tail_fraction`` of the run.

        Raises:
            ValueError: if the trace is empty.
        """
        return float(self._tail(tail_fraction).mean())

    def steady_state_ripple_v(self, tail_fraction: float = 0.25) -> float:
        """Peak-to-peak per-period voltage variation over the run's tail.

        Raises:
            ValueError: if the trace is empty.
        """
        tail = self._tail(tail_fraction)
        return float(tail.max() - tail.min())


class DigitallyControlledBuck:
    """ADC + compensator + DPWM + buck power stage, advanced period by period."""

    def __init__(
        self,
        parameters: BuckParameters,
        dpwm: DutyQuantizer,
        reference_v: float,
        adc: WindowedADC | None = None,
        compensator: PIDCompensator | None = None,
        load: LoadProfile | None = None,
        start_at_reference: bool = True,
        reference_profile: ReferenceProfile | None = None,
        source_profile: SourceProfile | None = None,
        stepper: str = "exact",
    ) -> None:
        """Assemble the loop.

        Args:
            reference_profile: optional object with ``reference_at(period)``
                (e.g. :class:`~repro.converter.load.ReferenceStep`)
                overriding the constant ``reference_v`` per period.
            source_profile: optional object with ``voltage_at(period)``
                (e.g. :class:`~repro.converter.load.LineTransient`) driving
                the input rail per period instead of the nominal value.
            stepper: power-stage integration method, ``"exact"`` (default)
                or ``"euler"`` (the seed fixed-step integrator).
        """
        if reference_v <= 0 or reference_v > parameters.input_voltage_v:
            raise ValueError(
                "reference voltage must be positive and below the input voltage"
            )
        if reference_profile is not None:
            validate_reference_profile(reference_profile, parameters.input_voltage_v)
        self.parameters = parameters
        self.dpwm = dpwm
        self.reference_v = reference_v
        self.reference_profile = reference_profile
        self.source_profile = source_profile
        self.adc = adc or WindowedADC()
        # The operating point at period 0 follows the profile when one is
        # given (e.g. a ReferenceStep that begins below reference_v).
        initial_reference = (
            reference_profile.reference_at(0)
            if reference_profile is not None
            else reference_v
        )
        self.compensator = compensator or PIDCompensator(
            initial_duty=initial_reference / parameters.input_voltage_v
        )
        self.load = load or ConstantLoad(resistance_ohm=1.0)
        self.power_stage = BuckPowerStage(parameters, method=stepper)
        if start_at_reference:
            # Start at the operating point so runs focus on regulation and
            # load transients rather than the cold-start charge-up; pass
            # ``start_at_reference=False`` to study the start-up itself.
            initial_load = self.load.resistance_at(0)
            self.power_stage.reset(
                output_voltage_v=initial_reference,
                inductor_current_a=initial_reference / initial_load,
            )
        else:
            self.power_stage.reset(output_voltage_v=0.0, inductor_current_a=0.0)

    def run(self, periods: int) -> RegulationTrace:
        """Run the closed loop for a number of switching periods."""
        if periods < 1:
            raise ValueError("periods must be >= 1")
        trace = RegulationTrace()
        period_s = self.parameters.switching_period_s
        for index in range(periods):
            measured = self.power_stage.state.output_voltage_v
            reference = (
                self.reference_profile.reference_at(index)
                if self.reference_profile is not None
                else self.reference_v
            )
            error_code = self.adc.quantize_error(reference, measured)
            duty_command = self.compensator.update(error_code)
            duty_word = self.dpwm.duty_word_for(duty_command)
            duty = self.dpwm.duty_fraction(duty_word)
            load_resistance = self.load.resistance_at(index)
            source_voltage = (
                self.source_profile.voltage_at(index)
                if self.source_profile is not None
                else None
            )
            state = self.power_stage.run_period(
                duty, load_resistance, source_voltage_v=source_voltage
            )
            trace.times_s.append((index + 1) * period_s)
            trace.output_voltages_v.append(state.output_voltage_v)
            trace.inductor_currents_a.append(state.inductor_current_a)
            trace.duty_words.append(duty_word)
            trace.duty_fractions.append(duty)
            trace.error_codes.append(error_code)
            trace.load_resistances_ohm.append(load_resistance)
        return trace

    def output_voltage_resolution_v(self) -> float:
        """Output-voltage resolution set by the DPWM resolution (paper eq. 12)."""
        return self.parameters.input_voltage_v / float(self.dpwm.max_word + 1)

"""Mission profiles: composable long-horizon load/reference/source scenarios.

The load primitives of :mod:`repro.converter.load` each model *one* workload
event -- a step, a ramp, a pulse train, a random burst.  Real regulators are
qualified over *missions*: hours of composed workload in which those events
follow each other in randomized order while the environment drifts.  This
module provides the composition layer:

* :class:`MissionSegment` -- one leg of a mission: a duration in switching
  periods plus the load / reference / source scenario active during it.
* :class:`MissionProfile` -- a chain of segments that itself implements all
  three per-period scenario protocols (``resistance_at`` /
  ``reference_at`` / ``voltage_at``), so anything that accepts a
  :class:`~repro.converter.load.LoadProfile` accepts a mission.  Each
  segment's scenario is evaluated with the *segment-local* period index,
  which makes composition exact: the composed mission is bit-identical to
  running its segments back-to-back (see :class:`OffsetLoad` for the
  back-to-back side of that equivalence).
* :class:`MissionGenerator` -- seeded, chunk-invariant per-instance mission
  draws.  Instance ``i``'s mission comes from its own RNG stream keyed on
  ``(seed, MISSION_STREAM_TAG, i)`` -- the same contract as the component
  and silicon draw streams of :mod:`repro.mc` -- so adaptive, stratified
  and importance-sampling estimators compose with missions unchanged, and
  any chunking of an instance range tiles the one-shot mission list bit
  for bit.

Example -- a composed mission delegates each period to the segment that
owns it, with the segment-local index:

    >>> from repro.converter.load import ConstantLoad, RampLoad
    >>> mission = MissionProfile(segments=(
    ...     MissionSegment(duration_periods=3, load=ConstantLoad(2.0)),
    ...     MissionSegment(duration_periods=4, load=RampLoad(
    ...         start_ohm=2.0, end_ohm=1.0,
    ...         ramp_start_period=0, ramp_end_period=3)),
    ... ))
    >>> mission.total_periods
    7
    >>> [round(mission.resistance_at(t), 3) for t in range(7)]
    [2.0, 2.0, 2.0, 2.0, 1.667, 1.333, 1.0]
"""

from __future__ import annotations

from bisect import bisect_right
from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.converter.load import (
    ConstantLoad,
    LoadProfile,
    PulseTrainLoad,
    RampLoad,
    RandomBurstLoad,
    ReferenceProfile,
    SourceProfile,
)

__all__ = [
    "MISSION_STREAM_TAG",
    "MissionGenerator",
    "MissionProfile",
    "MissionSegment",
    "OffsetLoad",
    "resolve_missions",
]

#: RNG stream tag separating :meth:`MissionGenerator.mission`'s per-instance
#: streams from the component draws (``(seed, "comp" tag, i)``) and the
#: silicon draws (``(seed, i)``), which frequently share the same seed.
MISSION_STREAM_TAG = 0x6D697373  # "miss"


@dataclass(frozen=True)
class MissionSegment:
    """One leg of a mission: a duration plus the scenarios active during it.

    Attributes:
        duration_periods: length of the leg in switching periods (>= 1; a
            zero-duration segment has no period to own and is rejected).
        load: load scenario evaluated with the segment-local period index;
            ``None`` falls back to the mission's default load.
        reference: reference-voltage scenario for the leg (e.g. a
            :class:`~repro.converter.load.ReferenceStep`); ``None`` falls
            back to the mission's constant default reference.
        source: input-rail scenario for the leg (e.g. a
            :class:`~repro.converter.load.LineTransient`); ``None`` falls
            back to the mission's constant default source voltage.
    """

    duration_periods: int
    load: LoadProfile | None = None
    reference: ReferenceProfile | None = None
    source: SourceProfile | None = None

    def __post_init__(self) -> None:
        if self.duration_periods < 1:
            raise ValueError(
                "segment duration must be at least one switching period; "
                f"got {self.duration_periods}"
            )


@dataclass(frozen=True)
class MissionProfile:
    """A chain of mission segments, itself usable as all three scenarios.

    The profile implements ``resistance_at`` / ``reference_at`` /
    ``voltage_at``, so a mission drops into every slot a single primitive
    fits -- :class:`~repro.simulation.batch.BatchClosedLoop` loads,
    pipeline runs, yield estimators.  Period ``t`` belongs to the segment
    whose half-open window ``[start, start + duration)`` contains it, and
    the segment's scenario is evaluated at the *local* index
    ``t - start`` -- which is exactly what running the segments
    back-to-back would evaluate, making composition bit-exact.  Periods
    beyond the last segment's end keep evaluating the last segment with a
    growing local index (a mission tail behaves like its final leg held
    indefinitely).

    Attributes:
        segments: the legs, in order (must be non-empty).
        default_load: load for segments that declare none.
        default_reference_v: constant reference for segments without a
            reference scenario; ``None`` means the mission has no
            reference channel (callers then must not ask for one).
        default_source_v: constant input voltage for segments without a
            source scenario; ``None`` likewise disables the channel.
    """

    segments: tuple[MissionSegment, ...]
    default_load: LoadProfile = ConstantLoad(resistance_ohm=1.0)
    default_reference_v: float | None = None
    default_source_v: float | None = None
    _starts: tuple[int, ...] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not isinstance(self.segments, tuple):
            object.__setattr__(self, "segments", tuple(self.segments))
        if not self.segments:
            raise ValueError(
                "empty mission schedule: a mission needs at least one segment"
            )
        starts = []
        total = 0
        for segment in self.segments:
            starts.append(total)
            total += segment.duration_periods
        object.__setattr__(self, "_starts", tuple(starts))

    @property
    def num_segments(self) -> int:
        return len(self.segments)

    @property
    def total_periods(self) -> int:
        """Sum of the segment durations."""
        return self._starts[-1] + self.segments[-1].duration_periods

    @property
    def segment_starts(self) -> tuple[int, ...]:
        """Global period index at which each segment begins."""
        return self._starts

    def segment_windows(self, periods: int) -> list[tuple[int, int]]:
        """Half-open ``[start, end)`` windows of the segments within a run.

        Windows are clipped to ``periods``; segments starting at or beyond
        the run length are dropped, and the final window extends to
        ``periods`` when the run outlives the mission (the last segment
        holds indefinitely, so the overhang is its window).
        """
        if periods < 1:
            raise ValueError(f"periods must be >= 1; got {periods}")
        windows: list[tuple[int, int]] = []
        for index, start in enumerate(self._starts):
            if start >= periods:
                break
            end = start + self.segments[index].duration_periods
            windows.append((start, min(end, periods)))
        if periods > self.total_periods:
            last_start, _ = windows[-1]
            windows[-1] = (last_start, periods)
        return windows

    def _locate(self, period_index: int) -> tuple[MissionSegment, int]:
        """The segment owning a period and the segment-local index."""
        if period_index < 0:
            raise ValueError(
                f"period index must be non-negative; got {period_index}"
            )
        position = bisect_right(self._starts, period_index) - 1
        return self.segments[position], period_index - self._starts[position]

    def resistance_at(self, period_index: int) -> float:
        """Load resistance during the given (mission-global) period."""
        segment, local = self._locate(period_index)
        load = segment.load if segment.load is not None else self.default_load
        return load.resistance_at(local)

    def reference_at(self, period_index: int) -> float:
        """Reference voltage during the given (mission-global) period."""
        segment, local = self._locate(period_index)
        if segment.reference is not None:
            return segment.reference.reference_at(local)
        if self.default_reference_v is None:
            raise ValueError(
                "mission has no reference channel: the segment declares no "
                "reference scenario and no default_reference_v was given"
            )
        return self.default_reference_v

    def voltage_at(self, period_index: int) -> float:
        """Input-rail voltage during the given (mission-global) period."""
        segment, local = self._locate(period_index)
        if segment.source is not None:
            return segment.source.voltage_at(local)
        if self.default_source_v is None:
            raise ValueError(
                "mission has no source channel: the segment declares no "
                "source scenario and no default_source_v was given"
            )
        return self.default_source_v


@dataclass(frozen=True)
class OffsetLoad:
    """A load profile shifted to start ``offset_periods`` into another one.

    ``OffsetLoad(load, k).resistance_at(t) == load.resistance_at(k + t)`` --
    the building block of exact run splitting: running a profile for the
    window ``[k, k + n)`` in a fresh loop is the same sequence of
    resistances as periods ``k .. k + n`` of the unsplit run.  The
    pipeline's temperature-epoch splitting and the mission back-to-back
    equivalence tests are built on it.  :meth:`wrap` returns the profile
    itself for a zero offset so the unsplit path stays object-identical.
    """

    load: LoadProfile
    offset_periods: int

    def __post_init__(self) -> None:
        if self.offset_periods < 0:
            raise ValueError(
                f"offset_periods must be non-negative; got {self.offset_periods}"
            )

    @classmethod
    def wrap(cls, load: LoadProfile, offset_periods: int) -> LoadProfile:
        """Shift a profile, passing it through unchanged at offset zero."""
        if offset_periods == 0:
            return load
        return cls(load=load, offset_periods=offset_periods)

    def resistance_at(self, period_index: int) -> float:
        """Load resistance at the shifted period index."""
        if period_index < 0:
            raise ValueError(
                f"period index must be non-negative; got {period_index}"
            )
        return self.load.resistance_at(self.offset_periods + period_index)


@dataclass(frozen=True)
class MissionGenerator:
    """Seeded, chunk-invariant randomized missions, one per instance.

    Each instance's mission is drawn from its own RNG stream keyed on
    ``(seed, MISSION_STREAM_TAG, instance)``: the total mission length is
    cut at ``num_segments - 1`` distinct random period boundaries, and each
    resulting segment draws its workload from a menu of the load
    primitives -- constant light / constant heavy, a ramp spanning the
    segment, a pulse train, a random burst (itself seeded from the same
    stream).  Because the stream is keyed on the instance index alone,
    ``mission(i)`` never depends on which chunk asked for it -- the same
    contract as :meth:`ComponentVariation.sample_instances
    <repro.core.yield_analysis.ComponentVariation.sample_instances>`, so
    mission-profile runs compose with the adaptive/stratified/importance
    estimators of :mod:`repro.mc` unchanged.

    Attributes:
        total_periods: mission length in switching periods.
        num_segments: legs per mission (``total_periods`` must cover them).
        seed: stream seed shared by all instances.
        light_ohm / heavy_ohm: the light and heavy load levels the menu
            draws between.
    """

    total_periods: int
    num_segments: int = 6
    seed: int = 2012
    light_ohm: float = 2.0
    heavy_ohm: float = 0.9

    #: Segments shorter than this hold a constant load: the ramp and pulse
    #: shapes need a few periods of room for their parameter validation.
    MIN_SHAPED_PERIODS = 8

    def __post_init__(self) -> None:
        if self.num_segments < 1:
            raise ValueError(
                f"num_segments must be >= 1; got {self.num_segments}"
            )
        if self.total_periods < self.num_segments:
            raise ValueError(
                f"total_periods ({self.total_periods}) must cover at least "
                f"one period per segment ({self.num_segments})"
            )
        if self.light_ohm <= 0 or self.heavy_ohm <= 0:
            raise ValueError("load resistances must be positive")

    def mission(self, instance: int) -> MissionProfile:
        """The mission of one instance (chunk-invariant in ``instance``)."""
        if instance < 0:
            raise ValueError(f"instance must be non-negative; got {instance}")
        rng = np.random.default_rng((self.seed, MISSION_STREAM_TAG, instance))
        if self.num_segments > 1:
            cuts = np.sort(
                rng.choice(
                    np.arange(1, self.total_periods),
                    size=self.num_segments - 1,
                    replace=False,
                )
            )
        else:
            cuts = np.empty(0, dtype=np.int64)
        bounds = [0, *(int(cut) for cut in cuts), self.total_periods]
        segments = tuple(
            MissionSegment(
                duration_periods=end - start,
                load=self._draw_load(rng, end - start),
            )
            for start, end in zip(bounds, bounds[1:])
        )
        return MissionProfile(segments=segments)

    def missions(
        self, num_instances: int, first_instance: int = 0
    ) -> list[MissionProfile]:
        """Missions of ``[first_instance, first_instance + num_instances)``."""
        if num_instances < 1:
            raise ValueError("need at least one instance")
        return [
            self.mission(first_instance + i) for i in range(num_instances)
        ]

    def _draw_load(
        self, rng: np.random.Generator, duration: int
    ) -> LoadProfile:
        """One segment's workload from the shared per-instance stream."""
        if duration < self.MIN_SHAPED_PERIODS:
            kind = int(rng.integers(2))
        else:
            kind = int(rng.integers(5))
        if kind == 0:
            return ConstantLoad(resistance_ohm=self.light_ohm)
        if kind == 1:
            return ConstantLoad(resistance_ohm=self.heavy_ohm)
        if kind == 2:
            # A DVFS-style ramp across the middle half of the segment; the
            # direction is drawn so missions ramp both up and down.
            margin = duration // 4
            downward = bool(rng.random() < 0.5)
            start_ohm = self.light_ohm if downward else self.heavy_ohm
            return RampLoad(
                start_ohm=start_ohm,
                end_ohm=self.heavy_ohm if downward else self.light_ohm,
                ramp_start_period=margin,
                ramp_end_period=duration - margin,
            )
        if kind == 3:
            pulse = max(1, duration // 8)
            return PulseTrainLoad(
                light_ohm=self.light_ohm,
                heavy_ohm=self.heavy_ohm,
                pulse_periods=pulse,
                train_period=max(pulse + 1, duration // 3),
            )
        return RandomBurstLoad(
            light_ohm=self.light_ohm,
            heavy_ohm=self.heavy_ohm,
            burst_probability=0.05,
            burst_periods=max(1, duration // 10),
            seed=int(rng.integers(2**31)),
        )


def resolve_missions(
    missions: "MissionGenerator | Sequence[MissionProfile]",
    num_instances: int,
    first_instance: int = 0,
) -> list[MissionProfile]:
    """Per-instance mission list from a generator or an explicit sequence.

    A generator is sampled over ``[first_instance, first_instance +
    num_instances)`` (the chunk-invariant path); an explicit sequence must
    already hold exactly one mission per instance of the chunk.
    """
    if isinstance(missions, MissionGenerator):
        return missions.missions(num_instances, first_instance=first_instance)
    resolved = list(missions)
    if len(resolved) != num_instances:
        raise ValueError(
            f"need one mission per instance: got {len(resolved)} missions "
            f"for {num_instances} instances"
        )
    return resolved

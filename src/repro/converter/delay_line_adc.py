"""Delay-line based windowed ADC (the feedback ADC of the cited controllers).

The digital PWM controller the paper builds on ([27], Patella/Prodic) does
not use a conventional flash or SAR ADC for the error voltage: it uses a
*delay-line* ADC, keeping the whole controller synthesizable.  Two matched
delay lines are launched at the start of the conversion window -- one
supplied by the reference voltage, one by the sensed output voltage.  Cell
delay decreases with supply voltage, so the line whose supply is higher gets
further in the same window; the signed difference in reached taps is the
error code.

The model captures that mechanism behaviourally:

* cell delay versus supply voltage follows the same first-order voltage
  derating as the rest of the technology model;
* the conversion window is one switching period (minus a sampling margin);
* the code saturates at the window's tap count, exactly like the windowed
  quantizer it implements.

It also provides the classic no-limit-cycling design rule for digitally
controlled converters: the DPWM's output-voltage resolution must be finer
than the ADC's voltage bin, otherwise the loop hunts between codes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.technology.corners import OperatingConditions, ProcessCorner
from repro.technology.library import TechnologyLibrary, intel32_like_library

__all__ = ["DelayLineADC", "no_limit_cycle_condition"]


@dataclass
class DelayLineADC:
    """Windowed, synthesizable delay-line ADC.

    Attributes:
        reference_v: the reference voltage the error is measured against.
        window_ps: conversion window; sized so the edge reaches roughly the
            middle of the sensing line at the reference voltage (the default
            matches the default 64-cell line at the typical corner).
        cells_per_line: number of cells in each sensing delay line.
        buffers_per_cell: buffers per sensing cell.
        max_code: saturation code (the windowed range), defaults to +/- 15.
        corner: process corner of the sensing lines (both lines match, so
            the corner mostly cancels -- the reason this ADC style works).
    """

    reference_v: float = 0.9
    window_ps: float = 1_400.0
    cells_per_line: int = 64
    buffers_per_cell: int = 1
    max_code: int = 15
    corner: ProcessCorner = ProcessCorner.TYPICAL
    library: TechnologyLibrary | None = None

    def __post_init__(self) -> None:
        if self.reference_v <= 0:
            raise ValueError("reference voltage must be positive")
        if self.window_ps <= 0:
            raise ValueError("conversion window must be positive")
        if self.cells_per_line < 2 or self.buffers_per_cell < 1:
            raise ValueError("sensing line must have at least 2 cells of >= 1 buffer")
        if self.max_code < 1:
            raise ValueError("max_code must be >= 1")
        if self.library is None:
            self.library = intel32_like_library()

    def _cell_delay_ps(self, supply_v: float) -> float:
        """Delay of one sensing cell when supplied from ``supply_v``."""
        conditions = OperatingConditions(
            corner=self.corner,
            vdd_v=min(max(supply_v, 0.2), 3.0),
        )
        return (
            self.library.buffer_delay_ps(conditions) * self.buffers_per_cell
        )

    def taps_reached(self, supply_v: float) -> int:
        """How many cells the launched edge traverses within the window."""
        cell = self._cell_delay_ps(supply_v)
        return min(int(self.window_ps / cell), self.cells_per_line)

    def quantize_error(self, measured_v: float) -> int:
        """Signed error code: positive when the output is below the reference."""
        if measured_v < 0:
            raise ValueError("measured voltage must be non-negative")
        reference_taps = self.taps_reached(self.reference_v)
        measured_taps = self.taps_reached(measured_v)
        code = reference_taps - measured_taps
        return max(-self.max_code, min(self.max_code, code))

    @property
    def lsb_v(self) -> float:
        """Approximate voltage per code around the reference.

        Derived from the sensitivity of the reached-tap count to the supply
        voltage at the reference operating point; used for loop design and
        for the no-limit-cycle check.
        """
        delta = 0.01
        # Use the un-quantized tap counts for the sensitivity so the result
        # does not collapse to zero when the voltage step moves the edge by
        # less than one whole cell.
        taps_low = self.window_ps / self._cell_delay_ps(self.reference_v - delta)
        taps_high = self.window_ps / self._cell_delay_ps(self.reference_v + delta)
        taps_per_volt = (taps_high - taps_low) / (2 * delta)
        if taps_per_volt <= 0:
            raise ValueError(
                "sensing line has no voltage sensitivity at this operating point"
            )
        return 1.0 / taps_per_volt

    @property
    def bits(self) -> int:
        """Effective resolution of the windowed range."""
        return (2 * self.max_code + 1).bit_length()

    def voltage_sensitivity_taps_per_volt(self) -> float:
        """Tap-count sensitivity to the sensed voltage (diagnostic)."""
        return 1.0 / self.lsb_v


def no_limit_cycle_condition(
    input_voltage_v: float, dpwm_bits: int, adc_lsb_v: float
) -> bool:
    """Check the standard no-limit-cycling design rule.

    The DPWM's output-voltage step ``Vg / 2**n_dpwm`` must be smaller than
    the ADC's voltage bin, so the loop can always find a DPWM code whose
    steady-state output falls inside the zero-error bin; otherwise the
    controller hunts between adjacent duty words indefinitely.
    """
    if input_voltage_v <= 0 or adc_lsb_v <= 0:
        raise ValueError("voltages must be positive")
    if dpwm_bits < 1:
        raise ValueError("DPWM resolution must be at least 1 bit")
    dpwm_step_v = input_voltage_v / float(1 << dpwm_bits)
    return dpwm_step_v < adc_lsb_v

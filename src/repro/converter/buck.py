"""Synchronous buck power stage (paper Figures 10-13, 15).

The power stage switches the filter input between the source voltage ``Vg``
(high-side switch on) and ground (low-side switch on) with the duty cycle
provided by the DPWM; the LC low-pass filter averages the switched node so
the output voltage is ``Vout = Duty * Vg`` in steady state (paper eq. 11).

The state (inductor current, capacitor voltage) is integrated with a
fixed-step trapezoid-free explicit scheme over many sub-steps per switching
period.  Parasitic series resistances of the switches and the inductor are
included so conduction losses and damping are physical; the integration step
is small enough (default 64 sub-steps per on/off interval) that the ripple
waveforms match the analytic small-ripple predictions within a fraction of a
percent, which is all the regulation experiments need.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["BuckParameters", "BuckPowerStage", "BuckState"]


@dataclass(frozen=True)
class BuckParameters:
    """Electrical parameters of the buck converter.

    Attributes:
        input_voltage_v: source voltage ``Vg``.
        inductance_h: filter inductance.
        capacitance_f: filter capacitance.
        switching_frequency_hz: regulator switching frequency.
        switch_resistance_ohm: on-resistance of each power switch.
        inductor_resistance_ohm: series resistance of the inductor.
    """

    input_voltage_v: float = 1.8
    inductance_h: float = 100e-9
    capacitance_f: float = 100e-9
    switching_frequency_hz: float = 100e6
    switch_resistance_ohm: float = 0.02
    inductor_resistance_ohm: float = 0.01

    def __post_init__(self) -> None:
        if self.input_voltage_v <= 0:
            raise ValueError("input voltage must be positive")
        if self.inductance_h <= 0 or self.capacitance_f <= 0:
            raise ValueError("L and C must be positive")
        if self.switching_frequency_hz <= 0:
            raise ValueError("switching frequency must be positive")
        if self.switch_resistance_ohm < 0 or self.inductor_resistance_ohm < 0:
            raise ValueError("parasitic resistances must be non-negative")

    @property
    def switching_period_s(self) -> float:
        return 1.0 / self.switching_frequency_hz

    @property
    def lc_cutoff_frequency_hz(self) -> float:
        """Corner frequency of the output filter (paper eq. 9)."""
        return 1.0 / (
            2.0 * np.pi * np.sqrt(self.inductance_h * self.capacitance_f)
        )

    def steady_state_output_v(self, duty: float) -> float:
        """Ideal steady-state output voltage (paper eq. 11)."""
        if not 0.0 <= duty <= 1.0:
            raise ValueError("duty must be in [0, 1]")
        return duty * self.input_voltage_v


@dataclass
class BuckState:
    """Dynamic state of the power stage."""

    inductor_current_a: float = 0.0
    output_voltage_v: float = 0.0


class BuckPowerStage:
    """Cycle-by-cycle behavioural model of the synchronous buck."""

    def __init__(
        self, parameters: BuckParameters, substeps_per_interval: int = 64
    ) -> None:
        if substeps_per_interval < 4:
            raise ValueError("need at least 4 integration sub-steps per interval")
        self.parameters = parameters
        self.substeps_per_interval = substeps_per_interval
        self.state = BuckState()

    def reset(
        self, inductor_current_a: float = 0.0, output_voltage_v: float = 0.0
    ) -> None:
        """Reset the dynamic state (e.g. before a new experiment)."""
        self.state = BuckState(
            inductor_current_a=inductor_current_a,
            output_voltage_v=output_voltage_v,
        )

    def _integrate(
        self, source_voltage_v: float, load_resistance_ohm: float, duration_s: float
    ) -> None:
        """Integrate the LC state with the switch node held at a voltage."""
        if duration_s <= 0:
            return
        params = self.parameters
        series_resistance = (
            params.switch_resistance_ohm + params.inductor_resistance_ohm
        )
        steps = self.substeps_per_interval
        dt = duration_s / steps
        current = self.state.inductor_current_a
        voltage = self.state.output_voltage_v
        for _ in range(steps):
            di_dt = (
                source_voltage_v - voltage - series_resistance * current
            ) / params.inductance_h
            dv_dt = (
                current - voltage / load_resistance_ohm
            ) / params.capacitance_f
            current += di_dt * dt
            voltage += dv_dt * dt
        self.state.inductor_current_a = current
        self.state.output_voltage_v = voltage

    def run_period(self, duty: float, load_resistance_ohm: float) -> BuckState:
        """Advance the converter by one switching period at a given duty.

        Args:
            duty: fraction of the period the high-side switch is on (0..1).
            load_resistance_ohm: load seen at the output during this period.

        Returns:
            the state at the end of the period (also kept internally).
        """
        if not 0.0 <= duty <= 1.0:
            raise ValueError(f"duty must be in [0, 1], got {duty}")
        if load_resistance_ohm <= 0:
            raise ValueError("load resistance must be positive")
        params = self.parameters
        period = params.switching_period_s
        on_time = duty * period
        off_time = period - on_time
        self._integrate(params.input_voltage_v, load_resistance_ohm, on_time)
        self._integrate(0.0, load_resistance_ohm, off_time)
        return self.state

    def run_periods(
        self, duty: float, load_resistance_ohm: float, periods: int
    ) -> np.ndarray:
        """Run several periods at a constant duty; returns per-period Vout."""
        if periods < 1:
            raise ValueError("periods must be >= 1")
        outputs = np.empty(periods)
        for index in range(periods):
            outputs[index] = self.run_period(duty, load_resistance_ohm).output_voltage_v
        return outputs

    def settle(
        self,
        duty: float,
        load_resistance_ohm: float,
        max_periods: int = 5000,
        tolerance_v: float = 1e-4,
        stable_periods: int = 16,
    ) -> float:
        """Run until the per-period output voltage stops changing.

        The output must stay within ``tolerance_v`` of its previous
        per-period value for ``stable_periods`` consecutive periods; a single
        small step is not enough, because the lightly damped LC response
        passes through ring peaks where the voltage is momentarily flat.

        Returns the settled output voltage.  Raises ``RuntimeError`` if the
        converter does not settle within ``max_periods`` (a sign of an
        unstable configuration).
        """
        previous = self.state.output_voltage_v
        consecutive = 0
        for _ in range(max_periods):
            current = self.run_period(duty, load_resistance_ohm).output_voltage_v
            if abs(current - previous) < tolerance_v:
                consecutive += 1
                if consecutive >= stable_periods:
                    return current
            else:
                consecutive = 0
            previous = current
        raise RuntimeError(
            f"buck converter did not settle within {max_periods} periods"
        )

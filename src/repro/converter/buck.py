"""Synchronous buck power stage (paper Figures 10-13, 15).

The power stage switches the filter input between the source voltage ``Vg``
(high-side switch on) and ground (low-side switch on) with the duty cycle
provided by the DPWM; the LC low-pass filter averages the switched node so
the output voltage is ``Vout = Duty * Vg`` in steady state (paper eq. 11).

Within each on/off interval the converter is a linear time-invariant 2-state
system, so the interval update has a closed form: the state transition matrix
is the matrix exponential of the (2x2) system matrix and the constant source
drive integrates to an affine term.  The default ``exact`` stepper evaluates
that closed form once per interval (two matrix-vector products per switching
period), with the transition coefficients cached per
``(load, duration)`` so repeated duty words cost almost nothing.  The
original explicit-Euler integrator (64 sub-steps per on/off interval) is kept
behind ``method="euler"`` for cross-validation; the two agree to a fraction
of a millivolt on the regulation workloads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

__all__ = [
    "BuckParameters",
    "BuckPowerStage",
    "BuckState",
    "exact_interval_coefficients",
    "plant_matrix_entries",
]


def plant_matrix_entries(
    inductance_h: Any,
    capacitance_f: Any,
    series_resistance_ohm: Any,
    load_resistance_ohm: Any,
) -> tuple[Any, Any, Any, Any]:
    """System-matrix entries of the buck LC plant.

    For state ``x = [i_L, v_out]`` and ``dx/dt = A x + u`` with
    ``u = [V_switch_node / L, 0]``, returns the entries ``(a, b, c, d)`` of
    ``A``.  Shared by the scalar exact stepper and the batch engine so the
    two can never model different plants; inputs may be scalars or
    broadcastable arrays.
    """
    return (
        -series_resistance_ohm / inductance_h,
        -1.0 / inductance_h,
        1.0 / capacitance_f,
        -1.0 / (load_resistance_ohm * capacitance_f),
    )

#: Relative threshold under which the expm eigenvalue split counts as zero
#: (critically damped); below it the sinh(q t)/q factor degenerates to t.
_DEGENERATE_EPS = 1e-24


def exact_interval_coefficients(
    a: Any, b: Any, c: Any, d: Any, duration: Any
) -> tuple[Any, Any, Any, Any, Any, Any]:
    """Exact discrete-time update coefficients for a 2-state linear interval.

    For ``dx/dt = A x + u`` with ``A = [[a, b], [c, d]]`` constant over
    ``duration`` and a constant drive ``u``, the exact update is::

        x(T) = Ad @ x(0) + M @ u        with  Ad = expm(A T),
                                              M  = inv(A) @ (Ad - eye(2))

    The matrix exponential is evaluated in closed form: with
    ``mu = (a + d) / 2`` and ``q**2 = ((a - d) / 2)**2 + b c``,

        ``expm(A T) = exp(mu T) * (C(T) I + S(T) (A - mu I))``

    where ``C = cosh(q T)`` and ``S = sinh(q T) / q`` (which become
    ``cos``/``sin`` for the underdamped case ``q**2 < 0`` and ``1``/``T``
    in the critically damped limit).  All inputs may be scalars or
    broadcastable numpy arrays, which is what the batch engine relies on.

    Returns:
        ``(ad11, ad12, ad21, ad22, m11, m21)`` -- the four entries of ``Ad``
        and the first column of ``M`` (the buck's drive only has a first
        component, ``u = [Vs / L, 0]``, so the second column is never
        needed).
    """
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float)
    c = np.asarray(c, dtype=float)
    d = np.asarray(d, dtype=float)
    duration = np.asarray(duration, dtype=float)

    mu = 0.5 * (a + d)
    delta = 0.5 * (a - d)
    q_squared = delta * delta + b * c
    scale = np.maximum(mu * mu, np.abs(q_squared))
    degenerate = np.abs(q_squared) <= _DEGENERATE_EPS * np.maximum(scale, 1.0)
    q = np.sqrt(np.abs(np.where(degenerate, 1.0, q_squared)))
    qt = q * duration
    oscillatory = q_squared < 0

    envelope = np.exp(mu * duration)
    # Overdamped branch.  For moderate q t, evaluate exp(mu t) * cosh/sinh
    # directly (well-conditioned for small q t).  For large q t those
    # factors overflow/underflow individually even though their product is
    # finite, so group them as exp((mu +/- q) t) -- both exponents are
    # non-positive because det(A) > 0 implies q < |mu|.  Branch arguments
    # are masked so the unused side never overflows.
    grouped = (~oscillatory) & (qt > 30.0)
    qt_direct = np.where(grouped, 0.0, qt)
    cosh_env = envelope * np.where(oscillatory, np.cos(qt), np.cosh(qt_direct))
    sinh_env = envelope * np.where(oscillatory, np.sin(qt), np.sinh(qt_direct)) / q
    q_grouped = np.where(grouped, q, 0.0)
    exp_plus = np.exp((mu + q_grouped) * duration)
    exp_minus = np.exp((mu - q_grouped) * duration)
    cosh_env = np.where(grouped, 0.5 * (exp_plus + exp_minus), cosh_env)
    sinh_env = np.where(grouped, (exp_plus - exp_minus) / (2.0 * q), sinh_env)
    cosh_env = np.where(degenerate, envelope, cosh_env)
    sinh_env = np.where(degenerate, duration * envelope, sinh_env)

    ad11 = cosh_env + sinh_env * delta
    ad12 = sinh_env * b
    ad21 = sinh_env * c
    ad22 = cosh_env - sinh_env * delta

    # M = inv(A) (Ad - I); only the first column is needed because the
    # drive's second component is zero.  det(A) > 0 for any physical buck
    # (d = -1/(R C) and b c = -1/(L C) make it strictly positive).
    det = a * d - b * c
    m11 = (d * (ad11 - 1.0) - b * ad21) / det
    m21 = (a * ad21 - c * (ad11 - 1.0)) / det
    return ad11, ad12, ad21, ad22, m11, m21


@dataclass(frozen=True)
class BuckParameters:
    """Electrical parameters of the buck converter.

    Attributes:
        input_voltage_v: source voltage ``Vg``.
        inductance_h: filter inductance.
        capacitance_f: filter capacitance.
        switching_frequency_hz: regulator switching frequency.
        switch_resistance_ohm: on-resistance of each power switch.
        inductor_resistance_ohm: series resistance of the inductor.
    """

    input_voltage_v: float = 1.8
    inductance_h: float = 100e-9
    capacitance_f: float = 100e-9
    switching_frequency_hz: float = 100e6
    switch_resistance_ohm: float = 0.02
    inductor_resistance_ohm: float = 0.01

    def __post_init__(self) -> None:
        if self.input_voltage_v <= 0:
            raise ValueError("input voltage must be positive")
        if self.inductance_h <= 0 or self.capacitance_f <= 0:
            raise ValueError("L and C must be positive")
        if self.switching_frequency_hz <= 0:
            raise ValueError("switching frequency must be positive")
        if self.switch_resistance_ohm < 0 or self.inductor_resistance_ohm < 0:
            raise ValueError("parasitic resistances must be non-negative")

    @property
    def switching_period_s(self) -> float:
        return 1.0 / self.switching_frequency_hz

    @property
    def lc_cutoff_frequency_hz(self) -> float:
        """Corner frequency of the output filter (paper eq. 9)."""
        return 1.0 / (
            2.0 * np.pi * np.sqrt(self.inductance_h * self.capacitance_f)
        )

    def steady_state_output_v(self, duty: float) -> float:
        """Ideal steady-state output voltage (paper eq. 11)."""
        if not 0.0 <= duty <= 1.0:
            raise ValueError("duty must be in [0, 1]")
        return duty * self.input_voltage_v


@dataclass
class BuckState:
    """Dynamic state of the power stage."""

    inductor_current_a: float = 0.0
    output_voltage_v: float = 0.0


class BuckPowerStage:
    """Cycle-by-cycle behavioural model of the synchronous buck.

    Args:
        parameters: electrical parameters of the converter.
        substeps_per_interval: Euler sub-steps per on/off interval (only used
            by ``method="euler"``).
        method: ``"exact"`` (default) advances each on/off interval with the
            closed-form state-transition update; ``"euler"`` keeps the
            original fixed-step explicit integration for cross-validation.
    """

    #: Transition-coefficient cache bound; duty words are quantized so real
    #: workloads stay far below this, but open-loop sweeps with continuously
    #: varying duty must not grow the cache without limit.
    MAX_CACHED_INTERVALS = 4096

    def __init__(
        self,
        parameters: BuckParameters,
        substeps_per_interval: int = 64,
        method: str = "exact",
    ) -> None:
        if substeps_per_interval < 4:
            raise ValueError("need at least 4 integration sub-steps per interval")
        if method not in ("exact", "euler"):
            raise ValueError(f"method must be 'exact' or 'euler', got {method!r}")
        self.parameters = parameters
        self.substeps_per_interval = substeps_per_interval
        self.method = method
        self.state = BuckState()
        self._interval_cache: dict[tuple[float, float], tuple] = {}
        self._cached_parameters = parameters

    def reset(
        self, inductor_current_a: float = 0.0, output_voltage_v: float = 0.0
    ) -> None:
        """Reset the dynamic state (e.g. before a new experiment).

        Also drops the cached transition coefficients, so a caller that
        reconfigures ``parameters`` and resets gets coefficients for the new
        plant rather than a stale mix.
        """
        self.state = BuckState(
            inductor_current_a=inductor_current_a,
            output_voltage_v=output_voltage_v,
        )
        self._interval_cache.clear()

    def _integrate(
        self, source_voltage_v: float, load_resistance_ohm: float, duration_s: float
    ) -> None:
        """Integrate the LC state with the switch node held at a voltage."""
        if duration_s <= 0:
            return
        params = self.parameters
        series_resistance = (
            params.switch_resistance_ohm + params.inductor_resistance_ohm
        )
        steps = self.substeps_per_interval
        dt = duration_s / steps
        current = self.state.inductor_current_a
        voltage = self.state.output_voltage_v
        for _ in range(steps):
            di_dt = (
                source_voltage_v - voltage - series_resistance * current
            ) / params.inductance_h
            dv_dt = (
                current - voltage / load_resistance_ohm
            ) / params.capacitance_f
            current += di_dt * dt
            voltage += dv_dt * dt
        self.state.inductor_current_a = current
        self.state.output_voltage_v = voltage

    def _step_exact(
        self, source_voltage_v: float, load_resistance_ohm: float, duration_s: float
    ) -> None:
        """Advance the LC state by one interval with the closed-form update."""
        if duration_s <= 0:
            return
        # The cached coefficients bake in L/C/R; parameters are frozen, so an
        # identity check is enough to catch the stage being retuned by
        # assigning a new parameter set (a pattern the Euler path supports by
        # reading ``self.parameters`` live).
        if self.parameters is not self._cached_parameters:
            self._interval_cache.clear()
            self._cached_parameters = self.parameters
        key = (load_resistance_ohm, duration_s)
        coefficients = self._interval_cache.get(key)
        if coefficients is None:
            params = self.parameters
            a, b, c, d = plant_matrix_entries(
                inductance_h=params.inductance_h,
                capacitance_f=params.capacitance_f,
                series_resistance_ohm=params.switch_resistance_ohm
                + params.inductor_resistance_ohm,
                load_resistance_ohm=load_resistance_ohm,
            )
            coefficients = tuple(
                float(value)
                for value in exact_interval_coefficients(a, b, c, d, duration_s)
            )
            if len(self._interval_cache) >= self.MAX_CACHED_INTERVALS:
                self._interval_cache.clear()
            self._interval_cache[key] = coefficients
        ad11, ad12, ad21, ad22, m11, m21 = coefficients
        drive = source_voltage_v / self.parameters.inductance_h
        current = self.state.inductor_current_a
        voltage = self.state.output_voltage_v
        self.state.inductor_current_a = ad11 * current + ad12 * voltage + m11 * drive
        self.state.output_voltage_v = ad21 * current + ad22 * voltage + m21 * drive

    def run_period(
        self,
        duty: float,
        load_resistance_ohm: float,
        source_voltage_v: float | None = None,
    ) -> BuckState:
        """Advance the converter by one switching period at a given duty.

        Args:
            duty: fraction of the period the high-side switch is on (0..1).
            load_resistance_ohm: load seen at the output during this period.
            source_voltage_v: input voltage during this period; defaults to
                the nominal ``input_voltage_v`` (override it to model line
                transients).

        Returns:
            the state at the end of the period (also kept internally).
        """
        if not 0.0 <= duty <= 1.0:
            raise ValueError(f"duty must be in [0, 1], got {duty}")
        if load_resistance_ohm <= 0:
            raise ValueError("load resistance must be positive")
        params = self.parameters
        if source_voltage_v is None:
            source_voltage_v = params.input_voltage_v
        elif source_voltage_v < 0:
            raise ValueError("source voltage must be non-negative")
        period = params.switching_period_s
        on_time = duty * period
        off_time = period - on_time
        step = self._step_exact if self.method == "exact" else self._integrate
        step(source_voltage_v, load_resistance_ohm, on_time)
        step(0.0, load_resistance_ohm, off_time)
        return self.state

    def run_periods(
        self, duty: float, load_resistance_ohm: float, periods: int
    ) -> np.ndarray:
        """Run several periods at a constant duty; returns per-period Vout."""
        if periods < 1:
            raise ValueError("periods must be >= 1")
        outputs = np.empty(periods)
        for index in range(periods):
            outputs[index] = self.run_period(duty, load_resistance_ohm).output_voltage_v
        return outputs

    def settle(
        self,
        duty: float,
        load_resistance_ohm: float,
        max_periods: int = 5000,
        tolerance_v: float = 1e-4,
        stable_periods: int = 16,
    ) -> float:
        """Run until the per-period output voltage stops changing.

        The output must stay within ``tolerance_v`` of its previous
        per-period value for ``stable_periods`` consecutive periods; a single
        small step is not enough, because the lightly damped LC response
        passes through ring peaks where the voltage is momentarily flat.

        Returns the settled output voltage.  Raises ``RuntimeError`` if the
        converter does not settle within ``max_periods`` (a sign of an
        unstable configuration).
        """
        previous = self.state.output_voltage_v
        consecutive = 0
        for _ in range(max_periods):
            current = self.run_period(duty, load_resistance_ohm).output_voltage_v
            if abs(current - previous) < tolerance_v:
                consecutive += 1
                if consecutive >= stable_periods:
                    return current
            else:
                consecutive = 0
            previous = current
        raise RuntimeError(
            f"buck converter did not settle within {max_periods} periods"
        )

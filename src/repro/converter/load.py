"""Load profiles and transient scenarios for regulation experiments.

The paper motivates precise regulation by the load transients a
microprocessor imposes on its regulator; these profiles express the load as a
resistance seen by the buck output as a function of the switching-period
index.  Beyond the constant and single-step loads, the module models the
realistic core workloads the closed loop has to survive -- current ramps
(DVFS-style activity ramps), periodic pulse trains (a duty-cycled
accelerator) and seeded random bursts (interrupt-driven activity) -- plus
the two non-load disturbances of regulator bring-up: reference steps (DVS
voltage transitions) and line transients (input-rail droop).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

__all__ = [
    "LoadProfile",
    "ReferenceProfile",
    "SourceProfile",
    "ConstantLoad",
    "SteppedLoad",
    "RampLoad",
    "PulseTrainLoad",
    "RandomBurstLoad",
    "ReferenceStep",
    "LineTransient",
]


class LoadProfile(Protocol):
    """What the closed loops need from a load scenario."""

    def resistance_at(self, period_index: int) -> float:  # pragma: no cover
        ...


class ReferenceProfile(Protocol):
    """What the closed loops need from a reference-voltage scenario."""

    def reference_at(self, period_index: int) -> float:  # pragma: no cover
        ...


class SourceProfile(Protocol):
    """What the closed loops need from an input-rail scenario."""

    def voltage_at(self, period_index: int) -> float:  # pragma: no cover
        ...


@dataclass(frozen=True)
class ConstantLoad:
    """A fixed resistive load."""

    resistance_ohm: float

    #: Static loads return the same resistance every period, which lets the
    #: batch engine evaluate the resistance vector once per run instead of
    #: once per period (plain class attribute, not a dataclass field).
    is_static = True

    def __post_init__(self) -> None:
        if self.resistance_ohm <= 0:
            raise ValueError("load resistance must be positive")

    def resistance_at(self, period_index: int) -> float:
        """Load resistance during the given switching period."""
        return self.resistance_ohm


@dataclass(frozen=True)
class SteppedLoad:
    """A load that steps between two resistances at given period indices.

    Attributes:
        light_ohm: resistance before ``step_up_period`` and after
            ``step_down_period``.
        heavy_ohm: resistance between the two step points.
        step_up_period: period index at which the heavy load is applied.
        step_down_period: period index at which the load is released
            (use a large value for a single step).
    """

    light_ohm: float
    heavy_ohm: float
    step_up_period: int
    step_down_period: int = 10**9

    def __post_init__(self) -> None:
        if self.light_ohm <= 0 or self.heavy_ohm <= 0:
            raise ValueError("load resistances must be positive")
        if self.step_up_period < 0:
            raise ValueError("step_up_period must be non-negative")
        if self.step_down_period <= self.step_up_period:
            raise ValueError("step_down_period must come after step_up_period")

    def resistance_at(self, period_index: int) -> float:
        """Load resistance during the given switching period."""
        if self.step_up_period <= period_index < self.step_down_period:
            return self.heavy_ohm
        return self.light_ohm


@dataclass(frozen=True)
class RampLoad:
    """A load whose resistance ramps linearly between two values.

    Models a DVFS-style activity ramp: the load current rises (resistance
    falls) gradually instead of stepping, which exercises the loop's
    tracking rather than its transient recovery.

    Attributes:
        start_ohm: resistance before ``ramp_start_period``.
        end_ohm: resistance after ``ramp_end_period``.
        ramp_start_period: period index at which the ramp begins.
        ramp_end_period: period index at which the ramp completes.
    """

    start_ohm: float
    end_ohm: float
    ramp_start_period: int
    ramp_end_period: int

    def __post_init__(self) -> None:
        if self.start_ohm <= 0 or self.end_ohm <= 0:
            raise ValueError("load resistances must be positive")
        if self.ramp_start_period < 0:
            raise ValueError("ramp_start_period must be non-negative")
        if self.ramp_end_period <= self.ramp_start_period:
            raise ValueError("ramp_end_period must come after ramp_start_period")

    def resistance_at(self, period_index: int) -> float:
        """Load resistance during the given switching period."""
        if period_index <= self.ramp_start_period:
            return self.start_ohm
        if period_index >= self.ramp_end_period:
            return self.end_ohm
        progress = (period_index - self.ramp_start_period) / (
            self.ramp_end_period - self.ramp_start_period
        )
        return self.start_ohm + progress * (self.end_ohm - self.start_ohm)


@dataclass(frozen=True)
class PulseTrainLoad:
    """A load that pulses periodically between a light and a heavy value.

    Models a duty-cycled workload (e.g. an accelerator woken every scheduling
    quantum): starting at ``first_pulse_period``, the load is heavy for
    ``pulse_periods`` switching periods out of every ``train_period``.
    """

    light_ohm: float
    heavy_ohm: float
    pulse_periods: int
    train_period: int
    first_pulse_period: int = 0

    def __post_init__(self) -> None:
        if self.light_ohm <= 0 or self.heavy_ohm <= 0:
            raise ValueError("load resistances must be positive")
        if self.pulse_periods < 1:
            raise ValueError("pulse_periods must be positive")
        if self.train_period <= self.pulse_periods:
            raise ValueError("train_period must exceed pulse_periods")
        if self.first_pulse_period < 0:
            raise ValueError("first_pulse_period must be non-negative")

    def resistance_at(self, period_index: int) -> float:
        """Load resistance during the given switching period."""
        if period_index < self.first_pulse_period:
            return self.light_ohm
        phase = (period_index - self.first_pulse_period) % self.train_period
        return self.heavy_ohm if phase < self.pulse_periods else self.light_ohm


@dataclass(frozen=True)
class RandomBurstLoad:
    """A load with random heavy bursts, reproducible from a seed.

    Models interrupt-driven activity: each switching period independently
    starts a burst with probability ``burst_probability``; a burst holds the
    heavy load for ``burst_periods`` periods.  The burst schedule is drawn
    once for ``horizon_periods`` periods and repeats beyond the horizon, so
    ``resistance_at`` is a pure function of the period index and two runs
    with the same seed see the same workload.
    """

    light_ohm: float
    heavy_ohm: float
    burst_probability: float = 0.02
    burst_periods: int = 20
    horizon_periods: int = 4096
    seed: int = 0
    _heavy_mask: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.light_ohm <= 0 or self.heavy_ohm <= 0:
            raise ValueError("load resistances must be positive")
        if not 0.0 <= self.burst_probability <= 1.0:
            raise ValueError("burst_probability must be in [0, 1]")
        if self.burst_periods < 1 or self.horizon_periods < 1:
            raise ValueError("burst_periods and horizon_periods must be positive")
        rng = np.random.default_rng(self.seed)
        starts = rng.random(self.horizon_periods) < self.burst_probability
        mask = np.zeros(self.horizon_periods, dtype=bool)
        for start in np.flatnonzero(starts):
            mask[start : start + self.burst_periods] = True
        object.__setattr__(self, "_heavy_mask", mask)

    def resistance_at(self, period_index: int) -> float:
        """Load resistance during the given switching period."""
        if period_index < 0:
            raise ValueError("period index must be non-negative")
        if self._heavy_mask[period_index % self.horizon_periods]:
            return self.heavy_ohm
        return self.light_ohm


@dataclass(frozen=True)
class ReferenceStep:
    """A reference voltage that steps at a given period (a DVS transition).

    Attributes:
        initial_v: reference before ``step_period``.
        final_v: reference from ``step_period`` onwards.
        step_period: period index of the transition.
    """

    initial_v: float
    final_v: float
    step_period: int

    def __post_init__(self) -> None:
        if self.initial_v <= 0 or self.final_v <= 0:
            raise ValueError("reference voltages must be positive")
        if self.step_period < 0:
            raise ValueError("step_period must be non-negative")

    @property
    def max_reference_v(self) -> float:
        return max(self.initial_v, self.final_v)

    def reference_at(self, period_index: int) -> float:
        """Reference voltage during the given switching period."""
        return self.final_v if period_index >= self.step_period else self.initial_v


@dataclass(frozen=True)
class LineTransient:
    """An input-voltage disturbance (the rail droops, then recovers).

    Attributes:
        nominal_v: input voltage outside the disturbance window.
        disturbed_v: input voltage inside ``[start_period, end_period)``.
        start_period / end_period: disturbance window in period indices.
    """

    nominal_v: float
    disturbed_v: float
    start_period: int
    end_period: int

    def __post_init__(self) -> None:
        if self.nominal_v <= 0 or self.disturbed_v <= 0:
            raise ValueError("input voltages must be positive")
        if self.start_period < 0:
            raise ValueError("start_period must be non-negative")
        if self.end_period <= self.start_period:
            raise ValueError("end_period must come after start_period")

    @property
    def min_voltage_v(self) -> float:
        return min(self.nominal_v, self.disturbed_v)

    def voltage_at(self, period_index: int) -> float:
        """Input voltage during the given switching period."""
        if self.start_period <= period_index < self.end_period:
            return self.disturbed_v
        return self.nominal_v

"""Load profiles for regulation and transient-response experiments.

The paper motivates precise regulation by the load transients a
microprocessor imposes on its regulator; these profiles express the load as a
resistance seen by the buck output as a function of the switching-period
index.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ConstantLoad", "SteppedLoad"]


@dataclass(frozen=True)
class ConstantLoad:
    """A fixed resistive load."""

    resistance_ohm: float

    def __post_init__(self) -> None:
        if self.resistance_ohm <= 0:
            raise ValueError("load resistance must be positive")

    def resistance_at(self, period_index: int) -> float:
        """Load resistance during the given switching period."""
        return self.resistance_ohm


@dataclass(frozen=True)
class SteppedLoad:
    """A load that steps between two resistances at given period indices.

    Attributes:
        light_ohm: resistance before ``step_up_period`` and after
            ``step_down_period``.
        heavy_ohm: resistance between the two step points.
        step_up_period: period index at which the heavy load is applied.
        step_down_period: period index at which the load is released
            (use a large value for a single step).
    """

    light_ohm: float
    heavy_ohm: float
    step_up_period: int
    step_down_period: int = 10**9

    def __post_init__(self) -> None:
        if self.light_ohm <= 0 or self.heavy_ohm <= 0:
            raise ValueError("load resistances must be positive")
        if self.step_up_period < 0:
            raise ValueError("step_up_period must be non-negative")
        if self.step_down_period <= self.step_up_period:
            raise ValueError("step_down_period must come after step_up_period")

    def resistance_at(self, period_index: int) -> float:
        """Load resistance during the given switching period."""
        if self.step_up_period <= period_index < self.step_down_period:
            return self.heavy_ohm
        return self.light_ohm

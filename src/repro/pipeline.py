"""The fused silicon-to-regulation Monte-Carlo pipeline.

The paper's end-to-end claim is that delay-line DPWM nonlinearity under
process variation decides whether the closed-loop buck regulates cleanly or
limit-cycles.  Before this module the repo evaluated the two halves in
separate engines: :mod:`repro.core.ensemble` produced per-instance DPWM
transfer curves and :mod:`repro.simulation.batch` ran fleets of closed
loops, but connecting them meant constructing scalar
:class:`~repro.dpwm.calibrated.CalibratedDelayLineDPWM` objects one instance
at a time in Python.  :class:`SiliconToRegulationPipeline` fuses the stack:

1. **Fabricate** -- draw ``N`` post-APR instances of the designed delay line
   from a :class:`~repro.technology.variation.VariationModel`
   (:func:`fabricate_ensemble`).
2. **Calibrate** -- lock every instance closed-form and extract the full
   ``(instances, words)`` transfer-curve matrix in one vectorized ensemble
   pass.
3. **Convert** -- turn that matrix directly into per-instance DPWM duty
   tables with :meth:`~repro.simulation.batch.BatchQuantizer.from_ensemble`
   (no per-instance scalar DPWM construction, no Python loops).
4. **Regulate** -- close a :class:`~repro.simulation.batch.BatchClosedLoop`
   fleet around the fabricated DPWMs, optionally with per-chip electrical
   spreads from :class:`~repro.core.yield_analysis.ComponentVariation`, and
   advance all loops together period by period.

Each fleet variant's DPWM nonlinearity is its *own* fabricated instance's
calibrated curve, so steady-state limit-cycle amplitude and regulation yield
become per-chip Monte-Carlo statistics.  The fused run is bit-identical to
composing the two engines by hand (scalar ``CalibratedDelayLineDPWM`` plus
scalar ``DigitallyControlledBuck`` per instance) -- the property
``tests/test_pipeline.py`` asserts and ``benchmarks/test_bench_pipeline.py``
perf-gates (>= 10x at bit-exact steady-state agreement).

Scoring lives next door: :func:`repro.core.yield_analysis.closed_loop_yield`
runs this pipeline and composes the :class:`LinearitySpec` and
:class:`RegulationSpec` pass/fail frameworks into one fused yield number.

For adaptive Monte-Carlo (:mod:`repro.mc`) the pipeline also exposes a
*chunked* entry point: :class:`ChunkedSiliconToRegulation` runs the design
procedure once and then fabricates → calibrates → converts → regulates any
instance range on demand, so a streaming sampler can grow the population
chunk by chunk without re-running the design.  Because every variation
model keys instance ``i``'s randomness on ``i`` itself, chunked runs are
bit-identical to slicing one big run -- the contract the adaptive engine's
reproducibility rests on.

Example -- design once, fabricate in chunks, and the chunks tile the same
population a one-shot fabrication draws:

    >>> import numpy as np
    >>> from repro.core.design import DesignSpec
    >>> from repro.pipeline import ChunkedSiliconToRegulation
    >>> from repro.technology.variation import VariationModel
    >>> spec = DesignSpec(clock_frequency_mhz=100.0, resolution_bits=4)
    >>> chunked = ChunkedSiliconToRegulation(
    ...     "proposed", spec, variation=VariationModel(seed=5))
    >>> first = chunked.run_chunk(0, 2, periods=40)
    >>> second = chunked.run_chunk(2, 2, periods=40)
    >>> one_shot = chunked.run_chunk(0, 4, periods=40)
    >>> bool(np.array_equal(
    ...     np.concatenate([first.steady_state_voltages_v(),
    ...                     second.steady_state_voltages_v()]),
    ...     one_shot.steady_state_voltages_v()))
    True
    >>> one_shot.num_instances
    4
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Sequence
from typing import Any

import numpy as np
import numpy.typing as npt

from repro.converter.adc import WindowedADC
from repro.converter.buck import BuckParameters
from repro.converter.load import LoadProfile, ReferenceProfile, SourceProfile
from repro.converter.missions import (
    MissionGenerator,
    MissionProfile,
    OffsetLoad,
    resolve_missions,
)
from repro.core.design import DesignSpec, design_conventional, design_proposed
from repro.core.proposed import ProposedDelayLineConfig
from repro.core.ensemble import (
    ConventionalEnsemble,
    DelayLineEnsemble,
    EnsembleCalibration,
    EnsembleTransferCurves,
    ProposedEnsemble,
)
from repro.core.yield_analysis import (
    ClosedLoopYieldResult,
    ComponentTilt,
    ComponentVariation,
    LinearitySpec,
    RegulationSpec,
)
from repro.kernels import KernelBackend, get_backend
from repro.simulation.batch import (
    BatchBuckParameters,
    BatchClosedLoop,
    BatchCompensator,
    BatchQuantizer,
    BatchRegulationResult,
)
from repro.technology.corners import OperatingConditions, ProcessCorner
from repro.technology.library import TechnologyLibrary, intel32_like_library
from repro.technology.thermal import TemperatureTrace, ThermalDerating
from repro.technology.variation import CorrelatedVariationModel, VariationModel

__all__ = [
    "ChunkedFabricator",
    "ChunkedSiliconToRegulation",
    "PipelineResult",
    "SiliconToRegulationPipeline",
    "closed_loop_cell",
    "fabricate_ensemble",
]


class ChunkedFabricator:
    """Design a scheme once, then fabricate instance ranges on demand.

    The paper's design procedure (:mod:`repro.core.design`) is deterministic
    in the specification, so a streaming Monte-Carlo run only needs it
    *once*; every subsequent chunk is just a variation draw over the stored
    line configuration.  Because :meth:`VariationModel.sample` keys instance
    ``i``'s randomness on ``i`` itself, :meth:`fabricate` over
    ``[first_instance, first_instance + count)`` is bit-identical to the
    matching slice of one big fabrication -- the chunking contract of
    :mod:`repro.mc`.
    """

    def __init__(
        self,
        scheme: str,
        spec: DesignSpec,
        variation: VariationModel | None = None,
        library: TechnologyLibrary | None = None,
        backend: str | KernelBackend | None = None,
    ) -> None:
        self.library = library or intel32_like_library()
        self.kernels = (
            backend if isinstance(backend, KernelBackend) else get_backend(backend)
        )
        if scheme == "proposed":
            designed = design_proposed(spec, self.library)
            self._ensemble_cls = ProposedEnsemble
        elif scheme == "conventional":
            designed = design_conventional(spec, self.library)
            self._ensemble_cls = ConventionalEnsemble
        else:
            raise ValueError(f"unknown scheme {scheme!r}")
        self.config = designed.build_line(library=self.library).config
        self.scheme = scheme
        self.spec = spec
        self.variation = variation

    def fabricate(
        self, num_instances: int, first_instance: int = 0
    ) -> DelayLineEnsemble:
        """Draw the post-APR instances ``first_instance .. +num_instances``."""
        if num_instances < 1:
            raise ValueError("need at least one instance")
        if self.variation is None:
            return self._ensemble_cls(
                self.config,
                library=self.library,
                num_instances=num_instances,
                backend=self.kernels,
            )
        return self._ensemble_cls.sample(
            self.config,
            num_instances,
            self.variation,
            library=self.library,
            first_instance=first_instance,
            backend=self.kernels,
        )

    def fabricate_tilted(
        self,
        num_instances: int,
        first_instance: int = 0,
        *,
        shift: float = 0.0,
        sigma_scale: float = 1.0,
    ) -> tuple[DelayLineEnsemble, npt.NDArray[np.float64]]:
        """Draw instances from a *tilted* silicon-mismatch distribution.

        Importance-sampling entry point: each buffer's standard-normal
        mismatch draw is shifted by ``shift`` sigmas and widened by
        ``sigma_scale`` (see :meth:`VariationModel.sample_tilted`), and the
        per-instance log-likelihood ratios back to the nominal process come
        along as the second return value.  The identity tilt reproduces
        :meth:`fabricate` bit for bit with zero log-weights.
        """
        if num_instances < 1:
            raise ValueError("need at least one instance")
        if self.variation is None:
            raise ValueError(
                "tilted fabrication requires a variation model; ideal silicon "
                "has no mismatch distribution to tilt"
            )
        config = self.config
        if isinstance(config, ProposedDelayLineConfig):
            buffers_per_cell = config.buffers_per_cell
        else:
            # The conventional sample spans the longest branch of every
            # cell, matching ConventionalEnsemble.sample.
            buffers_per_cell = config.branches * config.buffers_per_element
        batch, log_lrs = self.variation.sample_batch_tilted(
            num_instances,
            config.num_cells,
            buffers_per_cell,
            first_instance=first_instance,
            shift=shift,
            sigma_scale=sigma_scale,
        )
        ensemble = self._ensemble_cls(
            self.config,
            library=self.library,
            batch=batch,
            backend=self.kernels,
        )
        return ensemble, log_lrs


def fabricate_ensemble(
    scheme: str,
    spec: DesignSpec,
    variation: VariationModel | None,
    num_instances: int,
    library: TechnologyLibrary | None = None,
    first_instance: int = 0,
    backend: str | KernelBackend | None = None,
) -> DelayLineEnsemble:
    """Design a scheme for a specification and draw fabricated instances.

    Runs the paper's design procedure (:mod:`repro.core.design`) for the
    requested scheme, then samples ``num_instances`` post-APR instances from
    the variation model as one batch.  ``variation=None`` fabricates ideal
    (mismatch-free) silicon: every instance is the nominal line.  (One-shot
    convenience over :class:`ChunkedFabricator`.)
    """
    fabricator = ChunkedFabricator(
        scheme, spec, variation=variation, library=library, backend=backend
    )
    return fabricator.fabricate(num_instances, first_instance=first_instance)


def _resolve_nominal(
    nominal: BuckParameters | None, spec: DesignSpec
) -> BuckParameters:
    """Default the electrical nominals and enforce the shared clock."""
    if nominal is None:
        return BuckParameters(switching_frequency_hz=spec.clock_frequency_mhz * 1e6)
    if not np.isclose(
        nominal.switching_frequency_hz, spec.clock_frequency_mhz * 1e6
    ):
        raise ValueError(
            "the DPWM and the power stage share one switching clock: "
            f"spec says {spec.clock_frequency_mhz} MHz, nominal "
            f"parameters say {nominal.switching_frequency_hz / 1e6} MHz"
        )
    return nominal


@dataclass(frozen=True)
class PipelineResult:
    """Everything one fused pipeline run produced, stage by stage.

    Attributes:
        scheme: ``"proposed"`` or ``"conventional"``.
        reference_v: the regulation target the fleet was closed on.
        calibration: per-instance lock outcomes (stage 2).
        curves: per-instance post-calibration transfer curves (stage 2).
        regulation: the fleet's per-period regulation history (stage 4).
    """

    scheme: str
    reference_v: float
    calibration: EnsembleCalibration
    curves: EnsembleTransferCurves
    regulation: BatchRegulationResult

    @property
    def num_instances(self) -> int:
        return self.regulation.num_variants

    def steady_state_voltages_v(
        self, tail_fraction: float = 0.25
    ) -> npt.NDArray[np.float64]:
        """Per-instance steady-state output voltage."""
        return self.regulation.steady_state_voltage_v(tail_fraction)

    def limit_cycle_amplitudes_v(
        self, tail_fraction: float = 0.25
    ) -> npt.NDArray[np.float64]:
        """Per-instance steady-state peak-to-peak output ripple.

        This is the limit-cycle amplitude the DPWM's finite (and, after
        fabrication, nonlinear) resolution leaves behind once the loop has
        settled -- the regulation-side signature of the silicon.
        """
        return self.regulation.steady_state_ripple_v(tail_fraction)

    def regulation_errors_v(
        self, tail_fraction: float = 0.25
    ) -> npt.NDArray[np.float64]:
        """Per-instance |steady-state output - reference|."""
        return np.abs(self.steady_state_voltages_v(tail_fraction) - self.reference_v)


class SiliconToRegulationPipeline:
    """Variation -> calibration -> DPWM -> regulation, one vectorized stack.

    Construction runs the silicon stages (fabricate, calibrate, convert);
    :meth:`run` closes the fleet and advances it.  All per-instance state
    lives in stacked arrays end to end: the variation batch, the closed-form
    ensemble lock, the ``(instances, words)`` duty-table matrix and the
    batch closed loop -- there is no per-instance Python loop anywhere.
    """

    def __init__(
        self,
        scheme: str,
        spec: DesignSpec,
        conditions: OperatingConditions | None = None,
        *,
        variation: VariationModel | None = None,
        num_instances: int = 256,
        nominal: BuckParameters | None = None,
        reference_v: float = 0.9,
        component_variation: ComponentVariation | None = None,
        load: LoadProfile | None = None,
        loads: Sequence[LoadProfile] | None = None,
        adc: WindowedADC | None = None,
        compensator: BatchCompensator | None = None,
        reference_profile: ReferenceProfile | None = None,
        source_profile: SourceProfile | None = None,
        library: TechnologyLibrary | None = None,
        first_instance: int = 0,
        backend: str | KernelBackend | None = None,
    ) -> None:
        """Fabricate, calibrate and convert the silicon for a fleet.

        Args:
            scheme: ``"proposed"`` or ``"conventional"``.
            spec: the delay-line design specification; its clock frequency is
                the fleet's switching frequency.
            conditions: PVT operating point of the silicon (typical corner by
                default).
            variation: post-APR mismatch model; ``None`` fabricates ideal
                silicon.
            num_instances: fabricated instances = fleet variants.
            nominal: nominal electrical parameters; defaults to the stock
                :class:`BuckParameters` switched at the spec's frequency.
            reference_v: regulation target.
            component_variation: optional per-chip spread of the electrical
                components (L, C, parasitics, input rail).
            load / loads / adc / compensator / reference_profile /
                source_profile: forwarded to :class:`BatchClosedLoop`.
            library: technology library shared by design and calibration.
            first_instance: index of the first fabricated instance (for
                sharding one Monte-Carlo population across runs).
            backend: kernel backend name or instance shared by every stage
                (``docs/backends.md``); defaults to the process-wide
                selection (:func:`repro.kernels.get_backend`).
        """
        self.library = library or intel32_like_library()
        self.kernels = (
            backend if isinstance(backend, KernelBackend) else get_backend(backend)
        )
        self.conditions = conditions or OperatingConditions.typical()
        self.spec = spec
        self.nominal = nominal = _resolve_nominal(nominal, spec)
        self.ensemble = fabricate_ensemble(
            scheme,
            spec,
            variation=variation,
            num_instances=num_instances,
            library=self.library,
            first_instance=first_instance,
            backend=self.kernels,
        )
        self.scheme = self.ensemble.scheme
        self.calibration = self.ensemble.lock(self.conditions)
        self.curves = self.ensemble.transfer_curves(
            self.conditions, calibration=self.calibration
        )
        self.quantizer = BatchQuantizer.from_ensemble(self.curves)
        if component_variation is None:
            self.parameters = BatchBuckParameters.uniform(nominal, num_instances)
        else:
            self.parameters = component_variation.sample_batch(
                nominal, num_instances
            )
        self.reference_v = reference_v
        self._loop_kwargs: dict[str, Any] = dict(
            adc=adc,
            compensator=compensator,
            load=load,
            loads=loads,
            reference_profile=reference_profile,
            source_profile=source_profile,
        )

    @property
    def num_instances(self) -> int:
        return self.ensemble.num_instances

    def build_loop(self) -> BatchClosedLoop:
        """A fresh fleet closed around the fabricated DPWMs."""
        return BatchClosedLoop(
            self.parameters,
            self.quantizer,
            reference_v=self.reference_v,
            backend=self.kernels,
            **self._loop_kwargs,
        )

    def run(self, periods: int = 300) -> PipelineResult:
        """Advance a fresh fleet and bundle all stages into one result."""
        regulation = self.build_loop().run(periods)
        return PipelineResult(
            scheme=self.scheme,
            reference_v=self.reference_v,
            calibration=self.calibration,
            curves=self.curves,
            regulation=regulation,
        )


class ChunkedSiliconToRegulation:
    """The pipeline's chunked entry point for streaming Monte-Carlo.

    :class:`SiliconToRegulationPipeline` fabricates its whole population in
    the constructor -- the right shape for a fixed-N run.  A streaming
    sampler (:mod:`repro.mc`) instead grows the population until a
    confidence target is met, so this variant runs the (deterministic)
    design procedure once and defers all fabrication to :meth:`run_chunk`,
    which takes an explicit instance range.  Chunk boundaries never change
    the sample stream:

    * the silicon mismatch of instance ``i`` comes from
      :meth:`VariationModel.sample`'s per-instance RNG stream, and
    * the electrical spread of instance ``i`` comes from
      :meth:`ComponentVariation.sample_instances`'s per-instance stream
      (*not* the one-shot :meth:`~ComponentVariation.sample_batch` stream
      the fixed-N pipeline draws -- the two paths are different, equally
      valid populations),

    so ``run_chunk(0, n)`` equals the concatenation of any chunking of
    ``[0, n)`` bit for bit -- hypothesis-tested in ``tests/test_pipeline.py``.
    """

    def __init__(
        self,
        scheme: str,
        spec: DesignSpec,
        conditions: OperatingConditions | None = None,
        *,
        variation: VariationModel | None = None,
        nominal: BuckParameters | None = None,
        reference_v: float = 0.9,
        component_variation: ComponentVariation | None = None,
        correlation: CorrelatedVariationModel | None = None,
        load: LoadProfile | None = None,
        library: TechnologyLibrary | None = None,
        backend: str | KernelBackend | None = None,
    ) -> None:
        self.fabricator = ChunkedFabricator(
            scheme, spec, variation=variation, library=library, backend=backend
        )
        self.kernels = self.fabricator.kernels
        self.library = self.fabricator.library
        self.conditions = conditions or OperatingConditions.typical()
        self.spec = spec
        self.scheme = scheme
        self.nominal = _resolve_nominal(nominal, spec)
        self.reference_v = reference_v
        self.component_variation = component_variation
        self.correlation = correlation
        self.load = load

    def run_chunk(
        self,
        first_instance: int,
        num_instances: int,
        periods: int = 300,
        *,
        missions: MissionGenerator | Sequence[MissionProfile] | None = None,
        temperature_trace: TemperatureTrace | None = None,
        thermal: ThermalDerating | None = None,
    ) -> PipelineResult:
        """Fabricate and regulate instances ``first_instance .. +num_instances``.

        ``missions`` gives every instance its own composed load history (a
        :class:`~repro.converter.missions.MissionGenerator` draws one per
        instance from its chunk-invariant stream; an explicit sequence
        supplies one :class:`~repro.converter.missions.MissionProfile` per
        instance).  ``temperature_trace`` makes the run non-isothermal: the
        run is split at the trace's epoch boundaries, the ensemble is
        re-locked at each epoch's temperature through the corner model (so
        the DPWM duty tables drift exactly as a static run at that
        temperature would) and the electricals are re-derated through
        ``thermal`` (default :class:`~repro.technology.thermal
        .ThermalDerating`), with exact closed-loop state carry-over across
        the boundaries -- an all-nominal-temperature trace reproduces the
        unsplit run bit for bit.
        """
        if thermal is not None and temperature_trace is None:
            raise ValueError("thermal derating requires a temperature_trace")
        if missions is None and temperature_trace is None:
            ensemble = self.fabricator.fabricate(
                num_instances, first_instance=first_instance
            )
            calibration = ensemble.lock(self.conditions)
            curves = ensemble.transfer_curves(
                self.conditions, calibration=calibration
            )
            quantizer = BatchQuantizer.from_ensemble(curves)
            parameters = self._chunk_parameters(num_instances, first_instance)
            loop = BatchClosedLoop(
                parameters,
                quantizer,
                reference_v=self.reference_v,
                load=self.load,
                backend=self.kernels,
            )
            return PipelineResult(
                scheme=ensemble.scheme,
                reference_v=self.reference_v,
                calibration=calibration,
                curves=curves,
                regulation=loop.run(periods),
            )
        return self._run_chunk_mission(
            first_instance,
            num_instances,
            periods,
            missions=missions,
            temperature_trace=temperature_trace,
            thermal=thermal,
        )

    def _chunk_parameters(
        self, num_instances: int, first_instance: int
    ) -> BatchBuckParameters:
        """The chunk's per-instance electrical parameters (chunk-stable)."""
        if self.component_variation is None:
            return BatchBuckParameters.uniform(self.nominal, num_instances)
        return self.component_variation.sample_instances(
            self.nominal,
            num_instances,
            first_instance=first_instance,
            correlation=self.correlation,
        )

    def _run_chunk_mission(
        self,
        first_instance: int,
        num_instances: int,
        periods: int,
        *,
        missions: MissionGenerator | Sequence[MissionProfile] | None,
        temperature_trace: TemperatureTrace | None,
        thermal: ThermalDerating | None,
    ) -> PipelineResult:
        """Mission / temperature-drift run: epoch-split with state carry-over.

        The run is cut at the temperature trace's epoch boundaries (one
        isothermal epoch when no trace is given).  Within each epoch the
        fleet advances under per-instance loads shifted to the epoch's
        start (:meth:`OffsetLoad.wrap <repro.converter.missions.OffsetLoad
        .wrap>`), so the concatenated history is the same sequence of load
        resistances -- and, with the compensator object and the converter
        state carried across the boundary, the same closed-loop trajectory
        -- as an unsplit run.
        """
        ensemble = self.fabricator.fabricate(
            num_instances, first_instance=first_instance
        )
        base_parameters = self._chunk_parameters(num_instances, first_instance)
        mission_list = (
            resolve_missions(missions, num_instances, first_instance)
            if missions is not None
            else None
        )
        if temperature_trace is not None:
            epochs: list[tuple[int, int, float | None]] = [
                (start, end, temperature)
                for start, end, temperature in temperature_trace.epochs(periods)
            ]
            derating = thermal or ThermalDerating()
        else:
            epochs = [(0, periods, None)]
            derating = None

        calibration: EnsembleCalibration | None = None
        curves: EnsembleTransferCurves | None = None
        pieces: list[BatchRegulationResult] = []
        compensator: BatchCompensator | None = None
        carried_voltage: npt.NDArray[np.float64] | None = None
        carried_current: npt.NDArray[np.float64] | None = None
        for start, end, temperature in epochs:
            conditions = (
                self.conditions.with_temperature(temperature)
                if temperature is not None
                else self.conditions
            )
            epoch_calibration = ensemble.lock(conditions)
            epoch_curves = ensemble.transfer_curves(
                conditions, calibration=epoch_calibration
            )
            quantizer = BatchQuantizer.from_ensemble(epoch_curves)
            if calibration is None or curves is None:
                calibration = epoch_calibration
                curves = epoch_curves
            parameters = (
                derating.derate(base_parameters, temperature)
                if derating is not None and temperature is not None
                else base_parameters
            )
            if mission_list is not None:
                loop = BatchClosedLoop(
                    parameters,
                    quantizer,
                    reference_v=self.reference_v,
                    compensator=compensator,
                    loads=[
                        OffsetLoad.wrap(mission, start)
                        for mission in mission_list
                    ],
                    start_at_reference=compensator is None,
                    backend=self.kernels,
                )
            else:
                loop = BatchClosedLoop(
                    parameters,
                    quantizer,
                    reference_v=self.reference_v,
                    compensator=compensator,
                    load=(
                        OffsetLoad.wrap(self.load, start)
                        if self.load is not None
                        else None
                    ),
                    start_at_reference=compensator is None,
                    backend=self.kernels,
                )
            if carried_voltage is not None and carried_current is not None:
                loop.output_voltage_v = carried_voltage
                loop.inductor_current_a = carried_current
            pieces.append(loop.run(end - start))
            compensator = loop.compensator
            carried_voltage = loop.output_voltage_v.copy()
            carried_current = loop.inductor_current_a.copy()

        if calibration is None or curves is None:  # pragma: no cover
            raise RuntimeError("temperature trace produced no epochs")
        regulation = BatchRegulationResult(
            switching_period_s=pieces[0].switching_period_s,
            output_voltages_v=np.concatenate(
                [piece.output_voltages_v for piece in pieces], axis=0
            ),
            inductor_currents_a=np.concatenate(
                [piece.inductor_currents_a for piece in pieces], axis=0
            ),
            duty_words=np.concatenate(
                [piece.duty_words for piece in pieces], axis=0
            ),
            duty_fractions=np.concatenate(
                [piece.duty_fractions for piece in pieces], axis=0
            ),
            error_codes=np.concatenate(
                [piece.error_codes for piece in pieces], axis=0
            ),
            load_resistances_ohm=np.concatenate(
                [piece.load_resistances_ohm for piece in pieces], axis=0
            ),
        )
        return PipelineResult(
            scheme=ensemble.scheme,
            reference_v=self.reference_v,
            calibration=calibration,
            curves=curves,
            regulation=regulation,
        )

    def run_chunk_tilted(
        self,
        first_instance: int,
        num_instances: int,
        periods: int = 300,
        *,
        component_tilt: ComponentTilt | None = None,
        silicon_shift: float = 0.0,
        silicon_sigma_scale: float = 1.0,
    ) -> tuple[PipelineResult, npt.NDArray[np.float64]]:
        """Run a chunk drawn from tilted variation distributions.

        The importance-sampling sibling of :meth:`run_chunk`: the silicon
        mismatch and/or the electrical component spreads are drawn from
        tilted distributions concentrated on the failure region, and the
        second return value carries each instance's *combined*
        log-likelihood ratio back to the nominal process -- the silicon
        and component draws are independent, so their log-ratios add.
        Feed the ratios to :func:`repro.mc.importance_sample` alongside
        whatever pass flags the caller scores on the
        :class:`PipelineResult`.  All-identity tilts reproduce
        :meth:`run_chunk` bit for bit with zero log-weights.
        """
        log_weights = np.zeros(num_instances)
        silicon_identity = math.isclose(silicon_shift, 0.0) and math.isclose(
            silicon_sigma_scale, 1.0
        )
        if silicon_identity:
            ensemble = self.fabricator.fabricate(
                num_instances, first_instance=first_instance
            )
        else:
            ensemble, silicon_lw = self.fabricator.fabricate_tilted(
                num_instances,
                first_instance=first_instance,
                shift=silicon_shift,
                sigma_scale=silicon_sigma_scale,
            )
            log_weights += silicon_lw
        calibration = ensemble.lock(self.conditions)
        curves = ensemble.transfer_curves(self.conditions, calibration=calibration)
        quantizer = BatchQuantizer.from_ensemble(curves)
        if self.component_variation is None:
            if component_tilt is not None:
                raise ValueError(
                    "component_tilt requires a component_variation model"
                )
            parameters = BatchBuckParameters.uniform(self.nominal, num_instances)
        elif component_tilt is None:
            parameters = self.component_variation.sample_instances(
                self.nominal, num_instances, first_instance=first_instance
            )
        else:
            parameters, component_lw = (
                self.component_variation.sample_instances_tilted(
                    self.nominal,
                    num_instances,
                    first_instance=first_instance,
                    tilt=component_tilt,
                )
            )
            log_weights += component_lw
        loop = BatchClosedLoop(
            parameters,
            quantizer,
            reference_v=self.reference_v,
            load=self.load,
            backend=self.kernels,
        )
        return (
            PipelineResult(
                scheme=ensemble.scheme,
                reference_v=self.reference_v,
                calibration=calibration,
                curves=curves,
                regulation=loop.run(periods),
            ),
            log_weights,
        )


def closed_loop_cell(
    scheme: str,
    *,
    frequency_mhz: float,
    seed: int,
    corner: str = "typical",
    resolution_bits: int = 6,
    reference_v: float = 0.9,
    num_instances: int = 256,
    periods: int = 300,
    linearity_spec: LinearitySpec | None = None,
    regulation_spec: RegulationSpec | None = None,
    load: LoadProfile | None = None,
    nominal: BuckParameters | None = None,
    library: TechnologyLibrary | None = None,
) -> ClosedLoopYieldResult:
    """One silicon-to-regulation sweep cell from scalar cell coordinates.

    This is the cell-sized entry point of the pipeline: everything that
    identifies the cell -- scheme, corner *name*, switching frequency, RNG
    seed -- is a JSON scalar, so a sweep grid can address, schedule and
    cache the cell, while the rich objects (operating conditions, seeded
    variation models, pass/fail specs) are reconstructed here, inside the
    worker.  Both the silicon mismatch draw and the per-chip component
    spread derive from ``seed``, making the cell a pure function of its
    arguments: serial, parallel and cached evaluations agree bit for bit.

    Returns the composed
    :class:`~repro.core.yield_analysis.ClosedLoopYieldResult`; callers
    flatten it into their payload schema.
    """
    from repro.core.yield_analysis import closed_loop_yield

    conditions = OperatingConditions(corner=ProcessCorner[corner.upper()])
    return closed_loop_yield(
        scheme,
        DesignSpec(
            clock_frequency_mhz=frequency_mhz, resolution_bits=resolution_bits
        ),
        conditions,
        nominal=nominal,
        reference_v=reference_v,
        variation=VariationModel(seed=seed),
        component_variation=ComponentVariation(seed=seed),
        num_instances=num_instances,
        periods=periods,
        linearity_spec=linearity_spec,
        regulation_spec=regulation_spec,
        load=load,
        library=library,
    )

"""Closed-loop regulation kernels (numpy reference implementations).

These are the per-period hot-path operations of
:class:`~repro.simulation.batch.BatchClosedLoop`: the exact 2x2
state-transition coefficient evaluation that fills the per-load coefficient
tables, the coefficient gather itself, the PID compensator law and the
duty-word quantizer.  Every function is stateless and RNG-free, takes plain
arrays (plus scalar configuration) and returns plain arrays -- the kernel
contract of :mod:`repro.kernels` (see ``docs/backends.md``), enforced by
the ``kernel-purity`` lint rule.

The implementations here are the *reference*: they preserve the exact
operation order of the pre-split engine code, so the numpy backend is
bit-identical to the historical behaviour and every other backend is
measured against them (:data:`repro.kernels.TOLERANCES`).
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

from repro.converter.buck import exact_interval_coefficients

__all__ = [
    "apply_period_step",
    "gather_coefficients",
    "interval_coefficients",
    "pid_update",
    "quantize_duty",
]

FloatArray = npt.NDArray[np.float64]
IntArray = npt.NDArray[np.int64]


def interval_coefficients(
    a: FloatArray,
    b: FloatArray,
    c: FloatArray,
    d: FloatArray,
    on_time_s: FloatArray,
    period_s: FloatArray,
) -> FloatArray:
    """``(variants, 12)`` on+off exact-stepper coefficients for one period.

    For per-variant plant-matrix entries ``(a, b, c, d)`` (see
    :func:`~repro.converter.buck.plant_matrix_entries`) and per-variant
    on-times, evaluates the closed-form matrix exponential update of the
    on interval and the off interval and stacks both coefficient sets along
    the last axis: columns 0..5 are the on-interval ``(ad11, ad12, ad21,
    ad22, m11, m21)``, columns 6..11 the off-interval ones.
    """
    on = exact_interval_coefficients(a, b, c, d, on_time_s)
    off = exact_interval_coefficients(a, b, c, d, period_s - on_time_s)
    return np.stack(np.broadcast_arrays(*on, *off), axis=-1)


def gather_coefficients(
    table: FloatArray, slots: IntArray, variant_rows: IntArray
) -> FloatArray:
    """``(variants, 12)`` coefficients gathered from a filled table.

    ``table`` is the ``(slots, variants, 12)`` per-duty-word coefficient
    memo of the batch engine's load tables; ``slots`` holds each variant's
    slot for this period's duty word.  One fancy-indexing gather, bit-equal
    to evaluating the coefficients fresh (the evaluation is elementwise per
    variant).
    """
    return table[slots, variant_rows, :]


def pid_update(
    error: FloatArray,
    integral: FloatArray,
    previous_error: FloatArray,
    kp: FloatArray,
    ki: FloatArray,
    kd: FloatArray,
    min_duty: FloatArray,
    max_duty: FloatArray,
) -> tuple[FloatArray, FloatArray]:
    """One PID period on arrays: ``(duty_commands, new_integral)``.

    The law of :class:`~repro.converter.compensator.PIDCompensator`:
    accumulate the clamped integral, add the proportional and derivative
    terms, clamp the command to the duty limits.  The caller keeps the
    state (integral, previous error); this function only computes.
    """
    integral = np.clip(integral + ki * error, min_duty, max_duty)
    duty = integral + kp * error + kd * (error - previous_error)
    return np.clip(duty, min_duty, max_duty), integral


def quantize_duty(
    commands: FloatArray,
    levels: FloatArray,
    num_words: IntArray,
    rows: IntArray,
) -> tuple[IntArray, FloatArray]:
    """Duty commands -> ``(duty words, achieved duty fractions)``.

    Matches the scalar ``duty_word_for`` of the ideal and calibrated DPWMs
    exactly: clip the command to [0, 1], round half to even to a word,
    clamp to the top word, then look the achieved duty up in the
    per-variant ``levels`` table (``rows`` selects each command's table
    row, so a single shared row serves any fleet size).
    """
    commands = np.clip(commands, 0.0, 1.0)
    counts = num_words[rows]
    words = np.minimum(np.rint(commands * counts).astype(np.int64), counts - 1)
    return words, levels[rows, words]


def apply_period_step(
    step: FloatArray,
    current: FloatArray,
    voltage: FloatArray,
    drive: FloatArray,
) -> tuple[FloatArray, FloatArray]:
    """Advance the fleet state through one on+off switching period.

    ``step`` is the ``(variants, 12)`` coefficient matrix of
    :func:`interval_coefficients`.  The on interval applies the drive term
    (switch node at the source voltage); the off interval is drive-free
    (switch node grounded).  Returns the new ``(current, voltage)``.
    """
    on_current = step[:, 0] * current + step[:, 1] * voltage + step[:, 4] * drive
    on_voltage = step[:, 2] * current + step[:, 3] * voltage + step[:, 5] * drive
    return (
        step[:, 6] * on_current + step[:, 7] * on_voltage,
        step[:, 8] * on_current + step[:, 9] * on_voltage,
    )

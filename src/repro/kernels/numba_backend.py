"""Numba-compiled kernels (optional backend).

Importing this module requires :mod:`numba`; the backend registry
(:mod:`repro.kernels.backend`) catches the :class:`ImportError` and falls
back to the numpy backend with a logged note, so a numpy-only install
never sees this file executed.

Only the per-period closed-loop kernels are JIT-compiled -- they run once
per switching period per fleet and their numpy forms are chains of small
interpreter-dispatched ufunc calls, which is exactly the shape
``numba.njit`` collapses into one allocation-free loop.  The one-shot
fabrication and ensemble-calibration kernels are gather/broadcast
dominated (memory bound, executed once per run), so this backend reuses
their numpy reference implementations unchanged; see ``docs/backends.md``.

Equivalence vs the numpy reference (``tests/test_kernels.py``):
elementwise add/multiply/compare kernels are bit-identical;
:func:`interval_coefficients` goes through ``exp``/``cos``/``cosh`` where
numpy's SIMD routines and libm may differ in the last ulps, so it carries
the documented tolerance in :data:`repro.kernels.backend.TOLERANCES`.
"""

from __future__ import annotations

import math
from typing import Any, Callable

import numba
import numpy as np

__all__ = ["compiled_kernels"]

_njit = numba.njit(cache=True)


@_njit
def _interval_scalar(
    a: float, b: float, c: float, d: float, duration: float
) -> tuple[float, float, float, float, float, float]:
    # Scalar transcription of repro.converter.buck.exact_interval_coefficients
    # (same branch structure: degenerate, oscillatory, grouped-overdamped,
    # direct-overdamped).
    mu = 0.5 * (a + d)
    delta = 0.5 * (a - d)
    q_squared = delta * delta + b * c
    scale = max(mu * mu, abs(q_squared))
    envelope = math.exp(mu * duration)
    if abs(q_squared) <= 1e-24 * max(scale, 1.0):
        cosh_env = envelope
        sinh_env = duration * envelope
    else:
        q = math.sqrt(abs(q_squared))
        qt = q * duration
        if q_squared < 0.0:
            cosh_env = envelope * math.cos(qt)
            sinh_env = envelope * math.sin(qt) / q
        elif qt > 30.0:
            exp_plus = math.exp((mu + q) * duration)
            exp_minus = math.exp((mu - q) * duration)
            cosh_env = 0.5 * (exp_plus + exp_minus)
            sinh_env = (exp_plus - exp_minus) / (2.0 * q)
        else:
            cosh_env = envelope * math.cosh(qt)
            sinh_env = envelope * math.sinh(qt) / q
    ad11 = cosh_env + sinh_env * delta
    ad12 = sinh_env * b
    ad21 = sinh_env * c
    ad22 = cosh_env - sinh_env * delta
    det = a * d - b * c
    m11 = (d * (ad11 - 1.0) - b * ad21) / det
    m21 = (a * ad21 - c * (ad11 - 1.0)) / det
    return ad11, ad12, ad21, ad22, m11, m21


@_njit
def interval_coefficients(
    a: Any, b: Any, c: Any, d: Any, on_time_s: Any, period_s: Any
) -> Any:
    num_variants = a.shape[0]
    out = np.empty((num_variants, 12))
    for i in range(num_variants):
        on = _interval_scalar(a[i], b[i], c[i], d[i], on_time_s[i])
        off = _interval_scalar(a[i], b[i], c[i], d[i], period_s[i] - on_time_s[i])
        out[i, 0], out[i, 1], out[i, 2], out[i, 3], out[i, 4], out[i, 5] = on
        out[i, 6], out[i, 7], out[i, 8], out[i, 9], out[i, 10], out[i, 11] = off
    return out


@_njit
def gather_coefficients(table: Any, slots: Any, variant_rows: Any) -> Any:
    num_variants = slots.shape[0]
    out = np.empty((num_variants, 12))
    for i in range(num_variants):
        slot = slots[i]
        row = variant_rows[i]
        for j in range(12):
            out[i, j] = table[slot, row, j]
    return out


@_njit
def pid_update(
    error: Any,
    integral: Any,
    previous_error: Any,
    kp: Any,
    ki: Any,
    kd: Any,
    min_duty: Any,
    max_duty: Any,
) -> Any:
    num_variants = error.shape[0]
    duty = np.empty(num_variants)
    new_integral = np.empty(num_variants)
    for i in range(num_variants):
        accumulated = integral[i] + ki[i] * error[i]
        if accumulated < min_duty[i]:
            accumulated = min_duty[i]
        elif accumulated > max_duty[i]:
            accumulated = max_duty[i]
        command = (
            accumulated
            + kp[i] * error[i]
            + kd[i] * (error[i] - previous_error[i])
        )
        if command < min_duty[i]:
            command = min_duty[i]
        elif command > max_duty[i]:
            command = max_duty[i]
        new_integral[i] = accumulated
        duty[i] = command
    return duty, new_integral


@_njit
def quantize_duty(commands: Any, levels: Any, num_words: Any, rows: Any) -> Any:
    count = commands.shape[0]
    words = np.empty(count, dtype=np.int64)
    duties = np.empty(count)
    for i in range(count):
        command = commands[i]
        if command < 0.0:
            command = 0.0
        elif command > 1.0:
            command = 1.0
        row = rows[i]
        top = num_words[row] - 1
        word = np.int64(np.rint(command * num_words[row]))
        if word > top:
            word = top
        words[i] = word
        duties[i] = levels[row, word]
    return words, duties


@_njit
def apply_period_step(step: Any, current: Any, voltage: Any, drive: Any) -> Any:
    num_variants = current.shape[0]
    new_current = np.empty(num_variants)
    new_voltage = np.empty(num_variants)
    for i in range(num_variants):
        on_current = (
            step[i, 0] * current[i] + step[i, 1] * voltage[i] + step[i, 4] * drive[i]
        )
        on_voltage = (
            step[i, 2] * current[i] + step[i, 3] * voltage[i] + step[i, 5] * drive[i]
        )
        new_current[i] = step[i, 6] * on_current + step[i, 7] * on_voltage
        new_voltage[i] = step[i, 8] * on_current + step[i, 9] * on_voltage
    return new_current, new_voltage


def compiled_kernels() -> dict[str, Callable[..., Any]]:
    """The kernel overrides this backend compiles (name -> callable)."""
    return {
        "interval_coefficients": interval_coefficients,
        "gather_coefficients": gather_coefficients,
        "pid_update": pid_update,
        "quantize_duty": quantize_duty,
        "apply_period_step": apply_period_step,
    }


def warm_up() -> None:
    """Trigger JIT compilation of every kernel on a tiny workload.

    Benchmarks call this before timing so compile time is not billed to
    the first measured period.
    """
    ones = np.ones(2)
    step = interval_coefficients(
        -0.1 * ones, -1.0 * ones, 1.0 * ones, -0.2 * ones, 0.4 * ones, ones
    )
    table = step[np.newaxis]
    slots = np.zeros(2, dtype=np.int64)
    rows = np.arange(2, dtype=np.int64)
    gather_coefficients(table, slots, rows)
    pid_update(
        ones, 0.5 * ones, ones, 0.1 * ones, 0.1 * ones, 0.0 * ones,
        0.0 * ones, 1.0 * ones,
    )
    quantize_duty(
        0.5 * ones, np.tile(np.linspace(0.0, 1.0, 4), (2, 1)),
        np.full(2, 4, dtype=np.int64), rows,
    )
    apply_period_step(step, ones, ones, ones)

"""Backend-pluggable math kernels for the batch engines.

This package splits the pure array math out of the orchestration layers
(:mod:`repro.simulation.batch`, :mod:`repro.core.ensemble`,
:mod:`repro.pipeline`) into stateless, RNG-free functions -- arrays in,
arrays out -- grouped by stage:

* :mod:`repro.kernels.closed_loop` -- per-period regulation kernels
  (exact 2x2 stepper coefficients, coefficient gather, PID update, duty
  quantizer, state advance);
* :mod:`repro.kernels.ensemble` -- calibration kernels (proposed lock
  fixed point, transfer-curve matrix build, conventional first-crossing);
* :mod:`repro.kernels.fabrication` -- variation-draw-to-delay kernels.

:mod:`repro.kernels.backend` selects between named kernel *sets*: the
always-available ``numpy`` reference, and a ``numba`` backend that
JIT-compiles the per-period kernels when numba is importable (falling
back to numpy, with a logged note, when it is not).  See
``docs/backends.md`` for the contract, selection precedence, and the
cross-backend tolerance policy.
"""

from repro.kernels.backend import (
    DEFAULT_BACKEND,
    ENV_VAR,
    TOLERANCES,
    KernelBackend,
    active_backend_name,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend_name,
)

__all__ = [
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "TOLERANCES",
    "KernelBackend",
    "active_backend_name",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend_name",
]

"""Delay-line ensemble kernels (numpy reference implementations).

The closed-form batch calibration math of :mod:`repro.core.ensemble`: the
proposed scheme's tap-count fixed point, the conventional scheme's
first-crossing search over the tuning-level schedule, and the
``(instances, words)`` transfer-curve matrix build of the proposed
mapper.  Stateless, RNG-free, arrays in / arrays out -- the kernel
contract of :mod:`repro.kernels` (``docs/backends.md``), enforced by the
``kernel-purity`` lint rule.

These reference implementations preserve the exact operation order the
ensemble engine used before the kernel split, so the numpy backend stays
bit-identical to the scalar cycle-accurate controllers (the property
``tests/test_core_ensemble.py`` asserts).
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

__all__ = [
    "conventional_crossing",
    "proposed_lock",
    "proposed_transfer_delays",
]

FloatArray = npt.NDArray[np.float64]
IntArray = npt.NDArray[np.int64]
BoolArray = npt.NDArray[np.bool_]


def proposed_lock(
    taps: FloatArray, half_period_ps: float, num_cells: int
) -> tuple[IntArray, BoolArray, FloatArray]:
    """Closed-form proposed-scheme lock: ``(control, locked, locked_delay)``.

    ``taps`` is the ``(instances, num_cells)`` cumulative tap-delay matrix.
    Tap delays increase strictly along the line, so the count of taps at or
    below the half period is the unique fixed point the scalar up/down walk
    dithers around; ``count = 0`` saturates at the bottom of the line,
    ``count = num_cells`` at the top (both unlocked).
    """
    count = np.count_nonzero(taps <= half_period_ps, axis=1)
    control = np.clip(count, 1, num_cells)
    locked = (count >= 1) & (count <= num_cells - 1)
    locked_delay = np.take_along_axis(
        taps, (control - 1)[:, np.newaxis], axis=1
    )[:, 0]
    return control, locked, locked_delay


def proposed_transfer_delays(
    taps: FloatArray,
    tap_sel: IntArray,
    words: IntArray,
    shift_amount: int,
    num_cells: int,
) -> FloatArray:
    """``(instances, words)`` proposed-scheme transfer-curve matrix.

    Applies the mapping block's eq.-18 multiply/shift/clamp as one
    vectorized integer expression over ``(instances, words)`` and gathers
    each selected tap's cumulative delay; a mapped selection of zero is
    the no-delay word.
    """
    cal_sel = np.minimum(
        (words[np.newaxis, :] * tap_sel[:, np.newaxis]) >> shift_amount,
        num_cells - 1,
    )
    delays = np.take_along_axis(taps, np.maximum(cal_sel - 1, 0), axis=1)
    return np.where(cal_sel == 0, 0.0, delays)


def conventional_crossing(
    totals: FloatArray,
    last_but_one: FloatArray,
    period_ps: float,
    max_steps: int,
) -> tuple[IntArray, BoolArray, FloatArray]:
    """First period-crossing of the conventional tuning-level schedule.

    ``totals`` holds every ``(instance, step)`` pair's total line delay,
    ``last_but_one`` the delay up to the next-to-last cell.  The controller
    halts at the first step whose total reaches the clock period; when none
    does it saturates at ``max_steps`` (the scalar ``up_limit`` edge).  An
    instance locks validly when its stopping step's total reaches the
    period while the line minus its last cell stays below it.  Returns
    ``(steps, locked, total_at_stop)``.
    """
    reaches = totals >= period_ps
    any_reach = reaches.any(axis=1)
    steps = np.where(any_reach, np.argmax(reaches, axis=1), max_steps)
    rows = np.arange(totals.shape[0])
    total_at_stop = totals[rows, steps]
    locked = (last_but_one[rows, steps] < period_ps) & (total_at_stop >= period_ps)
    return steps, locked, total_at_stop

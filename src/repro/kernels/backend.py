"""Backend registry and selection for the compiled kernel layer.

A *backend* is a complete, named set of kernel implementations -- one
callable per kernel of the contract (see ``docs/backends.md``).  The
``numpy`` backend is the reference and is always available; the ``numba``
backend JIT-compiles the per-period closed-loop kernels when :mod:`numba`
is importable and **falls back to numpy with a logged note** when it is
not, so selection can never break a numpy-only install.

Selection precedence (first match wins):

1. an explicit ``backend=`` argument on an engine constructor or a direct
   :func:`get_backend` call;
2. the ``REPRO_BACKEND`` environment variable (which is what the runner's
   ``--backend`` CLI flag sets, so worker processes inherit it);
3. the default, ``numpy``.

The *effective* backend name (:func:`active_backend_name`) -- i.e. after
any fallback -- is part of every sweep-cache cell key
(:func:`repro.sweep.cache.cell_key`), so cached cells computed under
different backends can never collide.
"""

from __future__ import annotations

import logging
import os
from dataclasses import dataclass, fields
from typing import Any, Callable, Dict

from repro.kernels import closed_loop, ensemble, fabrication

__all__ = [
    "DEFAULT_BACKEND",
    "ENV_VAR",
    "TOLERANCES",
    "KernelBackend",
    "active_backend_name",
    "available_backends",
    "get_backend",
    "register_backend",
    "resolve_backend_name",
]

log = logging.getLogger("repro.kernels")

#: Environment variable naming the backend to use when no explicit
#: ``backend=`` argument is given (the CLI's ``--backend`` flag sets it).
ENV_VAR = "REPRO_BACKEND"

#: The always-available reference backend.
DEFAULT_BACKEND = "numpy"

Kernel = Callable[..., Any]

#: Per-kernel equivalence tolerance policy: the relative tolerance every
#: backend's implementation must meet against the numpy reference
#: (``tests/test_kernels.py`` enforces it for each available backend).
#: ``0.0`` demands bit-identity -- the elementwise add/multiply/compare
#: kernels preserve the reference operation order exactly.
#: ``interval_coefficients`` runs through ``exp``/``cos``/``cosh``, where
#: compiled libm code and numpy's SIMD routines legitimately differ in the
#: last ulps, hence its documented non-zero tolerance.
TOLERANCES: Dict[str, float] = {
    "interval_coefficients": 1e-12,
    "gather_coefficients": 0.0,
    "pid_update": 0.0,
    "quantize_duty": 0.0,
    "apply_period_step": 0.0,
    "proposed_lock": 0.0,
    "proposed_transfer_delays": 0.0,
    "conventional_crossing": 0.0,
    "cell_delays_from_multipliers": 0.0,
    "active_branch_delays": 0.0,
    "duty_tables_from_delays": 0.0,
}


@dataclass(frozen=True)
class KernelBackend:
    """One named, complete set of kernel implementations.

    Attributes:
        name: registry name (``"numpy"``, ``"numba"``, ...).
        compiled: whether any kernel is JIT/AOT compiled (diagnostics and
            bench reports only; selection never reads it).
    """

    name: str
    compiled: bool
    interval_coefficients: Kernel
    gather_coefficients: Kernel
    pid_update: Kernel
    quantize_duty: Kernel
    apply_period_step: Kernel
    proposed_lock: Kernel
    proposed_transfer_delays: Kernel
    conventional_crossing: Kernel
    cell_delays_from_multipliers: Kernel
    active_branch_delays: Kernel
    duty_tables_from_delays: Kernel

    @classmethod
    def kernel_names(cls) -> tuple[str, ...]:
        """The kernel contract: every field that is a kernel callable."""
        return tuple(
            field.name for field in fields(cls) if field.name not in ("name", "compiled")
        )


def _numpy_kernels() -> Dict[str, Kernel]:
    """The reference implementations, by kernel name."""
    return {
        "interval_coefficients": closed_loop.interval_coefficients,
        "gather_coefficients": closed_loop.gather_coefficients,
        "pid_update": closed_loop.pid_update,
        "quantize_duty": closed_loop.quantize_duty,
        "apply_period_step": closed_loop.apply_period_step,
        "proposed_lock": ensemble.proposed_lock,
        "proposed_transfer_delays": ensemble.proposed_transfer_delays,
        "conventional_crossing": ensemble.conventional_crossing,
        "cell_delays_from_multipliers": fabrication.cell_delays_from_multipliers,
        "active_branch_delays": fabrication.active_branch_delays,
        "duty_tables_from_delays": fabrication.duty_tables_from_delays,
    }


def _build_numpy() -> KernelBackend:
    return KernelBackend(name="numpy", compiled=False, **_numpy_kernels())


def _build_numba() -> KernelBackend:
    """The numba backend, or the numpy backend when numba is absent.

    The fallback is deliberate API: requesting ``numba`` on a numpy-only
    install degrades to the reference backend with a logged note instead
    of failing, and the *returned* backend's name says ``numpy`` so cache
    keys and bench reports record what actually ran.
    """
    try:
        from repro.kernels import numba_backend
    except ImportError:
        log.warning(
            "backend 'numba' requested but numba is not importable; "
            "falling back to the 'numpy' reference backend"
        )
        return get_backend("numpy")
    kernels = _numpy_kernels()
    kernels.update(numba_backend.compiled_kernels())
    return KernelBackend(name="numba", compiled=True, **kernels)


_FACTORIES: Dict[str, Callable[[], KernelBackend]] = {
    "numpy": _build_numpy,
    "numba": _build_numba,
}

_INSTANCES: Dict[str, KernelBackend] = {}


def register_backend(name: str, factory: Callable[[], KernelBackend]) -> None:
    """Register a backend factory under a name (see ``docs/backends.md``).

    The factory is called lazily on first :func:`get_backend` and its
    result is cached for the life of the process.
    """
    if name in _FACTORIES:
        raise ValueError(f"backend {name!r} is already registered")
    _FACTORIES[name] = factory


def available_backends() -> tuple[str, ...]:
    """Registered backend names, in registration order.

    Registration does not imply the backend's dependencies are installed:
    ``numba`` is always listed, and resolves to the numpy fallback when
    the JIT toolchain is absent.
    """
    return tuple(_FACTORIES)


def resolve_backend_name(name: str | None = None) -> str:
    """The backend name selection resolves to, before any fallback.

    Precedence: explicit ``name`` > ``REPRO_BACKEND`` > ``numpy``.
    Unknown names raise :class:`ValueError` naming the registry.
    """
    if name is None:
        name = os.environ.get(ENV_VAR) or DEFAULT_BACKEND
    if name not in _FACTORIES:
        raise ValueError(
            f"unknown kernel backend {name!r}; available: "
            f"{', '.join(available_backends())}"
        )
    return name


def get_backend(name: str | None = None) -> KernelBackend:
    """The selected backend's kernel set (see the module docstring).

    The returned object's ``name`` is the *effective* backend: requesting
    ``numba`` without numba installed returns the numpy backend (with a
    logged note), so callers recording provenance record the truth.
    """
    resolved = resolve_backend_name(name)
    backend = _INSTANCES.get(resolved)
    if backend is None:
        backend = _FACTORIES[resolved]()
        _INSTANCES[resolved] = backend
    return backend


def active_backend_name(name: str | None = None) -> str:
    """The effective backend name selection resolves to right now.

    This is what enters sweep-cache cell keys: the post-fallback name, so
    a ``numba``-requested run that actually computed with numpy shares its
    cache entries with explicit numpy runs (they are the same numbers)
    and a genuinely numba-computed cell never collides with them.
    """
    return get_backend(name).name

"""Fabrication kernels (numpy reference implementations).

The variation-draw-to-delay math of the silicon stages: turning a batch of
per-buffer mismatch multipliers into per-cell delay matrices (proposed
lines sum whole cells, conventional lines gather the active prefix of each
cell's longest branch) and turning calibrated reset-edge delay matrices
into per-instance DPWM duty tables.  The random *draw* itself stays in the
orchestration layer (:mod:`repro.technology.variation`); kernels only see
the drawn arrays -- stateless, RNG-free, arrays in / arrays out
(``docs/backends.md``), enforced by the ``kernel-purity`` lint rule.
"""

from __future__ import annotations

import numpy as np
import numpy.typing as npt

__all__ = [
    "active_branch_delays",
    "cell_delays_from_multipliers",
    "duty_tables_from_delays",
]

FloatArray = npt.NDArray[np.float64]
IntArray = npt.NDArray[np.int64]


def cell_delays_from_multipliers(
    multipliers: FloatArray, unit_delay_ps: float
) -> FloatArray:
    """Per-cell delays from a ``(..., cells, buffers)`` multiplier stack.

    A proposed-scheme cell chains all of its buffers, so its delay is the
    unit delay times the sum of the cell's multipliers along the buffer
    axis.
    """
    return multipliers.sum(axis=-1) * unit_delay_ps


def active_branch_delays(
    multipliers: FloatArray, buffers_active: IntArray, unit_delay_ps: float
) -> FloatArray:
    """Delay of the active branch of every cell, from per-buffer multipliers.

    The active branch of a conventional cell uses the first
    ``buffers_active`` buffers of its longest branch, so its delay is the
    unit delay times the prefix sum of those multipliers -- one gather into
    the running cumulative sum along the buffer axis.  ``multipliers`` is
    ``(..., cells, buffers)`` and ``buffers_active`` ``(..., cells)``;
    leading batch axes broadcast, and the accumulation order is the same
    for every caller, so the scalar line and the ensemble engine are
    bit-identical by construction.
    """
    prefix_sums = np.cumsum(multipliers, axis=-1)
    indices = (buffers_active - 1)[..., np.newaxis]
    return unit_delay_ps * np.take_along_axis(prefix_sums, indices, axis=-1)[..., 0]


def duty_tables_from_delays(
    delays_ps: FloatArray, clock_period_ps: float, num_words: int
) -> FloatArray:
    """``(instances, num_words)`` duty tables from a reset-delay matrix.

    Word 0 is the no-pulse word (zero delay, zero duty); each further
    word's achieved duty is its reset delay as a fraction of the switching
    period, clamped to 100 % -- the scalar
    :meth:`~repro.dpwm.calibrated.CalibratedDelayLineDPWM.duty_fraction`
    arithmetic evaluated for a whole ensemble at once.
    """
    levels = np.empty((delays_ps.shape[0], num_words))
    levels[:, 0] = 0.0
    np.minimum(delays_ps[:, : num_words - 1] / clock_period_ps, 1.0, out=levels[:, 1:])
    return levels

"""Vectorized ensemble engine for the delay-line core.

The paper's linearity claims (Figures 41-42 and 50-51) are population
statements: how linear is a *fabricated* delay line, across corners and
post-APR mismatch?  The scalar models answer that one instance, one word and
one lock cycle at a time.  This module answers it for whole ensembles: a
:class:`DelayLineEnsemble` holds a stack of variation samples (one fabricated
instance per slice) and computes per-cell delay matrices, cumulative tap
delays, calibration locks and full ``(instances, words)`` transfer-curve
matrices in vectorized numpy, with no per-word, per-cell or per-instance
Python loops.

Batch calibration is **closed-form**, not simulated:

* Proposed scheme -- the cycle-accurate :class:`ProposedController` walks
  ``tap_sel`` one step per cycle and declares lock on the first up/down
  toggle.  Because the tap delays are a strictly increasing sequence (every
  cell delay is positive), that walk has a unique fixed point: the number of
  taps whose cumulative delay does not exceed half the clock period.  With
  ``count = #{k : tap_delay[k] <= T/2}`` the scalar run provably ends with
  ``control_state = clip(count, 1, N)``, ``locked = 1 <= count <= N - 1``
  (``count = 0`` saturates at the bottom of the line, ``count = N`` at the
  top) and ``lock_cycles = clip(count, 1, N) + synchronizer latency``.  The
  batch lock evaluates that closed form for every instance at once; the
  cycle-accurate loop is kept for the Figure 47-48 locking traces.
* Conventional scheme -- the shift-register controller raises the line's
  tuning level one step per update and stops at the first step whose total
  line delay reaches the clock period.  The tuning-level *schedule* (which
  cell is at which level after ``s`` steps) depends only on the
  configuration, so the ensemble evaluates the total delay of every
  ``(instance, step)`` pair with one gather into per-buffer prefix sums and
  finds each instance's first crossing with an argmax -- the exact step the
  scalar :class:`ShiftRegisterController` halts on, including the
  saturated-at-maximum (``up_limit``) and already-over-long edge cases.

Both locks and the transfer curves are bit-identical to the scalar paths
because they share the same accumulation order (cumulative sums along the
same axes); ``tests/test_core_ensemble.py`` asserts the equivalence
property-based, and ``benchmarks/test_bench_linearity_engine.py`` gates the
speedup.

Example -- fabricate four post-APR instances of the designed 100 MHz
proposed line, lock them closed-form at the slow corner and extract every
transfer curve in one pass:

    >>> from repro.core.design import DesignSpec, design_proposed
    >>> from repro.core.ensemble import ProposedEnsemble
    >>> from repro.technology.corners import OperatingConditions
    >>> from repro.technology.variation import VariationModel
    >>> design = design_proposed(
    ...     DesignSpec(clock_frequency_mhz=100.0, resolution_bits=6))
    >>> ensemble = ProposedEnsemble.sample(
    ...     design.build_line().config, 4, VariationModel(seed=7))
    >>> calibration = ensemble.lock(OperatingConditions.slow())
    >>> calibration.locked
    array([ True,  True,  True,  True])
    >>> curves = ensemble.transfer_curves(
    ...     OperatingConditions.slow(), calibration=calibration)
    >>> curves.delays_ps.shape
    (4, 255)
    >>> curves.metrics().monotonic
    array([ True,  True,  True,  True])
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.analysis.metrics import BatchLinearityMetrics, batch_linearity_metrics
from repro.core.calibration import CalibrationResult, LockingTrace
from repro.core.conventional import (
    ConventionalDelayLine,
    ConventionalDelayLineConfig,
)
from repro.core.mapper import MappingBlock
from repro.core.proposed import ProposedDelayLine, ProposedDelayLineConfig
from repro.kernels import KernelBackend, get_backend
from repro.technology.corners import OperatingConditions
from repro.technology.library import TechnologyLibrary, intel32_like_library
from repro.technology.variation import BatchVariationSample, VariationModel

if TYPE_CHECKING:  # pragma: no cover - runtime import stays lazy (cycle guard)
    from repro.core.linearity import TransferCurve

__all__ = [
    "ConventionalEnsemble",
    "DelayLineEnsemble",
    "EnsembleCalibration",
    "EnsembleTransferCurves",
    "ProposedEnsemble",
]


@dataclass(frozen=True)
class EnsembleCalibration:
    """Batch calibration outcome: one lock result per ensemble instance.

    Attributes:
        scheme: ``"proposed"`` or ``"conventional"``.
        control_state: per-instance locked controller state (``tap_sel`` for
            the proposed scheme, shifted-in ones for the conventional one).
        locked: per-instance valid-lock flags.
        lock_cycles: per-instance clock cycles from reset to lock (or to the
            end of the run when no lock was achieved).
        locked_delay_ps: per-instance delay of the locked tap / line.
        target_ps: the reference interval (clock period for the conventional
            scheme, half of it for the proposed scheme).
    """

    scheme: str
    control_state: np.ndarray
    locked: np.ndarray
    lock_cycles: np.ndarray
    locked_delay_ps: np.ndarray
    target_ps: float

    @property
    def num_instances(self) -> int:
        return int(self.control_state.shape[0])

    @property
    def residual_error_ps(self) -> np.ndarray:
        """Per-instance ``locked_delay - target`` (positive on overshoot)."""
        return self.locked_delay_ps - self.target_ps

    @property
    def clock_period_ps(self) -> float:
        """The switching period (the proposed scheme locks to half of it)."""
        return 2.0 * self.target_ps if self.scheme == "proposed" else self.target_ps

    def result(self, index: int) -> CalibrationResult:
        """One instance's outcome as a scalar :class:`CalibrationResult`.

        The trace is empty: the closed-form lock jumps straight to the fixed
        point instead of replaying the cycle-by-cycle walk (use the scalar
        controllers for Figure 47-48 style traces).
        """
        locked_delay = float(self.locked_delay_ps[index])
        return CalibrationResult(
            scheme=self.scheme,
            locked=bool(self.locked[index]),
            lock_cycles=int(self.lock_cycles[index]),
            control_state=int(self.control_state[index]),
            locked_delay_ps=locked_delay,
            target_ps=self.target_ps,
            residual_error_ps=locked_delay - self.target_ps,
            trace=LockingTrace(
                scheme=self.scheme, clock_period_ps=self.clock_period_ps
            ),
        )


@dataclass(frozen=True)
class EnsembleTransferCurves:
    """A stack of post-calibration transfer curves, one row per instance.

    Attributes:
        scheme: ``"proposed"`` or ``"conventional"``.
        input_words: the swept duty words (shared by all instances).
        delays_ps: ``(instances, words)`` reset-edge delay matrix.
        ideal_delays_ps: the ideal straight line (shared by all instances).
        clock_period_ps: switching period used for the ideal line.
    """

    scheme: str
    input_words: np.ndarray
    delays_ps: np.ndarray
    ideal_delays_ps: np.ndarray
    clock_period_ps: float

    @property
    def num_instances(self) -> int:
        return int(self.delays_ps.shape[0])

    def metrics(self) -> BatchLinearityMetrics:
        """Per-instance DNL/INL/monotonicity metrics, vectorized."""
        return batch_linearity_metrics(self.delays_ps)

    def max_error_ps(self) -> np.ndarray:
        """Per-instance worst-case absolute deviation from the ideal line."""
        return np.max(np.abs(self.delays_ps - self.ideal_delays_ps), axis=1)

    def max_error_fraction_of_period(self) -> np.ndarray:
        """Per-instance worst-case deviation as a fraction of the period."""
        return self.max_error_ps() / self.clock_period_ps

    def curve(self, index: int) -> "TransferCurve":
        """One instance's row as a scalar :class:`TransferCurve` view."""
        from repro.core.linearity import TransferCurve

        return TransferCurve(
            scheme=self.scheme,
            input_words=self.input_words,
            delays_ps=self.delays_ps[index],
            ideal_delays_ps=self.ideal_delays_ps,
            clock_period_ps=self.clock_period_ps,
        )


class DelayLineEnsemble:
    """Shared machinery of the scheme-specific ensembles.

    An ensemble is a configuration plus a stack of variation samples; the
    ideal (no-mismatch) ensemble is represented by ``batch=None`` and a
    chosen instance count, in which case every instance is the nominal line.
    """

    scheme: str = ""

    def __init__(
        self,
        num_cells: int,
        buffers_per_cell: int,
        library: TechnologyLibrary | None,
        batch: BatchVariationSample | None,
        num_instances: int | None,
        backend: str | KernelBackend | None = None,
    ) -> None:
        self.library = library or intel32_like_library()
        self.kernels = (
            backend if isinstance(backend, KernelBackend) else get_backend(backend)
        )
        if batch is not None:
            expected = (num_cells, buffers_per_cell)
            actual = (batch.num_cells, batch.buffers_per_cell)
            if actual != expected:
                raise ValueError(
                    f"variation batch shape {actual} does not match the "
                    f"line's (num_cells, buffers_per_cell) = {expected}"
                )
            if num_instances is not None and num_instances != batch.num_instances:
                raise ValueError(
                    f"num_instances={num_instances} conflicts with a batch of "
                    f"{batch.num_instances} instances"
                )
        self.batch = batch
        self._num_instances = (
            batch.num_instances if batch is not None else (num_instances or 1)
        )

    @property
    def num_instances(self) -> int:
        return self._num_instances

    def unit_delay_ps(self, conditions: OperatingConditions) -> float:
        """Nominal per-buffer delay at the operating point."""
        return self.library.buffer_delay_ps(conditions)


class ProposedEnsemble(DelayLineEnsemble):
    """Vectorized ensemble of proposed-scheme delay lines."""

    scheme = "proposed"

    #: Controller timing (matches ProposedController's default).
    synchronizer_latency_cycles = 2

    def __init__(
        self,
        config: ProposedDelayLineConfig,
        library: TechnologyLibrary | None = None,
        batch: BatchVariationSample | None = None,
        num_instances: int | None = None,
        backend: str | KernelBackend | None = None,
    ) -> None:
        super().__init__(
            config.num_cells,
            config.buffers_per_cell,
            library,
            batch,
            num_instances,
            backend=backend,
        )
        self.config = config
        # The transfer curves apply the mapper's eq.-18 multiply/shift/clamp
        # as one vectorized integer expression over (instances, words); its
        # constants come from the hardware model itself.
        self.mapper = MappingBlock(num_cells=config.num_cells)

    @classmethod
    def sample(
        cls,
        config: ProposedDelayLineConfig,
        num_instances: int,
        model: VariationModel,
        library: TechnologyLibrary | None = None,
        first_instance: int = 0,
        backend: str | KernelBackend | None = None,
    ) -> "ProposedEnsemble":
        """Draw an ensemble of fabricated instances from a variation model."""
        batch = model.sample_batch(
            num_instances,
            config.num_cells,
            config.buffers_per_cell,
            first_instance=first_instance,
        )
        return cls(config, library=library, batch=batch, backend=backend)

    @classmethod
    def from_line(
        cls,
        line: ProposedDelayLine,
        backend: str | KernelBackend | None = None,
    ) -> "ProposedEnsemble":
        """A single-instance ensemble sharing one scalar line's sample."""
        batch = None
        if line.variation is not None:
            batch = BatchVariationSample(
                multipliers=line.variation.multipliers[np.newaxis]
            )
        return cls(line.config, library=line.library, batch=batch, backend=backend)

    def line(self, index: int) -> ProposedDelayLine:
        """One instance as a scalar :class:`ProposedDelayLine` view."""
        variation = self.batch.instance(index) if self.batch is not None else None
        return ProposedDelayLine(self.config, library=self.library, variation=variation)

    def cell_delays_ps(self, conditions: OperatingConditions) -> np.ndarray:
        """``(instances, num_cells)`` per-cell delay matrix."""
        unit = self.unit_delay_ps(conditions)
        if self.batch is None:
            nominal = unit * self.config.buffers_per_cell
            return np.full((self.num_instances, self.config.num_cells), nominal)
        return self.kernels.cell_delays_from_multipliers(self.batch.multipliers, unit)

    def tap_delays_ps(self, conditions: OperatingConditions) -> np.ndarray:
        """``(instances, num_cells)`` cumulative tap-delay matrix."""
        return np.cumsum(self.cell_delays_ps(conditions), axis=1)

    def lock(self, conditions: OperatingConditions) -> EnsembleCalibration:
        """Closed-form batch lock of every instance (see the module docstring)."""
        config = self.config
        taps = self.tap_delays_ps(conditions)
        half = config.clock_period_ps / 2.0
        # Tap delays increase strictly along the line, so the count of taps
        # at or below the half period is the fixed point the scalar up/down
        # walk dithers around (see repro.kernels.ensemble.proposed_lock).
        control, locked, locked_delay = self.kernels.proposed_lock(
            taps, half, config.num_cells
        )
        lock_cycles = control + self.synchronizer_latency_cycles
        return EnsembleCalibration(
            scheme=self.scheme,
            control_state=control,
            locked=locked,
            lock_cycles=lock_cycles,
            locked_delay_ps=locked_delay,
            target_ps=half,
        )

    def transfer_curves(
        self,
        conditions: OperatingConditions,
        calibration: EnsembleCalibration | None = None,
        tap_sel: np.ndarray | None = None,
    ) -> EnsembleTransferCurves:
        """``(instances, words)`` post-calibration transfer-curve matrix.

        Args:
            conditions: PVT operating point.
            calibration: a previous :meth:`lock` result to reuse.
            tap_sel: explicit per-instance locked cell counts (overrides
                ``calibration``); calibrated on the fly when both are omitted.
        """
        if tap_sel is None:
            if calibration is None:
                calibration = self.lock(conditions)
            tap_sel = calibration.control_state
        tap_sel = np.asarray(tap_sel, dtype=int)
        if tap_sel.shape != (self.num_instances,):
            raise ValueError(
                f"expected {self.num_instances} tap_sel values, got {tap_sel.shape}"
            )
        if np.any(tap_sel < 1) or np.any(tap_sel > self.config.num_cells):
            raise ValueError("tap_sel out of range [1, num_cells]")
        taps = self.tap_delays_ps(conditions)
        words = np.arange(1, self.mapper.max_word + 1)
        # The mapping block, vectorized over (instances, words): integer
        # multiply, right shift, clamp to the last tap.
        delays = self.kernels.proposed_transfer_delays(
            taps, tap_sel, words, self.mapper.shift_amount, self.config.num_cells
        )
        period = self.config.clock_period_ps
        ideal = words / float(self.mapper.max_word + 1) * period
        return EnsembleTransferCurves(
            scheme=self.scheme,
            input_words=words,
            delays_ps=delays,
            ideal_delays_ps=ideal,
            clock_period_ps=period,
        )


class ConventionalEnsemble(DelayLineEnsemble):
    """Vectorized ensemble of conventional adjustable-cells delay lines."""

    scheme = "conventional"

    #: Controller timing (matches ShiftRegisterController's defaults).
    cycles_per_update = 2
    synchronizer_latency_cycles = 2

    def __init__(
        self,
        config: ConventionalDelayLineConfig,
        library: TechnologyLibrary | None = None,
        batch: BatchVariationSample | None = None,
        num_instances: int | None = None,
        backend: str | KernelBackend | None = None,
    ) -> None:
        longest_branch = config.branches * config.buffers_per_element
        if batch is not None and batch.buffers_per_cell > longest_branch:
            # Like the scalar line, accept samples wider than the longest
            # branch: only the first ``longest_branch`` buffers of a cell are
            # ever active, so the extra columns are dead weight.
            batch = BatchVariationSample(
                multipliers=batch.multipliers[:, :, :longest_branch]
            )
        super().__init__(
            config.num_cells,
            longest_branch,
            library,
            batch,
            num_instances,
            backend=backend,
        )
        self.config = config
        # A nominal template line provides the tuning-level bookkeeping, so
        # the level schedule is computed by the exact code the scalar
        # controller uses (including the DISTRIBUTED order's non-nested
        # remainder placement).
        self._template = ConventionalDelayLine(config, library=self.library)
        self._schedule: np.ndarray | None = None

    @classmethod
    def sample(
        cls,
        config: ConventionalDelayLineConfig,
        num_instances: int,
        model: VariationModel,
        library: TechnologyLibrary | None = None,
        first_instance: int = 0,
        backend: str | KernelBackend | None = None,
    ) -> "ConventionalEnsemble":
        """Draw an ensemble of fabricated instances from a variation model.

        The sample spans the longest branch of every cell
        (``branches * buffers_per_element`` buffers), like the scalar
        experiments do.
        """
        batch = model.sample_batch(
            num_instances,
            config.num_cells,
            config.branches * config.buffers_per_element,
            first_instance=first_instance,
        )
        return cls(config, library=library, batch=batch, backend=backend)

    @classmethod
    def from_line(
        cls,
        line: ConventionalDelayLine,
        backend: str | KernelBackend | None = None,
    ) -> "ConventionalEnsemble":
        """A single-instance ensemble sharing one scalar line's sample."""
        batch = None
        if line.variation is not None:
            batch = BatchVariationSample(
                multipliers=line.variation.multipliers[np.newaxis]
            )
        return cls(line.config, library=line.library, batch=batch, backend=backend)

    def line(self, index: int) -> ConventionalDelayLine:
        """One instance as a scalar :class:`ConventionalDelayLine` view."""
        variation = self.batch.instance(index) if self.batch is not None else None
        return ConventionalDelayLine(
            self.config, library=self.library, variation=variation
        )

    def levels_schedule(self) -> np.ndarray:
        """Tuning levels after every step: ``(max_steps + 1, num_cells)``.

        The schedule depends only on the (immutable) configuration, never on
        the variation, so it is computed once, shared by all instances and
        reused between the lock and the transfer curves.
        """
        if self._schedule is None:
            steps = range(self.config.max_adjustment_steps + 1)
            self._schedule = np.stack(
                [self._template.levels_for_steps(s) for s in steps]
            )
        return self._schedule

    def cell_delays_ps(
        self, levels: np.ndarray, conditions: OperatingConditions
    ) -> np.ndarray:
        """Per-cell delay matrix for per-instance tuning levels.

        ``levels`` may be one shared ``(num_cells,)`` vector or a per-instance
        ``(instances, num_cells)`` matrix; the result is always
        ``(instances, num_cells)``.
        """
        config = self.config
        levels = np.asarray(levels, dtype=int)
        if levels.ndim == 1:
            levels = np.broadcast_to(levels, (self.num_instances, config.num_cells))
        if levels.shape != (self.num_instances, config.num_cells):
            raise ValueError(
                f"expected levels of shape ({self.num_instances}, "
                f"{config.num_cells}), got {levels.shape}"
            )
        if np.any(levels < 0) or np.any(levels >= config.branches):
            raise ValueError("tuning level out of range")
        unit = self.unit_delay_ps(conditions)
        buffers_active = (levels + 1) * config.buffers_per_element
        if self.batch is None:
            return buffers_active.astype(float) * unit
        return self.kernels.active_branch_delays(
            self.batch.multipliers, buffers_active, unit
        )

    def tap_delays_ps(
        self, levels: np.ndarray, conditions: OperatingConditions
    ) -> np.ndarray:
        """Cumulative tap-delay matrix for per-instance tuning levels."""
        return np.cumsum(self.cell_delays_ps(levels, conditions), axis=1)

    def lock(self, conditions: OperatingConditions) -> EnsembleCalibration:
        """Batch first-crossing lock of every instance (see module docstring)."""
        config = self.config
        period = config.clock_period_ps
        unit = self.unit_delay_ps(conditions)
        schedule = self.levels_schedule()  # (steps + 1, cells)
        buffers_active = (schedule + 1) * config.buffers_per_element
        if self.batch is None:
            cell_delays = buffers_active.astype(float) * unit
            step_taps = np.cumsum(cell_delays, axis=1, out=cell_delays)
            step_taps = np.broadcast_to(
                step_taps, (self.num_instances, *step_taps.shape)
            )
        else:
            # One gather evaluates every (instance, step, cell) delay from
            # the per-buffer prefix sums (leading axes broadcast: instances
            # against the shared step schedule); the in-place cumulative sum
            # along the cell axis then reproduces the scalar tap accumulation
            # order bit-exactly without a second (instances, steps, cells)
            # allocation.
            cell_delays = self.kernels.active_branch_delays(
                self.batch.multipliers[:, np.newaxis],
                buffers_active[np.newaxis],
                unit,
            )
            step_taps = np.cumsum(cell_delays, axis=2, out=cell_delays)
        totals = step_taps[..., -1]  # (instances, steps + 1)
        last_but_one = step_taps[..., -2]
        # The controller halts at the first step whose total reaches the
        # period; when none does it saturates at the maximum step (up_limit).
        steps, locked, total_at_stop = self.kernels.conventional_crossing(
            totals, last_but_one, period, config.max_adjustment_steps
        )
        lock_cycles = (
            self.synchronizer_latency_cycles + steps * self.cycles_per_update
        )
        return EnsembleCalibration(
            scheme=self.scheme,
            control_state=steps,
            locked=locked,
            lock_cycles=lock_cycles,
            locked_delay_ps=total_at_stop,
            target_ps=period,
        )

    def transfer_curves(
        self,
        conditions: OperatingConditions,
        calibration: EnsembleCalibration | None = None,
        levels: np.ndarray | None = None,
    ) -> EnsembleTransferCurves:
        """``(instances, words)`` post-calibration transfer-curve matrix.

        Args:
            conditions: PVT operating point.
            calibration: a previous :meth:`lock` result to reuse.
            levels: explicit tuning levels, shared ``(num_cells,)`` or
                per-instance ``(instances, num_cells)`` (overrides
                ``calibration``); calibrated on the fly when both are omitted.
        """
        if levels is None:
            if calibration is None:
                calibration = self.lock(conditions)
            levels = self.levels_schedule()[calibration.control_state]
        taps = self.tap_delays_ps(levels, conditions)
        words = np.arange(1, self.config.num_cells)
        delays = taps[:, words - 1]
        period = self.config.clock_period_ps
        ideal = words / float(self.config.num_cells) * period
        return EnsembleTransferCurves(
            scheme=self.scheme,
            input_words=words,
            delays_ps=delays,
            ideal_delays_ps=ideal,
            clock_period_ps=period,
        )

"""The paper's primary contribution: synthesizable delay-line architectures.

Two delay-line calibration architectures are implemented, matching chapter 3
of the paper:

* :mod:`repro.core.conventional` -- the conventional adjustable-cells delay
  line: a fixed number of tunable delay cells (each with ``m`` branches of
  1..m delay elements), tuned by a DLL-style controller built around a large
  shift register (paper Figures 32-42).
* :mod:`repro.core.proposed` -- the proposed delay line: a variable number of
  identical, untunable cells, locked to *half* the clock period by an up/down
  controller and combined with a mapping block that rescales the input duty
  word onto the locked cell count (paper Figures 43-49).

Supporting modules:

* :mod:`repro.core.delay_cells` -- delay element / fixed cell / tunable cell
  models shared by both schemes.
* :mod:`repro.core.calibration` -- cycle-accurate locking simulations and
  continuous-recalibration runs (temperature drift tracking).
* :mod:`repro.core.mapper` -- the proposed scheme's mapping block (eq. 18).
* :mod:`repro.core.design` -- the parameterized design procedure of section
  4.2 (how many cells, how many buffers per cell/element, multiplexer sizes).
* :mod:`repro.core.linearity` -- transfer-curve extraction (delay versus
  input word) used for Figures 41-42 and 50-51.
* :mod:`repro.core.ensemble` -- the vectorized ensemble engine: batch
  calibration (closed-form locks) and batch transfer curves over stacks of
  fabricated instances; the scalar linearity path is a thin view of it.
* :mod:`repro.core.comparison` -- the scheme-versus-scheme comparison harness
  behind Tables 4 and 5.
"""

from repro.core.calibration import (
    CalibrationResult,
    ContinuousCalibrationTrace,
    LockingStep,
    LockingTrace,
)
from repro.core.conventional import (
    ConventionalDelayLine,
    ConventionalDelayLineConfig,
    ShiftRegisterController,
    TuningOrder,
)
from repro.core.delay_cells import DelayElement, FixedDelayCell, TunableDelayCell
from repro.core.ensemble import (
    ConventionalEnsemble,
    DelayLineEnsemble,
    EnsembleCalibration,
    EnsembleTransferCurves,
    ProposedEnsemble,
)
from repro.core.design import (
    ConventionalDesign,
    DesignSpec,
    ProposedDesign,
    design_conventional,
    design_proposed,
)
from repro.core.linearity import TransferCurve, transfer_curve
from repro.core.mapper import MappingBlock
from repro.core.proposed import (
    ProposedController,
    ProposedDelayLine,
    ProposedDelayLineConfig,
)
from repro.core.structural import StructuralLockResult, StructuralProposedDelayLine
from repro.core.comparison import SchemeComparison, compare_schemes
from repro.core.yield_analysis import (
    ClosedLoopYieldResult,
    LinearitySpec,
    LinearityYieldResult,
    RegulationSpec,
    YieldModel,
    YieldPoint,
    cells_for_yield,
    closed_loop_yield,
    coverage_yield,
    linearity_yield,
    yield_curve,
)

__all__ = [
    "CalibrationResult",
    "ClosedLoopYieldResult",
    "ContinuousCalibrationTrace",
    "ConventionalDelayLine",
    "ConventionalDelayLineConfig",
    "ConventionalDesign",
    "ConventionalEnsemble",
    "DelayElement",
    "DelayLineEnsemble",
    "DesignSpec",
    "EnsembleCalibration",
    "EnsembleTransferCurves",
    "FixedDelayCell",
    "LinearitySpec",
    "LinearityYieldResult",
    "LockingStep",
    "LockingTrace",
    "MappingBlock",
    "ProposedController",
    "ProposedDelayLine",
    "ProposedDelayLineConfig",
    "ProposedDesign",
    "ProposedEnsemble",
    "RegulationSpec",
    "SchemeComparison",
    "ShiftRegisterController",
    "StructuralLockResult",
    "StructuralProposedDelayLine",
    "TransferCurve",
    "TunableDelayCell",
    "TuningOrder",
    "YieldModel",
    "YieldPoint",
    "cells_for_yield",
    "closed_loop_yield",
    "compare_schemes",
    "coverage_yield",
    "design_conventional",
    "design_proposed",
    "linearity_yield",
    "transfer_curve",
    "yield_curve",
]

"""The proposed scheme's mapping block (paper Figure 49, eq. 18).

Because the number of cells locked to the clock period varies across process
corners and with temperature, the input duty word cannot index the delay line
directly: the mapping block rescales it by the locked cell count,

    cal_sel = round_down( duty_word * tap_sel / (N / 2) )

where ``tap_sel`` is the number of cells locked to *half* the clock period and
``N`` is the total number of cells in the line.  ``N`` is chosen as a power of
two so the division is a plain right shift in hardware; the model mirrors that
bit-exact behaviour (integer multiply followed by a shift), including the
truncation that produces the staircase plateaus visible at the slow corner in
paper Figure 50.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MappingBlock"]


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class MappingBlock:
    """Hardware-faithful input-word mapper.

    Attributes:
        num_cells: total cells in the delay line (power of two).
        word_bits: width of the input duty word; equal to ``log2(num_cells)``
            so that the full-scale word spans the whole line at the fast
            corner.
    """

    num_cells: int

    def __post_init__(self) -> None:
        if not _is_power_of_two(self.num_cells):
            raise ValueError(
                "the proposed scheme requires a power-of-two cell count so the "
                f"mapper's division is a shift; got {self.num_cells}"
            )
        if self.num_cells < 2:
            raise ValueError("the delay line needs at least 2 cells")

    @property
    def word_bits(self) -> int:
        """Width of the input duty word."""
        return self.num_cells.bit_length() - 1

    @property
    def shift_amount(self) -> int:
        """Right-shift implementing the division by ``num_cells / 2``."""
        return self.word_bits - 1

    @property
    def max_word(self) -> int:
        """Largest representable duty word."""
        return (1 << self.word_bits) - 1

    def map(self, duty_word: int, tap_sel: int) -> int:
        """Map an input duty word to a calibrated tap-select word.

        Args:
            duty_word: the requested duty word, ``0..2**word_bits - 1``.
            tap_sel: number of cells the controller locked to half the clock
                period, ``1..num_cells``.

        Returns:
            the calibrated multiplexer select (``cal_sel``), clamped to the
            last tap so an overshooting product can never select a
            non-existent tap.

        Raises:
            ValueError: if either argument is out of range.
        """
        if not 0 <= duty_word <= self.max_word:
            raise ValueError(
                f"duty word {duty_word} out of range [0, {self.max_word}]"
            )
        if not 1 <= tap_sel <= self.num_cells:
            raise ValueError(
                f"tap_sel {tap_sel} out of range [1, {self.num_cells}]"
            )
        cal_sel = (duty_word * tap_sel) >> self.shift_amount
        return min(cal_sel, self.num_cells - 1)

    def distinct_levels(self, tap_sel: int) -> int:
        """Number of distinct calibrated words reachable for a given lock.

        At the slow corner (small ``tap_sel``) several duty words collapse
        onto the same calibrated word -- the plateaus of paper Figure 50.
        """
        seen = {self.map(word, tap_sel) for word in range(self.max_word + 1)}
        return len(seen)

    def ideal_duty(self, duty_word: int) -> float:
        """The duty-cycle fraction a duty word requests (0..1)."""
        return duty_word / float(1 << self.word_bits)

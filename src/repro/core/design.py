"""The parameterized design procedure (paper section 4.2).

Given the system specification -- switching-clock frequency, required DPWM
resolution and the technology's buffer delays at the fast and slow corners --
this module sizes both delay-line schemes exactly the way the paper's design
examples do:

Conventional scheme (section 4.2.1):
    * ``num_cells = 2**resolution_bits``  (eq. 21)
    * ``branches  = slow_delay / fast_delay``  (eq. 23, the adjustment ratio)
    * ``element delay = period / (num_cells * branches)``  (eq. 25)
    * ``buffers per element = ceil(element delay / fast buffer delay)`` (eq. 27)

Proposed scheme (section 4.2.2):
    * ``num_cells = 2**resolution_bits * (slow_delay / fast_delay)``  (eq. 30)
    * ``cell delay = period / num_cells``  (eq. 32)
    * ``buffers per cell = ceil(cell delay / fast buffer delay)``  (eq. 34)

Both procedures then verify the worst-case (fast corner) total line delay
covers the clock period, the condition that guarantees locking at every
process corner (eqs. 28-29 and 35-36).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.conventional import (
    ConventionalDelayLine,
    ConventionalDelayLineConfig,
    TuningOrder,
)
from repro.core.proposed import ProposedDelayLine, ProposedDelayLineConfig
from repro.technology.corners import OperatingConditions
from repro.technology.library import TechnologyLibrary, intel32_like_library
from repro.technology.variation import VariationModel

__all__ = [
    "DesignSpec",
    "ConventionalDesign",
    "ProposedDesign",
    "design_conventional",
    "design_proposed",
]


@dataclass(frozen=True)
class DesignSpec:
    """System specification for a delay-line design.

    Attributes:
        clock_frequency_mhz: switching-clock frequency.
        resolution_bits: required DPWM resolution (guaranteed at the slow
            corner for the proposed scheme).
    """

    clock_frequency_mhz: float
    resolution_bits: int

    def __post_init__(self) -> None:
        if self.clock_frequency_mhz <= 0:
            raise ValueError("clock frequency must be positive")
        if self.resolution_bits < 1:
            raise ValueError("resolution must be at least 1 bit")

    @property
    def clock_period_ps(self) -> float:
        """Switching-clock period in picoseconds."""
        return 1e6 / self.clock_frequency_mhz


def _corner_ratio(library: TechnologyLibrary) -> int:
    """Slow/fast buffer-delay ratio, rounded to the nearest integer >= 2."""
    fast = library.buffer_delay_ps(OperatingConditions.fast())
    slow = library.buffer_delay_ps(OperatingConditions.slow())
    ratio = slow / fast
    return max(2, int(round(ratio)))


@dataclass(frozen=True)
class ConventionalDesign:
    """Sized parameters for the conventional adjustable-cells scheme."""

    spec: DesignSpec
    num_cells: int
    branches: int
    buffers_per_element: int
    element_delay_target_ps: float
    mux_inputs: int

    @property
    def max_delay_elements(self) -> int:
        """Maximum delay elements usable at once (eq. 24)."""
        return self.num_cells * self.branches

    def worst_case_total_delay_ps(self, library: TechnologyLibrary) -> float:
        """Total line delay at the fast corner with all cells at maximum (eq. 29)."""
        fast_buffer = library.buffer_delay_ps(OperatingConditions.fast())
        element = self.buffers_per_element * fast_buffer
        return self.max_delay_elements * element

    def guarantees_locking(self, library: TechnologyLibrary) -> bool:
        """Whether the worst-case delay covers the clock period (eq. 29)."""
        return self.worst_case_total_delay_ps(library) >= self.spec.clock_period_ps

    def build_line(
        self,
        library: TechnologyLibrary | None = None,
        tuning_order: TuningOrder = TuningOrder.ROUND_ROBIN,
        variation: VariationModel | None = None,
    ) -> ConventionalDelayLine:
        """Instantiate the delay-line model for this design."""
        config = ConventionalDelayLineConfig(
            num_cells=self.num_cells,
            branches=self.branches,
            buffers_per_element=self.buffers_per_element,
            clock_period_ps=self.spec.clock_period_ps,
            tuning_order=tuning_order,
        )
        return ConventionalDelayLine(config, library=library, variation=variation)


@dataclass(frozen=True)
class ProposedDesign:
    """Sized parameters for the proposed scheme."""

    spec: DesignSpec
    num_cells: int
    buffers_per_cell: int
    cell_delay_target_ps: float
    mux_inputs: int

    def worst_case_total_delay_ps(self, library: TechnologyLibrary) -> float:
        """Total line delay at the fast corner (eq. 36)."""
        fast_buffer = library.buffer_delay_ps(OperatingConditions.fast())
        return self.num_cells * self.buffers_per_cell * fast_buffer

    def guarantees_locking(self, library: TechnologyLibrary) -> bool:
        """Whether the fast-corner delay covers the clock period (eq. 36)."""
        return self.worst_case_total_delay_ps(library) >= self.spec.clock_period_ps

    def build_line(
        self,
        library: TechnologyLibrary | None = None,
        variation: VariationModel | None = None,
    ) -> ProposedDelayLine:
        """Instantiate the delay-line model for this design."""
        config = ProposedDelayLineConfig(
            num_cells=self.num_cells,
            buffers_per_cell=self.buffers_per_cell,
            clock_period_ps=self.spec.clock_period_ps,
        )
        return ProposedDelayLine(config, library=library, variation=variation)


def design_conventional(
    spec: DesignSpec, library: TechnologyLibrary | None = None
) -> ConventionalDesign:
    """Size the conventional adjustable-cells delay line for a specification."""
    library = library or intel32_like_library()
    num_cells = 1 << spec.resolution_bits
    branches = _corner_ratio(library)
    max_elements = num_cells * branches
    element_delay_target = spec.clock_period_ps / max_elements
    fast_buffer = library.buffer_delay_ps(OperatingConditions.fast())
    buffers_per_element = max(1, math.ceil(element_delay_target / fast_buffer))
    return ConventionalDesign(
        spec=spec,
        num_cells=num_cells,
        branches=branches,
        buffers_per_element=buffers_per_element,
        element_delay_target_ps=element_delay_target,
        mux_inputs=num_cells,
    )


def design_proposed(
    spec: DesignSpec, library: TechnologyLibrary | None = None
) -> ProposedDesign:
    """Size the proposed delay line for a specification."""
    library = library or intel32_like_library()
    ratio = _corner_ratio(library)
    # The mapper's division must be a shift, so the cell count is rounded up
    # to the next power of two (a no-op for the paper's 4x corner ratio).
    num_cells = 1 << math.ceil(math.log2((1 << spec.resolution_bits) * ratio))
    cell_delay_target = spec.clock_period_ps / num_cells
    fast_buffer = library.buffer_delay_ps(OperatingConditions.fast())
    buffers_per_cell = max(1, math.ceil(cell_delay_target / fast_buffer))
    return ProposedDesign(
        spec=spec,
        num_cells=num_cells,
        buffers_per_cell=buffers_per_cell,
        cell_delay_target_ps=cell_delay_target,
        mux_inputs=num_cells,
    )

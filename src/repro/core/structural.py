"""Structural (event-driven) model of the proposed delay line.

The analytical models in :mod:`repro.core.proposed` compute tap delays and
controller decisions directly; this module builds the same architecture out
of the event-driven simulation primitives -- a chain of buffer cells, the
clock generator, the calibration tap multiplexer, the sampling flop with a
two-flop synchronizer and the up/down tap_sel register -- and lets the
simulator discover the locked tap count by itself.  It is the closest thing
in this repository to the paper's gate-level (QuestaSim) verification runs
and is used in tests to confirm that the cycle-accurate analytical controller
and the event-driven structure agree.

The structural model is intentionally kept to moderate line lengths (tests
use 16-64 cells); the analytical model remains the tool for 256-cell sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.proposed import ProposedDelayLine
from repro.simulation.clocks import ClockGenerator
from repro.simulation.primitives import Buffer, MuxN, TwoFlopSynchronizer
from repro.simulation.signals import Signal
from repro.simulation.simulator import Simulator
from repro.technology.corners import OperatingConditions

__all__ = ["StructuralLockResult", "StructuralProposedDelayLine"]


@dataclass(frozen=True)
class StructuralLockResult:
    """Outcome of an event-driven locking run.

    Attributes:
        locked: whether the up/down decision toggled (the lock indication).
        tap_sel: the locked cell count (lower dither point).
        cycles: clock cycles simulated until lock was declared.
        tap_sel_history: tap_sel after every clock cycle.
    """

    locked: bool
    tap_sel: int
    cycles: int
    tap_sel_history: list[int]


class StructuralProposedDelayLine:
    """Event-driven structure of the proposed scheme's calibration path.

    The DPWM output path (output multiplexer + trailing-edge flop) is covered
    by :mod:`repro.dpwm`; this class focuses on the part the paper's
    Figures 46-48 describe: the delay line, the calibration multiplexer, the
    synchronizer and the up/down controller locking to *half* the clock
    period.
    """

    def __init__(
        self,
        line: ProposedDelayLine,
        conditions: OperatingConditions | None = None,
    ) -> None:
        self.line = line
        self.conditions = conditions or OperatingConditions.typical()
        self.simulator = Simulator()
        config = line.config

        self.clock = Signal(self.simulator, "clk")
        ClockGenerator(self.simulator, self.clock, period_ps=config.clock_period_ps)

        # Delay line: a chain of buffers, one Buffer primitive per cell with
        # the cell's (possibly mismatched) delay.
        cell_delays = line.cell_delays_ps(self.conditions)
        self.taps: list[Signal] = []
        stage_input = self.clock
        for index, delay in enumerate(cell_delays):
            tap = Signal(self.simulator, f"tap{index}")
            Buffer(self.simulator, stage_input, tap, delay_ps=float(delay))
            self.taps.append(tap)
            stage_input = tap

        # Calibration multiplexer: selects the tap indexed by tap_sel - 1.
        self.tap_sel_signal = Signal(
            self.simulator, "tap_sel", width=config.word_bits + 1, initial=0
        )
        self.selected_tap = Signal(self.simulator, "selected_tap")
        MuxN(self.simulator, self.taps, self.tap_sel_signal, self.selected_tap)

        # Two-flop synchronizer into the controller clock domain.
        self.synced_tap = Signal(self.simulator, "synced_tap")
        self.synchronizer = TwoFlopSynchronizer(
            self.simulator,
            clock=self.clock,
            async_input=self.selected_tap,
            output_signal=self.synced_tap,
            setup_ps=30.0,
        )

        # Up/down controller state (modelled as a synchronous process on the
        # clock's rising edge, like the RTL always-block it stands for).
        self._tap_sel = 1
        self._previous_direction: int | None = None
        self._locked = False
        self._cycles = 0
        self.tap_sel_history: list[int] = []
        self.clock.connect(self._on_clock)
        self.tap_sel_signal.set(self._tap_sel - 1)

    @property
    def tap_sel(self) -> int:
        return self._tap_sel

    @property
    def locked(self) -> bool:
        return self._locked

    def _on_clock(self, signal: Signal) -> None:
        if signal.value == 0:
            return
        self._cycles += 1
        if self._locked:
            self.tap_sel_history.append(self._tap_sel)
            return
        # The tap is the 50 %-duty clock delayed by the tap delay, so at a
        # rising clock edge the sampled tap is *low* while the tap delay is
        # below half a period and *high* once it exceeds half a period
        # (paper Figures 47-48): sampled low -> keep counting up, sampled
        # high -> step back down.  The two-flop synchronizer makes the sample
        # a couple of cycles stale, which slightly overshoots the search
        # exactly as the real hardware would.
        sampled_high = self.synced_tap.is_high()
        direction = -1 if sampled_high else +1
        if self._previous_direction is not None and direction != self._previous_direction:
            self._locked = True
            if direction < 0:
                self._tap_sel = max(1, self._tap_sel - 1)
            self.tap_sel_history.append(self._tap_sel)
            return
        self._previous_direction = direction
        next_tap = self._tap_sel + direction
        if 1 <= next_tap <= self.line.config.num_cells:
            self._tap_sel = next_tap
        self.tap_sel_signal.set(self._tap_sel - 1)
        self.tap_sel_history.append(self._tap_sel)

    def run_lock(self, max_cycles: int | None = None) -> StructuralLockResult:
        """Run the event-driven simulation until lock (or a cycle budget)."""
        config = self.line.config
        if max_cycles is None:
            max_cycles = 2 * config.num_cells + 16
        period = config.clock_period_ps
        for _ in range(max_cycles):
            if self._locked:
                break
            self.simulator.run_until(self.simulator.now_ps + period)
        return StructuralLockResult(
            locked=self._locked,
            tap_sel=self._tap_sel,
            cycles=self._cycles,
            tap_sel_history=list(self.tap_sel_history),
        )

"""Transfer-curve extraction for linearity analysis.

The linearity figures of the paper (41-42 for the conventional scheme's
tuning scenarios, 50-51 for the proposed scheme across frequencies and
corners) all plot the DPWM reset-edge delay against the input duty word after
calibration.  :func:`transfer_curve` produces exactly that data for either
scheme, and :class:`TransferCurve` bundles it with the ideal straight line and
the standard linearity metrics.

Since the ensemble engine landed, the scalar path is a thin view of the batch
one: :func:`transfer_curve` wraps the line in a single-instance
:class:`~repro.core.ensemble.DelayLineEnsemble`, calibrates with the
closed-form batch lock and returns row zero of the batch curve matrix -- so
scalar and ensemble results are identical by construction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import LinearityMetrics, linearity_metrics
from repro.core.conventional import ConventionalDelayLine
from repro.core.ensemble import ConventionalEnsemble, ProposedEnsemble
from repro.core.proposed import ProposedDelayLine
from repro.technology.corners import OperatingConditions

__all__ = ["TransferCurve", "transfer_curve"]


@dataclass(frozen=True)
class TransferCurve:
    """Delay-versus-input-word transfer curve of a calibrated delay line.

    Attributes:
        scheme: ``"proposed"`` or ``"conventional"``.
        input_words: the swept duty words.
        delays_ps: measured reset-edge delay for each word.
        ideal_delays_ps: the ideal straight line (word / full-scale x period).
        clock_period_ps: switching period used for the ideal line.
    """

    scheme: str
    input_words: np.ndarray
    delays_ps: np.ndarray
    ideal_delays_ps: np.ndarray
    clock_period_ps: float

    def metrics(self) -> LinearityMetrics:
        """Summary DNL/INL/monotonicity metrics of the measured curve."""
        return linearity_metrics(self.delays_ps)

    def max_error_ps(self) -> float:
        """Worst-case absolute deviation from the ideal line."""
        return float(np.max(np.abs(self.delays_ps - self.ideal_delays_ps)))

    def max_error_fraction_of_period(self) -> float:
        """Worst-case deviation as a fraction of the switching period."""
        return self.max_error_ps() / self.clock_period_ps

    def scaled_delays_ns(self, factor: float = 1.0) -> np.ndarray:
        """Delays in nanoseconds multiplied by a frequency-normalization factor.

        Paper Figures 50-51 overlay multiple frequencies by multiplying the
        100 MHz curve by 2 and the 200 MHz curve by 4 so all curves share the
        50 MHz (20 ns) full scale.
        """
        return self.delays_ps * factor / 1000.0


def transfer_curve(
    line: ProposedDelayLine | ConventionalDelayLine,
    conditions: OperatingConditions,
    tap_sel: int | None = None,
    levels: np.ndarray | None = None,
) -> TransferCurve:
    """Extract the post-calibration transfer curve of a delay line.

    Args:
        line: either delay-line model.
        conditions: PVT operating point.
        tap_sel: (proposed scheme) locked cell count; calibrated on the fly
            when omitted.
        levels: (conventional scheme) per-cell tuning levels; calibrated on
            the fly when omitted.

    Returns:
        the :class:`TransferCurve` over the full input-word range (word 0 is
        skipped, as in the paper's figures, because it produces no pulse).
    """
    if isinstance(line, ProposedDelayLine):
        ensemble = ProposedEnsemble.from_line(line)
        explicit = None if tap_sel is None else np.array([tap_sel])
        curves = ensemble.transfer_curves(conditions, tap_sel=explicit)
    elif isinstance(line, ConventionalDelayLine):
        ensemble = ConventionalEnsemble.from_line(line)
        explicit = None if levels is None else np.asarray(levels)
        curves = ensemble.transfer_curves(conditions, levels=explicit)
    else:
        raise TypeError(f"unsupported delay-line type: {type(line)!r}")
    return curves.curve(0)

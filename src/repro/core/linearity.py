"""Transfer-curve extraction for linearity analysis.

The linearity figures of the paper (41-42 for the conventional scheme's
tuning scenarios, 50-51 for the proposed scheme across frequencies and
corners) all plot the DPWM reset-edge delay against the input duty word after
calibration.  :func:`transfer_curve` produces exactly that data for either
scheme, and :class:`TransferCurve` bundles it with the ideal straight line and
the standard linearity metrics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import LinearityMetrics, linearity_metrics
from repro.core.conventional import ConventionalDelayLine
from repro.core.proposed import ProposedController, ProposedDelayLine
from repro.technology.corners import OperatingConditions

__all__ = ["TransferCurve", "transfer_curve"]


@dataclass(frozen=True)
class TransferCurve:
    """Delay-versus-input-word transfer curve of a calibrated delay line.

    Attributes:
        scheme: ``"proposed"`` or ``"conventional"``.
        input_words: the swept duty words.
        delays_ps: measured reset-edge delay for each word.
        ideal_delays_ps: the ideal straight line (word / full-scale x period).
        clock_period_ps: switching period used for the ideal line.
    """

    scheme: str
    input_words: np.ndarray
    delays_ps: np.ndarray
    ideal_delays_ps: np.ndarray
    clock_period_ps: float

    def metrics(self) -> LinearityMetrics:
        """Summary DNL/INL/monotonicity metrics of the measured curve."""
        return linearity_metrics(self.delays_ps)

    def max_error_ps(self) -> float:
        """Worst-case absolute deviation from the ideal line."""
        return float(np.max(np.abs(self.delays_ps - self.ideal_delays_ps)))

    def max_error_fraction_of_period(self) -> float:
        """Worst-case deviation as a fraction of the switching period."""
        return self.max_error_ps() / self.clock_period_ps

    def scaled_delays_ns(self, factor: float = 1.0) -> np.ndarray:
        """Delays in nanoseconds multiplied by a frequency-normalization factor.

        Paper Figures 50-51 overlay multiple frequencies by multiplying the
        100 MHz curve by 2 and the 200 MHz curve by 4 so all curves share the
        50 MHz (20 ns) full scale.
        """
        return self.delays_ps * factor / 1000.0


def _proposed_curve(
    line: ProposedDelayLine,
    conditions: OperatingConditions,
    tap_sel: int | None,
) -> tuple[np.ndarray, np.ndarray, float]:
    if tap_sel is None:
        calibration = ProposedController(line).lock(conditions)
        tap_sel = calibration.control_state
    words = np.arange(1, line.mapper.max_word + 1)
    delays = np.array(
        [line.output_delay_ps(int(word), tap_sel, conditions) for word in words]
    )
    period = line.config.clock_period_ps
    ideal = words / float(line.mapper.max_word + 1) * period
    return words, delays, ideal


def _conventional_curve(
    line: ConventionalDelayLine,
    conditions: OperatingConditions,
    levels: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray, float]:
    if levels is None:
        # Import here to avoid a circular import at module load time.
        from repro.core.conventional import ShiftRegisterController

        calibration = ShiftRegisterController(line).lock(conditions)
        levels = line.levels_for_steps(calibration.control_state)
    words = np.arange(1, line.config.num_cells)
    taps = line.tap_delays_ps(levels, conditions)
    delays = taps[words - 1]
    period = line.config.clock_period_ps
    ideal = words / float(line.config.num_cells) * period
    return words, np.asarray(delays, dtype=float), ideal


def transfer_curve(
    line: ProposedDelayLine | ConventionalDelayLine,
    conditions: OperatingConditions,
    tap_sel: int | None = None,
    levels: np.ndarray | None = None,
) -> TransferCurve:
    """Extract the post-calibration transfer curve of a delay line.

    Args:
        line: either delay-line model.
        conditions: PVT operating point.
        tap_sel: (proposed scheme) locked cell count; calibrated on the fly
            when omitted.
        levels: (conventional scheme) per-cell tuning levels; calibrated on
            the fly when omitted.

    Returns:
        the :class:`TransferCurve` over the full input-word range (word 0 is
        skipped, as in the paper's figures, because it produces no pulse).
    """
    if isinstance(line, ProposedDelayLine):
        words, delays, ideal = _proposed_curve(line, conditions, tap_sel)
        scheme = "proposed"
        period = line.config.clock_period_ps
    elif isinstance(line, ConventionalDelayLine):
        words, delays, ideal = _conventional_curve(line, conditions, levels)
        scheme = "conventional"
        period = line.config.clock_period_ps
    else:
        raise TypeError(f"unsupported delay-line type: {type(line)!r}")
    return TransferCurve(
        scheme=scheme,
        input_words=words,
        delays_ps=delays,
        ideal_delays_ps=ideal,
        clock_period_ps=period,
    )

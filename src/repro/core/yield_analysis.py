"""Statistical sizing of the proposed delay line (the paper's future work).

The proposed scheme is sized for the worst case: the cell count is chosen so
that even at the fastest corner the full line covers one clock period, which
guarantees locking for 100 % of fabricated chips but carries extra cells that
most chips never use.  Section 5.2 of the paper proposes replacing this
worst-case methodology with a *statistical* one: characterize the technology,
compute the fraction of chips whose line covers the clock period as a
function of the cell count, and let the designer trade area against yield.

This module implements that analysis:

* :class:`YieldModel` describes the statistical spread of the per-chip delay
  (a global corner-like component plus per-buffer random mismatch).
* :func:`coverage_yield` Monte-Carlo-estimates the locking yield of a given
  cell count.
* :func:`yield_curve` sweeps the cell count and returns the yield/area
  trade-off, and :func:`cells_for_yield` picks the smallest cell count that
  meets a yield target.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.design import DesignSpec
from repro.technology.cells import CellKind
from repro.technology.library import TechnologyLibrary, intel32_like_library

__all__ = [
    "YieldModel",
    "YieldPoint",
    "coverage_yield",
    "yield_curve",
    "cells_for_yield",
]


@dataclass(frozen=True)
class YieldModel:
    """Statistical model of per-chip buffer delay.

    The per-chip mean buffer delay is log-normally distributed around the
    typical value (capturing global process spread between the corners),
    and each buffer adds independent random mismatch on top.

    Attributes:
        global_sigma: sigma of the log-normal global (per-chip) delay spread,
            as a fraction of the typical delay.  The default 0.22 puts the
            paper's fast corner (0.5x) and slow corner (2x) at roughly
            +/- 3 sigma.
        mismatch_sigma: relative sigma of the per-buffer random mismatch.
        seed: RNG seed for reproducible Monte-Carlo runs.
    """

    global_sigma: float = 0.22
    mismatch_sigma: float = 0.04
    seed: int = 32

    def __post_init__(self) -> None:
        if self.global_sigma < 0 or self.mismatch_sigma < 0:
            raise ValueError("sigmas must be non-negative")

    def sample_chip_buffer_delays(
        self,
        typical_delay_ps: float,
        num_buffers: int,
        num_chips: int,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Sample per-chip, per-buffer delays.

        Returns an array of shape ``(num_chips, num_buffers)``.
        """
        if typical_delay_ps <= 0:
            raise ValueError("typical delay must be positive")
        if num_buffers < 1 or num_chips < 1:
            raise ValueError("need at least one buffer and one chip")
        rng = rng or np.random.default_rng(self.seed)
        global_scale = np.exp(
            rng.normal(loc=0.0, scale=self.global_sigma, size=(num_chips, 1))
        )
        # The process corners bound the global spread: foundry corner models
        # are guard-banded so no shipped material is faster than the fast
        # corner or slower than the slow corner.  Clamp accordingly, which
        # also makes the paper's worst-case sizing yield exactly 100 %.
        np.clip(global_scale, 0.5, 2.0, out=global_scale)
        mismatch = 1.0 + rng.normal(
            loc=0.0, scale=self.mismatch_sigma, size=(num_chips, num_buffers)
        )
        np.clip(mismatch, 0.2, None, out=mismatch)
        return typical_delay_ps * global_scale * mismatch


@dataclass(frozen=True)
class YieldPoint:
    """One point of the cell-count versus yield trade-off."""

    num_cells: int
    locking_yield: float
    line_area_um2: float


def coverage_yield(
    num_cells: int,
    buffers_per_cell: int,
    clock_period_ps: float,
    model: YieldModel | None = None,
    library: TechnologyLibrary | None = None,
    num_chips: int = 2000,
) -> float:
    """Monte-Carlo estimate of the fraction of chips whose line covers the period.

    A chip "yields" when the total delay of its delay line (all cells) is at
    least one clock period, i.e. the proposed controller can lock.
    """
    if num_cells < 1 or buffers_per_cell < 1:
        raise ValueError("cell and buffer counts must be positive")
    if clock_period_ps <= 0:
        raise ValueError("clock period must be positive")
    model = model or YieldModel()
    library = library or intel32_like_library()
    typical = library.cell(CellKind.BUFFER).delay_ps
    delays = model.sample_chip_buffer_delays(
        typical_delay_ps=typical,
        num_buffers=num_cells * buffers_per_cell,
        num_chips=num_chips,
    )
    totals = delays.sum(axis=1)
    return float(np.mean(totals >= clock_period_ps))


def yield_curve(
    spec: DesignSpec,
    buffers_per_cell: int,
    cell_counts: list[int] | None = None,
    model: YieldModel | None = None,
    library: TechnologyLibrary | None = None,
    num_chips: int = 2000,
) -> list[YieldPoint]:
    """Sweep the cell count and report yield and delay-line area for each.

    The default sweep spans from the nominal (typical-corner) cell count up
    to the worst-case count of the paper's design procedure.
    """
    library = library or intel32_like_library()
    if cell_counts is None:
        nominal = max(2, int(round(spec.clock_period_ps / (buffers_per_cell * 40.0))))
        worst_case = nominal * 2
        step = max(1, nominal // 8)
        cell_counts = list(range(nominal, worst_case + step, step))
    buffer_area = library.area(CellKind.BUFFER)
    points = []
    for num_cells in cell_counts:
        locking_yield = coverage_yield(
            num_cells=num_cells,
            buffers_per_cell=buffers_per_cell,
            clock_period_ps=spec.clock_period_ps,
            model=model,
            library=library,
            num_chips=num_chips,
        )
        points.append(
            YieldPoint(
                num_cells=num_cells,
                locking_yield=locking_yield,
                line_area_um2=num_cells * buffers_per_cell * buffer_area,
            )
        )
    return points


def cells_for_yield(
    spec: DesignSpec,
    buffers_per_cell: int,
    target_yield: float,
    model: YieldModel | None = None,
    library: TechnologyLibrary | None = None,
    num_chips: int = 2000,
) -> YieldPoint:
    """Smallest cell count whose Monte-Carlo locking yield meets the target.

    Raises:
        ValueError: if the target is not reachable within twice the
            worst-case cell count (a sign of an inconsistent specification).
    """
    if not 0.0 < target_yield <= 1.0:
        raise ValueError("target yield must be in (0, 1]")
    library = library or intel32_like_library()
    nominal = max(2, int(round(spec.clock_period_ps / (buffers_per_cell * 40.0))))
    for num_cells in range(nominal, nominal * 4 + 1, max(1, nominal // 16)):
        locking_yield = coverage_yield(
            num_cells=num_cells,
            buffers_per_cell=buffers_per_cell,
            clock_period_ps=spec.clock_period_ps,
            model=model,
            library=library,
            num_chips=num_chips,
        )
        if locking_yield >= target_yield:
            return YieldPoint(
                num_cells=num_cells,
                locking_yield=locking_yield,
                line_area_um2=num_cells
                * buffers_per_cell
                * library.area(CellKind.BUFFER),
            )
    raise ValueError(
        f"target yield {target_yield} not reachable within 4x the nominal cell count"
    )

"""Statistical sizing of the proposed delay line (the paper's future work).

The proposed scheme is sized for the worst case: the cell count is chosen so
that even at the fastest corner the full line covers one clock period, which
guarantees locking for 100 % of fabricated chips but carries extra cells that
most chips never use.  Section 5.2 of the paper proposes replacing this
worst-case methodology with a *statistical* one: characterize the technology,
compute the fraction of chips whose line covers the clock period as a
function of the cell count, and let the designer trade area against yield.

This module implements that analysis:

* :class:`YieldModel` describes the statistical spread of the per-chip delay
  (a global corner-like component plus per-buffer random mismatch).
* :func:`coverage_yield` Monte-Carlo-estimates the locking yield of a given
  cell count.
* :func:`yield_curve` sweeps the cell count and returns the yield/area
  trade-off, and :func:`cells_for_yield` picks the smallest cell count that
  meets a yield target.

It also carries the statistical treatment through to the closed loop the
DPWM ultimately serves:

* :class:`ComponentVariation` draws per-chip spreads of the buck's passives
  and parasitics, and
* :func:`regulation_yield` runs a whole fleet of varied converters through
  the vectorized batch engine and reports the fraction that regulate within
  a voltage tolerance -- the regulation-side analogue of the locking yield.

:func:`linearity_yield` is the delay-line analogue of
:func:`regulation_yield`: it fabricates an ensemble of post-APR instances of
either scheme, calibrates and extracts every transfer curve with the
vectorized :mod:`repro.core.ensemble` engine, and reports the fraction of
instances that meet a DNL/INL/monotonicity specification -- the
population-level question behind the paper's Figures 41-42 and 50-51.

Every estimator also has an *adaptive* sibling
(:func:`adaptive_linearity_yield` / :func:`adaptive_closed_loop_yield` /
:func:`adaptive_regulation_yield`) built on the streaming engine of
:mod:`repro.mc`: instead of a fixed instance count, the caller names a
precision (the target half-width of the confidence interval on the yield)
and a sample cap, and the estimator draws variation chunks until the
interval is tight enough, returning an :class:`AdaptiveYieldResult`
(estimate, CI, samples drawn, stop reason).  A pinned 100 %-yield cell then
costs a couple of hundred samples instead of a thousand, while a cell
teetering at a corner keeps drawing until the cap.

Both yields are scored against declarative specification objects
(:class:`LinearitySpec` / :class:`RegulationSpec`), and
:func:`closed_loop_yield` composes them: it drives the fused
silicon-to-regulation pipeline (:mod:`repro.pipeline`) -- every fabricated
delay line calibrated, turned into a DPWM duty table and closed around its
own buck converter -- and reports the fraction of chips that meet *both*
specs.  That is the paper's end-to-end claim as a single Monte-Carlo number:
a chip only ships when its delay line is linear enough *and* the loop it
serves regulates cleanly.

Example -- the declarative specs score plain arrays, and the Monte-Carlo
estimators run whole seeded fleets in one vectorized pass:

    >>> import numpy as np
    >>> from repro.converter.buck import BuckParameters
    >>> from repro.core.yield_analysis import (
    ...     ComponentVariation, RegulationSpec, YieldModel,
    ...     coverage_yield, regulation_yield)
    >>> spec = RegulationSpec(tolerance_v=0.02)
    >>> spec.passes(np.array([0.905, 0.95]), np.array([0.0, 0.0]), 0.9)
    array([ True, False])
    >>> coverage_yield(num_cells=16, buffers_per_cell=2,
    ...     clock_period_ps=1000.0, model=YieldModel(seed=1), num_chips=500)
    0.884
    >>> fleet = regulation_yield(BuckParameters(), reference_v=0.9,
    ...     variation=ComponentVariation(seed=3), num_variants=8, periods=200)
    >>> fleet.regulation_yield
    1.0
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np
import numpy.typing as npt

from repro.converter.buck import BuckParameters
from repro.converter.load import LoadProfile
from repro.converter.missions import (
    MissionGenerator,
    MissionProfile,
    resolve_missions,
)
from repro.core.design import DesignSpec
from repro.technology.cells import CellKind
from repro.technology.corners import OperatingConditions
from repro.technology.library import TechnologyLibrary, intel32_like_library
from repro.technology.thermal import TemperatureTrace, ThermalDerating
from repro.technology.variation import CorrelatedVariationModel, VariationModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (pipeline imports us)
    from repro.analysis.metrics import BatchLinearityMetrics
    from repro.core.ensemble import EnsembleCalibration, EnsembleTransferCurves
    from repro.mc import AdaptiveSampleResult
    from repro.pipeline import PipelineResult
    from repro.simulation.batch import (
        BatchBuckParameters,
        BatchQuantizer,
        BatchRegulationResult,
    )

__all__ = [
    "YieldModel",
    "YieldPoint",
    "AdaptiveYieldResult",
    "CORRELATION_PRESETS",
    "ComponentStratification",
    "ComponentTilt",
    "ComponentVariation",
    "LinearitySpec",
    "MissionSpec",
    "MissionYieldResult",
    "RareEventYieldResult",
    "RegulationSpec",
    "ClosedLoopYieldResult",
    "LinearityYieldResult",
    "RegulationYieldResult",
    "adaptive_closed_loop_yield",
    "adaptive_linearity_yield",
    "adaptive_regulation_yield",
    "component_correlation_preset",
    "coverage_yield",
    "yield_curve",
    "cells_for_yield",
    "closed_loop_yield",
    "linearity_yield",
    "mission_yield",
    "rare_event_regulation_yield",
    "regulation_yield",
]


@dataclass(frozen=True)
class YieldModel:
    """Statistical model of per-chip buffer delay.

    The per-chip mean buffer delay is log-normally distributed around the
    typical value (capturing global process spread between the corners),
    and each buffer adds independent random mismatch on top.

    Attributes:
        global_sigma: sigma of the log-normal global (per-chip) delay spread,
            as a fraction of the typical delay.  The default 0.22 puts the
            paper's fast corner (0.5x) and slow corner (2x) at roughly
            +/- 3 sigma.
        mismatch_sigma: relative sigma of the per-buffer random mismatch.
        seed: RNG seed for reproducible Monte-Carlo runs.
    """

    global_sigma: float = 0.22
    mismatch_sigma: float = 0.04
    seed: int = 32

    def __post_init__(self) -> None:
        if self.global_sigma < 0 or self.mismatch_sigma < 0:
            raise ValueError("sigmas must be non-negative")

    def sample_chip_buffer_delays(
        self,
        typical_delay_ps: float,
        num_buffers: int,
        num_chips: int,
        rng: np.random.Generator | None = None,
    ) -> npt.NDArray[np.float64]:
        """Sample per-chip, per-buffer delays.

        Returns an array of shape ``(num_chips, num_buffers)``.
        """
        if typical_delay_ps <= 0:
            raise ValueError("typical delay must be positive")
        if num_buffers < 1 or num_chips < 1:
            raise ValueError("need at least one buffer and one chip")
        rng = rng or np.random.default_rng(self.seed)
        global_scale = np.exp(
            rng.normal(loc=0.0, scale=self.global_sigma, size=(num_chips, 1))
        )
        # The process corners bound the global spread: foundry corner models
        # are guard-banded so no shipped material is faster than the fast
        # corner or slower than the slow corner.  Clamp accordingly, which
        # also makes the paper's worst-case sizing yield exactly 100 %.
        np.clip(global_scale, 0.5, 2.0, out=global_scale)
        mismatch = 1.0 + rng.normal(
            loc=0.0, scale=self.mismatch_sigma, size=(num_chips, num_buffers)
        )
        np.clip(mismatch, 0.2, None, out=mismatch)
        return typical_delay_ps * global_scale * mismatch


@dataclass(frozen=True)
class YieldPoint:
    """One point of the cell-count versus yield trade-off."""

    num_cells: int
    locking_yield: float
    line_area_um2: float


def coverage_yield(
    num_cells: int,
    buffers_per_cell: int,
    clock_period_ps: float,
    model: YieldModel | None = None,
    library: TechnologyLibrary | None = None,
    num_chips: int = 2000,
) -> float:
    """Monte-Carlo estimate of the fraction of chips whose line covers the period.

    A chip "yields" when the total delay of its delay line (all cells) is at
    least one clock period, i.e. the proposed controller can lock.
    """
    if num_cells < 1 or buffers_per_cell < 1:
        raise ValueError("cell and buffer counts must be positive")
    if clock_period_ps <= 0:
        raise ValueError("clock period must be positive")
    model = model or YieldModel()
    library = library or intel32_like_library()
    typical = library.cell(CellKind.BUFFER).delay_ps
    delays = model.sample_chip_buffer_delays(
        typical_delay_ps=typical,
        num_buffers=num_cells * buffers_per_cell,
        num_chips=num_chips,
    )
    totals = delays.sum(axis=1)
    return float(np.mean(totals >= clock_period_ps))


def yield_curve(
    spec: DesignSpec,
    buffers_per_cell: int,
    cell_counts: list[int] | None = None,
    model: YieldModel | None = None,
    library: TechnologyLibrary | None = None,
    num_chips: int = 2000,
) -> list[YieldPoint]:
    """Sweep the cell count and report yield and delay-line area for each.

    The default sweep spans from the nominal (typical-corner) cell count up
    to the worst-case count of the paper's design procedure.
    """
    library = library or intel32_like_library()
    if cell_counts is None:
        nominal = max(2, int(round(spec.clock_period_ps / (buffers_per_cell * 40.0))))
        worst_case = nominal * 2
        step = max(1, nominal // 8)
        cell_counts = list(range(nominal, worst_case + step, step))
    buffer_area = library.area(CellKind.BUFFER)
    points: list[YieldPoint] = []
    for num_cells in cell_counts:
        locking_yield = coverage_yield(
            num_cells=num_cells,
            buffers_per_cell=buffers_per_cell,
            clock_period_ps=spec.clock_period_ps,
            model=model,
            library=library,
            num_chips=num_chips,
        )
        points.append(
            YieldPoint(
                num_cells=num_cells,
                locking_yield=locking_yield,
                line_area_um2=num_cells * buffers_per_cell * buffer_area,
            )
        )
    return points


def cells_for_yield(
    spec: DesignSpec,
    buffers_per_cell: int,
    target_yield: float,
    model: YieldModel | None = None,
    library: TechnologyLibrary | None = None,
    num_chips: int = 2000,
) -> YieldPoint:
    """Smallest cell count whose Monte-Carlo locking yield meets the target.

    Raises:
        ValueError: if the target is not reachable within twice the
            worst-case cell count (a sign of an inconsistent specification).
    """
    if not 0.0 < target_yield <= 1.0:
        raise ValueError("target yield must be in (0, 1]")
    library = library or intel32_like_library()
    nominal = max(2, int(round(spec.clock_period_ps / (buffers_per_cell * 40.0))))
    for num_cells in range(nominal, nominal * 4 + 1, max(1, nominal // 16)):
        locking_yield = coverage_yield(
            num_cells=num_cells,
            buffers_per_cell=buffers_per_cell,
            clock_period_ps=spec.clock_period_ps,
            model=model,
            library=library,
            num_chips=num_chips,
        )
        if locking_yield >= target_yield:
            return YieldPoint(
                num_cells=num_cells,
                locking_yield=locking_yield,
                line_area_um2=num_cells
                * buffers_per_cell
                * library.area(CellKind.BUFFER),
            )
    raise ValueError(
        f"target yield {target_yield} not reachable within 4x the nominal cell count"
    )


#: RNG stream tag separating :meth:`ComponentVariation.sample_instances`'s
#: per-instance streams from :class:`VariationModel`'s ``(seed, instance)``
#: streams, which frequently share the same seed.
_COMPONENT_STREAM_TAG = 0x636F6D70  # "comp"

#: RNG stream tag for the *stratified* component draws.  A stratum-conditioned
#: draw consumes its stream differently from the unconditional one (an extra
#: uniform for the truncated axis), so the streams must be disjoint families:
#: ``(seed, tag, stratum, i)`` here versus ``(seed, tag, i)`` above.
_STRATUM_STREAM_TAG = 0x73747261  # "stra"

#: Order of the per-instance component draws -- one standard normal each, in
#: this sequence.  Tilt shifts and stratification axes index into it.
_COMPONENT_AXES = (
    "input_voltage",
    "inductance",
    "capacitance",
    "switch_resistance",
    "inductor_resistance",
)


def _preset_matrix(pairs: dict[tuple[str, str], float]) -> npt.NDArray[np.float64]:
    """Correlation matrix over :data:`_COMPONENT_AXES` from named pairs."""
    matrix = np.eye(len(_COMPONENT_AXES))
    for (left, right), value in pairs.items():
        row = _COMPONENT_AXES.index(left)
        column = _COMPONENT_AXES.index(right)
        matrix[row, column] = matrix[column, row] = value
    return matrix


#: Named correlation structures over the component axes, addressable from
#: the CLI's ``--correlation`` flag (the *name* is the sweep-cache-key
#: coordinate; the matrix is rebuilt inside the worker).  ``"identity"``
#: reproduces the IID model bit for bit.  ``"passives"`` couples the LC
#: reel (inductance with capacitance) and the copper lot (the two
#: parasitic resistances).  ``"thermal"`` adds a common-factor coupling of
#: all four electrical axes, the signature of a shared thermal/lot drift.
CORRELATION_PRESETS: dict[str, npt.NDArray[np.float64]] = {
    "identity": np.eye(len(_COMPONENT_AXES)),
    "passives": _preset_matrix(
        {
            ("inductance", "capacitance"): 0.8,
            ("switch_resistance", "inductor_resistance"): 0.6,
        }
    ),
    "thermal": _preset_matrix(
        {
            ("inductance", "capacitance"): 0.3,
            ("inductance", "switch_resistance"): 0.3,
            ("inductance", "inductor_resistance"): 0.3,
            ("capacitance", "switch_resistance"): 0.3,
            ("capacitance", "inductor_resistance"): 0.3,
            ("switch_resistance", "inductor_resistance"): 0.3,
        }
    ),
}


def component_correlation_preset(name: str) -> CorrelatedVariationModel:
    """The :class:`CorrelatedVariationModel` of one named preset."""
    try:
        matrix = CORRELATION_PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown correlation preset {name!r}; available: "
            f"{', '.join(sorted(CORRELATION_PRESETS))}"
        ) from None
    return CorrelatedVariationModel(matrix=matrix)


@dataclass(frozen=True)
class ComponentTilt:
    """Mean-shift / sigma-scale tilt of the component draws, in z-space.

    Importance sampling draws components from a *tilted* distribution
    concentrated on the failure region and reweights the results back to
    the nominal population.  This dataclass declares the tilt: per-axis
    mean shifts of the underlying standard-normal draws (in sigma units of
    the respective spread, so ``capacitance_shift=-2.5`` centres the
    proposal at capacitors 2.5 sigma below nominal) plus one common
    ``sigma_scale`` that widens every axis.  A widened proposal
    (``sigma_scale > 1``) keeps the likelihood-ratio weights bounded on
    the shifted side and is the standard defence against weight
    degeneracy -- see ``docs/monte_carlo.md`` for tuning guidance.

    The identity tilt (all shifts 0, scale 1) reproduces
    :meth:`ComponentVariation.sample_instances` bit for bit.
    """

    input_voltage_shift: float = 0.0
    inductance_shift: float = 0.0
    capacitance_shift: float = 0.0
    switch_resistance_shift: float = 0.0
    inductor_resistance_shift: float = 0.0
    sigma_scale: float = 1.0

    def __post_init__(self) -> None:
        for axis in _COMPONENT_AXES:
            if not math.isfinite(getattr(self, f"{axis}_shift")):
                raise ValueError(f"{axis}_shift must be finite")
        if not self.sigma_scale > 0.0 or not math.isfinite(self.sigma_scale):
            raise ValueError(
                f"sigma_scale must be positive and finite; got {self.sigma_scale}"
            )

    def shifts(self) -> npt.NDArray[np.float64]:
        """Per-axis z-space mean shifts, in component draw order."""
        return np.array(
            [getattr(self, f"{axis}_shift") for axis in _COMPONENT_AXES]
        )

    def is_identity(self) -> bool:
        """True when the tilt leaves the nominal distribution untouched."""
        return not self.shifts().any() and math.isclose(self.sigma_scale, 1.0)

    def summary(self) -> dict[str, float]:
        """JSON-able record of the tilt configuration."""
        record = {
            f"{axis}_shift": float(getattr(self, f"{axis}_shift"))
            for axis in _COMPONENT_AXES
        }
        record["sigma_scale"] = float(self.sigma_scale)
        return record


@dataclass(frozen=True)
class ComponentStratification:
    """Partition of one component axis into sigma-shell strata.

    Stratified sampling conditions the component draws on which shell of
    the chosen axis they fall in, so the rare tail shell is sampled as
    densely as the estimator wants rather than at its natural (tiny)
    probability.  The partition lives in z-space: ``boundaries`` are
    strictly increasing standard-normal quantiles splitting the axis into
    ``len(boundaries) + 1`` intervals, whose exact probability masses come
    from the normal CDF.

    The default partitions the capacitance draw below -1.5 sigma -- the
    axis and direction that dominate the load-step dip failures of the
    ``fig15_rare`` experiment.
    """

    axis: str = "capacitance"
    boundaries: tuple[float, ...] = (-3.5, -2.5, -1.5)

    def __post_init__(self) -> None:
        if self.axis not in _COMPONENT_AXES:
            raise ValueError(
                f"axis must be one of {_COMPONENT_AXES}; got {self.axis!r}"
            )
        if not self.boundaries:
            raise ValueError("need at least one stratum boundary")
        for value in self.boundaries:
            if not math.isfinite(value):
                raise ValueError(f"boundaries must be finite; got {value}")
        for left, right in zip(self.boundaries, self.boundaries[1:]):
            if not left < right:
                raise ValueError(
                    f"boundaries must be strictly increasing; got {self.boundaries}"
                )

    @property
    def num_strata(self) -> int:
        return len(self.boundaries) + 1

    def axis_index(self) -> int:
        """Index of the stratified axis in the component draw order."""
        return _COMPONENT_AXES.index(self.axis)

    def bounds(self, stratum: int) -> tuple[float, float]:
        """Z-space ``(lower, upper)`` bounds of one stratum."""
        if not 0 <= stratum < self.num_strata:
            raise ValueError(
                f"stratum must be in [0, {self.num_strata}); got {stratum}"
            )
        edges = (-math.inf, *self.boundaries, math.inf)
        return edges[stratum], edges[stratum + 1]

    def weights(self) -> tuple[float, ...]:
        """Exact probability mass of each stratum (sums to 1)."""
        from repro.mc import normal_cdf

        edges = (-math.inf, *self.boundaries, math.inf)
        return tuple(
            normal_cdf(upper) - normal_cdf(lower)
            for lower, upper in zip(edges, edges[1:])
        )

    def names(self) -> tuple[str, ...]:
        """Stable per-stratum identifiers, e.g. ``"capacitance(-2.5,-1.5]"``."""
        return tuple(
            f"{self.axis}({self.bounds(h)[0]:g},{self.bounds(h)[1]:g}]"
            for h in range(self.num_strata)
        )


@dataclass(frozen=True)
class ComponentVariation:
    """Statistical spread of the buck converter's components.

    Passives are log-normally distributed around their nominal values (the
    usual manufacturing-tolerance model: spreads are relative and strictly
    positive); parasitic resistances get a relative normal spread clamped to
    stay non-negative.

    Attributes:
        inductance_sigma: relative sigma of the filter inductance.
        capacitance_sigma: relative sigma of the filter capacitance.
        resistance_sigma: relative sigma of switch / inductor resistances.
        input_voltage_sigma: relative sigma of the input rail.
        seed: RNG seed for reproducible Monte-Carlo runs.
    """

    inductance_sigma: float = 0.05
    capacitance_sigma: float = 0.05
    resistance_sigma: float = 0.10
    input_voltage_sigma: float = 0.01
    seed: int = 32

    def __post_init__(self) -> None:
        for name in (
            "inductance_sigma",
            "capacitance_sigma",
            "resistance_sigma",
            "input_voltage_sigma",
        ):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    def sample_batch(
        self,
        nominal: BuckParameters,
        num_variants: int,
        rng: np.random.Generator | None = None,
        correlation: CorrelatedVariationModel | None = None,
    ) -> "BatchBuckParameters":
        """Draw a fleet of varied converters as stacked batch parameters.

        Returns a :class:`~repro.simulation.batch.BatchBuckParameters` of
        ``num_variants`` draws around ``nominal``.  ``correlation``
        declares cross-axis coupling of the underlying standard-normal
        draws (see :class:`~repro.technology.variation
        .CorrelatedVariationModel`); ``None`` or the identity matrix keeps
        the historical IID draw bit for bit.
        """
        from repro.simulation.batch import BatchBuckParameters

        if num_variants < 1:
            raise ValueError("need at least one variant")
        generator = rng if rng is not None else np.random.default_rng(self.seed)
        if correlation is not None and not correlation.is_identity():
            return self._sample_batch_correlated(
                nominal, num_variants, generator, correlation
            )

        def lognormal(sigma: float) -> npt.NDArray[np.float64]:
            return generator.lognormal(mean=0.0, sigma=sigma, size=num_variants)

        def clipped_normal(sigma: float) -> npt.NDArray[np.float64]:
            return np.clip(
                generator.normal(loc=1.0, scale=sigma, size=num_variants), 0.0, None
            )

        return BatchBuckParameters(
            input_voltage_v=nominal.input_voltage_v
            * lognormal(self.input_voltage_sigma),
            inductance_h=nominal.inductance_h * lognormal(self.inductance_sigma),
            capacitance_f=nominal.capacitance_f * lognormal(self.capacitance_sigma),
            switching_frequency_hz=np.full(
                num_variants, nominal.switching_frequency_hz
            ),
            switch_resistance_ohm=nominal.switch_resistance_ohm
            * clipped_normal(self.resistance_sigma),
            inductor_resistance_ohm=nominal.inductor_resistance_ohm
            * clipped_normal(self.resistance_sigma),
        )

    def _sample_batch_correlated(
        self,
        nominal: BuckParameters,
        num_variants: int,
        generator: np.random.Generator,
        correlation: CorrelatedVariationModel,
    ) -> "BatchBuckParameters":
        """One-generator fleet draw with cross-axis correlation.

        One standard-normal row per axis is drawn in the canonical axis
        order, the Cholesky factor mixes them, and the per-axis transforms
        of :meth:`_transform_draws` apply columnwise (vectorized over the
        fleet).  Marginals match the IID draw's distributions exactly; the
        joint picks up the declared correlations.
        """
        if correlation.dimension != len(_COMPONENT_AXES):
            raise ValueError(
                f"correlation matrix spans {correlation.dimension} axes; the "
                f"component draws span {len(_COMPONENT_AXES)} "
                f"({', '.join(_COMPONENT_AXES)})"
            )
        z = np.stack(
            [
                generator.standard_normal(num_variants)
                for _ in _COMPONENT_AXES
            ]
        )
        correlated = correlation.correlate(z)
        draws = np.empty((num_variants, len(_COMPONENT_AXES)))
        draws[:, 0] = np.exp(self.input_voltage_sigma * correlated[0])
        draws[:, 1] = np.exp(self.inductance_sigma * correlated[1])
        draws[:, 2] = np.exp(self.capacitance_sigma * correlated[2])
        draws[:, 3] = 1.0 + self.resistance_sigma * correlated[3]
        draws[:, 4] = 1.0 + self.resistance_sigma * correlated[4]
        np.clip(draws[:, 3:], 0.0, None, out=draws[:, 3:])
        return self._parameters_from_draws(nominal, draws)

    def sample_instances(
        self,
        nominal: BuckParameters,
        num_variants: int,
        first_instance: int = 0,
        correlation: CorrelatedVariationModel | None = None,
    ) -> "BatchBuckParameters":
        """Chunk-stable fleet draw: instance ``i`` owns its RNG stream.

        :meth:`sample_batch` draws the whole fleet from one generator, so
        the values instance ``i`` receives depend on the batch size -- fine
        for fixed-N runs, useless for streaming ones.  Here instance ``i``
        draws its spreads from its *own* stream keyed on
        ``(seed, stream tag, i)``, so sampling ``[first_instance,
        first_instance + num_variants)`` in any chunking produces the same
        fleet bit for bit (the contract of :mod:`repro.mc`).  The stream
        tag keeps the component draws decorrelated from
        :meth:`~repro.technology.variation.VariationModel.sample`, which
        keys per-instance silicon streams on ``(seed, i)`` -- often with
        the very same seed.

        The two methods draw *different* (equally valid) populations from
        the same seed; fixed-N experiments keep :meth:`sample_batch` so
        their baselines stay bit-identical.

        ``correlation`` couples the per-instance z-space draws across the
        component axes (Cholesky mixing, as in :meth:`sample_batch`);
        ``None`` or the identity matrix keeps the historical IID draw bit
        for bit.
        """
        if num_variants < 1:
            raise ValueError("need at least one variant")
        if correlation is not None and not correlation.is_identity():
            return self._sample_instances_correlated(
                nominal, num_variants, first_instance, correlation
            )
        draws = np.empty((num_variants, 5))
        for row in range(num_variants):
            rng = np.random.default_rng(
                (self.seed, _COMPONENT_STREAM_TAG, first_instance + row)
            )
            draws[row, 0] = rng.lognormal(mean=0.0, sigma=self.input_voltage_sigma)
            draws[row, 1] = rng.lognormal(mean=0.0, sigma=self.inductance_sigma)
            draws[row, 2] = rng.lognormal(mean=0.0, sigma=self.capacitance_sigma)
            draws[row, 3] = rng.normal(loc=1.0, scale=self.resistance_sigma)
            draws[row, 4] = rng.normal(loc=1.0, scale=self.resistance_sigma)
        np.clip(draws[:, 3:], 0.0, None, out=draws[:, 3:])
        return self._parameters_from_draws(nominal, draws)

    def _sample_instances_correlated(
        self,
        nominal: BuckParameters,
        num_variants: int,
        first_instance: int,
        correlation: CorrelatedVariationModel,
    ) -> "BatchBuckParameters":
        """Chunk-stable fleet draw with cross-axis correlation.

        Instance ``i`` keeps its own ``(seed, stream tag, i)`` stream, so
        the chunk-invariance contract of :meth:`sample_instances` holds
        unchanged; within an instance the five standard-normal draws are
        mixed by the Cholesky factor before the usual per-axis transforms.
        """
        if correlation.dimension != len(_COMPONENT_AXES):
            raise ValueError(
                f"correlation matrix spans {correlation.dimension} axes; the "
                f"component draws span {len(_COMPONENT_AXES)} "
                f"({', '.join(_COMPONENT_AXES)})"
            )
        dimensions = len(_COMPONENT_AXES)
        draws = np.empty((num_variants, dimensions))
        for row in range(num_variants):
            rng = np.random.default_rng(
                (self.seed, _COMPONENT_STREAM_TAG, first_instance + row)
            )
            z = rng.standard_normal(dimensions)
            draws[row] = self._transform_draws(correlation.correlate(z))
        np.clip(draws[:, 3:], 0.0, None, out=draws[:, 3:])
        return self._parameters_from_draws(nominal, draws)

    def sample_instances_tilted(
        self,
        nominal: BuckParameters,
        num_variants: int,
        first_instance: int = 0,
        *,
        tilt: ComponentTilt,
    ) -> "tuple[BatchBuckParameters, npt.NDArray[np.float64]]":
        """Chunk-stable fleet draw from a tilted component distribution.

        The importance-sampling sibling of :meth:`sample_instances`: each
        instance's five standard-normal component draws ``z`` become
        ``shift + sigma_scale * z`` before the log-normal / clipped-normal
        transforms, pushing the fleet toward the declared failure
        direction.  The second return value holds each instance's
        log-likelihood ratio ``log p(z') - log q(z')`` between the nominal
        and the tilted z-space densities -- the weights that
        :func:`repro.mc.importance_sample` folds into its self-normalized
        estimate.  (The ratio is computed on the raw normal draws, so the
        deterministic clipping downstream cancels from both densities.)

        Stream contract: instance ``i`` consumes the *same*
        ``(seed, stream tag, i)`` stream as :meth:`sample_instances`, so
        the identity tilt reproduces the vanilla fleet bit for bit with
        all-zero log-weights -- hypothesis-tested in
        ``tests/test_mc_statistics.py``.
        """
        if num_variants < 1:
            raise ValueError("need at least one variant")
        shifts = tilt.shifts()
        scale = tilt.sigma_scale
        dimensions = len(_COMPONENT_AXES)
        draws = np.empty((num_variants, dimensions))
        log_weights = np.empty(num_variants)
        for row in range(num_variants):
            rng = np.random.default_rng(
                (self.seed, _COMPONENT_STREAM_TAG, first_instance + row)
            )
            z = rng.standard_normal(dimensions)
            tilted = shifts + scale * z
            log_weights[row] = (
                0.5 * float(z @ z)
                - 0.5 * float(tilted @ tilted)
                + dimensions * math.log(scale)
            )
            draws[row] = self._transform_draws(tilted)
        np.clip(draws[:, 3:], 0.0, None, out=draws[:, 3:])
        return self._parameters_from_draws(nominal, draws), log_weights

    def sample_instances_stratum(
        self,
        nominal: BuckParameters,
        num_variants: int,
        stratum: int,
        first_instance: int = 0,
        *,
        stratification: ComponentStratification,
    ) -> "BatchBuckParameters":
        """Chunk-stable fleet draw conditioned on one sigma-shell stratum.

        The stratified-sampling sibling of :meth:`sample_instances`: the
        stratified axis draws a *truncated* standard normal confined to
        the stratum's z-space shell (inverse-CDF on a uniform mapped into
        the shell's probability mass); all other axes draw
        unconditionally.  Streams are keyed on
        ``(seed, stratum stream tag, stratum, i)`` so each stratum owns an
        independent chunk-stable family -- instance ``i`` of a stratum is
        the same chip regardless of chunking *and* of how many samples the
        other strata received.
        """
        from repro.mc import normal_cdf, normal_ppf

        if num_variants < 1:
            raise ValueError("need at least one variant")
        axis = stratification.axis_index()
        lower_z, upper_z = stratification.bounds(stratum)
        cdf_lower = normal_cdf(lower_z)
        cdf_upper = normal_cdf(upper_z)
        dimensions = len(_COMPONENT_AXES)
        draws = np.empty((num_variants, dimensions))
        for row in range(num_variants):
            rng = np.random.default_rng(
                (self.seed, _STRATUM_STREAM_TAG, stratum, first_instance + row)
            )
            z = rng.standard_normal(dimensions)
            # The truncated axis maps a fresh uniform into the shell's CDF
            # mass; the clamp keeps normal_ppf away from its open-interval
            # poles when a boundary sits far in the tail.
            quantile = cdf_lower + rng.random() * (cdf_upper - cdf_lower)
            quantile = min(max(quantile, 1e-12), 1.0 - 1e-12)
            z[axis] = normal_ppf(quantile)
            draws[row] = self._transform_draws(z)
        np.clip(draws[:, 3:], 0.0, None, out=draws[:, 3:])
        return self._parameters_from_draws(nominal, draws)

    def _transform_draws(self, z: npt.NDArray[np.float64]) -> npt.NDArray[np.float64]:
        """Map one instance's five z-space draws to relative spreads.

        Matches :meth:`sample_instances` exactly: log-normal for the
        passives and the input rail, relative normal for the resistances
        (clipping happens on the assembled matrix, as there).
        """
        return np.array(
            [
                math.exp(self.input_voltage_sigma * z[0]),
                math.exp(self.inductance_sigma * z[1]),
                math.exp(self.capacitance_sigma * z[2]),
                1.0 + self.resistance_sigma * z[3],
                1.0 + self.resistance_sigma * z[4],
            ]
        )

    def _parameters_from_draws(
        self, nominal: BuckParameters, draws: npt.NDArray[np.float64]
    ) -> "BatchBuckParameters":
        """Assemble batch parameters from a ``(variants, 5)`` spread matrix."""
        from repro.simulation.batch import BatchBuckParameters

        num_variants = draws.shape[0]
        return BatchBuckParameters(
            input_voltage_v=nominal.input_voltage_v * draws[:, 0],
            inductance_h=nominal.inductance_h * draws[:, 1],
            capacitance_f=nominal.capacitance_f * draws[:, 2],
            switching_frequency_hz=np.full(
                num_variants, nominal.switching_frequency_hz
            ),
            switch_resistance_ohm=nominal.switch_resistance_ohm * draws[:, 3],
            inductor_resistance_ohm=nominal.inductor_resistance_ohm * draws[:, 4],
        )


@dataclass(frozen=True)
class LinearitySpec:
    """Declarative pass/fail specification for a calibrated delay line.

    An instance passes when its controller locks (when ``require_lock``),
    its transfer curve is monotonic (when ``require_monotonic``) and its
    worst-case |DNL| / |INL| / ideal-line deviation stay within whichever of
    the three limits are given.  ``dnl_limit_lsb`` / ``inl_limit_lsb`` are in
    LSB units of the scheme's own step size; ``error_limit_fraction`` is
    referred to the switching period, the quantity that translates into
    output-voltage error (paper eq. 12) and therefore the right scale for
    cross-scheme comparisons.  ``None`` limits are not checked.
    """

    dnl_limit_lsb: float | None = None
    inl_limit_lsb: float | None = None
    error_limit_fraction: float | None = None
    require_monotonic: bool = True
    require_lock: bool = True

    def __post_init__(self) -> None:
        for name in ("dnl_limit_lsb", "inl_limit_lsb", "error_limit_fraction"):
            limit = getattr(self, name)
            if limit is not None and limit <= 0:
                raise ValueError(f"{name} must be positive")

    def passes(
        self,
        metrics: "BatchLinearityMetrics",
        locked: npt.ArrayLike,
        error_fractions: npt.ArrayLike,
    ) -> npt.NDArray[np.bool_]:
        """Per-instance pass flags from batch linearity metrics.

        Args:
            metrics: a :class:`~repro.analysis.metrics.BatchLinearityMetrics`.
            locked: per-instance lock flags from the calibration.
            error_fractions: per-instance worst-case ideal-line deviation as
                a fraction of the switching period.
        """
        passes = np.ones(np.asarray(locked).shape, dtype=bool)
        if self.dnl_limit_lsb is not None:
            passes &= metrics.max_dnl_lsb <= self.dnl_limit_lsb
        if self.inl_limit_lsb is not None:
            passes &= metrics.max_inl_lsb <= self.inl_limit_lsb
        if self.error_limit_fraction is not None:
            passes &= np.asarray(error_fractions) <= self.error_limit_fraction
        if self.require_monotonic:
            passes &= metrics.monotonic
        if self.require_lock:
            passes &= np.asarray(locked)
        return passes

    def evaluate(
        self,
        calibration: "EnsembleCalibration",
        curves: "EnsembleTransferCurves",
    ) -> npt.NDArray[np.bool_]:
        """Per-instance pass flags straight from an ensemble's outputs."""
        return self.passes(
            curves.metrics(),
            calibration.locked,
            curves.max_error_fraction_of_period(),
        )


@dataclass(frozen=True)
class RegulationSpec:
    """Declarative pass/fail specification for the closed regulation loop.

    A variant passes when its steady-state output voltage stays within
    ``tolerance_v`` of the reference and (when ``ripple_limit_v`` is given)
    its steady-state limit-cycle amplitude -- the peak-to-peak tail ripple --
    stays within the limit.  Steady state is the last ``tail_fraction`` of
    the run.
    """

    tolerance_v: float = 0.02
    ripple_limit_v: float | None = None
    tail_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.tolerance_v <= 0:
            raise ValueError("tolerance must be positive")
        if self.ripple_limit_v is not None and self.ripple_limit_v <= 0:
            raise ValueError("ripple_limit_v must be positive")
        if not 0.0 < self.tail_fraction <= 1.0:
            raise ValueError("tail_fraction must be in (0, 1]")

    def passes(
        self,
        steady_state_v: npt.ArrayLike,
        ripples_v: npt.ArrayLike,
        reference_v: npt.ArrayLike,
    ) -> npt.NDArray[np.bool_]:
        """Per-variant pass flags from steady-state statistics."""
        errors = np.abs(np.asarray(steady_state_v) - np.asarray(reference_v))
        passes = errors <= self.tolerance_v
        if self.ripple_limit_v is not None:
            passes &= np.asarray(ripples_v) <= self.ripple_limit_v
        return passes

    def evaluate(
        self, regulation: "BatchRegulationResult", reference_v: npt.ArrayLike
    ) -> npt.NDArray[np.bool_]:
        """Per-variant pass flags straight from a batch regulation run."""
        return self.passes(
            regulation.steady_state_voltage_v(self.tail_fraction),
            regulation.steady_state_ripple_v(self.tail_fraction),
            reference_v,
        )


@dataclass(frozen=True)
class RegulationYieldResult:
    """Outcome of a Monte-Carlo regulation sweep.

    Attributes:
        regulation_yield: fraction of variants whose steady-state output lies
            within the tolerance of the reference.
        steady_state_voltages_v: per-variant steady-state outputs.
        steady_state_ripples_v: per-variant peak-to-peak tail ripple.
        worst_error_v: largest steady-state deviation from the reference.
    """

    regulation_yield: float
    steady_state_voltages_v: npt.NDArray[np.float64]
    steady_state_ripples_v: npt.NDArray[np.float64]
    worst_error_v: float


def regulation_yield(
    nominal: BuckParameters,
    reference_v: float,
    variation: ComponentVariation | None = None,
    num_variants: int = 256,
    periods: int = 300,
    tolerance_v: float = 0.02,
    dpwm_bits: int = 6,
    quantizer: "BatchQuantizer | None" = None,
    load: LoadProfile | None = None,
) -> RegulationYieldResult:
    """Monte-Carlo estimate of the closed loop's regulation yield.

    A variant "yields" when it meets the :class:`RegulationSpec` built from
    ``tolerance_v`` (steady-state output within the tolerance of the
    reference) despite its component draws.  The whole fleet is advanced in
    one vectorized batch run, so 256 variants cost a couple of matrix-vector
    products per switching period rather than millions of Python iterations.
    """
    from repro.simulation.batch import BatchClosedLoop, BatchQuantizer

    spec = RegulationSpec(tolerance_v=tolerance_v)
    variation = variation or ComponentVariation()
    parameters = variation.sample_batch(nominal, num_variants)
    if quantizer is None:
        quantizer = BatchQuantizer.ideal(dpwm_bits, num_variants)
    loop = BatchClosedLoop(parameters, quantizer, reference_v=reference_v, load=load)
    result = loop.run(periods)
    steady_state = result.steady_state_voltage_v(spec.tail_fraction)
    ripple = result.steady_state_ripple_v(spec.tail_fraction)
    passes = spec.passes(steady_state, ripple, reference_v)
    return RegulationYieldResult(
        regulation_yield=float(np.mean(passes)),
        steady_state_voltages_v=steady_state,
        steady_state_ripples_v=ripple,
        worst_error_v=float(np.abs(steady_state - reference_v).max()),
    )


@dataclass(frozen=True)
class LinearityYieldResult:
    """Outcome of a Monte-Carlo linearity sweep over fabricated instances.

    Attributes:
        scheme: ``"proposed"`` or ``"conventional"``.
        linearity_yield: fraction of instances meeting the full specification
            (lock if required, DNL/INL limits, monotonicity if required).
        lock_yield: fraction of instances whose controller achieved a valid
            lock.
        passes: per-instance pass/fail flags.
        locked: per-instance lock flags.
        max_dnl_lsb / max_inl_lsb / rms_inl_lsb: per-instance metrics.
        monotonic: per-instance monotonicity flags.
        max_error_fraction_of_period: per-instance worst-case deviation from
            the ideal line as a fraction of the switching period.
    """

    scheme: str
    linearity_yield: float
    lock_yield: float
    passes: npt.NDArray[np.bool_]
    locked: npt.NDArray[np.bool_]
    max_dnl_lsb: npt.NDArray[np.float64]
    max_inl_lsb: npt.NDArray[np.float64]
    rms_inl_lsb: npt.NDArray[np.float64]
    monotonic: npt.NDArray[np.bool_]
    max_error_fraction_of_period: npt.NDArray[np.float64]

    @property
    def num_instances(self) -> int:
        return int(self.passes.shape[0])


def linearity_yield(
    scheme: str,
    spec: DesignSpec,
    conditions: OperatingConditions,
    variation: VariationModel | None = None,
    num_instances: int = 1000,
    dnl_limit_lsb: float | None = None,
    inl_limit_lsb: float | None = None,
    error_limit_fraction: float | None = None,
    require_monotonic: bool = True,
    require_lock: bool = True,
    library: TechnologyLibrary | None = None,
    first_instance: int = 0,
) -> LinearityYieldResult:
    """Monte-Carlo estimate of the fraction of instances meeting a linearity spec.

    The design procedure sizes the requested scheme for the specification,
    ``num_instances`` post-APR instances are drawn from the variation model,
    and the whole ensemble is calibrated and swept in one vectorized run of
    the :mod:`repro.core.ensemble` engine -- the delay-line analogue of
    :func:`regulation_yield`.

    An instance "yields" when it meets the :class:`LinearitySpec` built from
    the limit arguments (lock if required, DNL/INL/deviation limits,
    monotonicity if required); see that class for the unit conventions.
    """
    if num_instances < 1:
        raise ValueError("need at least one instance")
    from repro.pipeline import fabricate_ensemble

    linearity_spec = LinearitySpec(
        dnl_limit_lsb=dnl_limit_lsb,
        inl_limit_lsb=inl_limit_lsb,
        error_limit_fraction=error_limit_fraction,
        require_monotonic=require_monotonic,
        require_lock=require_lock,
    )
    library = library or intel32_like_library()
    variation = variation or VariationModel()
    ensemble = fabricate_ensemble(
        scheme,
        spec,
        variation=variation,
        num_instances=num_instances,
        library=library,
        first_instance=first_instance,
    )

    calibration = ensemble.lock(conditions)
    curves = ensemble.transfer_curves(conditions, calibration=calibration)
    metrics = curves.metrics()
    error_fractions = curves.max_error_fraction_of_period()

    passes = linearity_spec.passes(metrics, calibration.locked, error_fractions)
    return LinearityYieldResult(
        scheme=scheme,
        linearity_yield=float(np.mean(passes)),
        lock_yield=float(np.mean(calibration.locked)),
        passes=passes,
        locked=calibration.locked,
        max_dnl_lsb=metrics.max_dnl_lsb,
        max_inl_lsb=metrics.max_inl_lsb,
        rms_inl_lsb=metrics.rms_inl_lsb,
        monotonic=metrics.monotonic,
        max_error_fraction_of_period=error_fractions,
    )


@dataclass(frozen=True)
class ClosedLoopYieldResult:
    """Outcome of a fused silicon-to-regulation Monte-Carlo sweep.

    Attributes:
        scheme: ``"proposed"`` or ``"conventional"``.
        closed_loop_yield: fraction of fabricated instances meeting *both*
            the linearity and the regulation specification.
        linearity_yield / regulation_yield / lock_yield: the per-spec
            fractions (of the same instances).
        passes / linearity_passes / regulation_passes: per-instance flags.
        steady_state_voltages_v: per-instance steady-state outputs.
        limit_cycle_amplitudes_v: per-instance steady-state peak-to-peak
            output ripple (the limit-cycle amplitude the DPWM's finite,
            nonlinear resolution leaves behind).
        worst_error_v: largest steady-state deviation from the reference.
        pipeline_result: the full :class:`repro.pipeline.PipelineResult`
            (calibration, transfer curves, per-period regulation history).
    """

    scheme: str
    closed_loop_yield: float
    linearity_yield: float
    regulation_yield: float
    lock_yield: float
    passes: npt.NDArray[np.bool_]
    linearity_passes: npt.NDArray[np.bool_]
    regulation_passes: npt.NDArray[np.bool_]
    steady_state_voltages_v: npt.NDArray[np.float64]
    limit_cycle_amplitudes_v: npt.NDArray[np.float64]
    worst_error_v: float
    pipeline_result: "PipelineResult"

    @property
    def num_instances(self) -> int:
        return int(self.passes.shape[0])


def closed_loop_yield(
    scheme: str,
    spec: DesignSpec,
    conditions: OperatingConditions,
    nominal: BuckParameters | None = None,
    reference_v: float = 0.9,
    variation: VariationModel | None = None,
    component_variation: ComponentVariation | None = None,
    num_instances: int = 256,
    periods: int = 300,
    linearity_spec: LinearitySpec | None = None,
    regulation_spec: RegulationSpec | None = None,
    load: LoadProfile | None = None,
    library: TechnologyLibrary | None = None,
    first_instance: int = 0,
) -> ClosedLoopYieldResult:
    """Monte-Carlo estimate of the fused silicon-to-regulation yield.

    Every fabricated delay-line instance is calibrated, converted into a
    DPWM duty table and closed around its own buck converter in one
    vectorized :class:`repro.pipeline.SiliconToRegulationPipeline` run -- no
    per-instance Python loop anywhere in the hot path.  An instance "yields"
    when it meets both the :class:`LinearitySpec` (its silicon) and the
    :class:`RegulationSpec` (the loop it serves); the composition is the
    point: a chip with linear silicon that limit-cycles out of tolerance
    fails, as does a chip that regulates today on silicon that never locked.
    """
    from repro.pipeline import SiliconToRegulationPipeline

    linearity_spec = linearity_spec or LinearitySpec()
    regulation_spec = regulation_spec or RegulationSpec()
    pipeline = SiliconToRegulationPipeline(
        scheme,
        spec,
        conditions,
        variation=variation,
        num_instances=num_instances,
        nominal=nominal,
        reference_v=reference_v,
        component_variation=component_variation,
        load=load,
        library=library,
        first_instance=first_instance,
    )
    result = pipeline.run(periods)
    linearity_passes = linearity_spec.evaluate(result.calibration, result.curves)
    steady_state = result.regulation.steady_state_voltage_v(
        regulation_spec.tail_fraction
    )
    ripple = result.regulation.steady_state_ripple_v(regulation_spec.tail_fraction)
    regulation_passes = regulation_spec.passes(steady_state, ripple, reference_v)
    passes = linearity_passes & regulation_passes
    return ClosedLoopYieldResult(
        scheme=result.scheme,
        closed_loop_yield=float(np.mean(passes)),
        linearity_yield=float(np.mean(linearity_passes)),
        regulation_yield=float(np.mean(regulation_passes)),
        lock_yield=float(np.mean(result.calibration.locked)),
        passes=passes,
        linearity_passes=linearity_passes,
        regulation_passes=regulation_passes,
        steady_state_voltages_v=steady_state,
        limit_cycle_amplitudes_v=ripple,
        worst_error_v=float(np.abs(steady_state - reference_v).max()),
        pipeline_result=result,
    )


@dataclass(frozen=True)
class AdaptiveYieldResult:
    """Outcome of a confidence-bounded adaptive Monte-Carlo yield run.

    Where the fixed-N results report per-instance arrays, the adaptive
    result reports *streaming* statistics: the sampler only ever holds one
    chunk of instances in memory, so everything here is a scalar summary --
    which also makes the whole object JSON-able and therefore directly
    cacheable by the sweep layer.

    Attributes:
        scheme: ``"proposed"`` / ``"conventional"`` (``None`` for the
            component-only regulation sweep).
        yield_estimate: maximum-likelihood estimate of the primary yield
            (passes / samples).
        lower / upper: confidence-interval bounds on the primary yield.
        confidence: two-sided confidence level of all intervals.
        precision: the requested half-width target.
        samples: instances actually drawn -- the spent sample budget.
        max_samples: the hard cap the run was allowed.
        chunk_size: instances per drawn chunk.
        stop_reason: ``"precision"`` if the interval tightened to the
            target, ``"max_samples"`` if the cap ran out first.
        method: interval method used (``"wilson"`` / ``"clopper_pearson"``).
        spec_yields: per-statistic yield estimates (e.g. ``"linearity"``,
            ``"regulation"``, ``"lock"``); the primary statistic is
            included.
        spec_intervals: per-statistic ``(lower, upper)`` interval bounds.
        value_stats: per-metric streaming summaries (``mean`` / ``std`` /
            ``min`` / ``max`` / ``count``), e.g. the limit-cycle amplitude.
    """

    scheme: str | None
    yield_estimate: float
    lower: float
    upper: float
    confidence: float
    precision: float
    samples: int
    max_samples: int
    chunk_size: int
    stop_reason: str
    method: str
    spec_yields: dict[str, float]
    spec_intervals: dict[str, tuple[float, float]]
    value_stats: dict[str, dict[str, float]]

    @property
    def half_width(self) -> float:
        """Realized half-width of the primary confidence interval."""
        return 0.5 * (self.upper - self.lower)


def _adaptive_result(
    scheme: str | None, sample_result: "AdaptiveSampleResult", primary: str
) -> AdaptiveYieldResult:
    """Fold an :class:`repro.mc.AdaptiveSampleResult` into the domain shape."""
    interval = sample_result.intervals[primary]
    return AdaptiveYieldResult(
        scheme=scheme,
        yield_estimate=sample_result.estimates[primary],
        lower=interval.lower,
        upper=interval.upper,
        confidence=sample_result.confidence,
        precision=sample_result.precision,
        samples=sample_result.trials,
        max_samples=sample_result.max_samples,
        chunk_size=sample_result.chunk_size,
        stop_reason=sample_result.stop_reason,
        method=sample_result.method,
        spec_yields=dict(sample_result.estimates),
        spec_intervals={
            name: (ci.lower, ci.upper)
            for name, ci in sample_result.intervals.items()
        },
        value_stats={
            name: moments.summary()
            for name, moments in sample_result.moments.items()
        },
    )


def adaptive_linearity_yield(
    scheme: str,
    spec: DesignSpec,
    conditions: OperatingConditions,
    variation: VariationModel | None = None,
    precision: float = 0.02,
    confidence: float = 0.95,
    max_instances: int = 4096,
    chunk_size: int = 64,
    min_instances: int | None = None,
    method: str = "wilson",
    dnl_limit_lsb: float | None = None,
    inl_limit_lsb: float | None = None,
    error_limit_fraction: float | None = None,
    require_monotonic: bool = True,
    require_lock: bool = True,
    library: TechnologyLibrary | None = None,
) -> AdaptiveYieldResult:
    """Adaptive sibling of :func:`linearity_yield`: sample until the CI is tight.

    The scheme is designed once (:class:`repro.pipeline.ChunkedFabricator`),
    then post-APR chunks are fabricated, calibrated and scored until the
    confidence interval on the linearity yield has half-width
    ``<= precision`` or ``max_instances`` samples are spent.  Instance
    ``i``'s mismatch comes from the variation model's per-instance stream,
    so the sample stream -- and therefore the estimate -- is independent of
    the chunk size.
    """
    from repro.mc import SampleChunk, adaptive_sample
    from repro.pipeline import ChunkedFabricator

    resolved_spec = LinearitySpec(
        dnl_limit_lsb=dnl_limit_lsb,
        inl_limit_lsb=inl_limit_lsb,
        error_limit_fraction=error_limit_fraction,
        require_monotonic=require_monotonic,
        require_lock=require_lock,
    )
    fabricator = ChunkedFabricator(
        scheme, spec, variation=variation or VariationModel(), library=library
    )

    def draw(first_instance: int, count: int) -> SampleChunk:
        ensemble = fabricator.fabricate(count, first_instance=first_instance)
        calibration = ensemble.lock(conditions)
        curves = ensemble.transfer_curves(conditions, calibration=calibration)
        metrics = curves.metrics()
        error_fractions = curves.max_error_fraction_of_period()
        return SampleChunk(
            passes={
                "linearity": resolved_spec.passes(
                    metrics, calibration.locked, error_fractions
                ),
                "lock": np.asarray(calibration.locked, dtype=bool),
                "monotonic": np.asarray(metrics.monotonic, dtype=bool),
            },
            values={
                "max_dnl_lsb": metrics.max_dnl_lsb,
                "max_inl_lsb": metrics.max_inl_lsb,
                "rms_inl_lsb": metrics.rms_inl_lsb,
                "error_fraction": error_fractions,
            },
        )

    sample_result = adaptive_sample(
        draw,
        primary="linearity",
        precision=precision,
        confidence=confidence,
        max_samples=max_instances,
        chunk_size=chunk_size,
        min_samples=min_instances,
        method=method,
    )
    return _adaptive_result(scheme, sample_result, "linearity")


def adaptive_closed_loop_yield(
    scheme: str,
    spec: DesignSpec,
    conditions: OperatingConditions,
    nominal: BuckParameters | None = None,
    reference_v: float = 0.9,
    variation: VariationModel | None = None,
    component_variation: ComponentVariation | None = None,
    precision: float = 0.02,
    confidence: float = 0.95,
    max_instances: int = 4096,
    chunk_size: int = 64,
    min_instances: int | None = None,
    method: str = "wilson",
    periods: int = 300,
    linearity_spec: LinearitySpec | None = None,
    regulation_spec: RegulationSpec | None = None,
    load: LoadProfile | None = None,
    library: TechnologyLibrary | None = None,
) -> AdaptiveYieldResult:
    """Adaptive sibling of :func:`closed_loop_yield`.

    Runs the silicon-to-regulation pipeline per chunk through
    :class:`repro.pipeline.ChunkedSiliconToRegulation` -- the design
    procedure runs once, each chunk only fabricates, calibrates, converts
    and regulates its own instance range -- until the confidence interval
    on the *composed* yield (linearity AND regulation) is tight enough.
    The per-spec yields and the streaming limit-cycle-amplitude statistics
    ride along.  Note the electrical spread uses
    :meth:`ComponentVariation.sample_instances` (the chunk-stable stream),
    so the population differs from the fixed-N :func:`closed_loop_yield`
    draw -- by design; each path is internally reproducible.
    """
    from repro.mc import SampleChunk, adaptive_sample
    from repro.pipeline import ChunkedSiliconToRegulation

    resolved_linearity = linearity_spec or LinearitySpec()
    resolved_regulation = regulation_spec or RegulationSpec()
    runner = ChunkedSiliconToRegulation(
        scheme,
        spec,
        conditions,
        variation=variation,
        nominal=nominal,
        reference_v=reference_v,
        component_variation=component_variation,
        load=load,
        library=library,
    )

    def draw(first_instance: int, count: int) -> SampleChunk:
        result = runner.run_chunk(first_instance, count, periods=periods)
        linearity_passes = resolved_linearity.evaluate(
            result.calibration, result.curves
        )
        steady_state = result.regulation.steady_state_voltage_v(
            resolved_regulation.tail_fraction
        )
        ripple = result.regulation.steady_state_ripple_v(
            resolved_regulation.tail_fraction
        )
        regulation_passes = resolved_regulation.passes(
            steady_state, ripple, reference_v
        )
        return SampleChunk(
            passes={
                "closed_loop": linearity_passes & regulation_passes,
                "linearity": linearity_passes,
                "regulation": regulation_passes,
                "lock": np.asarray(result.calibration.locked, dtype=bool),
            },
            values={
                "limit_cycle_amplitude_v": ripple,
                "error_v": np.abs(steady_state - reference_v),
            },
        )

    sample_result = adaptive_sample(
        draw,
        primary="closed_loop",
        precision=precision,
        confidence=confidence,
        max_samples=max_instances,
        chunk_size=chunk_size,
        min_samples=min_instances,
        method=method,
    )
    return _adaptive_result(runner.scheme, sample_result, "closed_loop")


def adaptive_regulation_yield(
    nominal: BuckParameters,
    reference_v: float,
    variation: ComponentVariation | None = None,
    precision: float = 0.02,
    confidence: float = 0.95,
    max_instances: int = 4096,
    chunk_size: int = 64,
    min_instances: int | None = None,
    method: str = "wilson",
    periods: int = 300,
    tolerance_v: float = 0.02,
    dpwm_bits: int = 6,
    load: LoadProfile | None = None,
) -> AdaptiveYieldResult:
    """Adaptive sibling of :func:`regulation_yield` (component spread only).

    Each chunk draws its electrical spreads from
    :meth:`ComponentVariation.sample_instances` (the chunk-stable stream),
    closes an ideal-DPWM fleet around them and scores the
    :class:`RegulationSpec`, until the interval on the regulation yield is
    tight enough or the cap runs out.
    """
    from repro.mc import SampleChunk, adaptive_sample
    from repro.simulation.batch import BatchClosedLoop, BatchQuantizer

    spec = RegulationSpec(tolerance_v=tolerance_v)
    resolved_variation = variation or ComponentVariation()

    def draw(first_instance: int, count: int) -> SampleChunk:
        parameters = resolved_variation.sample_instances(
            nominal, count, first_instance=first_instance
        )
        loop = BatchClosedLoop(
            parameters,
            BatchQuantizer.ideal(dpwm_bits, count),
            reference_v=reference_v,
            load=load,
        )
        result = loop.run(periods)
        steady_state = result.steady_state_voltage_v(spec.tail_fraction)
        ripple = result.steady_state_ripple_v(spec.tail_fraction)
        return SampleChunk(
            passes={"regulation": spec.passes(steady_state, ripple, reference_v)},
            values={
                "steady_state_v": steady_state,
                "ripple_v": ripple,
                "error_v": np.abs(steady_state - reference_v),
            },
        )

    sample_result = adaptive_sample(
        draw,
        primary="regulation",
        precision=precision,
        confidence=confidence,
        max_samples=max_instances,
        chunk_size=chunk_size,
        min_samples=min_instances,
        method=method,
    )
    return _adaptive_result(None, sample_result, "regulation")


@dataclass(frozen=True)
class RareEventYieldResult:
    """Outcome of a rare-event (ppm-regime) regulation-failure estimate.

    Everything is a scalar (or a tuple of JSON-able dicts), so the result
    serializes straight into the sweep cache -- same design as
    :class:`AdaptiveYieldResult`, but framed around the *failure*
    probability: in the ppm regime the failure rate is the number with
    signal in it, and the yield is just its complement.

    Attributes:
        estimator: ``"vanilla"`` / ``"stratified"`` / ``"importance"``.
        failure_probability: estimated probability that the load-step dip
            undershoots the limit.
        lower / upper: confidence-interval bounds on the failure
            probability.
        confidence: two-sided confidence level.
        precision: the requested half-width target (0 = fixed budget).
        samples: instances actually drawn -- the spent sample budget.
        max_samples / chunk_size: the sampling configuration.
        stop_reason: ``"precision"`` or ``"max_samples"``.
        dip_limit_v: the undershoot threshold defining failure.
        mean_dip_v: estimated nominal-population mean of the worst dip
            (reweighted for the importance estimator, post-stratified for
            the stratified one).
        effective_sample_size: Kish ESS of the weight stream (importance
            estimator only).
        strata: per-stratum detail rows (stratified estimator only).
    """

    estimator: str
    failure_probability: float
    lower: float
    upper: float
    confidence: float
    precision: float
    samples: int
    max_samples: int
    chunk_size: int
    stop_reason: str
    dip_limit_v: float
    mean_dip_v: float
    effective_sample_size: float | None = None
    strata: tuple[dict[str, float | int | str], ...] | None = None

    @property
    def half_width(self) -> float:
        """Realized half-width of the failure-probability interval."""
        return 0.5 * (self.upper - self.lower)

    @property
    def yield_estimate(self) -> float:
        """The complementary yield, ``1 - failure_probability``."""
        return 1.0 - self.failure_probability

    def summary(self) -> dict[str, object]:
        """Flat JSON-able record of the run (cacheable by the sweep layer)."""
        record: dict[str, object] = {
            "estimator": self.estimator,
            "failure_probability": self.failure_probability,
            "lower": self.lower,
            "upper": self.upper,
            "half_width": self.half_width,
            "confidence": self.confidence,
            "precision": self.precision,
            "samples": self.samples,
            "max_samples": self.max_samples,
            "chunk_size": self.chunk_size,
            "stop_reason": self.stop_reason,
            "dip_limit_v": self.dip_limit_v,
            "mean_dip_v": self.mean_dip_v,
        }
        if self.effective_sample_size is not None:
            record["effective_sample_size"] = self.effective_sample_size
        if self.strata is not None:
            record["strata"] = [dict(row) for row in self.strata]
        return record


def rare_event_regulation_yield(
    nominal: BuckParameters,
    reference_v: float,
    *,
    dip_limit_v: float,
    variation: ComponentVariation | None = None,
    estimator: str = "importance",
    tilt: ComponentTilt | None = None,
    stratification: ComponentStratification | None = None,
    load: LoadProfile | None = None,
    quantizer_levels: npt.ArrayLike | None = None,
    dpwm_bits: int = 6,
    periods: int = 160,
    settle_periods: int = 60,
    precision: float = 0.0,
    confidence: float = 0.95,
    max_instances: int = 4096,
    chunk_size: int = 256,
    min_ess: float = 32.0,
) -> RareEventYieldResult:
    """Estimate a rare load-step undershoot probability of the closed loop.

    The rare-event sibling of :func:`adaptive_regulation_yield`.  A
    variant *fails* when its output voltage dips below ``dip_limit_v`` at
    any period after ``settle_periods`` -- the transient undershoot of a
    load step, which at a guard-banded limit is a ppm-regime event that
    vanilla adaptive sampling cannot resolve within any sane budget.
    Three estimators share the identical vectorized fleet simulation and
    differ only in how they draw the component spreads:

    * ``"vanilla"`` -- :meth:`ComponentVariation.sample_instances` +
      :func:`repro.mc.adaptive_sample` (Wilson stopping).  The honest
      brute-force baseline.
    * ``"stratified"`` -- sigma-shell strata on one component axis
      (:class:`ComponentStratification`), Neyman-allocated chunks via
      :func:`repro.mc.stratified_sample`.
    * ``"importance"`` -- mean-shift/sigma-scale tilted draws
      (:class:`ComponentTilt`), self-normalized reweighting with an
      ESS-guarded stopping rule via :func:`repro.mc.importance_sample`.

    Args:
        nominal: the nominal converter design.
        reference_v: regulation reference voltage.
        dip_limit_v: undershoot threshold defining failure (must sit
            below ``reference_v``).
        variation: component spread model (default spreads when omitted).
        estimator: which estimator to run (see above).
        tilt: tilt configuration; only meaningful for ``"importance"``
            (defaults to the identity tilt -- valid but variance-free of
            benefit, so callers normally pass a real tilt).
        stratification: shell partition; only meaningful for
            ``"stratified"`` (defaults to the capacitance shells).
        load: load profile the fleet is stepped with.
        quantizer_levels: one DPWM duty table shared by the whole fleet
            (e.g. from a calibrated fabricated instance); falls back to an
            ideal ``dpwm_bits``-bit quantizer.
        periods / settle_periods: run length and the periods excluded
            from the dip measurement while the loop settles.
        precision: target CI half-width on the failure probability
            (0 runs the full budget).
        confidence: two-sided confidence level.
        max_instances: hard sample cap.
        chunk_size: instances per vectorized chunk.
        min_ess: effective-sample-size floor of the importance
            estimator's stopping rule.

    Returns:
        a JSON/cache-able :class:`RareEventYieldResult`.
    """
    from repro.mc import (
        SampleChunk,
        Stratum,
        WeightedSampleChunk,
        adaptive_sample,
        importance_sample,
        stratified_sample,
    )
    from repro.simulation.batch import BatchClosedLoop, BatchQuantizer

    estimators = ("vanilla", "stratified", "importance")
    if estimator not in estimators:
        raise ValueError(
            f"estimator must be one of {estimators}; got {estimator!r}"
        )
    if not 0.0 < dip_limit_v < reference_v:
        raise ValueError(
            f"dip_limit_v must be in (0, reference_v); got {dip_limit_v}"
        )
    if not 0 <= settle_periods < periods:
        raise ValueError(
            f"settle_periods must be in [0, periods); got {settle_periods}"
        )
    if tilt is not None and estimator != "importance":
        raise ValueError("tilt only applies to the importance estimator")
    if stratification is not None and estimator != "stratified":
        raise ValueError(
            "stratification only applies to the stratified estimator"
        )
    resolved_variation = variation or ComponentVariation()
    levels_row = (
        None
        if quantizer_levels is None
        else np.atleast_2d(np.asarray(quantizer_levels, dtype=float))
    )

    def simulate(
        parameters: "BatchBuckParameters", count: int
    ) -> tuple[npt.NDArray[np.bool_], npt.NDArray[np.float64]]:
        """Run one fleet chunk and score per-instance dip failures."""
        if levels_row is None:
            quantizer = BatchQuantizer.ideal(dpwm_bits, count)
        else:
            quantizer = BatchQuantizer(levels_row, num_variants=count)
        loop = BatchClosedLoop(
            parameters, quantizer, reference_v=reference_v, load=load
        )
        outputs = loop.run(periods).output_voltages_v
        dips = outputs[settle_periods:].min(axis=0)
        return dips < dip_limit_v, dips

    if estimator == "vanilla":
        def draw_vanilla(first_instance: int, count: int) -> SampleChunk:
            parameters = resolved_variation.sample_instances(
                nominal, count, first_instance=first_instance
            )
            fails, dips = simulate(parameters, count)
            return SampleChunk(passes={"failure": fails}, values={"dip_v": dips})

        vanilla = adaptive_sample(
            draw_vanilla,
            primary="failure",
            precision=precision,
            confidence=confidence,
            max_samples=max_instances,
            chunk_size=chunk_size,
        )
        interval = vanilla.intervals["failure"]
        return RareEventYieldResult(
            estimator=estimator,
            failure_probability=vanilla.estimates["failure"],
            lower=interval.lower,
            upper=interval.upper,
            confidence=confidence,
            precision=precision,
            samples=vanilla.trials,
            max_samples=max_instances,
            chunk_size=chunk_size,
            stop_reason=vanilla.stop_reason,
            dip_limit_v=dip_limit_v,
            mean_dip_v=vanilla.moments["dip_v"].mean,
        )

    if estimator == "importance":
        resolved_tilt = tilt or ComponentTilt()

        def draw_tilted(first_instance: int, count: int) -> WeightedSampleChunk:
            parameters, log_weights = resolved_variation.sample_instances_tilted(
                nominal, count, first_instance=first_instance, tilt=resolved_tilt
            )
            fails, dips = simulate(parameters, count)
            return WeightedSampleChunk(
                passes={"failure": fails},
                log_weights=log_weights,
                values={"dip_v": dips},
            )

        weighted = importance_sample(
            draw_tilted,
            primary="failure",
            precision=precision,
            confidence=confidence,
            max_samples=max_instances,
            chunk_size=chunk_size,
            min_ess=min_ess,
        )
        interval = weighted.intervals["failure"]
        return RareEventYieldResult(
            estimator=estimator,
            failure_probability=weighted.estimates["failure"],
            lower=interval.lower,
            upper=interval.upper,
            confidence=confidence,
            precision=precision,
            samples=weighted.trials,
            max_samples=max_instances,
            chunk_size=chunk_size,
            stop_reason=weighted.stop_reason,
            dip_limit_v=dip_limit_v,
            mean_dip_v=weighted.value_moments["dip_v"].mean,
            effective_sample_size=weighted.effective_sample_size,
        )

    resolved_strat = stratification or ComponentStratification()
    weights = resolved_strat.weights()
    names = resolved_strat.names()

    def stratum_draw(index: int) -> "Callable[[int, int], SampleChunk]":
        def draw_stratum(first_instance: int, count: int) -> SampleChunk:
            parameters = resolved_variation.sample_instances_stratum(
                nominal,
                count,
                index,
                first_instance=first_instance,
                stratification=resolved_strat,
            )
            fails, dips = simulate(parameters, count)
            return SampleChunk(passes={"failure": fails}, values={"dip_v": dips})

        return draw_stratum

    strata = tuple(
        Stratum(name=names[h], weight=weights[h], draw=stratum_draw(h))
        for h in range(resolved_strat.num_strata)
    )
    stratified = stratified_sample(
        strata,
        primary="failure",
        precision=precision,
        confidence=confidence,
        max_samples=max_instances,
        chunk_size=chunk_size,
    )
    interval = stratified.intervals["failure"]
    return RareEventYieldResult(
        estimator=estimator,
        failure_probability=stratified.estimates["failure"],
        lower=interval.lower,
        upper=interval.upper,
        confidence=confidence,
        precision=precision,
        samples=stratified.trials,
        max_samples=max_instances,
        chunk_size=chunk_size,
        stop_reason=stratified.stop_reason,
        dip_limit_v=dip_limit_v,
        mean_dip_v=stratified.value_means["dip_v"],
        strata=tuple(
            {
                "name": row.name,
                "weight": row.weight,
                "trials": row.trials,
                "failures": row.successes.get("failure", 0),
                "failure_rate": row.estimate("failure"),
            }
            for row in stratified.strata
        ),
    )


@dataclass(frozen=True)
class MissionSpec:
    """Per-segment pass/fail specification for a mission-profile run.

    A mission passes only when *every* segment's window meets the spec --
    the loop has to hold regulation through the whole load history, not
    just at the end.  Within each segment window:

    * the mean of the window's tail (the last ``tail_fraction`` of its
      periods, the part the loop has had time to settle into) must sit
      within ``tolerance_v`` of the reference;
    * when ``ripple_limit_v`` is given, the tail's peak-to-peak ripple
      must stay at or below it;
    * when ``dip_limit_v`` is given, the *whole* window -- including the
      transient right after the segment boundary -- must stay at or above
      ``reference_v - dip_limit_v``.

    Attributes:
        tolerance_v: steady-state tolerance on the tail mean.
        dip_limit_v: maximum transient undershoot below the reference
            anywhere in a segment window (``None`` skips the check).
        ripple_limit_v: maximum tail peak-to-peak ripple (``None`` skips).
        tail_fraction: fraction of each segment window scored as "tail".
    """

    tolerance_v: float = 0.02
    dip_limit_v: float | None = None
    ripple_limit_v: float | None = None
    tail_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.tolerance_v <= 0:
            raise ValueError(f"tolerance_v must be positive; got {self.tolerance_v}")
        if not 0.0 < self.tail_fraction <= 1.0:
            raise ValueError(
                f"tail_fraction must lie in (0, 1]; got {self.tail_fraction}"
            )
        if self.dip_limit_v is not None and self.dip_limit_v <= 0:
            raise ValueError(
                f"dip_limit_v must be positive when given; got {self.dip_limit_v}"
            )
        if self.ripple_limit_v is not None and self.ripple_limit_v <= 0:
            raise ValueError(
                "ripple_limit_v must be positive when given; got "
                f"{self.ripple_limit_v}"
            )

    def window_passes(
        self, voltages: npt.NDArray[np.float64], reference_v: float
    ) -> bool:
        """Score one segment's output-voltage window against the spec."""
        if voltages.size < 1:
            raise ValueError("segment window must contain at least one period")
        tail_count = max(1, int(round(voltages.size * self.tail_fraction)))
        tail = voltages[-tail_count:]
        if abs(float(tail.mean()) - reference_v) > self.tolerance_v:
            return False
        if self.ripple_limit_v is not None:
            if float(tail.max() - tail.min()) > self.ripple_limit_v:
                return False
        if self.dip_limit_v is not None:
            if float(voltages.min()) < reference_v - self.dip_limit_v:
                return False
        return True

    def summary(self) -> dict[str, float | None]:
        """JSON-able view of the spec (cache-key / report material)."""
        return {
            "tolerance_v": self.tolerance_v,
            "dip_limit_v": self.dip_limit_v,
            "ripple_limit_v": self.ripple_limit_v,
            "tail_fraction": self.tail_fraction,
        }


@dataclass(frozen=True)
class MissionYieldResult:
    """Outcome of a mission-profile Monte-Carlo yield run.

    Attributes:
        scheme: ``"proposed"`` or ``"conventional"``.
        mission_yield: fraction of instances whose *every* segment window
            met the :class:`MissionSpec`.
        passes: per-instance pass flags.
        periods: switching periods each mission ran for.
        segment_failure_counts: per-segment-index count of instances that
            failed that segment (an instance can count in several).
        first_failure_counts: per-segment-index count of instances whose
            *first* failing segment it was (each failing instance counts
            exactly once) -- the attribution that says where missions die.
        spec: the scoring spec.
        pipeline_result: full pipeline output (calibration, curves,
            per-period regulation history).
    """

    scheme: str
    mission_yield: float
    passes: npt.NDArray[np.bool_]
    periods: int
    segment_failure_counts: tuple[int, ...]
    first_failure_counts: tuple[int, ...]
    spec: MissionSpec
    pipeline_result: "PipelineResult"

    @property
    def num_instances(self) -> int:
        return int(self.passes.shape[0])

    def summary(self) -> dict[str, object]:
        """JSON-able summary with per-segment failure attribution."""
        worst_segment: int | None = None
        if any(self.segment_failure_counts):
            worst_segment = int(np.argmax(self.segment_failure_counts))
        return {
            "scheme": self.scheme,
            "mission_yield": self.mission_yield,
            "num_instances": self.num_instances,
            "periods": self.periods,
            "segment_failure_counts": list(self.segment_failure_counts),
            "first_failure_counts": list(self.first_failure_counts),
            "worst_segment": worst_segment,
            "spec": self.spec.summary(),
        }


def mission_yield(
    scheme: str,
    spec: DesignSpec,
    conditions: OperatingConditions,
    *,
    missions: MissionGenerator | Sequence[MissionProfile],
    mission_spec: MissionSpec | None = None,
    nominal: BuckParameters | None = None,
    reference_v: float = 0.9,
    variation: VariationModel | None = None,
    component_variation: ComponentVariation | None = None,
    correlation: CorrelatedVariationModel | None = None,
    temperature_trace: TemperatureTrace | None = None,
    thermal: ThermalDerating | None = None,
    num_instances: int = 128,
    periods: int | None = None,
    library: TechnologyLibrary | None = None,
    first_instance: int = 0,
) -> MissionYieldResult:
    """Monte-Carlo estimate of the fleet's mission-survival yield.

    The mission-profile sibling of :func:`closed_loop_yield`: every
    fabricated delay line is calibrated, turned into a DPWM duty table and
    closed around its own buck converter, but instead of one static load
    each instance flies its *own* randomized mission (a chain of load
    primitives from :class:`~repro.converter.missions.MissionGenerator`,
    or an explicit list of :class:`~repro.converter.missions
    .MissionProfile`).  Optionally the whole fleet rides a shared
    :class:`~repro.technology.thermal.TemperatureTrace`: at each thermal
    epoch the silicon is re-locked through the corner model and the
    electricals re-derated, with exact state carry-over across epoch
    boundaries.  ``correlation`` couples the component draws
    (:class:`~repro.technology.variation.CorrelatedVariationModel`).

    An instance passes when **every** segment window of its mission meets
    the :class:`MissionSpec`; the result carries per-segment failure
    attribution (which leg of the mission kills chips).

    ``periods`` defaults to the longest mission's total length; shorter
    missions hold their final segment for the remainder of the run.
    """
    from repro.pipeline import ChunkedSiliconToRegulation

    if num_instances < 1:
        raise ValueError("need at least one instance")
    mission_list = resolve_missions(missions, num_instances, first_instance)
    resolved_periods = (
        periods
        if periods is not None
        else max(mission.total_periods for mission in mission_list)
    )
    if resolved_periods < 1:
        raise ValueError(f"periods must be >= 1; got {resolved_periods}")
    resolved_spec = mission_spec or MissionSpec()

    runner = ChunkedSiliconToRegulation(
        scheme,
        spec,
        conditions,
        variation=variation,
        nominal=nominal,
        reference_v=reference_v,
        component_variation=component_variation,
        correlation=correlation,
        library=library,
    )
    result = runner.run_chunk(
        first_instance,
        num_instances,
        periods=resolved_periods,
        missions=mission_list,
        temperature_trace=temperature_trace,
        thermal=thermal,
    )
    voltages = result.regulation.output_voltages_v

    max_segments = max(mission.num_segments for mission in mission_list)
    passes = np.empty(num_instances, dtype=bool)
    segment_failures = [0] * max_segments
    first_failures = [0] * max_segments
    for instance, mission in enumerate(mission_list):
        windows = mission.segment_windows(resolved_periods)
        instance_passed = True
        first_recorded = False
        for segment_index, (start, end) in enumerate(windows):
            window = voltages[start:end, instance]
            if resolved_spec.window_passes(window, reference_v):
                continue
            instance_passed = False
            segment_failures[segment_index] += 1
            if not first_recorded:
                first_failures[segment_index] += 1
                first_recorded = True
        passes[instance] = instance_passed

    return MissionYieldResult(
        scheme=result.scheme,
        mission_yield=float(np.mean(passes)),
        passes=passes,
        periods=resolved_periods,
        segment_failure_counts=tuple(segment_failures),
        first_failure_counts=tuple(first_failures),
        spec=resolved_spec,
        pipeline_result=result,
    )

"""Scheme-versus-scheme comparison harness (paper Tables 4 and 5).

For a given design specification the harness sizes both schemes with the
paper's design procedure, synthesizes both netlists with the structural
synthesizer, calibrates both lines at a chosen operating point, and collects
the qualitative and quantitative criteria the paper compares on: area and its
distribution, delay-cell complexity, extra blocks, calibration time and
linearity.

Calibration and linearity run on the vectorized ensemble engine
(:mod:`repro.core.ensemble`): each line is wrapped in a single-instance
ensemble, locked closed-form and swept as a batch, and the scalar comparison
numbers are thin views of those batch results (the closed-form lock is
provably identical to the cycle-accurate controllers' fixed points).  The
returned calibration results therefore carry *empty* locking traces; use
:class:`~repro.core.proposed.ProposedController` /
:class:`~repro.core.conventional.ShiftRegisterController` directly when the
cycle-by-cycle walk itself is needed (as the fig37/fig47_48 experiments do).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.metrics import LinearityMetrics
from repro.core.calibration import CalibrationResult
from repro.core.conventional import TuningOrder
from repro.core.design import (
    ConventionalDesign,
    DesignSpec,
    ProposedDesign,
    design_conventional,
    design_proposed,
)
from repro.core.ensemble import ConventionalEnsemble, ProposedEnsemble
from repro.technology.corners import OperatingConditions
from repro.technology.library import TechnologyLibrary, intel32_like_library
from repro.technology.synthesis import AreaReport, Synthesizer

__all__ = ["SchemeComparison", "compare_schemes"]


@dataclass(frozen=True)
class SchemeComparison:
    """Collected comparison data for one design specification.

    Attributes:
        spec: the shared design specification.
        proposed_design / conventional_design: sized parameters.
        proposed_area / conventional_area: post-synthesis area reports.
        proposed_calibration / conventional_calibration: locking results at
            the comparison operating point.
        proposed_linearity / conventional_linearity: linearity metrics of the
            post-calibration transfer curves.
        conditions: the operating point used for calibration and linearity.
    """

    spec: DesignSpec
    proposed_design: ProposedDesign
    conventional_design: ConventionalDesign
    proposed_area: AreaReport
    conventional_area: AreaReport
    proposed_calibration: CalibrationResult
    conventional_calibration: CalibrationResult
    proposed_linearity: LinearityMetrics
    conventional_linearity: LinearityMetrics
    proposed_max_error_fraction: float
    conventional_max_error_fraction: float
    conditions: OperatingConditions

    @property
    def area_ratio(self) -> float:
        """Conventional area divided by proposed area (> 1 when the proposed wins)."""
        return (
            self.conventional_area.total_area_um2
            / self.proposed_area.total_area_um2
        )

    @property
    def proposed_wins_area(self) -> bool:
        return self.proposed_area.total_area_um2 < self.conventional_area.total_area_um2

    @property
    def proposed_wins_linearity(self) -> bool:
        """Linearity is compared as worst-case deviation from the ideal line.

        The deviation is expressed as a fraction of the switching period,
        which is the quantity that translates into output-voltage error in
        the regulator (paper eq. 12); LSB-unit INL would compare the two
        schemes against different step sizes.
        """
        return (
            self.proposed_max_error_fraction <= self.conventional_max_error_fraction
        )

    @property
    def proposed_wins_calibration_time(self) -> bool:
        return (
            self.proposed_calibration.lock_cycles
            <= self.conventional_calibration.lock_cycles
        )

    def preliminary_rows(self) -> list[tuple[str, str, str]]:
        """Qualitative rows mirroring the paper's Table 4."""
        proposed_cell = "simple (single branch)"
        conventional_cell = (
            f"complex ({self.conventional_design.branches} branches, tunable)"
        )
        return [
            ("Delay cell", conventional_cell, proposed_cell),
            (
                "Linearity",
                "worse (max error "
                f"{100 * self.conventional_max_error_fraction:.2f} % of period)",
                "better (max error "
                f"{100 * self.proposed_max_error_fraction:.2f} % of period)",
            ),
            (
                "Mapper / extra MUX",
                "not required",
                "required (mapper + calibration MUX)",
            ),
            (
                "Calibration time",
                f"{self.conventional_calibration.lock_cycles} cycles",
                f"{self.proposed_calibration.lock_cycles} cycles",
            ),
        ]


def compare_schemes(
    spec: DesignSpec,
    conditions: OperatingConditions | None = None,
    library: TechnologyLibrary | None = None,
    tuning_order: TuningOrder = TuningOrder.ROUND_ROBIN,
) -> SchemeComparison:
    """Run the full comparison for a specification.

    Args:
        spec: clock frequency and resolution.
        conditions: operating point for calibration/linearity (typical corner
            by default, matching the paper's 100 MHz comparison).
        library: technology library (32 nm-class by default).
        tuning_order: control-bit ordering for the conventional scheme.
    """
    library = library or intel32_like_library()
    conditions = conditions or OperatingConditions.typical()
    synthesizer = Synthesizer(library=library)

    proposed_design = design_proposed(spec, library)
    conventional_design = design_conventional(spec, library)

    proposed_line = proposed_design.build_line(library=library)
    conventional_line = conventional_design.build_line(
        library=library, tuning_order=tuning_order
    )

    proposed_area = synthesizer.synthesize(proposed_line.netlist())
    conventional_area = synthesizer.synthesize(conventional_line.netlist())

    proposed_ensemble = ProposedEnsemble.from_line(proposed_line)
    conventional_ensemble = ConventionalEnsemble.from_line(conventional_line)

    proposed_lock = proposed_ensemble.lock(conditions)
    conventional_lock = conventional_ensemble.lock(conditions)
    proposed_calibration = proposed_lock.result(0)
    conventional_calibration = conventional_lock.result(0)

    proposed_curve = proposed_ensemble.transfer_curves(
        conditions, calibration=proposed_lock
    ).curve(0)
    conventional_curve = conventional_ensemble.transfer_curves(
        conditions, calibration=conventional_lock
    ).curve(0)

    return SchemeComparison(
        spec=spec,
        proposed_design=proposed_design,
        conventional_design=conventional_design,
        proposed_area=proposed_area,
        conventional_area=conventional_area,
        proposed_calibration=proposed_calibration,
        conventional_calibration=conventional_calibration,
        proposed_linearity=proposed_curve.metrics(),
        conventional_linearity=conventional_curve.metrics(),
        proposed_max_error_fraction=proposed_curve.max_error_fraction_of_period(),
        conventional_max_error_fraction=(
            conventional_curve.max_error_fraction_of_period()
        ),
        conditions=conditions,
    )

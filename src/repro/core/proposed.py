"""The proposed delay-line scheme (paper section 3.2.2).

The proposed scheme consists of three blocks (paper Figure 43):

* a **delay line** of ``N`` identical, untunable cells (each cell a single
  branch of one or more buffers, Figure 45);
* a **controller** (Figure 46) that, every clock cycle, compares the tap
  selected by ``tap_sel`` against the clock edge and moves ``tap_sel`` up or
  down by one -- the line is locked to *half* the clock period, which halves
  the search range and avoids ambiguity;
* a **mapping block** (Figure 49) that rescales the input duty word by the
  locked cell count so the correct tap is selected for the requested duty
  cycle regardless of process corner or temperature.

The model exposes:

* an analytical per-tap delay view (with optional post-APR mismatch) used by
  the linearity experiments (Figures 50-51);
* a cycle-accurate locking simulation (:class:`ProposedController`) producing
  the locking traces of Figures 47-48 and the calibration-time comparison;
* a structural netlist used by the synthesis substrate to regenerate the
  area numbers of Tables 5 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.calibration import (
    CalibrationResult,
    ContinuousCalibrationTrace,
    LockingStep,
    LockingTrace,
)
from repro.core.delay_cells import FixedDelayCell
from repro.core.mapper import MappingBlock
from repro.technology.cells import CellKind
from repro.technology.corners import OperatingConditions
from repro.technology.library import TechnologyLibrary, intel32_like_library
from repro.technology.netlist import Netlist
from repro.technology.variation import VariationSample

__all__ = ["ProposedDelayLineConfig", "ProposedDelayLine", "ProposedController"]


@dataclass(frozen=True)
class ProposedDelayLineConfig:
    """Parameters of a proposed-scheme delay line.

    Attributes:
        num_cells: total number of identical cells (power of two).
        buffers_per_cell: buffers combined in each cell; chosen from the
            clock frequency so the full line still covers the clock period at
            the fast corner (see :mod:`repro.core.design`).
        clock_period_ps: switching-clock period the line locks to.
    """

    num_cells: int
    buffers_per_cell: int
    clock_period_ps: float

    def __post_init__(self) -> None:
        if self.num_cells < 2 or (self.num_cells & (self.num_cells - 1)) != 0:
            raise ValueError(
                f"num_cells must be a power of two >= 2, got {self.num_cells}"
            )
        if self.buffers_per_cell < 1:
            raise ValueError("buffers_per_cell must be >= 1")
        if self.clock_period_ps <= 0:
            raise ValueError("clock_period_ps must be positive")

    @property
    def word_bits(self) -> int:
        """Width of the input duty word (= log2(num_cells))."""
        return self.num_cells.bit_length() - 1

    @property
    def clock_frequency_mhz(self) -> float:
        return 1e6 / self.clock_period_ps


class ProposedDelayLine:
    """Analytical + structural model of the proposed delay line."""

    def __init__(
        self,
        config: ProposedDelayLineConfig,
        library: TechnologyLibrary | None = None,
        variation: VariationSample | None = None,
    ) -> None:
        self.config = config
        self.library = library or intel32_like_library()
        self.cell = FixedDelayCell(buffers=config.buffers_per_cell)
        self.mapper = MappingBlock(num_cells=config.num_cells)
        if variation is not None:
            expected = (config.num_cells, config.buffers_per_cell)
            if variation.multipliers.shape != expected:
                raise ValueError(
                    "variation sample shape "
                    f"{variation.multipliers.shape} does not match line shape {expected}"
                )
        self.variation = variation

    # ------------------------------------------------------------------ #
    # Delay view
    # ------------------------------------------------------------------ #
    def cell_delays_ps(self, conditions: OperatingConditions) -> np.ndarray:
        """Per-cell delay (ps) at the given conditions, including mismatch."""
        unit = self.library.buffer_delay_ps(conditions)
        if self.variation is None:
            return np.full(self.config.num_cells, unit * self.config.buffers_per_cell)
        return self.variation.multipliers.sum(axis=1) * unit

    def tap_delays_ps(self, conditions: OperatingConditions) -> np.ndarray:
        """Cumulative delay (ps) at every tap.

        ``tap_delays_ps[k]`` is the delay from the line input to the output of
        cell ``k`` (0-based), i.e. tap ``k``.
        """
        return np.cumsum(self.cell_delays_ps(conditions))

    def total_delay_ps(self, conditions: OperatingConditions) -> float:
        """Delay of the full line (the last tap)."""
        return float(self.tap_delays_ps(conditions)[-1])

    def covers_clock_period(self, conditions: OperatingConditions) -> bool:
        """Whether the full line delay reaches the clock period (locking is possible)."""
        return self.total_delay_ps(conditions) >= self.config.clock_period_ps

    # ------------------------------------------------------------------ #
    # Duty-word to delay mapping (after calibration)
    # ------------------------------------------------------------------ #
    def output_delay_ps(
        self, duty_word: int, tap_sel: int, conditions: OperatingConditions
    ) -> float:
        """Delay of the DPWM reset edge for a duty word, given a lock.

        ``tap_sel`` is the locked cell count from the controller; the mapping
        block converts the duty word into the calibrated tap select, and the
        returned delay is the cumulative delay at that tap.  A duty word of
        zero returns zero delay (the reset edge coincides with the set edge).
        """
        if duty_word == 0:
            return 0.0
        cal_sel = self.mapper.map(duty_word, tap_sel)
        if cal_sel == 0:
            return 0.0
        taps = self.tap_delays_ps(conditions)
        return float(taps[cal_sel - 1])

    def achieved_duty(
        self, duty_word: int, tap_sel: int, conditions: OperatingConditions
    ) -> float:
        """Achieved duty-cycle fraction for a duty word after calibration."""
        delay = self.output_delay_ps(duty_word, tap_sel, conditions)
        return min(delay / self.config.clock_period_ps, 1.0)

    # ------------------------------------------------------------------ #
    # Structural view (synthesis substrate)
    # ------------------------------------------------------------------ #
    def netlist(self) -> Netlist:
        """Structural netlist of the whole scheme (paper Figure 43).

        The block names match the rows of the paper's area-distribution
        tables: ``Delay Line``, ``Output MUX``, ``Calibration MUX``,
        ``Controller`` and ``Mapper``.
        """
        config = self.config
        word_bits = config.word_bits

        line = Netlist(name="Delay Line")
        line.add_cells(
            CellKind.BUFFER,
            config.num_cells * config.buffers_per_cell,
            purpose="delay cells",
        )

        output_mux = Netlist(name="Output MUX")
        output_mux.add_cells(
            CellKind.MUX2, config.num_cells - 1, purpose="tap-select tree"
        )

        calibration_mux = Netlist(name="Calibration MUX")
        calibration_mux.add_cells(
            CellKind.MUX2,
            2 * (config.num_cells - 1),
            purpose="2-bit tap-select tree for the controller",
        )

        controller = Netlist(name="Controller")
        controller.add_cells(
            CellKind.DFF, word_bits + 4, purpose="tap_sel register, up/down, sync"
        )
        controller.add_cells(CellKind.FULL_ADDER, word_bits, purpose="inc/dec")
        controller.add_cells(CellKind.MUX2, word_bits, purpose="up/down select")
        controller.add_cells(CellKind.XOR2, 2, purpose="lock detect")
        controller.add_cells(CellKind.NAND2, 4, purpose="control glue")
        controller.add_cells(CellKind.INVERTER, 2, purpose="control glue")

        mapper = Netlist(name="Mapper")
        mapper.add_cells(CellKind.DFF, word_bits, purpose="cal_sel register")
        mapper.add_cells(
            CellKind.AND2, word_bits * word_bits, purpose="partial products"
        )
        mapper.add_cells(
            CellKind.FULL_ADDER, word_bits * word_bits - 1, purpose="product reduction"
        )

        top = Netlist(name="Proposed delay line")
        for block in (line, output_mux, calibration_mux, controller, mapper):
            top.add_child(block)
        return top


@dataclass
class ProposedController:
    """Cycle-accurate model of the proposed scheme's controller.

    The controller watches the tap selected by ``tap_sel`` through the
    calibration multiplexer and a two-flop synchronizer, and every clock
    cycle moves ``tap_sel`` one step towards the tap whose delay brackets
    *half* the clock period.  Once the bracketing tap is found, ``tap_sel``
    dithers by one LSB around it -- the paper's definition of lock ("the
    up_down signal keeps toggling").

    Attributes:
        line: the delay line under calibration.
        synchronizer_latency_cycles: pipeline delay of the two-flop
            synchronizer between the tap sample and the controller update.
        max_cycles: safety bound for the locking loop.
    """

    line: ProposedDelayLine
    synchronizer_latency_cycles: int = 2
    max_cycles: int = 10_000

    def half_period_ps(self) -> float:
        """The reference interval the controller locks to."""
        return self.line.config.clock_period_ps / 2.0

    def ideal_tap_sel(self, conditions: OperatingConditions) -> int:
        """The tap count an ideal (instant) controller would lock to.

        This is the smallest number of cells whose cumulative delay meets or
        exceeds half the clock period, clamped to the line length.
        """
        taps = self.line.tap_delays_ps(conditions)
        half = self.half_period_ps()
        indices = np.nonzero(taps >= half)[0]
        if indices.size == 0:
            return self.line.config.num_cells
        return int(indices[0]) + 1

    def lock(
        self, conditions: OperatingConditions, initial_tap_sel: int = 1
    ) -> CalibrationResult:
        """Run the locking phase from reset and return the calibration result.

        The run is declared locked on the first *down* decision after an *up*
        decision (the up/down toggle the paper uses as the lock indication).
        """
        config = self.line.config
        taps = self.line.tap_delays_ps(conditions)
        half = self.half_period_ps()
        trace = LockingTrace(scheme="proposed", clock_period_ps=config.clock_period_ps)

        tap_sel = int(np.clip(initial_tap_sel, 1, config.num_cells))
        locked = False
        lock_cycle: int | None = None
        previous_direction: int | None = None

        for cycle in range(self.max_cycles):
            watched_delay = float(taps[tap_sel - 1])
            comparison = 1 if watched_delay > half else 0
            # The controller's decision lags the tap sample by the
            # synchronizer latency; the latency only delays lock detection,
            # it does not change the search path, so it is added to the
            # reported cycle count below.
            direction = -1 if comparison else +1
            if (
                previous_direction is not None
                and direction != previous_direction
                and not locked
            ):
                locked = True
                lock_cycle = cycle + self.synchronizer_latency_cycles
            trace.append(
                LockingStep(
                    cycle=cycle,
                    control_state=tap_sel,
                    line_delay_ps=watched_delay,
                    comparison=comparison,
                    locked=locked,
                )
            )
            if locked:
                break
            next_tap = tap_sel + direction
            if next_tap < 1 or next_tap > config.num_cells:
                # Saturated: the line cannot bracket half the period at this
                # operating point (e.g. too few cells for a very slow clock).
                locked = False
                lock_cycle = None
                break
            previous_direction = direction
            tap_sel = next_tap

        # The locked tap count is the number of cells whose delay does not
        # exceed half the period (the lower of the two dither points).
        locked_tap_sel = tap_sel if taps[tap_sel - 1] <= half else max(tap_sel - 1, 1)
        locked_delay = float(taps[locked_tap_sel - 1])
        cycles = (
            lock_cycle
            if lock_cycle is not None
            else len(trace) + self.synchronizer_latency_cycles
        )
        return CalibrationResult(
            scheme="proposed",
            locked=locked,
            lock_cycles=cycles,
            control_state=locked_tap_sel,
            locked_delay_ps=locked_delay,
            target_ps=half,
            residual_error_ps=locked_delay - half,
            trace=trace,
        )

    def track(
        self,
        conditions_schedule: list[tuple[int, OperatingConditions]],
        total_cycles: int,
        sample_every: int = 32,
    ) -> ContinuousCalibrationTrace:
        """Continuous calibration under a schedule of operating conditions.

        Args:
            conditions_schedule: ``(start_cycle, conditions)`` pairs sorted by
                start cycle; the last entry holds until ``total_cycles``.
            total_cycles: length of the run.
            sample_every: how often (in cycles) to record a trace sample.

        Returns:
            the tracking history; the controller state follows the drift
            because the calibration never stops (paper section 3.1).
        """
        if not conditions_schedule:
            raise ValueError("conditions_schedule must not be empty")
        schedule = sorted(conditions_schedule, key=lambda item: item[0])
        trace = ContinuousCalibrationTrace(scheme="proposed")
        half = self.half_period_ps()

        tap_sel = 1
        schedule_index = 0
        current_conditions = schedule[0][1]
        taps = self.line.tap_delays_ps(current_conditions)
        for cycle in range(total_cycles):
            while (
                schedule_index + 1 < len(schedule)
                and cycle >= schedule[schedule_index + 1][0]
            ):
                schedule_index += 1
                current_conditions = schedule[schedule_index][1]
                taps = self.line.tap_delays_ps(current_conditions)
            watched = float(taps[tap_sel - 1])
            direction = -1 if watched > half else +1
            tap_sel = int(np.clip(tap_sel + direction, 1, self.line.config.num_cells))
            if cycle % sample_every == 0:
                trace.append(
                    cycle=cycle,
                    temperature_c=current_conditions.temperature_c,
                    control_state=tap_sel,
                    locked_delay_ps=float(taps[tap_sel - 1]),
                    target_ps=half,
                )
        return trace

"""Delay elements and delay cells.

Terminology follows the paper:

* **delay element** -- a buffer, or a group of buffers combined to reach the
  required unit delay for a given clock frequency (paper Figure 34).
* **fixed delay cell** -- the proposed scheme's cell: a single branch of one
  or more buffers (paper Figure 45).
* **tunable delay cell** -- the conventional scheme's cell: ``m`` parallel
  branches containing 1..m delay elements, one of which is selected by a
  thermometer-coded control word through an internal multiplexer (paper
  Figure 33).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.technology.corners import OperatingConditions
from repro.technology.library import TechnologyLibrary, intel32_like_library

__all__ = ["DelayElement", "FixedDelayCell", "TunableDelayCell", "thermometer_encode"]


def thermometer_encode(level: int, width: int) -> int:
    """Thermometer-encode ``level`` selected branches into ``width`` bits.

    ``level = 0`` gives all zeros (shortest branch), ``level = width`` gives
    all ones (longest branch).  This mirrors the control coding of the
    conventional scheme's tunable cells (paper section 3.2.1).

    Raises:
        ValueError: if ``level`` is outside ``[0, width]``.
    """
    if not 0 <= level <= width:
        raise ValueError(f"thermometer level {level} out of range [0, {width}]")
    return (1 << level) - 1


@dataclass(frozen=True)
class DelayElement:
    """A delay element: one or more cascaded buffers.

    Attributes:
        buffers: number of buffers combined in the element.
    """

    buffers: int = 1

    def __post_init__(self) -> None:
        if self.buffers < 1:
            raise ValueError("a delay element needs at least one buffer")

    def delay_ps(
        self,
        conditions: OperatingConditions,
        library: TechnologyLibrary | None = None,
        buffer_multipliers: np.ndarray | None = None,
    ) -> float:
        """Propagation delay of the element at the given conditions.

        Args:
            conditions: PVT operating point.
            library: technology library (defaults to the 32 nm-class one).
            buffer_multipliers: optional per-buffer mismatch multipliers of
                length ``buffers`` (post-APR variation).
        """
        library = library or intel32_like_library()
        unit = library.buffer_delay_ps(conditions)
        if buffer_multipliers is None:
            return unit * self.buffers
        multipliers = np.asarray(buffer_multipliers, dtype=float)
        if multipliers.shape != (self.buffers,):
            raise ValueError(
                f"expected {self.buffers} buffer multipliers, got {multipliers.shape}"
            )
        return float(unit * multipliers.sum())


@dataclass(frozen=True)
class FixedDelayCell:
    """The proposed scheme's delay cell: a single branch of buffers.

    Attributes:
        buffers: buffers combined in the cell (chosen from the clock
            frequency so that the line still locks at the fast corner while
            keeping the target resolution; see :mod:`repro.core.design`).
    """

    buffers: int = 1

    def __post_init__(self) -> None:
        if self.buffers < 1:
            raise ValueError("a fixed delay cell needs at least one buffer")

    def delay_ps(
        self,
        conditions: OperatingConditions,
        library: TechnologyLibrary | None = None,
        buffer_multipliers: np.ndarray | None = None,
    ) -> float:
        """Cell delay at the given conditions (optionally with mismatch)."""
        element = DelayElement(buffers=self.buffers)
        return element.delay_ps(conditions, library, buffer_multipliers)

    def buffer_count(self) -> int:
        """Total buffers in the cell (for area accounting)."""
        return self.buffers


@dataclass(frozen=True)
class TunableDelayCell:
    """The conventional scheme's tunable delay cell.

    The cell has ``branches`` parallel paths; branch ``i`` (0-based) contains
    ``i + 1`` delay elements, each of ``buffers_per_element`` buffers.  A
    thermometer-coded control selects the branch, so the cell delay can be
    adjusted between 1x and ``branches``x the element delay (the paper's
    1:3 or 1:4 adjustment ratio).

    Attributes:
        branches: number of selectable branches (the adjustment ratio ``m``).
        buffers_per_element: buffers per delay element.
    """

    branches: int = 4
    buffers_per_element: int = 1

    def __post_init__(self) -> None:
        if self.branches < 2:
            raise ValueError("a tunable cell needs at least two branches")
        if self.buffers_per_element < 1:
            raise ValueError("a delay element needs at least one buffer")

    def control_bits(self) -> int:
        """Thermometer control bits per cell (paper eq. 16)."""
        return self.branches - 1

    def elements_for_level(self, level: int) -> int:
        """Number of delay elements in the branch selected by ``level``.

        ``level`` ranges from 0 (shortest branch, one element) to
        ``branches - 1`` (longest branch).
        """
        if not 0 <= level < self.branches:
            raise ValueError(
                f"tuning level {level} out of range [0, {self.branches - 1}]"
            )
        return level + 1

    def delay_ps(
        self,
        level: int,
        conditions: OperatingConditions,
        library: TechnologyLibrary | None = None,
        buffer_multipliers: np.ndarray | None = None,
    ) -> float:
        """Cell delay for a tuning level at the given conditions.

        Args:
            level: selected branch (0 = shortest).
            conditions: PVT operating point.
            library: technology library.
            buffer_multipliers: optional mismatch multipliers for the buffers
                of the *selected* branch, of length
                ``elements_for_level(level) * buffers_per_element``.
        """
        elements = self.elements_for_level(level)
        element = DelayElement(buffers=elements * self.buffers_per_element)
        return element.delay_ps(conditions, library, buffer_multipliers)

    def max_delay_ps(
        self,
        conditions: OperatingConditions,
        library: TechnologyLibrary | None = None,
    ) -> float:
        """Delay of the longest branch."""
        return self.delay_ps(self.branches - 1, conditions, library)

    def min_delay_ps(
        self,
        conditions: OperatingConditions,
        library: TechnologyLibrary | None = None,
    ) -> float:
        """Delay of the shortest branch."""
        return self.delay_ps(0, conditions, library)

    def buffer_count(self) -> int:
        """Total buffers across all branches (for area accounting).

        Only one branch is active at a time; the rest are redundancy -- the
        structural reason the conventional delay line dominates the area of
        that scheme (paper section 4.1).
        """
        total_elements = sum(range(1, self.branches + 1))
        return total_elements * self.buffers_per_element

"""The conventional adjustable-cells delay line (paper section 3.2.1).

The conventional scheme keeps the *number* of delay cells fixed and tunes the
*delay of each cell*:

* every cell is a :class:`~repro.core.delay_cells.TunableDelayCell` with
  ``m`` branches of 1..m delay elements, selected through an internal
  multiplexer by a per-cell control word;
* a DLL-style controller (paper Figure 36) compares the clock edge against
  the last two taps and, while not locked, shifts a ``1`` into a large shift
  register; each shifted-in ``1`` raises the tuning level of exactly one cell
  by one element;
* the order in which cells receive the extra elements (the arrangement of
  control bits in the shift register, Figure 40) determines the linearity of
  the locked line (Figures 41-42): piling the extra delay onto the first
  cells is the worst case, spreading it across the line is the best.

The model mirrors the proposed scheme's API: analytical tap delays (with
optional post-APR mismatch), a cycle-accurate locking run producing
Figure-37-style traces, and a structural netlist for the area comparison of
Table 5.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.core.calibration import CalibrationResult, LockingStep, LockingTrace
from repro.core.delay_cells import TunableDelayCell
from repro.kernels import fabrication
from repro.technology.cells import CellKind
from repro.technology.corners import OperatingConditions
from repro.technology.library import TechnologyLibrary, intel32_like_library
from repro.technology.netlist import Netlist
from repro.technology.variation import VariationSample

__all__ = [
    "TuningOrder",
    "ConventionalDelayLineConfig",
    "ConventionalDelayLine",
    "ShiftRegisterController",
    "active_branch_delays_ps",
]


def active_branch_delays_ps(
    multipliers: np.ndarray, buffers_active: np.ndarray, unit_delay_ps: float
) -> np.ndarray:
    """Delay of the active branch of every cell, from per-buffer multipliers.

    The math lives in :func:`repro.kernels.fabrication.active_branch_delays`
    (this is the numpy reference the backend registry serves); the wrapper
    stays for the scalar line's callers and for backwards compatibility.
    ``multipliers`` is ``(..., cells, buffers)`` and ``buffers_active``
    ``(..., cells)``; leading batch axes broadcast, and the accumulation
    order is the same for every caller, so the scalar line and the ensemble
    engine are bit-identical by construction.
    """
    return fabrication.active_branch_delays(multipliers, buffers_active, unit_delay_ps)


class TuningOrder(enum.Enum):
    """Order in which shifted-in ones raise the cells' tuning levels.

    * ``SEQUENTIAL`` -- fill the first cell to its maximum, then the second,
      and so on (paper Figure 41, scenario 1: the worst case for linearity).
    * ``ROUND_ROBIN`` -- one extra element per cell across the whole line,
      then a second round, etc.; this is the ordering implied by the paper's
      shift-register arrangement (Figure 40: "the first bit for all cells
      followed by the second bit for all cells").
    * ``DISTRIBUTED`` -- spread the extra elements as evenly as possible over
      the line at every fill level (paper Figure 41, scenario 2 / the ideal
      half-low-half-high arrangement recommended in [30]).
    """

    SEQUENTIAL = "sequential"
    ROUND_ROBIN = "round_robin"
    DISTRIBUTED = "distributed"


@dataclass(frozen=True)
class ConventionalDelayLineConfig:
    """Parameters of a conventional adjustable-cells delay line.

    Attributes:
        num_cells: fixed number of tunable cells (= 2**resolution_bits).
        branches: branches per tunable cell (the adjustment ratio ``m``).
        buffers_per_element: buffers combined in one delay element.
        clock_period_ps: switching-clock period the line locks to.
        tuning_order: how shifted-in ones are distributed over the cells.
    """

    num_cells: int
    branches: int
    buffers_per_element: int
    clock_period_ps: float
    tuning_order: TuningOrder = TuningOrder.ROUND_ROBIN

    def __post_init__(self) -> None:
        if self.num_cells < 2:
            raise ValueError("num_cells must be >= 2")
        if self.branches < 2:
            raise ValueError("branches must be >= 2")
        if self.buffers_per_element < 1:
            raise ValueError("buffers_per_element must be >= 1")
        if self.clock_period_ps <= 0:
            raise ValueError("clock_period_ps must be positive")

    @property
    def resolution_bits(self) -> int:
        """Nominal resolution: log2(num_cells), rounded down."""
        return int(np.floor(np.log2(self.num_cells)))

    @property
    def control_bits_per_cell(self) -> int:
        """Control bits per cell (paper eq. 16: ceil(log2(m)))."""
        return int(np.ceil(np.log2(self.branches)))

    @property
    def shift_register_bits(self) -> int:
        """Size of the controller's shift register (paper eq. 17)."""
        return self.num_cells * self.control_bits_per_cell + 1

    @property
    def max_adjustment_steps(self) -> int:
        """Total tuning steps available (cells x (branches - 1))."""
        return self.num_cells * (self.branches - 1)

    @property
    def clock_frequency_mhz(self) -> float:
        return 1e6 / self.clock_period_ps


class ConventionalDelayLine:
    """Analytical + structural model of the conventional delay line."""

    def __init__(
        self,
        config: ConventionalDelayLineConfig,
        library: TechnologyLibrary | None = None,
        variation: VariationSample | None = None,
    ) -> None:
        self.config = config
        self.library = library or intel32_like_library()
        self.cell = TunableDelayCell(
            branches=config.branches,
            buffers_per_element=config.buffers_per_element,
        )
        if variation is not None:
            if variation.num_cells != config.num_cells:
                raise ValueError(
                    f"variation sample has {variation.num_cells} cells, "
                    f"line has {config.num_cells}"
                )
            longest_branch = config.branches * config.buffers_per_element
            if variation.buffers_per_cell < longest_branch:
                raise ValueError(
                    f"variation sample has {variation.buffers_per_cell} buffers "
                    f"per cell, the longest branch needs {longest_branch}"
                )
        self.variation = variation

    # ------------------------------------------------------------------ #
    # Tuning-level bookkeeping
    # ------------------------------------------------------------------ #
    def levels_for_steps(self, steps: int) -> np.ndarray:
        """Per-cell tuning levels after ``steps`` shifted-in ones.

        The distribution of the steps over the cells follows the configured
        :class:`TuningOrder`.  Levels are clamped to ``branches - 1``.
        """
        config = self.config
        steps = int(np.clip(steps, 0, config.max_adjustment_steps))
        levels = np.zeros(config.num_cells, dtype=int)
        if steps == 0:
            return levels
        if config.tuning_order is TuningOrder.SEQUENTIAL:
            full_cells, remainder = divmod(steps, config.branches - 1)
            levels[:full_cells] = config.branches - 1
            if full_cells < config.num_cells:
                levels[full_cells] = remainder
        elif config.tuning_order is TuningOrder.ROUND_ROBIN:
            rounds, remainder = divmod(steps, config.num_cells)
            levels[:] = rounds
            levels[:remainder] += 1
            np.clip(levels, 0, config.branches - 1, out=levels)
        else:  # DISTRIBUTED
            rounds, remainder = divmod(steps, config.num_cells)
            levels[:] = rounds
            if remainder:
                # Spread the remainder evenly over the line instead of
                # clustering it at the start.
                positions = np.linspace(
                    0, config.num_cells - 1, remainder, dtype=int
                )
                levels[positions] += 1
            np.clip(levels, 0, config.branches - 1, out=levels)
        return levels

    def cell_delays_ps(
        self, levels: np.ndarray, conditions: OperatingConditions
    ) -> np.ndarray:
        """Per-cell delay (ps) for a vector of tuning levels."""
        config = self.config
        levels = np.asarray(levels, dtype=int)
        if levels.shape != (config.num_cells,):
            raise ValueError(
                f"expected {config.num_cells} levels, got shape {levels.shape}"
            )
        if np.any(levels < 0) or np.any(levels >= config.branches):
            raise ValueError("tuning level out of range")
        unit = self.library.buffer_delay_ps(conditions)
        buffers_active = (levels + 1) * config.buffers_per_element
        if self.variation is None:
            return buffers_active.astype(float) * unit
        return active_branch_delays_ps(
            self.variation.multipliers, buffers_active, unit
        )

    def tap_delays_ps(
        self, levels: np.ndarray, conditions: OperatingConditions
    ) -> np.ndarray:
        """Cumulative tap delays for a vector of tuning levels."""
        return np.cumsum(self.cell_delays_ps(levels, conditions))

    def total_delay_ps(
        self, levels: np.ndarray, conditions: OperatingConditions
    ) -> float:
        return float(self.tap_delays_ps(levels, conditions)[-1])

    def min_total_delay_ps(self, conditions: OperatingConditions) -> float:
        """Line delay with every cell at its shortest branch."""
        levels = np.zeros(self.config.num_cells, dtype=int)
        return self.total_delay_ps(levels, conditions)

    def max_total_delay_ps(self, conditions: OperatingConditions) -> float:
        """Line delay with every cell at its longest branch."""
        levels = np.full(self.config.num_cells, self.config.branches - 1, dtype=int)
        return self.total_delay_ps(levels, conditions)

    def covers_clock_period(self, conditions: OperatingConditions) -> bool:
        """Whether the longest configuration reaches the clock period."""
        return self.max_total_delay_ps(conditions) >= self.config.clock_period_ps

    # ------------------------------------------------------------------ #
    # Duty-word to delay mapping (after calibration)
    # ------------------------------------------------------------------ #
    def output_delay_ps(
        self,
        duty_word: int,
        levels: np.ndarray,
        conditions: OperatingConditions,
    ) -> float:
        """Delay of the DPWM reset edge for a duty word.

        The conventional scheme selects tap ``duty_word`` directly (no
        mapping block); duty word 0 returns zero delay.
        """
        if not 0 <= duty_word <= self.config.num_cells - 1:
            raise ValueError(
                f"duty word {duty_word} out of range [0, {self.config.num_cells - 1}]"
            )
        if duty_word == 0:
            return 0.0
        taps = self.tap_delays_ps(levels, conditions)
        return float(taps[duty_word - 1])

    # ------------------------------------------------------------------ #
    # Structural view (synthesis substrate)
    # ------------------------------------------------------------------ #
    def netlist(self) -> Netlist:
        """Structural netlist of the whole scheme (paper Figure 32)."""
        config = self.config

        line = Netlist(name="Delay Line")
        per_cell_buffers = self.cell.buffer_count()
        line.add_cells(
            CellKind.BUFFER,
            config.num_cells * per_cell_buffers,
            purpose="delay elements (all branches)",
        )
        line.add_cells(
            CellKind.BUFFER, config.num_cells, purpose="tap output buffers"
        )
        line.add_cells(
            CellKind.MUX2,
            config.num_cells * (config.branches - 1),
            purpose="branch-select multiplexers",
        )
        line.add_cells(
            CellKind.AND2, config.num_cells * 3, purpose="branch decode / selector"
        )
        line.add_cells(CellKind.OR2, config.num_cells, purpose="branch decode")
        line.add_cells(CellKind.INVERTER, config.num_cells, purpose="branch decode")

        output_mux = Netlist(name="Output MUX")
        output_mux.add_cells(
            CellKind.MUX2, config.num_cells - 1, purpose="tap-select tree"
        )

        controller = Netlist(name="Controller")
        controller.add_cells(
            CellKind.DFF, config.shift_register_bits, purpose="control shift register"
        )
        controller.add_cells(CellKind.DFF, 2, purpose="metastability synchronizer")
        controller.add_cells(CellKind.XOR2, 2, purpose="lock detect (taps = 01)")
        controller.add_cells(CellKind.AND2, 2, purpose="shift enable")
        controller.add_cells(CellKind.INVERTER, 2, purpose="control glue")

        top = Netlist(name="Conventional delay line")
        for block in (line, output_mux, controller):
            top.add_child(block)
        return top


@dataclass
class ShiftRegisterController:
    """Cycle-accurate model of the conventional scheme's DLL controller.

    The controller starts with the shift register cleared (all cells at their
    shortest branch) and, while the clock edge does not fall between the last
    two taps, shifts a ``1`` into the register -- raising one cell's tuning
    level per update.  Updates happen every ``cycles_per_update`` clock
    cycles: the shift must propagate and the taps must be re-sampled through
    the two-flop synchronizer before the next comparison, which is why the
    conventional scheme calibrates more slowly than the proposed one (paper
    section 3.2.2 and Table 4 discussion).

    Attributes:
        line: the delay line under calibration.
        cycles_per_update: clock cycles per compare-and-shift step.
        synchronizer_latency_cycles: added once at the start of the run.
    """

    line: ConventionalDelayLine
    cycles_per_update: int = 2
    synchronizer_latency_cycles: int = 2

    def lock(self, conditions: OperatingConditions) -> CalibrationResult:
        """Run the locking phase from reset and return the calibration result."""
        config = self.line.config
        period = config.clock_period_ps
        trace = LockingTrace(scheme="conventional", clock_period_ps=period)

        steps = 0
        locked = False
        up_limit = False
        lock_cycle: int | None = None

        while True:
            levels = self.line.levels_for_steps(steps)
            taps = self.line.tap_delays_ps(levels, conditions)
            total = float(taps[-1])
            last_but_one = float(taps[-2]) if config.num_cells >= 2 else 0.0
            # Lock condition (paper Figure 37): the clock edge falls between
            # the last two taps, i.e. taps sample as "01".
            locked = last_but_one < period <= total
            cycle = (
                self.synchronizer_latency_cycles + steps * self.cycles_per_update
            )
            comparison = 1 if total >= period else 0
            trace.append(
                LockingStep(
                    cycle=cycle,
                    control_state=steps,
                    line_delay_ps=total,
                    comparison=comparison,
                    locked=locked,
                )
            )
            if locked:
                lock_cycle = cycle
                break
            if total >= period:
                # Over-long already (deep slow corner): increasing the delay
                # further cannot help; the controller stops at the current
                # setting and reports the residual error.
                break
            if steps >= config.max_adjustment_steps:
                up_limit = True
                break
            steps += 1

        levels = self.line.levels_for_steps(steps)
        total = self.line.total_delay_ps(levels, conditions)
        cycles = (
            lock_cycle
            if lock_cycle is not None
            else self.synchronizer_latency_cycles + steps * self.cycles_per_update
        )
        return CalibrationResult(
            scheme="conventional",
            locked=locked and not up_limit,
            lock_cycles=cycles,
            control_state=steps,
            locked_delay_ps=total,
            target_ps=period,
            residual_error_ps=total - period,
            trace=trace,
        )

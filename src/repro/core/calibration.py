"""Calibration traces and results shared by both delay-line schemes.

Both schemes calibrate by comparing delay-line taps against the clock edge
once per controller update and nudging the line (either a cell's tuning level
or the locked tap count) by one step.  The classes here capture those runs:

* :class:`LockingStep` / :class:`LockingTrace` -- the cycle-by-cycle history
  of a locking run (the data behind paper Figures 37, 47 and 48).
* :class:`CalibrationResult` -- the outcome: locked state, cycles needed,
  residual error between the locked line delay and the clock period.
* :class:`ContinuousCalibrationTrace` -- a long run in which the operating
  conditions drift (temperature, voltage spikes) and the controller keeps
  re-locking, demonstrating the continuous calibration the paper requires
  for temperature variation.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "LockingStep",
    "LockingTrace",
    "CalibrationResult",
    "ContinuousCalibrationTrace",
]


@dataclass(frozen=True)
class LockingStep:
    """One controller update during a locking run.

    Attributes:
        cycle: clock-cycle index of the update (0-based).
        control_state: the controller's primary state after the update --
            ``tap_sel`` for the proposed scheme, the number of shifted-in
            ones for the conventional scheme.
        line_delay_ps: delay of the tap the controller is watching (the full
            line for the conventional scheme, the selected tap for the
            proposed scheme).
        comparison: the sampled comparison bit (1 when the watched tap delay
            already exceeds the reference interval).
        locked: whether the controller considers itself locked after this
            update.
    """

    cycle: int
    control_state: int
    line_delay_ps: float
    comparison: int
    locked: bool


@dataclass
class LockingTrace:
    """Complete history of one locking run."""

    scheme: str
    clock_period_ps: float
    steps: list[LockingStep] = field(default_factory=list)

    def append(self, step: LockingStep) -> None:
        self.steps.append(step)

    def __len__(self) -> int:
        return len(self.steps)

    @property
    def lock_cycle(self) -> int | None:
        """First cycle at which the controller reports lock (None if never)."""
        for step in self.steps:
            if step.locked:
                return step.cycle
        return None

    @property
    def final_state(self) -> int:
        """Controller state at the end of the run."""
        if not self.steps:
            raise ValueError("locking trace is empty")
        return self.steps[-1].control_state

    def control_history(self) -> list[int]:
        """Controller state after every update (for plotting/locking figures)."""
        return [step.control_state for step in self.steps]

    def delay_history_ps(self) -> list[float]:
        """Watched tap delay after every update."""
        return [step.line_delay_ps for step in self.steps]


@dataclass(frozen=True)
class CalibrationResult:
    """Outcome of a locking run.

    Attributes:
        scheme: ``"proposed"`` or ``"conventional"``.
        locked: whether a valid lock was achieved.
        lock_cycles: clock cycles from reset to lock (or the length of the
            run when no lock was achieved).
        control_state: the locked controller state (``tap_sel`` or the
            shift-register fill level).
        locked_delay_ps: delay of the locked tap / line.
        target_ps: the reference the controller locks to (the clock period
            for the conventional scheme, half of it for the proposed scheme).
        residual_error_ps: ``locked_delay_ps - target_ps`` (positive when the
            locked delay overshoots the reference).
        trace: the full locking trace.
    """

    scheme: str
    locked: bool
    lock_cycles: int
    control_state: int
    locked_delay_ps: float
    target_ps: float
    residual_error_ps: float
    trace: LockingTrace

    @property
    def residual_error_fraction(self) -> float:
        """Residual error as a fraction of the reference interval."""
        if self.target_ps == 0:
            return 0.0
        return self.residual_error_ps / self.target_ps


@dataclass
class ContinuousCalibrationTrace:
    """History of a continuous-calibration run under drifting conditions.

    Attributes:
        scheme: which scheme was calibrated.
        times_cycles: cycle index of each sample.
        temperatures_c: junction temperature at each sample.
        control_states: controller state at each sample.
        locked_delays_ps: locked tap/line delay at each sample.
        targets_ps: reference interval (constant unless the clock changes).
    """

    scheme: str
    times_cycles: list[int] = field(default_factory=list)
    temperatures_c: list[float] = field(default_factory=list)
    control_states: list[int] = field(default_factory=list)
    locked_delays_ps: list[float] = field(default_factory=list)
    targets_ps: list[float] = field(default_factory=list)

    def append(
        self,
        cycle: int,
        temperature_c: float,
        control_state: int,
        locked_delay_ps: float,
        target_ps: float,
    ) -> None:
        self.times_cycles.append(cycle)
        self.temperatures_c.append(temperature_c)
        self.control_states.append(control_state)
        self.locked_delays_ps.append(locked_delay_ps)
        self.targets_ps.append(target_ps)

    def __len__(self) -> int:
        return len(self.times_cycles)

    def max_tracking_error_fraction(self) -> float:
        """Worst-case |locked delay - target| / target over the run."""
        worst = 0.0
        for delay, target in zip(self.locked_delays_ps, self.targets_ps):
            if target > 0:
                worst = max(worst, abs(delay - target) / target)
        return worst

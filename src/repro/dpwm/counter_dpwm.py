"""Counter-based DPWM (paper section 2.2.1, Figures 18-19).

An n-bit counter runs at ``2**n`` times the switching frequency (paper
eq. 13).  The DPWM output is set when the counter wraps to zero and cleared
one fast-clock cycle after the counter matches the duty word, so a duty word
``w`` produces a duty cycle of ``(w + 1) / 2**n`` -- exactly the waveforms of
Figure 19.

The architecture's costs are a high clock frequency (hence dynamic power,
eq. 14) but a tiny area: ``n`` flip-flops plus a comparator (Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.power import netlist_dynamic_power_w
from repro.dpwm.base import DPWMWaveform, DutyCycleRequest
from repro.dpwm.trailing_edge import TrailingEdgeModulator
from repro.simulation.clocks import ClockGenerator
from repro.simulation.primitives import Comparator, Counter, DFlipFlop
from repro.simulation.signals import Signal
from repro.simulation.simulator import Simulator
from repro.technology.cells import CellKind
from repro.technology.library import TechnologyLibrary, intel32_like_library
from repro.technology.netlist import Netlist

__all__ = ["CounterDPWMConfig", "CounterDPWM"]


@dataclass(frozen=True)
class CounterDPWMConfig:
    """Parameters of a counter-based DPWM.

    Attributes:
        bits: DPWM resolution.
        switching_frequency_mhz: regulator switching frequency.
    """

    bits: int
    switching_frequency_mhz: float

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("resolution must be at least 1 bit")
        if self.switching_frequency_mhz <= 0:
            raise ValueError("switching frequency must be positive")

    @property
    def switching_period_ps(self) -> float:
        return 1e6 / self.switching_frequency_mhz

    @property
    def counter_clock_frequency_mhz(self) -> float:
        """Required counter clock (paper eq. 13): ``2**n * f_switch``."""
        return self.switching_frequency_mhz * (1 << self.bits)

    @property
    def counter_clock_period_ps(self) -> float:
        return self.switching_period_ps / (1 << self.bits)


class CounterDPWM:
    """Structural, simulatable counter-based DPWM."""

    architecture = "counter"

    def __init__(
        self, config: CounterDPWMConfig, library: TechnologyLibrary | None = None
    ) -> None:
        self.config = config
        self.library = library or intel32_like_library()

    # ------------------------------------------------------------------ #
    # Behaviour
    # ------------------------------------------------------------------ #
    def generate(self, duty_word: int, periods: int = 2) -> DPWMWaveform:
        """Simulate the DPWM output for a duty word over several periods."""
        config = self.config
        request = DutyCycleRequest(word=duty_word, bits=config.bits)
        sim = Simulator()

        fast_clock = Signal(sim, "clk")
        ClockGenerator(sim, fast_clock, period_ps=config.counter_clock_period_ps)

        count = Signal(sim, "cnt", width=config.bits)
        # Start the counter at its maximum so the first clock edge (t = 0)
        # wraps it to zero: the count-0 interval is aligned with the start of
        # the switching period, as in the paper's timing diagram.  The small
        # clock-to-q delay keeps the reset register from racing the counter
        # update on the same edge (it samples the pre-edge comparator value).
        counter_clk_to_q_ps = min(50.0, config.counter_clock_period_ps / 20.0)
        Counter(
            sim,
            clock=fast_clock,
            output_signal=count,
            width=config.bits,
            clk_to_q_ps=counter_clk_to_q_ps,
            initial=(1 << config.bits) - 1,
        )

        zero = Signal(sim, "zero_const", width=config.bits)
        period_start = Signal(sim, "period_start")
        Comparator(sim, count, zero, period_start)

        duty_signal = Signal(sim, "duty", width=config.bits, initial=duty_word)
        match = Signal(sim, "match")
        Comparator(sim, count, duty_signal, match)

        reset = Signal(sim, "reset")
        if duty_word == (1 << config.bits) - 1:
            # All-ones duty word: 100 % duty, the output is never reset
            # (paper Figure 19: "Duty = 11 ... 100% duty").
            pass
        else:
            DFlipFlop(sim, clock=fast_clock, data=match, output_signal=reset)

        modulator = TrailingEdgeModulator(sim, period_start, reset)

        total_time = config.switching_period_ps * periods
        sim.run_until(total_time)

        measured = modulator.output.trace.duty_cycle(
            config.switching_period_ps, start_ps=config.switching_period_ps
        )
        return DPWMWaveform(
            architecture=self.architecture,
            request=request,
            switching_period_ps=config.switching_period_ps,
            trace=modulator.output.trace,
            measured_duty=measured,
            support_traces={
                "clk": fast_clock.trace,
                "cnt": count.trace,
                "reset": reset.trace,
            },
        )

    # ------------------------------------------------------------------ #
    # Cost
    # ------------------------------------------------------------------ #
    def required_clock_frequency_mhz(self) -> float:
        return self.config.counter_clock_frequency_mhz

    def netlist(self) -> Netlist:
        """Structural netlist: n-bit counter, comparator, output flops."""
        bits = self.config.bits
        counter = Netlist(name="Counter")
        counter.add_cells(CellKind.DFF, bits, purpose="count register")
        counter.add_cells(CellKind.HALF_ADDER, bits, purpose="increment")

        comparator = Netlist(name="Comparator")
        comparator.add_cells(CellKind.XOR2, bits, purpose="bit compare")
        comparator.add_cells(CellKind.AND2, max(bits - 1, 1), purpose="reduce")

        output = Netlist(name="Output stage")
        output.add_cells(CellKind.DFF, 2, purpose="reset register + PWM flop")

        top = Netlist(name="Counter DPWM")
        for block in (counter, comparator, output):
            top.add_child(block)
        return top

    def dynamic_power_w(self, vdd_v: float = 1.0, activity: float = 0.5) -> float:
        """Dynamic power at the required counter clock frequency."""
        return netlist_dynamic_power_w(
            self.netlist(),
            self.library,
            vdd_v=vdd_v,
            frequency_hz=self.required_clock_frequency_mhz() * 1e6,
            activity=activity,
        )

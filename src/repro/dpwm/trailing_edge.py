"""Trailing-edge modulation (paper Figures 16-17).

The DPWM output is set at the beginning of every switching period and cleared
when the ``Reset`` signal fires; controlling *when* Reset fires controls the
duty cycle.  All three DPWM architectures share this building block: the
counter-based DPWM fires Reset from a comparator, the delay-line DPWM from a
delay-line tap, the hybrid from a tap of a line fed by the comparator.
"""

from __future__ import annotations

from repro.simulation.primitives import SetResetFlop
from repro.simulation.signals import Signal
from repro.simulation.simulator import Simulator

__all__ = ["TrailingEdgeModulator"]


class TrailingEdgeModulator:
    """The output flop of a trailing-edge DPWM.

    The output goes high on the rising edge of the switching-period signal
    and low on the rising edge of the reset signal.
    """

    def __init__(
        self,
        simulator: Simulator,
        period_start: Signal,
        reset: Signal,
        output_name: str = "dpwm_out",
    ) -> None:
        self.simulator = simulator
        self.period_start = period_start
        self.reset = reset
        self.output = Signal(simulator, output_name)
        self._flop = SetResetFlop(
            simulator,
            set_signal=period_start,
            reset_signal=reset,
            output_signal=self.output,
        )

"""Delay-line DPWM (paper section 2.2.2, Figures 20-21).

The switching clock propagates down a tapped delay line whose total delay
equals the switching period; the tap selected by the duty word resets the
output.  No fast clock is needed (the power advantage of Table 2), but the
line needs ``2**n`` cells and a ``2**n : 1`` multiplexer (the area drawback).

This module models the *uncalibrated* background architecture: the per-cell
delay is ideally ``T_switch / 2**n``, and the effect of process corners on an
uncalibrated line (paper Figure 28: the same tap giving different duty cycles,
part of the period left uncovered at the fast corner) can be reproduced by
passing explicit cell delays.  The calibrated delay lines -- the paper's
actual contribution -- live in :mod:`repro.core` and are wrapped for DPWM use
by :mod:`repro.dpwm.calibrated`.
"""

from __future__ import annotations

from dataclasses import dataclass

from collections.abc import Sequence

from repro.dpwm.base import DPWMWaveform, DutyCycleRequest
from repro.dpwm.trailing_edge import TrailingEdgeModulator
from repro.simulation.clocks import ClockGenerator
from repro.simulation.primitives import Buffer, MuxN
from repro.simulation.signals import Signal
from repro.simulation.simulator import Simulator
from repro.technology.cells import CellKind
from repro.technology.library import TechnologyLibrary, intel32_like_library
from repro.technology.netlist import Netlist

__all__ = ["DelayLineDPWMConfig", "DelayLineDPWM"]


@dataclass(frozen=True)
class DelayLineDPWMConfig:
    """Parameters of a delay-line DPWM.

    Attributes:
        bits: DPWM resolution; the line has ``2**bits`` cells (paper eq. 15).
        switching_frequency_mhz: regulator switching frequency.
    """

    bits: int
    switching_frequency_mhz: float

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("resolution must be at least 1 bit")
        if self.switching_frequency_mhz <= 0:
            raise ValueError("switching frequency must be positive")

    @property
    def num_cells(self) -> int:
        return 1 << self.bits

    @property
    def switching_period_ps(self) -> float:
        return 1e6 / self.switching_frequency_mhz

    @property
    def ideal_cell_delay_ps(self) -> float:
        """Cell delay that makes the line exactly span the switching period."""
        return self.switching_period_ps / self.num_cells


class DelayLineDPWM:
    """Structural, simulatable delay-line DPWM."""

    architecture = "delay-line"

    def __init__(
        self,
        config: DelayLineDPWMConfig,
        cell_delays_ps: Sequence[float] | None = None,
        library: TechnologyLibrary | None = None,
    ) -> None:
        self.config = config
        self.library = library or intel32_like_library()
        if cell_delays_ps is None:
            cell_delays_ps = [config.ideal_cell_delay_ps] * config.num_cells
        if len(cell_delays_ps) != config.num_cells:
            raise ValueError(
                f"expected {config.num_cells} cell delays, got {len(cell_delays_ps)}"
            )
        if any(delay <= 0 for delay in cell_delays_ps):
            raise ValueError("cell delays must be positive")
        self.cell_delays_ps = list(cell_delays_ps)

    # ------------------------------------------------------------------ #
    # Behaviour
    # ------------------------------------------------------------------ #
    def generate(self, duty_word: int, periods: int = 2) -> DPWMWaveform:
        """Simulate the DPWM output for a duty word over several periods."""
        config = self.config
        request = DutyCycleRequest(word=duty_word, bits=config.bits)
        sim = Simulator()

        switching_clock = Signal(sim, "sw_clk")
        ClockGenerator(sim, switching_clock, period_ps=config.switching_period_ps)

        # Build the tapped line: tap k is the output of cell k (0-based), so
        # selecting tap ``duty_word`` delays the switching edge by
        # (duty_word + 1) cell delays -- the paper's 25/50/75/100 % example.
        taps: list[Signal] = []
        stage_input = switching_clock
        for index, delay in enumerate(self.cell_delays_ps):
            tap = Signal(sim, f"tap{index}")
            Buffer(sim, stage_input, tap, delay_ps=delay)
            taps.append(tap)
            stage_input = tap

        select = Signal(sim, "select", width=config.bits, initial=duty_word)
        reset = Signal(sim, "reset")
        if duty_word == config.num_cells - 1:
            # Last tap: its rising edge lands on the next period start, which
            # the paper reads as 100 % duty; keep the output set instead of
            # racing the set edge.
            pass
        else:
            MuxN(sim, taps, select, reset)

        modulator = TrailingEdgeModulator(sim, switching_clock, reset)

        sim.run_until(config.switching_period_ps * periods)
        measured = modulator.output.trace.duty_cycle(
            config.switching_period_ps, start_ps=config.switching_period_ps
        )
        support = {"sw_clk": switching_clock.trace, "reset": reset.trace}
        for index in range(min(4, len(taps))):
            support[f"tap{index}"] = taps[index].trace
        return DPWMWaveform(
            architecture=self.architecture,
            request=request,
            switching_period_ps=config.switching_period_ps,
            trace=modulator.output.trace,
            measured_duty=measured,
            support_traces=support,
        )

    # ------------------------------------------------------------------ #
    # Cost
    # ------------------------------------------------------------------ #
    def required_clock_frequency_mhz(self) -> float:
        """Only the switching clock is needed (the power advantage)."""
        return self.config.switching_frequency_mhz

    def netlist(self) -> Netlist:
        """Structural netlist: 2**n delay cells, tap multiplexer, output flop."""
        cells = self.config.num_cells
        line = Netlist(name="Delay Line")
        line.add_cells(CellKind.BUFFER, cells, purpose="delay cells")

        mux = Netlist(name="Output MUX")
        mux.add_cells(CellKind.MUX2, cells - 1, purpose="tap-select tree")

        output = Netlist(name="Output stage")
        output.add_cells(CellKind.DFF, 1, purpose="PWM flop")

        top = Netlist(name="Delay-line DPWM")
        for block in (line, mux, output):
            top.add_child(block)
        return top

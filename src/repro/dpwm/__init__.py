"""DPWM signal-generation architectures (paper section 2.2).

Three architectures generate the digital pulse-width-modulated signal that
drives the buck converter's switches:

* :mod:`repro.dpwm.counter_dpwm` -- counter-based DPWM (Figure 18): an n-bit
  counter clocked at ``2**n`` times the switching frequency plus a
  comparator; small, linear, but the clock frequency (and dynamic power)
  grows exponentially with resolution.
* :mod:`repro.dpwm.delay_line_dpwm` -- delay-line DPWM (Figure 20): the
  switching pulse propagates down a tapped delay line and the selected tap
  resets the output; no fast clock, but ``2**n`` cells and a ``2**n : 1``
  multiplexer.
* :mod:`repro.dpwm.hybrid_dpwm` -- hybrid DPWM (Figure 22): counter for the
  MSBs, delay line for the LSBs; the compromise used when both resolution
  and reasonable clock/area are required.

All three share the trailing-edge modulation building block
(:mod:`repro.dpwm.trailing_edge`) and a common result container
(:mod:`repro.dpwm.base`).  Waveforms are produced structurally with the
event-driven simulator so the timing diagrams of Figures 19, 21 and 23 can be
regenerated, and each architecture exposes a structural netlist for the
area/clock comparison of Table 2.
"""

from repro.dpwm.base import DPWMWaveform, DutyCycleRequest
from repro.dpwm.counter_dpwm import CounterDPWM, CounterDPWMConfig
from repro.dpwm.delay_line_dpwm import DelayLineDPWM, DelayLineDPWMConfig
from repro.dpwm.hybrid_dpwm import HybridDPWM, HybridDPWMConfig
from repro.dpwm.calibrated import CalibratedDelayLineDPWM
from repro.dpwm.trailing_edge import TrailingEdgeModulator

__all__ = [
    "CalibratedDelayLineDPWM",
    "CounterDPWM",
    "CounterDPWMConfig",
    "DPWMWaveform",
    "DelayLineDPWM",
    "DelayLineDPWMConfig",
    "DutyCycleRequest",
    "HybridDPWM",
    "HybridDPWMConfig",
    "TrailingEdgeModulator",
]

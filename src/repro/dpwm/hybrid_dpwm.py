"""Hybrid DPWM (paper section 2.2.3, Figures 22-23).

The duty word is split: the ``n_msb`` most significant bits are counted by a
counter clocked at ``2**n_msb`` times the switching frequency, the ``n_lsb``
least significant bits select a tap of a small delay line whose total delay is
one counter-clock period.  The comparator match (``delclk``) launches the
pulse into the line; the selected tap resets the PWM output.

Compared to the pure approaches at the same resolution the hybrid needs a
``2**n_lsb``-times slower clock than the counter DPWM and ``2**n_msb``-times
fewer cells than the delay-line DPWM -- the compromise of Table 2 and of the
worked 5-bit example (clock 8x instead of 32x the switching frequency, 4 cells
instead of 32).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.power import netlist_dynamic_power_w
from repro.dpwm.base import DPWMWaveform, DutyCycleRequest
from repro.dpwm.trailing_edge import TrailingEdgeModulator
from repro.simulation.clocks import ClockGenerator
from repro.simulation.primitives import Buffer, Comparator, Counter, MuxN
from repro.simulation.signals import Signal
from repro.simulation.simulator import Simulator
from repro.technology.cells import CellKind
from repro.technology.library import TechnologyLibrary, intel32_like_library
from repro.technology.netlist import Netlist

__all__ = ["HybridDPWMConfig", "HybridDPWM"]


@dataclass(frozen=True)
class HybridDPWMConfig:
    """Parameters of a hybrid DPWM.

    Attributes:
        msb_bits: resolution handled by the counter.
        lsb_bits: resolution handled by the delay line.
        switching_frequency_mhz: regulator switching frequency.
    """

    msb_bits: int
    lsb_bits: int
    switching_frequency_mhz: float

    def __post_init__(self) -> None:
        if self.msb_bits < 1 or self.lsb_bits < 1:
            raise ValueError("both counter and delay-line sections need >= 1 bit")
        if self.switching_frequency_mhz <= 0:
            raise ValueError("switching frequency must be positive")

    @property
    def bits(self) -> int:
        """Total DPWM resolution."""
        return self.msb_bits + self.lsb_bits

    @property
    def num_cells(self) -> int:
        """Delay-line length (covers one counter-clock period)."""
        return 1 << self.lsb_bits

    @property
    def switching_period_ps(self) -> float:
        return 1e6 / self.switching_frequency_mhz

    @property
    def counter_clock_frequency_mhz(self) -> float:
        """Required counter clock: ``2**msb_bits * f_switch``."""
        return self.switching_frequency_mhz * (1 << self.msb_bits)

    @property
    def counter_clock_period_ps(self) -> float:
        return self.switching_period_ps / (1 << self.msb_bits)

    @property
    def ideal_cell_delay_ps(self) -> float:
        """Cell delay so the line spans one counter-clock period."""
        return self.counter_clock_period_ps / self.num_cells


class HybridDPWM:
    """Structural, simulatable hybrid DPWM."""

    architecture = "hybrid"

    def __init__(
        self, config: HybridDPWMConfig, library: TechnologyLibrary | None = None
    ) -> None:
        self.config = config
        self.library = library or intel32_like_library()

    # ------------------------------------------------------------------ #
    # Behaviour
    # ------------------------------------------------------------------ #
    def generate(self, duty_word: int, periods: int = 2) -> DPWMWaveform:
        """Simulate the DPWM output for a duty word over several periods."""
        config = self.config
        request = DutyCycleRequest(word=duty_word, bits=config.bits)
        msb = request.msb(config.msb_bits)
        lsb = request.lsb(config.lsb_bits)
        sim = Simulator()

        fast_clock = Signal(sim, "clk")
        ClockGenerator(sim, fast_clock, period_ps=config.counter_clock_period_ps)

        count = Signal(sim, "cnt", width=config.msb_bits)
        Counter(
            sim,
            clock=fast_clock,
            output_signal=count,
            width=config.msb_bits,
            initial=(1 << config.msb_bits) - 1,
        )

        zero = Signal(sim, "zero_const", width=config.msb_bits)
        period_start = Signal(sim, "period_start")
        Comparator(sim, count, zero, period_start)

        msb_signal = Signal(sim, "msb_duty", width=config.msb_bits, initial=msb)
        delclk = Signal(sim, "delclk")
        Comparator(sim, count, msb_signal, delclk)

        taps: list[Signal] = []
        stage_input = delclk
        for index in range(config.num_cells):
            tap = Signal(sim, f"tap{index}")
            Buffer(sim, stage_input, tap, delay_ps=config.ideal_cell_delay_ps)
            taps.append(tap)
            stage_input = tap

        select = Signal(sim, "select", width=config.lsb_bits, initial=lsb)
        reset = Signal(sim, "reset")
        if duty_word == (1 << config.bits) - 1:
            # All-ones word: the reset edge lands on the next period start,
            # read as 100 % duty (same convention as the other architectures).
            pass
        else:
            MuxN(sim, taps, select, reset)

        modulator = TrailingEdgeModulator(sim, period_start, reset)

        sim.run_until(config.switching_period_ps * periods)
        measured = modulator.output.trace.duty_cycle(
            config.switching_period_ps, start_ps=config.switching_period_ps
        )
        return DPWMWaveform(
            architecture=self.architecture,
            request=request,
            switching_period_ps=config.switching_period_ps,
            trace=modulator.output.trace,
            measured_duty=measured,
            support_traces={
                "clk": fast_clock.trace,
                "cnt": count.trace,
                "delclk": delclk.trace,
                "reset": reset.trace,
            },
        )

    # ------------------------------------------------------------------ #
    # Cost
    # ------------------------------------------------------------------ #
    def required_clock_frequency_mhz(self) -> float:
        return self.config.counter_clock_frequency_mhz

    def netlist(self) -> Netlist:
        """Structural netlist: small counter + comparator + short line + mux."""
        config = self.config
        counter = Netlist(name="Counter")
        counter.add_cells(CellKind.DFF, config.msb_bits, purpose="count register")
        counter.add_cells(CellKind.HALF_ADDER, config.msb_bits, purpose="increment")

        comparator = Netlist(name="Comparator")
        comparator.add_cells(CellKind.XOR2, config.msb_bits, purpose="bit compare")
        comparator.add_cells(
            CellKind.AND2, max(config.msb_bits - 1, 1), purpose="reduce"
        )

        line = Netlist(name="Delay Line")
        line.add_cells(CellKind.BUFFER, config.num_cells, purpose="delay cells")

        mux = Netlist(name="Output MUX")
        mux.add_cells(CellKind.MUX2, config.num_cells - 1, purpose="tap-select tree")

        output = Netlist(name="Output stage")
        output.add_cells(CellKind.DFF, 1, purpose="PWM flop")

        top = Netlist(name="Hybrid DPWM")
        for block in (counter, comparator, line, mux, output):
            top.add_child(block)
        return top

    def dynamic_power_w(self, vdd_v: float = 1.0, activity: float = 0.5) -> float:
        """Dynamic power at the required counter clock frequency."""
        return netlist_dynamic_power_w(
            self.netlist(),
            self.library,
            vdd_v=vdd_v,
            frequency_hz=self.required_clock_frequency_mhz() * 1e6,
            activity=activity,
        )

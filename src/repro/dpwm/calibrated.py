"""DPWM built on a calibrated delay line (the paper's contribution in use).

The background delay-line DPWM of :mod:`repro.dpwm.delay_line_dpwm` assumes
ideal cell delays.  In a real regulator the line must be calibrated against
PVT variation, which is exactly what the paper's two schemes provide.  This
module wraps either calibrated delay line behind the DPWM interface the
converter substrate consumes: request a duty word, get back the achieved duty
fraction (and optionally a waveform), with the calibration kept up to date as
operating conditions change.
"""

from __future__ import annotations

import numpy as np

from repro.core.conventional import ConventionalDelayLine, ShiftRegisterController
from repro.core.proposed import ProposedController, ProposedDelayLine
from repro.dpwm.base import DPWMWaveform, DutyCycleRequest
from repro.simulation.signals import Signal
from repro.simulation.simulator import Simulator
from repro.technology.corners import OperatingConditions

__all__ = ["CalibratedDelayLineDPWM"]


class CalibratedDelayLineDPWM:
    """A trailing-edge DPWM driven by a calibrated delay line.

    Works with either the proposed or the conventional delay line.  The
    calibration is performed on construction (and can be re-run with
    :meth:`recalibrate` when the operating conditions drift); duty words then
    map to reset-edge delays through the scheme's own mechanism (mapping
    block for the proposed line, direct tap select for the conventional one).

    Duty-word convention: word ``w`` out of ``2**word_bits`` requests a duty
    of ``w / 2**word_bits`` (word 0 = no pulse), matching the calibrated
    schemes of chapter 3 rather than the background examples of chapter 2.
    """

    def __init__(
        self,
        line: ProposedDelayLine | ConventionalDelayLine,
        conditions: OperatingConditions | None = None,
    ) -> None:
        self.line = line
        self.conditions = conditions or OperatingConditions.typical()
        if isinstance(line, ProposedDelayLine):
            self._scheme = "proposed"
            self.word_bits = line.config.word_bits
        elif isinstance(line, ConventionalDelayLine):
            self._scheme = "conventional"
            self.word_bits = line.config.resolution_bits
        else:
            raise TypeError(f"unsupported delay-line type: {type(line)!r}")
        self._tap_sel: int | None = None
        self._levels: np.ndarray | None = None
        self.calibration = self.recalibrate(self.conditions)

    @property
    def scheme(self) -> str:
        return self._scheme

    @property
    def switching_period_ps(self) -> float:
        return self.line.config.clock_period_ps

    @property
    def max_word(self) -> int:
        return (1 << self.word_bits) - 1

    def recalibrate(self, conditions: OperatingConditions):
        """Re-run the locking phase at new operating conditions."""
        self.conditions = conditions
        if self._scheme == "proposed":
            result = ProposedController(self.line).lock(conditions)
            self._tap_sel = result.control_state
        else:
            result = ShiftRegisterController(self.line).lock(conditions)
            self._levels = self.line.levels_for_steps(result.control_state)
        self.calibration = result
        return result

    def reset_delay_ps(self, duty_word: int) -> float:
        """Delay of the reset edge for a duty word at the current calibration."""
        if not 0 <= duty_word <= self.max_word:
            raise ValueError(
                f"duty word {duty_word} out of range [0, {self.max_word}]"
            )
        if self._scheme == "proposed":
            assert self._tap_sel is not None
            return self.line.output_delay_ps(duty_word, self._tap_sel, self.conditions)
        assert self._levels is not None
        return self.line.output_delay_ps(duty_word, self._levels, self.conditions)

    def duty_fraction(self, duty_word: int) -> float:
        """Achieved duty-cycle fraction (0..1) for a duty word."""
        delay = self.reset_delay_ps(duty_word)
        return min(delay / self.switching_period_ps, 1.0)

    def duty_word_for(self, duty_fraction: float) -> int:
        """Quantize a requested duty fraction to the nearest duty word."""
        duty_fraction = min(max(duty_fraction, 0.0), 1.0)
        word = int(round(duty_fraction * (1 << self.word_bits)))
        return min(word, self.max_word)

    def generate(self, duty_word: int, periods: int = 2) -> DPWMWaveform:
        """Produce a recorded waveform for a duty word over several periods."""
        request = DutyCycleRequest(word=min(duty_word, self.max_word), bits=self.word_bits)
        period = self.switching_period_ps
        delay = self.reset_delay_ps(duty_word)
        sim = Simulator()
        out = Signal(sim, "dpwm_out")
        for index in range(periods):
            start = index * period
            if delay > 0:
                sim.schedule_at(start, lambda: out.set(1))
                sim.schedule_at(min(start + delay, start + period), lambda: out.set(0))
        sim.run_until(period * periods)
        measured = out.trace.duty_cycle(period, start_ps=period) if periods > 1 else (
            out.trace.duty_cycle(period)
        )
        return DPWMWaveform(
            architecture=f"calibrated-{self._scheme}",
            request=request,
            switching_period_ps=period,
            trace=out.trace,
            measured_duty=measured,
            support_traces={},
        )

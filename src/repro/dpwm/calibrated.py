"""DPWM built on a calibrated delay line (the paper's contribution in use).

The background delay-line DPWM of :mod:`repro.dpwm.delay_line_dpwm` assumes
ideal cell delays.  In a real regulator the line must be calibrated against
PVT variation, which is exactly what the paper's two schemes provide.  This
module wraps either calibrated delay line behind the DPWM interface the
converter substrate consumes: request a duty word, get back the achieved duty
fraction (and optionally a waveform), with the calibration kept up to date as
operating conditions change.

The word -> achieved-duty mapping is computed *in array form* at calibration
time: the line is lifted into a single-instance
:mod:`repro.core.ensemble` run and the resulting transfer curve converted
with :meth:`~repro.simulation.batch.BatchQuantizer.from_ensemble` -- the
same code path the batch silicon-to-regulation pipeline uses for whole
Monte-Carlo populations.  Scalar ``duty_fraction`` calls are then table
lookups, and :meth:`duty_table` hands the whole mapping to the batch engine
without any per-word Python loop.
"""

from __future__ import annotations

import numpy as np

from repro.core.calibration import CalibrationResult
from repro.core.conventional import ConventionalDelayLine, ShiftRegisterController
from repro.core.ensemble import ConventionalEnsemble, ProposedEnsemble
from repro.core.proposed import ProposedController, ProposedDelayLine
from repro.dpwm.base import DPWMWaveform, DutyCycleRequest
from repro.simulation.batch import BatchQuantizer
from repro.simulation.signals import Signal
from repro.simulation.simulator import Simulator
from repro.technology.corners import OperatingConditions

__all__ = ["CalibratedDelayLineDPWM"]


class CalibratedDelayLineDPWM:
    """A trailing-edge DPWM driven by a calibrated delay line.

    Works with either the proposed or the conventional delay line.  The
    calibration is performed on construction (and can be re-run with
    :meth:`recalibrate` when the operating conditions drift); duty words then
    map to reset-edge delays through the scheme's own mechanism (mapping
    block for the proposed line, direct tap select for the conventional one).

    Duty-word convention: word ``w`` out of ``2**word_bits`` requests a duty
    of ``w / 2**word_bits`` (word 0 = no pulse), matching the calibrated
    schemes of chapter 3 rather than the background examples of chapter 2.
    """

    def __init__(
        self,
        line: ProposedDelayLine | ConventionalDelayLine,
        conditions: OperatingConditions | None = None,
    ) -> None:
        self.line = line
        self.conditions = conditions or OperatingConditions.typical()
        if isinstance(line, ProposedDelayLine):
            self._scheme = "proposed"
            self.word_bits = line.config.word_bits
        elif isinstance(line, ConventionalDelayLine):
            self._scheme = "conventional"
            self.word_bits = line.config.resolution_bits
        else:
            raise TypeError(f"unsupported delay-line type: {type(line)!r}")
        self._tap_sel: int | None = None
        self._levels: np.ndarray | None = None
        self._duty_table: np.ndarray
        self.calibration = self.recalibrate(self.conditions)

    @property
    def scheme(self) -> str:
        return self._scheme

    @property
    def switching_period_ps(self) -> float:
        return self.line.config.clock_period_ps

    @property
    def max_word(self) -> int:
        return (1 << self.word_bits) - 1

    def recalibrate(self, conditions: OperatingConditions) -> CalibrationResult:
        """Re-run the locking phase at new operating conditions."""
        self.conditions = conditions
        if self._scheme == "proposed":
            result = ProposedController(self.line).lock(conditions)
            self._tap_sel = result.control_state
        else:
            result = ShiftRegisterController(self.line).lock(conditions)
            self._levels = self.line.levels_for_steps(result.control_state)
        self.calibration = result
        self._duty_table = self._build_duty_table()
        return result

    def _build_duty_table(self) -> np.ndarray:
        """Word -> achieved-duty table via the vectorized ensemble path."""
        if self._scheme == "proposed":
            if self._tap_sel is None:
                raise RuntimeError("proposed scheme has no tap selection; lock first")
            curves = ProposedEnsemble.from_line(self.line).transfer_curves(
                self.conditions, tap_sel=np.array([self._tap_sel])
            )
        else:
            if self._levels is None:
                raise RuntimeError(
                    "conventional scheme has no level settings; lock first"
                )
            curves = ConventionalEnsemble.from_line(self.line).transfer_curves(
                self.conditions, levels=np.asarray(self._levels)
            )
        quantizer = BatchQuantizer.from_ensemble(curves, num_words=self.max_word + 1)
        return quantizer.levels[0]

    def duty_table(self) -> np.ndarray:
        """Achieved duty of every word ``0..max_word`` as one array.

        The batch engine consumes this directly
        (:meth:`~repro.simulation.batch.BatchQuantizer.from_quantizers`
        fast path); treat the returned array as read-only.
        """
        return self._duty_table

    def reset_delay_ps(self, duty_word: int) -> float:
        """Delay of the reset edge for a duty word at the current calibration."""
        if not 0 <= duty_word <= self.max_word:
            raise ValueError(
                f"duty word {duty_word} out of range [0, {self.max_word}]"
            )
        if self._scheme == "proposed":
            if self._tap_sel is None:
                raise RuntimeError("proposed scheme has no tap selection; lock first")
            return self.line.output_delay_ps(duty_word, self._tap_sel, self.conditions)
        if self._levels is None:
            raise RuntimeError("conventional scheme has no level settings; lock first")
        return self.line.output_delay_ps(duty_word, self._levels, self.conditions)

    def duty_fraction(self, duty_word: int) -> float:
        """Achieved duty-cycle fraction (0..1) for a duty word.

        A lookup into the calibration-time :meth:`duty_table` -- the scalar
        view of the same arithmetic the batch pipeline applies to whole
        ensembles.
        """
        if not 0 <= duty_word <= self.max_word:
            raise ValueError(
                f"duty word {duty_word} out of range [0, {self.max_word}]"
            )
        return float(self._duty_table[duty_word])

    def duty_word_for(self, duty_fraction: float) -> int:
        """Quantize a requested duty fraction to the nearest duty word."""
        duty_fraction = min(max(duty_fraction, 0.0), 1.0)
        word = int(round(duty_fraction * (1 << self.word_bits)))
        return min(word, self.max_word)

    def generate(self, duty_word: int, periods: int = 2) -> DPWMWaveform:
        """Produce a recorded waveform for a duty word over several periods."""
        request = DutyCycleRequest(word=min(duty_word, self.max_word), bits=self.word_bits)
        period = self.switching_period_ps
        delay = self.reset_delay_ps(duty_word)
        sim = Simulator()
        out = Signal(sim, "dpwm_out")
        for index in range(periods):
            start = index * period
            if delay > 0:
                sim.schedule_at(start, lambda: out.set(1))
                sim.schedule_at(min(start + delay, start + period), lambda: out.set(0))
        sim.run_until(period * periods)
        measured = out.trace.duty_cycle(period, start_ps=period) if periods > 1 else (
            out.trace.duty_cycle(period)
        )
        return DPWMWaveform(
            architecture=f"calibrated-{self._scheme}",
            request=request,
            switching_period_ps=period,
            trace=out.trace,
            measured_duty=measured,
            support_traces={},
        )

"""Shared DPWM types.

Every DPWM architecture in this package answers the same two questions:

* *behaviour* -- what waveform comes out for a requested duty word
  (:class:`DPWMWaveform`), and
* *cost* -- what clock frequency and hardware it needs for a target
  resolution (each architecture's ``required_clock_frequency_mhz`` and
  ``netlist`` methods; compared in Table 2).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.waveform import WaveformTrace

__all__ = ["DutyCycleRequest", "DPWMWaveform"]


@dataclass(frozen=True)
class DutyCycleRequest:
    """A requested duty cycle expressed as a digital word.

    The convention of the paper's background chapter (Figures 19, 21, 23) is
    used: a word ``w`` out of ``2**bits`` requests a duty cycle of
    ``(w + 1) / 2**bits`` -- word 0 gives the smallest non-zero pulse, the
    all-ones word gives 100 %.

    Attributes:
        word: the duty word.
        bits: resolution of the DPWM.
    """

    word: int
    bits: int

    def __post_init__(self) -> None:
        if self.bits < 1:
            raise ValueError("resolution must be at least 1 bit")
        if not 0 <= self.word < (1 << self.bits):
            raise ValueError(
                f"duty word {self.word} out of range [0, {(1 << self.bits) - 1}]"
            )

    @property
    def ideal_duty(self) -> float:
        """The duty-cycle fraction this word requests."""
        return (self.word + 1) / float(1 << self.bits)

    def msb(self, msb_bits: int) -> int:
        """The ``msb_bits`` most significant bits of the word (hybrid DPWM)."""
        if not 0 < msb_bits <= self.bits:
            raise ValueError("msb_bits out of range")
        return self.word >> (self.bits - msb_bits)

    def lsb(self, lsb_bits: int) -> int:
        """The ``lsb_bits`` least significant bits of the word (hybrid DPWM)."""
        if not 0 < lsb_bits <= self.bits:
            raise ValueError("lsb_bits out of range")
        return self.word & ((1 << lsb_bits) - 1)


@dataclass
class DPWMWaveform:
    """The simulated output of a DPWM architecture for one duty request.

    Attributes:
        architecture: which architecture produced it.
        request: the duty request.
        switching_period_ps: switching period of the regulator.
        trace: the full DPWM output waveform.
        measured_duty: duty cycle measured over ``measurement_period`` (the
            second switching period by default, to skip start-up effects).
        support_traces: named auxiliary traces (clock, counter, taps, reset)
            for timing-diagram reproduction.
    """

    architecture: str
    request: DutyCycleRequest
    switching_period_ps: float
    trace: WaveformTrace
    measured_duty: float
    support_traces: dict[str, WaveformTrace]

    @property
    def duty_error(self) -> float:
        """Absolute error between measured and requested duty."""
        return abs(self.measured_duty - self.request.ideal_duty)

    def timing_diagram(self, step_fraction: float = 0.02) -> str:
        """ASCII timing diagram over two switching periods (for examples)."""
        stop = 2.0 * self.switching_period_ps
        step = self.switching_period_ps * step_fraction
        lines = [self.trace.to_ascii(stop, step)]
        for trace in self.support_traces.values():
            lines.append(trace.to_ascii(stop, step))
        return "\n".join(lines)

"""Structural netlists: cell-count views of synthesized blocks.

The area comparison in the paper is a post-synthesis comparison of gate
counts weighted by cell sizes.  A :class:`Netlist` captures exactly that view:
a named block containing groups of identical cell instances plus optional
hierarchical sub-blocks.  The structural synthesizer
(:mod:`repro.technology.synthesis`) folds a netlist into an area report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.technology.cells import CellKind

__all__ = ["CellInstanceGroup", "Netlist"]


@dataclass(frozen=True)
class CellInstanceGroup:
    """A group of identical cell instances inside a block.

    Attributes:
        kind: the cell kind.
        count: how many instances of the cell the block contains.
        purpose: short human-readable role (e.g. ``"delay element"``).
    """

    kind: CellKind
    count: int
    purpose: str = ""

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError(f"cell count must be non-negative, got {self.count}")


@dataclass
class Netlist:
    """A hierarchical, structural netlist.

    Attributes:
        name: block name (e.g. ``"Delay Line"``, ``"Controller"``).
        groups: flat cell groups directly inside this block.
        children: sub-blocks.
    """

    name: str
    groups: list[CellInstanceGroup] = field(default_factory=list)
    children: list["Netlist"] = field(default_factory=list)

    def add_cells(self, kind: CellKind, count: int, purpose: str = "") -> "Netlist":
        """Append a group of cells to this block and return ``self``."""
        self.groups.append(CellInstanceGroup(kind=kind, count=count, purpose=purpose))
        return self

    def add_child(self, child: "Netlist") -> "Netlist":
        """Append a sub-block and return ``self``."""
        self.children.append(child)
        return self

    def cell_counts(self) -> dict[CellKind, int]:
        """Total cell counts of this block including all sub-blocks."""
        totals: dict[CellKind, int] = {}
        for group in self.groups:
            totals[group.kind] = totals.get(group.kind, 0) + group.count
        for child in self.children:
            for kind, count in child.cell_counts().items():
                totals[kind] = totals.get(kind, 0) + count
        return totals

    def total_instances(self) -> int:
        """Total number of cell instances including sub-blocks."""
        return sum(self.cell_counts().values())

    def flatten(self) -> list[tuple[str, CellInstanceGroup]]:
        """Flatten to ``(hierarchical name, group)`` pairs."""
        flat: list[tuple[str, CellInstanceGroup]] = []
        for group in self.groups:
            flat.append((self.name, group))
        for child in self.children:
            for path, group in child.flatten():
                flat.append((f"{self.name}/{path}", group))
        return flat

    def find(self, name: str) -> "Netlist":
        """Find a direct or indirect sub-block by name (or ``self``).

        Raises:
            KeyError: if no block with that name exists in the hierarchy.
        """
        if self.name == name:
            return self
        for child in self.children:
            try:
                return child.find(name)
            except KeyError:
                continue
        raise KeyError(f"no block named {name!r} under {self.name!r}")

"""Synthetic technology substrate.

The paper synthesizes both delay-line schemes with Synopsys Design Compiler
against the Intel 32 nm standard-cell library and reports post-synthesis area
and post-APR delays.  Neither the tools nor the library are available, so this
package provides a behavioural substitute:

* :mod:`repro.technology.corners` -- process corners and operating conditions
  with the 4x fast/slow spread the paper quotes (buffer delay 20 ps in the fast
  corner, 80 ps in the slow corner).
* :mod:`repro.technology.cells` -- standard-cell models (area, delay, leakage,
  input capacitance) for the handful of cells the delay lines elaborate to.
* :mod:`repro.technology.library` -- a calibrated "32 nm-class" library whose
  relative cell areas reproduce the paper's area distributions.
* :mod:`repro.technology.variation` -- systematic + random per-instance
  mismatch and placement gradients used for post-APR linearity analysis,
  plus the Cholesky-based correlated component-variation model.
* :mod:`repro.technology.thermal` -- mission-scale temperature traces and
  first-order electrical derating for temperature-drift Monte-Carlo.
* :mod:`repro.technology.netlist` -- structural netlists (cell-count views of a
  synthesized block).
* :mod:`repro.technology.synthesis` -- the structural "synthesizer" that turns
  a netlist into an area report with a per-block distribution (the Table 5 /
  Table 6 substitute).
"""

from repro.technology.cells import CellKind, StandardCell
from repro.technology.corners import (
    OperatingConditions,
    ProcessCorner,
    TemperatureGrade,
)
from repro.technology.library import TechnologyLibrary, intel32_like_library
from repro.technology.netlist import CellInstanceGroup, Netlist
from repro.technology.synthesis import AreaReport, BlockArea, Synthesizer
from repro.technology.thermal import TemperatureTrace, ThermalDerating
from repro.technology.variation import (
    BatchVariationSample,
    CorrelatedVariationModel,
    VariationModel,
    VariationSample,
)

__all__ = [
    "AreaReport",
    "BatchVariationSample",
    "BlockArea",
    "CellInstanceGroup",
    "CellKind",
    "CorrelatedVariationModel",
    "Netlist",
    "OperatingConditions",
    "ProcessCorner",
    "StandardCell",
    "Synthesizer",
    "TechnologyLibrary",
    "TemperatureGrade",
    "TemperatureTrace",
    "ThermalDerating",
    "VariationModel",
    "VariationSample",
    "intel32_like_library",
]

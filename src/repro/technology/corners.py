"""Process corners and operating conditions.

The paper (section 3.1) states that for the Intel 32 nm technology the delay
spread between the fast and the slow corner is a factor of 4: a cell with
typical delay ``d`` has delay ``d/2`` at the fast corner and ``2d`` at the slow
corner.  The design example in section 4.2 pins the buffer delay to 20 ps at
the fast corner and 80 ps at the slow corner, i.e. 40 ps typical.

On top of the process corner the delay is derated for temperature and supply
voltage.  The paper only needs qualitative behaviour here (temperature drift is
the reason the calibration runs continuously; voltage spikes are absorbed by
the calibration while high-frequency supply noise is filtered by bulk
capacitors), so the derating model is a simple, monotonic first-order model:

* delay increases with temperature (``+0.1 % / degC`` around 25 degC), and
* delay decreases with supply voltage (``-0.8 %`` per 1 % of overdrive above
  the nominal 1.0 V).

These coefficients are representative of planar 32 nm CMOS behaviour and are
only used to exercise the calibration loop, never to claim absolute accuracy.
"""

from __future__ import annotations

import enum
from collections.abc import Iterator
from dataclasses import dataclass, field

__all__ = [
    "ProcessCorner",
    "TemperatureGrade",
    "OperatingConditions",
    "NOMINAL_VDD_V",
    "NOMINAL_TEMPERATURE_C",
    "TEMPERATURE_COEFFICIENT_PER_C",
    "VOLTAGE_COEFFICIENT",
]


#: Nominal supply voltage of the synthetic 32 nm-class library (volts).
NOMINAL_VDD_V = 1.0

#: Nominal (characterization) temperature (Celsius).
NOMINAL_TEMPERATURE_C = 25.0

#: Relative delay increase per degree Celsius above nominal.
TEMPERATURE_COEFFICIENT_PER_C = 0.001

#: Relative delay decrease per unit of relative supply overdrive.
VOLTAGE_COEFFICIENT = 0.8


class ProcessCorner(enum.Enum):
    """Process corner of the synthetic technology.

    The enum value is the delay multiplier relative to the typical corner,
    matching the paper's 4x fast-to-slow spread.
    """

    FAST = 0.5
    TYPICAL = 1.0
    SLOW = 2.0

    @property
    def delay_scale(self) -> float:
        """Delay multiplier applied to the typical-corner delay."""
        return float(self.value)

    @classmethod
    def from_name(cls, name: str) -> "ProcessCorner":
        """Look a corner up by a case-insensitive name.

        Raises:
            ValueError: if the name does not identify a corner.
        """
        normalized = name.strip().upper()
        try:
            return cls[normalized]
        except KeyError as exc:
            valid = ", ".join(corner.name for corner in cls)
            raise ValueError(
                f"unknown process corner {name!r}; expected one of: {valid}"
            ) from exc


class TemperatureGrade(enum.Enum):
    """Convenient named operating temperatures (Celsius)."""

    COLD = -40.0
    ROOM = 25.0
    HOT = 85.0
    JUNCTION_MAX = 110.0

    @property
    def celsius(self) -> float:
        return float(self.value)


@dataclass(frozen=True)
class OperatingConditions:
    """A full PVT operating point.

    Attributes:
        corner: the process corner.
        temperature_c: junction temperature in Celsius.
        vdd_v: supply voltage in volts.
    """

    corner: ProcessCorner = ProcessCorner.TYPICAL
    temperature_c: float = NOMINAL_TEMPERATURE_C
    vdd_v: float = NOMINAL_VDD_V

    def __post_init__(self) -> None:
        if self.vdd_v <= 0:
            raise ValueError(f"supply voltage must be positive, got {self.vdd_v}")
        if not -55.0 <= self.temperature_c <= 150.0:
            raise ValueError(
                "temperature out of supported range [-55, 150] C: "
                f"{self.temperature_c}"
            )

    @property
    def delay_scale(self) -> float:
        """Total delay multiplier for this operating point.

        The multiplier combines the process-corner scale with first-order
        temperature and voltage derating.  It is guaranteed positive.
        """
        scale = self.corner.delay_scale
        scale *= 1.0 + TEMPERATURE_COEFFICIENT_PER_C * (
            self.temperature_c - NOMINAL_TEMPERATURE_C
        )
        overdrive = (self.vdd_v - NOMINAL_VDD_V) / NOMINAL_VDD_V
        scale *= max(0.05, 1.0 - VOLTAGE_COEFFICIENT * overdrive)
        return max(scale, 1e-6)

    def with_corner(self, corner: ProcessCorner) -> "OperatingConditions":
        """Return a copy of these conditions at a different process corner."""
        return OperatingConditions(
            corner=corner, temperature_c=self.temperature_c, vdd_v=self.vdd_v
        )

    def with_temperature(self, temperature_c: float) -> "OperatingConditions":
        """Return a copy of these conditions at a different temperature."""
        return OperatingConditions(
            corner=self.corner, temperature_c=temperature_c, vdd_v=self.vdd_v
        )

    def with_vdd(self, vdd_v: float) -> "OperatingConditions":
        """Return a copy of these conditions at a different supply voltage."""
        return OperatingConditions(
            corner=self.corner, temperature_c=self.temperature_c, vdd_v=vdd_v
        )

    @classmethod
    def typical(cls) -> "OperatingConditions":
        """Nominal PVT: typical corner, 25 C, 1.0 V."""
        return cls()

    @classmethod
    def fast(cls) -> "OperatingConditions":
        """Fast process corner at nominal temperature and voltage."""
        return cls(corner=ProcessCorner.FAST)

    @classmethod
    def slow(cls) -> "OperatingConditions":
        """Slow process corner at nominal temperature and voltage."""
        return cls(corner=ProcessCorner.SLOW)

    @classmethod
    def all_corners(cls) -> tuple["OperatingConditions", ...]:
        """The three process corners at nominal temperature and voltage."""
        return (cls.fast(), cls.typical(), cls.slow())


@dataclass
class OperatingPointSweep:
    """A sweep over operating conditions, used by calibration experiments.

    The sweep iterates corners x temperatures x voltages in a deterministic
    order, which keeps experiment output stable across runs.
    """

    corners: tuple[ProcessCorner, ...] = (
        ProcessCorner.FAST,
        ProcessCorner.TYPICAL,
        ProcessCorner.SLOW,
    )
    temperatures_c: tuple[float, ...] = (NOMINAL_TEMPERATURE_C,)
    vdds_v: tuple[float, ...] = (NOMINAL_VDD_V,)
    points: list[OperatingConditions] = field(init=False)

    def __post_init__(self) -> None:
        self.points = [
            OperatingConditions(corner=corner, temperature_c=temp, vdd_v=vdd)
            for corner in self.corners
            for temp in self.temperatures_c
            for vdd in self.vdds_v
        ]

    def __iter__(self) -> Iterator[OperatingConditions]:
        return iter(self.points)

    def __len__(self) -> int:
        return len(self.points)

"""The structural synthesizer: netlist -> area report.

This module is the repository's substitute for Synopsys Design Compiler.  The
paper's evaluation consists of post-synthesis *area* numbers and per-block area
distributions (Tables 5 and 6); both are pure functions of the gate counts of
each block and of the standard-cell areas.  The :class:`Synthesizer` therefore
takes a hierarchical :class:`~repro.technology.netlist.Netlist` and a
:class:`~repro.technology.library.TechnologyLibrary` and produces an
:class:`AreaReport` whose layout mirrors the paper's tables: total area plus a
percentage breakdown over the top-level blocks.

It also exposes leakage and switched-capacitance roll-ups so the power model
(paper eq. 14) can be evaluated on the same netlists.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.technology.library import TechnologyLibrary
from repro.technology.netlist import Netlist

__all__ = ["BlockArea", "AreaReport", "Synthesizer"]


@dataclass(frozen=True)
class BlockArea:
    """Area contribution of one top-level block.

    Attributes:
        name: block name as it appears in the report.
        area_um2: block area in um^2 (cells only; no routing overhead).
        fraction: block area divided by the design total (0..1).
        instances: number of cell instances in the block.
    """

    name: str
    area_um2: float
    fraction: float
    instances: int


@dataclass
class AreaReport:
    """Post-synthesis area report of one design.

    Attributes:
        design: design (top netlist) name.
        total_area_um2: sum of all cell areas.
        blocks: per-top-level-block breakdown, in netlist order.
        total_instances: total cell instances.
        total_leakage_nw: summed cell leakage.
        total_switched_capacitance_ff: summed input capacitance, the
            ``C_total`` of the paper's dynamic-power equation (eq. 14).
    """

    design: str
    total_area_um2: float
    blocks: list[BlockArea] = field(default_factory=list)
    total_instances: int = 0
    total_leakage_nw: float = 0.0
    total_switched_capacitance_ff: float = 0.0

    def block(self, name: str) -> BlockArea:
        """Look up a block by name.

        Raises:
            KeyError: if the report has no block with that name.
        """
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError(f"report for {self.design!r} has no block {name!r}")

    def distribution(self) -> dict[str, float]:
        """Mapping block name -> percentage of total area (0..100)."""
        return {block.name: 100.0 * block.fraction for block in self.blocks}

    def format(self) -> str:
        """Render the report as a paper-style text table."""
        lines = [
            f"Design: {self.design}",
            f"Total area (um^2): {self.total_area_um2:.1f}",
            f"Total cell instances: {self.total_instances}",
            "Area distribution:",
        ]
        for block in self.blocks:
            lines.append(
                f"  {block.name:<18s} {100.0 * block.fraction:5.1f} %"
                f"  ({block.area_um2:8.1f} um^2, {block.instances} cells)"
            )
        return "\n".join(lines)


@dataclass
class Synthesizer:
    """Maps structural netlists onto a technology library.

    Attributes:
        library: the standard-cell library to use.
        utilization: placement utilization factor applied to the raw cell
            area.  The default of 1.0 reports pure cell area, matching the
            way the paper quotes synthesis areas; a lower value can be used
            to estimate the placed-and-routed footprint.
    """

    library: TechnologyLibrary
    utilization: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.utilization <= 1.0:
            raise ValueError(
                f"utilization must be in (0, 1], got {self.utilization}"
            )

    def block_area_um2(self, netlist: Netlist) -> float:
        """Cell area of a (sub-)netlist including its children."""
        counts = netlist.cell_counts()
        return sum(
            self.library.area(kind) * count for kind, count in counts.items()
        )

    def synthesize(self, netlist: Netlist) -> AreaReport:
        """Produce the area report for a top-level netlist.

        The report's block breakdown covers the top-level children of the
        netlist; cells placed directly at the top level are grouped under a
        pseudo-block named ``"Top"``.
        """
        blocks: list[tuple[str, float, int]] = []
        if netlist.groups:
            top_only = Netlist(name="Top", groups=list(netlist.groups))
            blocks.append(
                ("Top", self.block_area_um2(top_only), top_only.total_instances())
            )
        for child in netlist.children:
            blocks.append(
                (child.name, self.block_area_um2(child), child.total_instances())
            )

        raw_total = sum(area for _, area, _ in blocks)
        effective_total = raw_total / self.utilization if raw_total else 0.0

        block_reports = [
            BlockArea(
                name=name,
                area_um2=area,
                fraction=(area / raw_total) if raw_total else 0.0,
                instances=instances,
            )
            for name, area, instances in blocks
        ]

        counts = netlist.cell_counts()
        leakage = sum(
            self.library.leakage_nw(kind) * count for kind, count in counts.items()
        )
        capacitance = sum(
            self.library.input_capacitance_ff(kind) * count
            for kind, count in counts.items()
        )
        return AreaReport(
            design=netlist.name,
            total_area_um2=effective_total,
            blocks=block_reports,
            total_instances=netlist.total_instances(),
            total_leakage_nw=leakage,
            total_switched_capacitance_ff=capacitance,
        )

"""The calibrated 32 nm-class standard-cell library.

The absolute areas of the cells below are calibrated so that the structural
synthesizer (:mod:`repro.technology.synthesis`) applied to the elaborated
netlists of the two delay-line schemes reproduces the paper's post-synthesis
area numbers:

* Table 5 (100 MHz): proposed scheme 1337 um^2, conventional scheme 2330 um^2,
  with the reported per-block area distribution.
* Table 6 (proposed scheme at 50/100/200 MHz): 1675 / 1337 / 1172 um^2.

The calibration anchors are the three dominant cells:

* ``BUF_X1`` (delay element building block) at 0.645 um^2 -- fixed by the
  proposed delay line block, which is exactly 512 buffers at 100 MHz and
  contributes 24.7 % of 1337 um^2.
* ``MUX2_X1`` at 0.781 um^2 -- fixed by the 256:1 output multiplexer (255
  2:1 muxes) contributing 14.9 % of 1337 um^2.
* ``DFF_X1`` at 8.2 um^2 -- fixed by the conventional controller, which is
  dominated by the 129-bit shift register and contributes 46.6 % of 2330 um^2.

Buffer delay follows the paper's design example: 20 ps at the fast corner and
80 ps at the slow corner, i.e. 40 ps typical with the 0.5x / 2x corner scaling
of :class:`repro.technology.corners.ProcessCorner`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.technology.cells import CellKind, StandardCell
from repro.technology.corners import OperatingConditions

__all__ = ["TechnologyLibrary", "intel32_like_library"]


@dataclass
class TechnologyLibrary:
    """A collection of characterized standard cells.

    Attributes:
        name: library name used in reports.
        feature_size_nm: nominal feature size (informational).
        cells: mapping from :class:`CellKind` to its characterization.
    """

    name: str
    feature_size_nm: float
    cells: dict[CellKind, StandardCell] = field(default_factory=dict)

    def add_cell(self, cell: StandardCell) -> None:
        """Register a cell, replacing any previous cell of the same kind."""
        self.cells[cell.kind] = cell

    def cell(self, kind: CellKind) -> StandardCell:
        """Look up the characterization of a cell kind.

        Raises:
            KeyError: if the library has no cell of that kind.
        """
        try:
            return self.cells[kind]
        except KeyError as exc:
            raise KeyError(
                f"library {self.name!r} has no cell of kind {kind.value!r}"
            ) from exc

    def area(self, kind: CellKind) -> float:
        """Area (um^2) of a cell kind."""
        return self.cell(kind).area_um2

    def delay(self, kind: CellKind, conditions: OperatingConditions) -> float:
        """Propagation delay (ps) of a cell kind at the given conditions."""
        return self.cell(kind).delay_at(conditions)

    def buffer_delay_ps(self, conditions: OperatingConditions) -> float:
        """Delay of the unit buffer (the delay-line building block), in ps."""
        return self.delay(CellKind.BUFFER, conditions)

    def leakage_nw(self, kind: CellKind) -> float:
        """Leakage (nW) of a cell kind at nominal conditions."""
        return self.cell(kind).leakage_nw

    def input_capacitance_ff(self, kind: CellKind) -> float:
        """Input capacitance (fF) of a cell kind."""
        return self.cell(kind).input_capacitance_ff

    def __contains__(self, kind: CellKind) -> bool:
        return kind in self.cells

    def __len__(self) -> int:
        return len(self.cells)


def intel32_like_library() -> TechnologyLibrary:
    """Build the calibrated 32 nm-class library used throughout the repo.

    Returns a fresh :class:`TechnologyLibrary`; callers may mutate their copy
    (e.g. to model a different technology) without affecting other users.
    """
    library = TechnologyLibrary(name="intel32-like", feature_size_nm=32.0)
    definitions = [
        # kind, name, area um^2, typical delay ps, leakage nW, input cap fF
        (CellKind.BUFFER, "BUF_X1", 0.645, 40.0, 1.5, 0.90),
        (CellKind.INVERTER, "INV_X1", 0.322, 20.0, 0.8, 0.45),
        (CellKind.MUX2, "MUX2_X1", 0.781, 35.0, 1.8, 1.20),
        (CellKind.DFF, "DFF_X1", 8.200, 90.0, 6.0, 1.80),
        (CellKind.NAND2, "NAND2_X1", 0.420, 22.0, 0.9, 0.70),
        (CellKind.NOR2, "NOR2_X1", 0.420, 26.0, 0.9, 0.70),
        (CellKind.AND2, "AND2_X1", 0.740, 32.0, 1.1, 0.75),
        (CellKind.OR2, "OR2_X1", 0.740, 34.0, 1.1, 0.75),
        (CellKind.XOR2, "XOR2_X1", 1.100, 45.0, 1.6, 1.30),
        (CellKind.HALF_ADDER, "HA_X1", 1.400, 55.0, 2.0, 1.60),
        (CellKind.FULL_ADDER, "FA_X1", 2.500, 75.0, 3.2, 2.40),
    ]
    for kind, name, area, delay, leakage, cap in definitions:
        library.add_cell(
            StandardCell(
                kind=kind,
                name=name,
                area_um2=area,
                delay_ps=delay,
                leakage_nw=leakage,
                input_capacitance_ff=cap,
            )
        )
    return library

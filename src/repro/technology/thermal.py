"""Temperature drift across a mission: traces and electrical derating.

The corner model (:mod:`repro.technology.corners`) already makes the
silicon temperature-aware -- :meth:`OperatingConditions.delay_scale
<repro.technology.corners.OperatingConditions.delay_scale>` folds a linear
temperature coefficient into every delay -- but it describes *one*
operating point.  A mission sweeps through operating points: the die heats
under a heavy leg and cools under a light one, dragging both the DPWM
delays and the power-stage electricals with it.  This module supplies the
two pieces the pipeline threads through a mission:

* :class:`TemperatureTrace` -- a piecewise-constant junction-temperature
  schedule over the switching periods of a run.  The pipeline re-locks the
  fabricated ensemble at each epoch's temperature (through the existing
  corner model, so corner-dependent delays move exactly as a static run at
  that temperature would) and splits the closed-loop run at the epoch
  boundaries with exact state carry-over.
* :class:`ThermalDerating` -- first-order temperature coefficients for the
  electrical components: winding/switch resistances rise with temperature,
  ceramic output capacitance falls.  At the nominal 25 degC the derating
  factors are exactly ``1.0``, so an all-nominal trace reproduces the
  untraced run bit for bit -- the identity contract the golden-output
  gate of ``tests/test_golden_outputs.py`` rests on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.technology.corners import NOMINAL_TEMPERATURE_C

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (batch is downstream)
    from repro.simulation.batch import BatchBuckParameters

__all__ = ["TemperatureTrace", "ThermalDerating"]


@dataclass(frozen=True)
class TemperatureTrace:
    """Piecewise-constant junction temperature over a run's periods.

    Attributes:
        temperatures_c: per-epoch junction temperatures, in the corner
            model's validated range (-55 to 150 degC).
        durations_periods: per-epoch durations in switching periods (one
            entry per temperature, each >= 1).  A run longer than the
            trace holds the final temperature; a shorter run truncates it.
    """

    temperatures_c: tuple[float, ...]
    durations_periods: tuple[int, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.temperatures_c, tuple):
            object.__setattr__(
                self, "temperatures_c", tuple(self.temperatures_c)
            )
        if not isinstance(self.durations_periods, tuple):
            object.__setattr__(
                self, "durations_periods", tuple(self.durations_periods)
            )
        if not self.temperatures_c:
            raise ValueError("temperature trace needs at least one epoch")
        if len(self.temperatures_c) != len(self.durations_periods):
            raise ValueError(
                "need one duration per temperature: got "
                f"{len(self.temperatures_c)} temperatures and "
                f"{len(self.durations_periods)} durations"
            )
        for temperature in self.temperatures_c:
            if not math.isfinite(temperature):
                raise ValueError(f"temperatures must be finite; got {temperature}")
            if not -55.0 <= temperature <= 150.0:
                raise ValueError(
                    "temperatures must lie in the corner model's validated "
                    f"range [-55, 150] degC; got {temperature}"
                )
        for duration in self.durations_periods:
            if duration < 1:
                raise ValueError(
                    f"epoch durations must be >= 1 period; got {duration}"
                )

    @classmethod
    def constant(cls, temperature_c: float) -> "TemperatureTrace":
        """A trace holding one temperature for the whole run."""
        return cls(temperatures_c=(temperature_c,), durations_periods=(1,))

    @property
    def total_periods(self) -> int:
        return sum(self.durations_periods)

    def temperature_at(self, period_index: int) -> float:
        """Junction temperature of one period (the last epoch holds)."""
        if period_index < 0:
            raise ValueError(
                f"period index must be non-negative; got {period_index}"
            )
        elapsed = 0
        for temperature, duration in zip(
            self.temperatures_c, self.durations_periods
        ):
            elapsed += duration
            if period_index < elapsed:
                return temperature
        return self.temperatures_c[-1]

    def epochs(self, periods: int) -> list[tuple[int, int, float]]:
        """``(start, end, temperature_c)`` epochs tiling ``[0, periods)``.

        Epochs are clipped to the run length; when the run outlives the
        trace, the final epoch is extended to cover the overhang (the last
        temperature holds), so the returned windows always partition the
        run exactly.
        """
        if periods < 1:
            raise ValueError(f"periods must be >= 1; got {periods}")
        epochs: list[tuple[int, int, float]] = []
        start = 0
        for temperature, duration in zip(
            self.temperatures_c, self.durations_periods
        ):
            if start >= periods:
                break
            end = min(start + duration, periods)
            epochs.append((start, end, temperature))
            start = end
        if start < periods:
            last_start, _, last_temperature = epochs[-1]
            epochs[-1] = (last_start, periods, last_temperature)
        return epochs


@dataclass(frozen=True)
class ThermalDerating:
    """First-order temperature derating of the power-stage electricals.

    Each affected parameter is scaled by ``1 + tempco * (T - 25 degC)``:
    the switch and inductor resistances rise with temperature (copper and
    on-resistance tempcos), the output capacitance falls (class II ceramic
    behaviour).  At exactly the nominal temperature every factor is
    ``1.0`` and :meth:`derate` is a bitwise identity -- multiplying a
    float by 1.0 reproduces it exactly -- which is what keeps a
    25 degC-only trace byte-identical to an untraced run.

    Attributes:
        resistance_tempco_per_c: relative resistance change per degC
            (default 0.4 %/degC, the copper resistivity slope).
        capacitance_tempco_per_c: relative capacitance change per degC
            (default -0.05 %/degC, a mild X7R-like slope).
        reference_c: the temperature at which no derating applies.
    """

    resistance_tempco_per_c: float = 0.004
    capacitance_tempco_per_c: float = -0.0005
    reference_c: float = NOMINAL_TEMPERATURE_C

    def __post_init__(self) -> None:
        for name in ("resistance_tempco_per_c", "capacitance_tempco_per_c"):
            if not math.isfinite(getattr(self, name)):
                raise ValueError(f"{name} must be finite")
        if not math.isfinite(self.reference_c):
            raise ValueError("reference_c must be finite")

    def resistance_factor(self, temperature_c: float) -> float:
        """Multiplier on the resistances at a junction temperature."""
        return self._factor(self.resistance_tempco_per_c, temperature_c)

    def capacitance_factor(self, temperature_c: float) -> float:
        """Multiplier on the output capacitance at a junction temperature."""
        return self._factor(self.capacitance_tempco_per_c, temperature_c)

    def _factor(self, tempco: float, temperature_c: float) -> float:
        factor = 1.0 + tempco * (temperature_c - self.reference_c)
        if factor <= 0.0:
            raise ValueError(
                f"derating factor must stay positive; tempco {tempco} at "
                f"{temperature_c} degC gives {factor}"
            )
        return factor

    def derate(
        self, parameters: "BatchBuckParameters", temperature_c: float
    ) -> "BatchBuckParameters":
        """Batch parameters with the temperature's derating applied.

        At the reference temperature both factors are exactly ``1.0`` and
        the returned arrays are bitwise equal to the inputs.
        """
        from repro.simulation.batch import BatchBuckParameters

        resistance = self.resistance_factor(temperature_c)
        capacitance = self.capacitance_factor(temperature_c)
        return BatchBuckParameters(
            input_voltage_v=parameters.input_voltage_v,
            inductance_h=parameters.inductance_h,
            capacitance_f=parameters.capacitance_f * capacitance,
            switching_frequency_hz=parameters.switching_frequency_hz,
            switch_resistance_ohm=parameters.switch_resistance_ohm * resistance,
            inductor_resistance_ohm=parameters.inductor_resistance_ohm
            * resistance,
        )

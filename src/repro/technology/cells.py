"""Standard-cell models for the synthetic 32 nm-class library.

The delay-line architectures elaborate to a small set of cells: buffers (the
delay elements), 2:1 multiplexers (the building block of the tap-selection
multiplexers and of the tunable-cell branch selectors), D flip-flops (the
controllers, shift register, and metastability synchronizers), and a small
amount of glue logic (the comparator in the counter DPWM, the adder/shifter in
the mapping block).

Each cell carries:

* ``area_um2`` -- layout area in square micrometres.  The values are calibrated
  so that the structural synthesizer reproduces the paper's Table 5 / Table 6
  area distributions (see :mod:`repro.technology.library`).
* ``delay_ps`` -- typical-corner propagation delay in picoseconds.
* ``leakage_nw`` -- leakage power in nanowatts, used by the power model.
* ``input_capacitance_ff`` -- input capacitance in femtofarads, used by the
  dynamic-power model (paper eq. 14).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.technology.corners import OperatingConditions

__all__ = ["CellKind", "StandardCell"]


class CellKind(enum.Enum):
    """The kinds of cells the architectures elaborate to."""

    BUFFER = "buf"
    INVERTER = "inv"
    DFF = "dff"
    MUX2 = "mux2"
    NAND2 = "nand2"
    NOR2 = "nor2"
    XOR2 = "xor2"
    AND2 = "and2"
    OR2 = "or2"
    FULL_ADDER = "fa"
    HALF_ADDER = "ha"


@dataclass(frozen=True)
class StandardCell:
    """A single standard cell characterization.

    Attributes:
        kind: the logical function of the cell.
        name: library cell name (for reports).
        area_um2: layout area in um^2.
        delay_ps: typical-corner propagation delay in ps.
        leakage_nw: leakage power in nW at nominal conditions.
        input_capacitance_ff: input pin capacitance in fF.
    """

    kind: CellKind
    name: str
    area_um2: float
    delay_ps: float
    leakage_nw: float
    input_capacitance_ff: float

    def __post_init__(self) -> None:
        if self.area_um2 <= 0:
            raise ValueError(f"cell {self.name}: area must be positive")
        if self.delay_ps < 0:
            raise ValueError(f"cell {self.name}: delay must be non-negative")
        if self.leakage_nw < 0:
            raise ValueError(f"cell {self.name}: leakage must be non-negative")
        if self.input_capacitance_ff < 0:
            raise ValueError(
                f"cell {self.name}: input capacitance must be non-negative"
            )

    def delay_at(self, conditions: OperatingConditions) -> float:
        """Propagation delay (ps) at the given PVT operating point."""
        return self.delay_ps * conditions.delay_scale

    def switching_energy_fj(self, vdd_v: float) -> float:
        """Energy (fJ) of one output transition: ``C * Vdd^2``.

        The input capacitance is used as the switched-capacitance proxy; the
        paper's eq. 14 works from a lumped total switched capacitance, which
        the power model assembles by summing this quantity over the netlist.
        """
        return self.input_capacitance_ff * vdd_v * vdd_v

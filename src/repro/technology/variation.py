"""Process-variation models for post-APR behaviour.

The paper's linearity plots (Figures 50 and 51) are measured after Automatic
Placement and Routing, so identical cells no longer have identical delays:
random device mismatch and placement/routing differences perturb each cell.
The paper also notes (section 4.3) that lower-frequency configurations are more
linear because each delay cell combines more buffers, so random per-buffer
variation partially averages out -- an effect this model reproduces naturally
because mismatch is sampled per *buffer*, not per cell.

Two variation components are modelled:

* **random mismatch** -- i.i.d. Gaussian multiplier per buffer instance with a
  configurable relative sigma (default 4 %, representative of a 32 nm buffer).
* **placement gradient** -- a slowly varying systematic component along the
  placed delay line (default 1.5 % peak), modelling the supply/temperature
  gradient across the placed row that the paper warns about ("delay line cells
  should be placed beside each other carefully").

All sampling is performed with an explicit seed so experiments and tests are
deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "BatchVariationSample",
    "CorrelatedVariationModel",
    "VariationModel",
    "VariationSample",
]


@dataclass(frozen=True, eq=False)
class CorrelatedVariationModel:
    """User-declared correlation structure across component parameters.

    The IID component draws of
    :class:`~repro.core.yield_analysis.ComponentVariation` treat every
    spread axis as independent, but real spreads are not: passives from one
    reel track each other, the two parasitic resistances share the same
    copper lot, supply and thermal gradients couple everything.  This model
    declares the coupling as a correlation matrix over the standard-normal
    draws *before* their per-axis transforms (log-normal for the passives,
    relative normal for the resistances), and realizes it by the Cholesky
    factorization: a vector of IID standard normals ``z`` becomes ``L z``
    with ``L L^T = matrix``, which has exactly the declared correlations.

    The identity matrix factors to the identity ``L``, and the drawing
    paths branch to the verbatim IID code in that case, so declaring "no
    correlation" reproduces the current model bit for bit -- the contract
    ``tests/test_mc_statistics.py`` pins and the vanilla experiments'
    golden outputs rely on.

    Attributes:
        matrix: the correlation matrix -- square, symmetric, unit diagonal
            and positive semi-definite (validated by attempting the
            Cholesky factorization; a non-PSD matrix raises
            :class:`ValueError`).
    """

    matrix: np.ndarray

    def __post_init__(self) -> None:
        matrix = np.asarray(self.matrix, dtype=float)
        object.__setattr__(self, "matrix", matrix)
        if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
            raise ValueError(
                f"correlation matrix must be square; got shape {matrix.shape}"
            )
        if matrix.shape[0] < 1:
            raise ValueError("correlation matrix must be at least 1x1")
        if not np.all(np.isfinite(matrix)):
            raise ValueError("correlation matrix entries must be finite")
        if not np.allclose(matrix, matrix.T, atol=1e-12):
            raise ValueError("correlation matrix must be symmetric")
        if not np.allclose(np.diagonal(matrix), 1.0, atol=1e-12):
            raise ValueError("correlation matrix must have a unit diagonal")
        try:
            cholesky = np.linalg.cholesky(matrix)
        except np.linalg.LinAlgError as error:
            raise ValueError(
                "correlation matrix must be positive semi-definite (its "
                "Cholesky factorization failed); check the off-diagonal "
                "entries for an impossible correlation pattern"
            ) from error
        object.__setattr__(self, "_cholesky", cholesky)

    @classmethod
    def identity(cls, dimension: int) -> "CorrelatedVariationModel":
        """The no-correlation model over ``dimension`` axes."""
        return cls(matrix=np.eye(dimension))

    @property
    def dimension(self) -> int:
        return int(self.matrix.shape[0])

    def is_identity(self) -> bool:
        """True when the declared correlations leave the draws IID."""
        return bool(np.array_equal(self.matrix, np.eye(self.dimension)))

    def cholesky(self) -> np.ndarray:
        """The lower-triangular factor ``L`` with ``L L^T == matrix``."""
        factor: np.ndarray = getattr(self, "_cholesky")
        return factor

    def correlate(self, z: np.ndarray) -> np.ndarray:
        """Correlated draws ``L z`` from IID standard-normal draws.

        ``z`` is either one draw vector of shape ``(dimension,)`` or a
        stacked matrix of shape ``(dimension, count)``; the correlated
        result has the same shape.
        """
        z = np.asarray(z, dtype=float)
        if z.shape[0] != self.dimension:
            raise ValueError(
                f"draw vector spans {z.shape[0]} axes, the correlation "
                f"matrix {self.dimension}"
            )
        result: np.ndarray = self.cholesky() @ z
        return result


@dataclass(frozen=True)
class VariationSample:
    """Per-buffer delay multipliers for one fabricated instance of a line.

    Attributes:
        multipliers: array of shape ``(num_cells, buffers_per_cell)`` holding
            the positive delay multiplier of every buffer.
    """

    multipliers: np.ndarray

    @property
    def num_cells(self) -> int:
        return int(self.multipliers.shape[0])

    @property
    def buffers_per_cell(self) -> int:
        return int(self.multipliers.shape[1])

    def cell_multipliers(self) -> np.ndarray:
        """Mean multiplier per cell (averaging over the buffers in the cell)."""
        return self.multipliers.mean(axis=1)

    def cell_delays_ps(self, buffer_delay_ps: float) -> np.ndarray:
        """Per-cell delay (ps) given the nominal per-buffer delay."""
        return self.multipliers.sum(axis=1) * buffer_delay_ps


@dataclass(frozen=True)
class BatchVariationSample:
    """Per-buffer delay multipliers for a whole ensemble of fabricated lines.

    Attributes:
        multipliers: array of shape ``(instances, num_cells, buffers_per_cell)``
            holding the positive delay multiplier of every buffer of every
            instance.  Slice ``multipliers[i]`` is exactly the array a scalar
            :meth:`VariationModel.sample` call would have produced for
            instance ``i``, so ensemble computations and per-instance scalar
            computations see the *same* fabricated chips.
    """

    multipliers: np.ndarray

    def __post_init__(self) -> None:
        if self.multipliers.ndim != 3:
            raise ValueError(
                "batch multipliers must have shape "
                f"(instances, num_cells, buffers_per_cell); got {self.multipliers.shape}"
            )

    @property
    def num_instances(self) -> int:
        return int(self.multipliers.shape[0])

    @property
    def num_cells(self) -> int:
        return int(self.multipliers.shape[1])

    @property
    def buffers_per_cell(self) -> int:
        return int(self.multipliers.shape[2])

    def instance(self, index: int) -> VariationSample:
        """The scalar variation sample of one instance of the ensemble."""
        return VariationSample(multipliers=self.multipliers[index])

    @classmethod
    def from_samples(cls, samples: list[VariationSample]) -> "BatchVariationSample":
        """Stack scalar samples (all of the same shape) into a batch."""
        if not samples:
            raise ValueError("need at least one sample")
        return cls(multipliers=np.stack([sample.multipliers for sample in samples]))


@dataclass
class VariationModel:
    """Generator of per-instance delay variation.

    Attributes:
        random_sigma: relative sigma of the per-buffer random mismatch.
        gradient_peak: peak relative deviation of the systematic placement
            gradient across the line (0 disables the gradient).
        seed: RNG seed; every :meth:`sample` call derives an independent
            stream from it so repeated calls give different but reproducible
            instances.
    """

    random_sigma: float = 0.04
    gradient_peak: float = 0.015
    seed: int = 2012

    def __post_init__(self) -> None:
        if self.random_sigma < 0:
            raise ValueError("random_sigma must be non-negative")
        if self.gradient_peak < 0:
            raise ValueError("gradient_peak must be non-negative")

    @classmethod
    def ideal(cls) -> "VariationModel":
        """A variation model with no variation (pre-APR / ideal cells)."""
        return cls(random_sigma=0.0, gradient_peak=0.0, seed=0)

    def sample(
        self, num_cells: int, buffers_per_cell: int, instance: int = 0
    ) -> VariationSample:
        """Sample per-buffer multipliers for one fabricated line instance.

        Args:
            num_cells: number of delay cells in the line.
            buffers_per_cell: buffers combined in each cell.
            instance: index of the fabricated instance; different instances
                get independent random mismatch but share the model
                parameters.

        Returns:
            a :class:`VariationSample` with strictly positive multipliers.
        """
        if num_cells <= 0:
            raise ValueError("num_cells must be positive")
        if buffers_per_cell <= 0:
            raise ValueError("buffers_per_cell must be positive")
        rng = np.random.default_rng((self.seed, instance))
        random_part = rng.normal(
            loc=0.0,
            scale=self.random_sigma,
            size=(num_cells, buffers_per_cell),
        )
        gradient = self._placement_gradient(num_cells)
        multipliers = 1.0 + random_part + gradient[:, np.newaxis]
        # Delays cannot be negative or zero; clip far in the tail (beyond
        # 5 sigma for the default settings) to keep the model physical.
        np.clip(multipliers, 0.2, None, out=multipliers)
        return VariationSample(multipliers=multipliers)

    def sample_tilted(
        self,
        num_cells: int,
        buffers_per_cell: int,
        instance: int = 0,
        *,
        shift: float = 0.0,
        sigma_scale: float = 1.0,
    ) -> tuple[VariationSample, float]:
        """Sample one instance from a tilted mismatch distribution.

        Importance-sampling entry point: the per-buffer standard-normal
        mismatch draw ``z`` is replaced by ``shift + sigma_scale * z``
        (a mean shift in sigma units plus a variance inflation), pushing
        fabricated instances toward the failure region.  The returned
        log-likelihood ratio is ``log p(z') - log q(z')`` between the
        nominal standard normal and the tilted distribution, summed over
        all buffers -- exactly the correction factor self-normalized
        importance sampling needs to reweight results back to the
        nominal process.

        Stream contract: instance ``i``'s underlying standard-normal
        draw is the *same* draw :meth:`sample` consumes, so the identity
        tilt (``shift=0, sigma_scale=1``) reproduces :meth:`sample`
        bit-for-bit with a log-likelihood ratio of exactly zero.

        Args:
            num_cells / buffers_per_cell / instance: as in :meth:`sample`.
            shift: mean shift of the mismatch draw, in units of the
                standard-normal sigma (positive = slower buffers).
            sigma_scale: multiplier on the mismatch sigma (must be > 0);
                values > 1 widen the proposal, which keeps the weight
                distribution well behaved.

        Returns:
            ``(sample, log_likelihood_ratio)``.
        """
        if num_cells <= 0:
            raise ValueError("num_cells must be positive")
        if buffers_per_cell <= 0:
            raise ValueError("buffers_per_cell must be positive")
        if sigma_scale <= 0.0:
            raise ValueError(f"sigma_scale must be positive; got {sigma_scale}")
        rng = np.random.default_rng((self.seed, instance))
        z = rng.standard_normal(size=(num_cells, buffers_per_cell))
        tilted = shift + sigma_scale * z
        dimensions = num_cells * buffers_per_cell
        log_lr = (
            0.5 * float((z * z).sum())
            - 0.5 * float((tilted * tilted).sum())
            + dimensions * math.log(sigma_scale)
        )
        random_part = self.random_sigma * tilted
        gradient = self._placement_gradient(num_cells)
        multipliers = 1.0 + random_part + gradient[:, np.newaxis]
        np.clip(multipliers, 0.2, None, out=multipliers)
        return VariationSample(multipliers=multipliers), log_lr

    def sample_batch(
        self,
        num_instances: int,
        num_cells: int,
        buffers_per_cell: int,
        first_instance: int = 0,
    ) -> BatchVariationSample:
        """Sample per-buffer multipliers for a whole ensemble of instances.

        Instance ``i`` of the batch is drawn from the same per-instance
        stream as ``sample(..., instance=first_instance + i)``, so the batch
        is bit-identical to stacking scalar samples -- the contract the
        ensemble engine's batch-versus-scalar equivalence rests on.  (The
        stacking loop is over RNG streams only; all delay computation on the
        batch is vectorized.)
        """
        if num_instances < 1:
            raise ValueError("need at least one instance")
        return BatchVariationSample.from_samples(
            [
                self.sample(num_cells, buffers_per_cell, instance=first_instance + i)
                for i in range(num_instances)
            ]
        )

    def sample_batch_tilted(
        self,
        num_instances: int,
        num_cells: int,
        buffers_per_cell: int,
        first_instance: int = 0,
        *,
        shift: float = 0.0,
        sigma_scale: float = 1.0,
    ) -> tuple[BatchVariationSample, np.ndarray]:
        """Sample a tilted ensemble plus its per-instance log-likelihood ratios.

        Instance ``i`` of the batch matches
        ``sample_tilted(..., instance=first_instance + i, ...)`` exactly,
        preserving the chunk-stable seeding contract for tilted draws.

        Returns:
            ``(batch, log_likelihood_ratios)`` where the ratio array has
            shape ``(num_instances,)``.
        """
        if num_instances < 1:
            raise ValueError("need at least one instance")
        samples: list[VariationSample] = []
        log_lrs = np.empty(num_instances)
        for i in range(num_instances):
            sample, log_lr = self.sample_tilted(
                num_cells,
                buffers_per_cell,
                instance=first_instance + i,
                shift=shift,
                sigma_scale=sigma_scale,
            )
            samples.append(sample)
            log_lrs[i] = log_lr
        return BatchVariationSample.from_samples(samples), log_lrs

    def _placement_gradient(self, num_cells: int) -> np.ndarray:
        """Systematic slow gradient along the placed line."""
        if self.gradient_peak <= 0.0 or num_cells == 1:
            return np.zeros(num_cells)
        position = np.linspace(0.0, 1.0, num_cells)
        # Half a cosine period: cells at one end of the row are slightly
        # slower than cells at the other end.
        return self.gradient_peak * np.cos(np.pi * position)

"""Vectorized batch simulation engine for the digitally controlled buck.

The scalar closed loop (:class:`~repro.converter.closed_loop.DigitallyControlledBuck`)
advances one converter, one switching period at a time, in Python.  The
regulation experiments the paper builds on it -- Monte-Carlo yield sweeps,
DPWM-architecture comparisons, load-transient studies -- all run *fleets* of
independent converter variants through the same per-period control law, so
this module stacks N variants into numpy state arrays and advances all of
them simultaneously:

* :class:`BatchBuckParameters` -- stacked electrical parameters, one entry
  per variant (Monte-Carlo component draws, corner sweeps ...).
* :class:`BatchQuantizer` -- per-variant duty-word -> achieved-duty tables
  extracted from any scalar DPWM (ideal or calibrated delay line), applied
  with one fancy-indexing gather per period.
* :class:`BatchCompensator` -- the PID law of
  :class:`~repro.converter.compensator.PIDCompensator` on arrays.
* :class:`BatchClosedLoop` -- ADC + compensator + DPWM + power stage for all
  variants at once; each on/off interval uses the closed-form state-space
  update of :func:`~repro.converter.buck.exact_interval_coefficients`, so a
  whole switching period is a handful of vectorized operations instead of
  N x 128 Python iterations.
* :func:`from_closed_loops` -- lift a list of scalar loops into one batch
  run (the cross-validation path: the batch engine reproduces the scalar
  exact-stepper loop bit-for-bit on the control decisions).

Per-period quantities (reference, input voltage, load resistance) follow the
same scenario objects as the scalar loop (:mod:`repro.converter.load`), so
reference steps, line transients, ramps, pulse trains and random bursts all
work unchanged on whole fleets.

Example -- a three-variant fleet regulating 1.8 V down to 0.9 V behind an
ideal 6-bit DPWM, advanced 200 switching periods in one vectorized run:

    >>> import numpy as np
    >>> from repro.converter.buck import BuckParameters
    >>> from repro.simulation.batch import (
    ...     BatchBuckParameters, BatchClosedLoop, BatchQuantizer)
    >>> parameters = BatchBuckParameters.uniform(
    ...     BuckParameters(input_voltage_v=1.8), num_variants=3)
    >>> loop = BatchClosedLoop(
    ...     parameters, BatchQuantizer.ideal(bits=6, num_variants=3),
    ...     reference_v=0.9)
    >>> result = loop.run(200)
    >>> result.output_voltages_v.shape
    (200, 3)
    >>> bool(np.all(np.abs(result.steady_state_voltage_v() - 0.9) < 0.02))
    True
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence

import numpy as np
import numpy.typing as npt

from repro.converter.adc import WindowedADC
from repro.converter.buck import (
    BuckParameters,
    plant_matrix_entries,
)
from repro.converter.closed_loop import (
    DigitallyControlledBuck,
    DutyQuantizer,
    RegulationTrace,
    steady_state_tail,
    validate_reference_profile,
)
from repro.converter.load import (
    ConstantLoad,
    LoadProfile,
    ReferenceProfile,
    SourceProfile,
)
from repro.kernels import KernelBackend, get_backend

__all__ = [
    "BatchBuckParameters",
    "BatchQuantizer",
    "BatchCompensator",
    "BatchClosedLoop",
    "BatchRegulationResult",
    "from_closed_loops",
]


def _as_variant_array(
    value: npt.ArrayLike, num_variants: int, name: str
) -> np.ndarray:
    """Broadcast a scalar or (N,) sequence to a float array of length N."""
    array = np.asarray(value, dtype=float)
    if array.ndim == 0:
        array = np.full(num_variants, float(array))
    if array.shape != (num_variants,):
        raise ValueError(
            f"{name} must be a scalar or have shape ({num_variants},), "
            f"got shape {array.shape}"
        )
    return array


@dataclass
class BatchBuckParameters:
    """Electrical parameters of N independent buck converter variants.

    Every field is a float array of shape ``(num_variants,)``; scalars
    broadcast on construction.  Mirrors
    :class:`~repro.converter.buck.BuckParameters` field for field.
    """

    input_voltage_v: np.ndarray
    inductance_h: np.ndarray
    capacitance_f: np.ndarray
    switching_frequency_hz: np.ndarray
    switch_resistance_ohm: np.ndarray
    inductor_resistance_ohm: np.ndarray

    def __post_init__(self) -> None:
        arrays = [np.atleast_1d(np.asarray(getattr(self, name), dtype=float))
                  for name in self._field_names()]
        num_variants = max(array.shape[0] for array in arrays)
        for name in self._field_names():
            setattr(
                self, name, _as_variant_array(getattr(self, name), num_variants, name)
            )
        if np.any(self.input_voltage_v <= 0):
            raise ValueError("input voltages must be positive")
        if np.any(self.inductance_h <= 0) or np.any(self.capacitance_f <= 0):
            raise ValueError("L and C must be positive")
        if np.any(self.switching_frequency_hz <= 0):
            raise ValueError("switching frequencies must be positive")
        if np.any(self.switch_resistance_ohm < 0) or np.any(
            self.inductor_resistance_ohm < 0
        ):
            raise ValueError("parasitic resistances must be non-negative")

    @staticmethod
    def _field_names() -> tuple[str, ...]:
        return (
            "input_voltage_v",
            "inductance_h",
            "capacitance_f",
            "switching_frequency_hz",
            "switch_resistance_ohm",
            "inductor_resistance_ohm",
        )

    @property
    def num_variants(self) -> int:
        return self.input_voltage_v.shape[0]

    @property
    def switching_period_s(self) -> np.ndarray:
        return 1.0 / self.switching_frequency_hz

    @classmethod
    def from_parameters(
        cls, parameters: Sequence[BuckParameters]
    ) -> "BatchBuckParameters":
        """Stack a sequence of scalar parameter sets into one batch."""
        if not parameters:
            raise ValueError("need at least one parameter set")
        return cls(
            **{
                name: np.array([getattr(p, name) for p in parameters])
                for name in cls._field_names()
            }
        )

    @classmethod
    def uniform(cls, nominal: BuckParameters, num_variants: int) -> "BatchBuckParameters":
        """N identical copies of one nominal parameter set."""
        if num_variants < 1:
            raise ValueError("need at least one variant")
        return cls(
            **{
                name: np.full(num_variants, getattr(nominal, name))
                for name in cls._field_names()
            }
        )

    def variant(self, index: int) -> BuckParameters:
        """The scalar parameter set of one variant (for cross-validation)."""
        return BuckParameters(
            **{name: float(getattr(self, name)[index]) for name in self._field_names()}
        )


class TransferCurveMatrix(Protocol):
    """What :meth:`BatchQuantizer.from_ensemble` reads off an ensemble's
    transfer curves (:class:`~repro.core.ensemble.EnsembleTransferCurves`
    in practice)."""

    @property
    def input_words(self) -> np.ndarray:  # pragma: no cover - protocol
        ...

    @property
    def delays_ps(self) -> np.ndarray:  # pragma: no cover - protocol
        ...

    @property
    def clock_period_ps(self) -> float:  # pragma: no cover - protocol
        ...


class BatchQuantizer:
    """Vectorized duty quantizer backed by per-variant word -> duty tables.

    Both the ideal DPWM and the calibrated delay-line DPWMs quantize a duty
    command the same way (``word = round(command * 2**bits)`` clamped to the
    word range) and differ only in the duty each word *achieves*, so any
    scalar quantizer reduces to a lookup table of its
    ``duty_fraction(word)`` values.  ``levels`` has shape
    ``(num_variants, max_num_words)`` (a single row is shared by all
    variants); variants may have *different* resolutions -- pass per-variant
    ``num_words`` and pad the shorter rows -- which lets one batch compare
    DPWM architectures of unequal word width.
    """

    def __init__(
        self,
        levels: np.ndarray,
        num_variants: int | None = None,
        num_words: np.ndarray | None = None,
        kernels: KernelBackend | None = None,
    ) -> None:
        levels = np.atleast_2d(np.asarray(levels, dtype=float))
        if levels.shape[1] < 2:
            raise ValueError("need at least two duty words")
        if np.any(levels < 0.0) or np.any(levels > 1.0):
            raise ValueError("duty levels must lie in [0, 1]")
        if num_variants is None:
            num_variants = levels.shape[0]
        if levels.shape[0] == 1:
            levels = np.broadcast_to(levels, (num_variants, levels.shape[1]))
        if levels.shape[0] != num_variants:
            raise ValueError(
                f"levels rows ({levels.shape[0]}) do not match the "
                f"{num_variants} variants"
            )
        if num_words is None:
            num_words = np.full(levels.shape[0], levels.shape[1], dtype=np.int64)
        else:
            num_words = np.asarray(num_words, dtype=np.int64)
            if num_words.shape != (levels.shape[0],):
                raise ValueError("need one word count per levels row")
            if np.any(num_words < 2) or np.any(num_words > levels.shape[1]):
                raise ValueError("word counts must lie in [2, levels columns]")
        self.levels = levels
        self.num_variants = num_variants
        self.num_words = num_words
        self._rows = np.arange(num_variants, dtype=np.int64)
        # None means "inherit": BatchClosedLoop installs its backend, and a
        # standalone quantize() falls back to the process default.
        self.kernels = kernels

    @property
    def max_word(self) -> np.ndarray:
        """Per-variant top duty word."""
        return self.num_words - 1

    @classmethod
    def ideal(cls, bits: int, num_variants: int) -> "BatchQuantizer":
        """An ideal n-bit quantizer shared by all variants."""
        if bits < 1:
            raise ValueError("resolution must be at least 1 bit")
        levels = np.arange(1 << bits, dtype=float) / float(1 << bits)
        return cls(levels[np.newaxis, :], num_variants=num_variants)

    @classmethod
    def from_quantizers(cls, quantizers: Sequence[DutyQuantizer]) -> "BatchQuantizer":
        """Extract the word -> duty tables of scalar DPWM objects.

        Every quantizer must expose ``max_word`` / ``duty_fraction`` (the
        :class:`~repro.converter.closed_loop.DutyQuantizer` protocol); word
        widths may differ between quantizers.  Quantizers that expose their
        whole table in array form (a ``duty_table()`` method, as the ideal
        and calibrated delay-line DPWMs do) are copied in one vectorized
        assignment instead of one ``duty_fraction`` call per word.
        """
        if not quantizers:
            raise ValueError("need at least one quantizer")
        num_words = np.array([q.max_word + 1 for q in quantizers], dtype=np.int64)
        levels = np.zeros((len(quantizers), int(num_words.max())))
        for row, quantizer in enumerate(quantizers):
            count = int(num_words[row])
            table = getattr(quantizer, "duty_table", None)
            if table is not None:
                values = np.asarray(table(), dtype=float)
                if values.shape != (count,):
                    raise ValueError(
                        f"quantizer {row} reports max_word {count - 1} but "
                        f"its duty_table has shape {values.shape}"
                    )
                levels[row, :count] = values
            else:
                levels[row, :count] = [
                    quantizer.duty_fraction(word) for word in range(count)
                ]
        return cls(levels, num_words=num_words)

    @classmethod
    def from_ensemble(
        cls, curves: "TransferCurveMatrix", num_words: int | None = None
    ) -> "BatchQuantizer":
        """Per-instance duty tables straight from an ensemble's curve matrix.

        ``curves`` is any object exposing ``input_words`` (the contiguous
        duty words ``1..W`` the matrix covers), ``delays_ps`` (the
        ``(instances, W)`` reset-edge delay matrix) and ``clock_period_ps``
        -- :class:`~repro.core.ensemble.EnsembleTransferCurves` in practice.
        Word 0 is the no-pulse word (zero delay, zero duty) and each further
        word's achieved duty is its reset delay as a fraction of the period,
        clamped to 100 % -- exactly the scalar
        :meth:`~repro.dpwm.calibrated.CalibratedDelayLineDPWM.duty_fraction`
        arithmetic, evaluated for the whole ensemble in one vectorized pass.

        ``num_words`` defaults to the largest power of two that the curves
        cover (including word 0), which is the word range of the scheme's
        own duty register; pass it explicitly to model a narrower register.
        """
        delays = np.atleast_2d(np.asarray(curves.delays_ps, dtype=float))
        words = np.asarray(curves.input_words)
        if words.size == 0 or not np.array_equal(
            words, np.arange(1, words.size + 1)
        ):
            raise ValueError(
                "transfer curves must cover the contiguous duty words 1..W"
            )
        if delays.shape[1] != words.size:
            raise ValueError(
                f"curve matrix covers {delays.shape[1]} words, "
                f"input_words lists {words.size}"
            )
        available = words.size + 1  # word 0 is the zero-delay no-pulse word
        if num_words is None:
            num_words = 1 << (available.bit_length() - 1)
        if not 2 <= num_words <= available:
            raise ValueError(
                f"num_words must lie in [2, {available}], got {num_words}"
            )
        levels = get_backend().duty_tables_from_delays(
            delays, float(curves.clock_period_ps), num_words
        )
        return cls(levels)

    def quantize(self, commands: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Duty commands -> (duty words, achieved duty fractions).

        Matches the scalar ``duty_word_for`` of the ideal and calibrated
        DPWMs exactly (clip to [0, 1], round half to even, clamp to the top
        word).
        """
        commands = np.atleast_1d(np.asarray(commands, dtype=float))
        if self.num_variants != 1 and commands.shape != (self.num_variants,):
            raise ValueError(
                f"need one duty command per variant ({self.num_variants}), "
                f"got shape {commands.shape}"
            )
        if commands.shape[0] == self.num_variants:
            rows = self._rows
        else:
            # A single shared table serving a wider command vector: every
            # command reads row 0.
            rows = np.zeros(commands.shape[0], dtype=np.int64)
        kernels = self.kernels or get_backend()
        return kernels.quantize_duty(commands, self.levels, self.num_words, rows)


class BatchCompensator:
    """The PID law of :class:`~repro.converter.compensator.PIDCompensator`
    applied to stacked error-code arrays (one entry per variant)."""

    def __init__(
        self,
        num_variants: int,
        kp: npt.ArrayLike = 0.001,
        ki: npt.ArrayLike = 5e-5,
        kd: npt.ArrayLike = 0.0,
        initial_duty: npt.ArrayLike = 0.5,
        min_duty: npt.ArrayLike = 0.0,
        max_duty: npt.ArrayLike = 1.0,
        kernels: KernelBackend | None = None,
    ) -> None:
        self.kp = _as_variant_array(kp, num_variants, "kp")
        self.ki = _as_variant_array(ki, num_variants, "ki")
        self.kd = _as_variant_array(kd, num_variants, "kd")
        self.min_duty = _as_variant_array(min_duty, num_variants, "min_duty")
        self.max_duty = _as_variant_array(max_duty, num_variants, "max_duty")
        self.initial_duty = _as_variant_array(initial_duty, num_variants, "initial_duty")
        if np.any(self.min_duty < 0) or np.any(self.max_duty > 1) or np.any(
            self.min_duty >= self.max_duty
        ):
            raise ValueError("require 0 <= min_duty < max_duty <= 1 per variant")
        if np.any(self.initial_duty < self.min_duty) or np.any(
            self.initial_duty > self.max_duty
        ):
            raise ValueError("initial_duty must lie inside the duty limits")
        self.num_variants = num_variants
        # None means "inherit": BatchClosedLoop installs its backend, and a
        # standalone update() falls back to the process default.
        self.kernels = kernels
        self.reset()

    def reset(self) -> None:
        self.integral = self.initial_duty.copy()
        self.previous_error = np.zeros(self.num_variants)

    def update(self, error_codes: np.ndarray) -> np.ndarray:
        """Advance one switching period; returns the duty commands."""
        error = np.asarray(error_codes, dtype=float)
        kernels = self.kernels or get_backend()
        duty, self.integral = kernels.pid_update(
            error,
            self.integral,
            self.previous_error,
            self.kp,
            self.ki,
            self.kd,
            self.min_duty,
            self.max_duty,
        )
        self.previous_error = error
        return duty


class _LoadCoefficientTable:
    """Per-(variant, duty word) transition coefficients for one load level.

    A Monte-Carlo fleet dithers its duty words independently, so whole
    duty-word *vectors* almost never repeat period to period -- but each
    variant only ever visits a handful of distinct words.  This table
    memoizes the exact-stepper coefficients per duty word: the first period
    a word value appears, its on/off coefficients are evaluated for every
    variant at once (one vectorized :func:`exact_interval_coefficients`
    pair); afterwards a period costs one fancy-indexing gather no matter
    how the fleet dithers.  Gathered values are bit-identical to computing
    the coefficients fresh because the evaluation is elementwise per
    variant.
    """

    #: At most this many brand-new words are cached per period.  A settled
    #: fleet's whole word vocabulary fills within a few periods and gathers
    #: take over, while the premium a transient period pays over the plain
    #: mixed evaluation stays bounded.
    FILL_BUDGET_PER_PERIOD = 8

    def __init__(
        self, plant: tuple, max_words: int, kernels: KernelBackend | None = None
    ) -> None:
        self.plant = plant  # (a, b, c, d) system-matrix entries, per variant
        self.slot_of_word = np.full(max_words, -1, dtype=np.int64)
        self.table: np.ndarray | None = None  # (slots, variants, 12)
        self.used = 0
        self.periods_seen = 0
        self.kernels = kernels or get_backend()

    def _evaluate(self, on_time: np.ndarray, period_s: np.ndarray) -> np.ndarray:
        """``(variants, 12)`` on+off coefficients for per-variant on-times."""
        a, b, c, d = self.plant
        return self.kernels.interval_coefficients(a, b, c, d, on_time, period_s)

    def coefficients(
        self,
        words: np.ndarray,
        duties: np.ndarray,
        levels: np.ndarray,
        period_s: np.ndarray,
        variant_rows: np.ndarray,
    ) -> np.ndarray:
        """``(variants, 12)`` on+off coefficients for this period's words.

        Values are bit-identical whether gathered from the table or
        evaluated directly: :func:`exact_interval_coefficients` is
        elementwise per variant, so computing a word column for the whole
        fleet and gathering each variant's slot later reproduces the mixed
        evaluation float for float.
        """
        self.periods_seen += 1
        slots = self.slot_of_word[words]
        missing = slots < 0
        if np.any(missing):
            # A table's very first period is always evaluated directly: a
            # load level that never repeats (a ramp retires its table every
            # period) then costs exactly the plain mixed evaluation, and
            # caching starts only once the load level has proven it recurs.
            budget = self.FILL_BUDGET_PER_PERIOD if self.periods_seen > 1 else 0
            new_words = np.unique(words[missing])
            for word in new_words[:budget]:
                entry = self._evaluate(levels[:, word] * period_s, period_s)
                if self.table is None:
                    self.table = np.empty((8, *entry.shape))
                elif self.used == self.table.shape[0]:
                    grown = np.empty((2 * self.used, *entry.shape))
                    grown[: self.used] = self.table
                    self.table = grown
                self.table[self.used] = entry
                self.slot_of_word[word] = self.used
                self.used += 1
            if new_words.size > budget:
                # Some of this period's words are still uncached: evaluate
                # the mixed duty vector directly (one coefficient pair, the
                # pre-table cost) and let later periods fill the rest.
                return self._evaluate(duties * period_s, period_s)
            slots = self.slot_of_word[words]
        return self.kernels.gather_coefficients(self.table, slots, variant_rows)


@dataclass
class BatchRegulationResult:
    """Per-period history of a batch closed-loop run.

    All matrices have shape ``(periods, num_variants)``.
    """

    switching_period_s: np.ndarray
    output_voltages_v: np.ndarray
    inductor_currents_a: np.ndarray
    duty_words: np.ndarray
    duty_fractions: np.ndarray
    error_codes: np.ndarray
    load_resistances_ohm: np.ndarray

    @property
    def num_periods(self) -> int:
        return self.output_voltages_v.shape[0]

    @property
    def num_variants(self) -> int:
        return self.output_voltages_v.shape[1]

    def _tail(self, tail_fraction: float) -> np.ndarray:
        return steady_state_tail(self.output_voltages_v, tail_fraction)

    def steady_state_voltage_v(self, tail_fraction: float = 0.25) -> np.ndarray:
        """Per-variant mean output voltage over the run's tail; shape (N,)."""
        return self._tail(tail_fraction).mean(axis=0)

    def steady_state_ripple_v(self, tail_fraction: float = 0.25) -> np.ndarray:
        """Per-variant peak-to-peak tail voltage variation; shape (N,)."""
        tail = self._tail(tail_fraction)
        return tail.max(axis=0) - tail.min(axis=0)

    def trace(self, variant: int) -> RegulationTrace:
        """One variant's history as a scalar :class:`RegulationTrace`."""
        period = float(self.switching_period_s[variant])
        return RegulationTrace(
            times_s=[(index + 1) * period for index in range(self.num_periods)],
            output_voltages_v=list(self.output_voltages_v[:, variant]),
            inductor_currents_a=list(self.inductor_currents_a[:, variant]),
            duty_words=[int(word) for word in self.duty_words[:, variant]],
            duty_fractions=list(self.duty_fractions[:, variant]),
            error_codes=[int(code) for code in self.error_codes[:, variant]],
            load_resistances_ohm=list(self.load_resistances_ohm[:, variant]),
        )


class BatchClosedLoop:
    """N digitally controlled bucks advanced together, period by period.

    The control law, quantization and state update are element-for-element
    the same as the scalar :class:`DigitallyControlledBuck` with the exact
    stepper; only the bookkeeping is vectorized.
    """

    #: Bound on memoized per-load coefficient tables; regulation runs use a
    #: handful of load levels, continuously varying scenarios (ramps, random
    #: bursts) would otherwise grow one table per period.
    MAX_CACHED_LOADS = 64

    def __init__(
        self,
        parameters: BatchBuckParameters,
        quantizer: BatchQuantizer,
        reference_v: npt.ArrayLike,
        adc: WindowedADC | None = None,
        compensator: BatchCompensator | None = None,
        load: LoadProfile | None = None,
        loads: Sequence[LoadProfile] | None = None,
        start_at_reference: bool = True,
        reference_profile: ReferenceProfile | None = None,
        source_profile: SourceProfile | None = None,
        backend: str | KernelBackend | None = None,
    ) -> None:
        """Assemble the batch loop.

        Args:
            parameters: stacked electrical parameters (defines N).
            quantizer: vectorized DPWM (must cover the same N variants, or a
                single shared table).
            reference_v: regulation target, scalar or per-variant array.
            adc: shared windowed error ADC (configuration, not state).
            compensator: vectorized PID; defaults to the scalar loop's
                defaults with the integrator preloaded at ``Vref / Vg``.
            load: one load profile shared by every variant.
            loads: alternatively, one profile per variant.
            start_at_reference: start at the operating point (as the scalar
                loop does) rather than from a cold start.
            reference_profile / source_profile: shared per-period scenario
                objects (see :mod:`repro.converter.load`).
            backend: kernel backend name or instance (``docs/backends.md``);
                defaults to the process-wide selection
                (:func:`repro.kernels.get_backend`).  Installed on the
                quantizer and compensator too, unless they were constructed
                with an explicit ``kernels=`` of their own.
        """
        num_variants = parameters.num_variants
        self.kernels = (
            backend if isinstance(backend, KernelBackend) else get_backend(backend)
        )
        if quantizer.kernels is None:
            quantizer.kernels = self.kernels
        if quantizer.num_variants not in (1, num_variants):
            raise ValueError(
                f"quantizer covers {quantizer.num_variants} variants, "
                f"parameters define {num_variants}"
            )
        self.parameters = parameters
        self.quantizer = quantizer
        self.reference_v = _as_variant_array(reference_v, num_variants, "reference_v")
        if np.any(self.reference_v <= 0) or np.any(
            self.reference_v > parameters.input_voltage_v
        ):
            raise ValueError(
                "reference voltages must be positive and below the input voltage"
            )
        if reference_profile is not None:
            validate_reference_profile(reference_profile, parameters.input_voltage_v)
        self.adc = adc or WindowedADC()
        # The operating point at period 0 follows the profile when one is
        # given (e.g. a ReferenceStep that begins below reference_v).
        initial_reference = (
            _as_variant_array(
                reference_profile.reference_at(0), num_variants, "reference_at(0)"
            )
            if reference_profile is not None
            else self.reference_v
        )
        if compensator is not None and compensator.num_variants != num_variants:
            raise ValueError(
                f"compensator covers {compensator.num_variants} variants, "
                f"parameters define {num_variants}"
            )
        self.compensator = compensator or BatchCompensator(
            num_variants,
            initial_duty=initial_reference / parameters.input_voltage_v,
        )
        if self.compensator.kernels is None:
            self.compensator.kernels = self.kernels
        if load is not None and loads is not None:
            raise ValueError("pass either a shared load or per-variant loads")
        if loads is not None and len(loads) != num_variants:
            raise ValueError(f"need one load per variant ({num_variants})")
        self._shared_load = load or (ConstantLoad(resistance_ohm=1.0) if loads is None else None)
        self._variant_loads = list(loads) if loads is not None else None
        # Loads that declare themselves static (ConstantLoad sets is_static)
        # are evaluated once and the resistance vector is reused every
        # period; anything else is re-evaluated per period as before.
        if self._variant_loads is not None:
            loads_static = all(
                getattr(variant_load, "is_static", False)
                for variant_load in self._variant_loads
            )
        else:
            loads_static = getattr(self._shared_load, "is_static", False)
        self._loads_static = bool(loads_static)
        self._static_resistances: np.ndarray | None = None
        self.reference_profile = reference_profile
        self.source_profile = source_profile
        if start_at_reference:
            initial_load = self._load_resistances(0)
            self.output_voltage_v = initial_reference.copy()
            self.inductor_current_a = initial_reference / initial_load
        else:
            self.output_voltage_v = np.zeros(num_variants)
            self.inductor_current_a = np.zeros(num_variants)

    @property
    def num_variants(self) -> int:
        return self.parameters.num_variants

    def _load_resistances(self, period_index: int) -> np.ndarray:
        if self._static_resistances is not None:
            return self._static_resistances
        if self._variant_loads is not None:
            resistances = np.array(
                [load.resistance_at(period_index) for load in self._variant_loads]
            )
        else:
            resistances = np.broadcast_to(
                np.asarray(self._shared_load.resistance_at(period_index), dtype=float),
                (self.num_variants,),
            )
        if np.any(resistances <= 0):
            raise ValueError(
                f"load resistance must be positive in period {period_index}"
            )
        if self._loads_static:
            self._static_resistances = resistances
        return resistances

    def run(self, periods: int) -> BatchRegulationResult:
        """Run the closed loop for a number of switching periods."""
        if periods < 1:
            raise ValueError("periods must be >= 1")
        params = self.parameters
        num_variants = self.num_variants
        series_resistance = params.switch_resistance_ohm + params.inductor_resistance_ohm
        period_s = params.switching_period_s

        voltages = np.empty((periods, num_variants))
        currents = np.empty((periods, num_variants))
        words_out = np.empty((periods, num_variants), dtype=np.int64)
        duties_out = np.empty((periods, num_variants))
        codes_out = np.empty((periods, num_variants), dtype=np.int64)
        loads_out = np.empty((periods, num_variants))

        current = self.inductor_current_a
        voltage = self.output_voltage_v
        # Transition coefficients are memoized per (load fingerprint, duty
        # word) in one table per load level (see _LoadCoefficientTable):
        # whole-fleet dithering costs one gather per period instead of two
        # vectorized matrix exponentials.  The source voltage is deliberately
        # absent from the key: the cached Ad / M coefficients do not depend
        # on it, and the drive term is applied outside the cache.
        load_tables: dict[bytes, _LoadCoefficientTable] = {}
        max_words = int(self.quantizer.num_words.max())
        variant_rows = np.arange(num_variants)
        for index in range(periods):
            if self.reference_profile is not None:
                reference = self.reference_profile.reference_at(index)
            else:
                reference = self.reference_v
            codes = self.adc.quantize_error_array(reference, voltage)
            commands = self.compensator.update(codes)
            words, duties = self.quantizer.quantize(commands)
            rload = self._load_resistances(index)
            if self.source_profile is not None:
                source_voltage = self.source_profile.voltage_at(index)
            else:
                source_voltage = params.input_voltage_v
            rload_key = rload.tobytes()
            table = load_tables.get(rload_key)
            if table is None:
                if len(load_tables) >= self.MAX_CACHED_LOADS:
                    load_tables.clear()
                table = _LoadCoefficientTable(
                    plant_matrix_entries(
                        inductance_h=params.inductance_h,
                        capacitance_f=params.capacitance_f,
                        series_resistance_ohm=series_resistance,
                        load_resistance_ohm=rload,
                    ),
                    max_words,
                    kernels=self.kernels,
                )
                load_tables[rload_key] = table
            step = table.coefficients(
                words, duties, self.quantizer.levels, period_s, variant_rows
            )
            # On interval with the switch node at the source voltage, then
            # the drive-free off interval, in one kernel call.
            drive = np.broadcast_to(
                np.asarray(source_voltage / params.inductance_h, dtype=float),
                (num_variants,),
            )
            current, voltage = self.kernels.apply_period_step(
                step, current, voltage, drive
            )
            voltages[index] = voltage
            currents[index] = current
            words_out[index] = words
            duties_out[index] = duties
            codes_out[index] = codes
            loads_out[index] = rload
        self.inductor_current_a = current
        self.output_voltage_v = voltage
        return BatchRegulationResult(
            switching_period_s=period_s,
            output_voltages_v=voltages,
            inductor_currents_a=currents,
            duty_words=words_out,
            duty_fractions=duties_out,
            error_codes=codes_out,
            load_resistances_ohm=loads_out,
        )


def from_closed_loops(loops: Sequence[DigitallyControlledBuck]) -> BatchClosedLoop:
    """Lift scalar :class:`DigitallyControlledBuck` loops into one batch.

    The loops must share the ADC configuration and scenario objects (their
    per-variant parameters, DPWMs, compensator gains, references, loads and
    current power-stage states all carry over).  The returned batch starts
    from the loops' present state, so ``from_closed_loops(loops).run(p)``
    parallels ``[loop.run(p) for loop in loops]``.
    """
    loops = list(loops)
    if not loops:
        raise ValueError("need at least one closed loop")
    euler_loops = [loop for loop in loops if loop.power_stage.method != "exact"]
    if euler_loops:
        raise ValueError(
            "the batch engine only reproduces exact-stepper loops; "
            f"{len(euler_loops)} loop(s) use the Euler integrator"
        )
    adcs = {loop.adc for loop in loops}
    if len(adcs) != 1:
        raise ValueError("all loops must share one ADC configuration")
    reference_profile = loops[0].reference_profile
    source_profile = loops[0].source_profile
    if any(
        loop.reference_profile != reference_profile
        or loop.source_profile != source_profile
        for loop in loops[1:]
    ):
        raise ValueError("all loops must share the reference and source profiles")
    parameters = BatchBuckParameters.from_parameters([loop.parameters for loop in loops])
    quantizer = BatchQuantizer.from_quantizers([loop.dpwm for loop in loops])
    compensator = BatchCompensator(
        len(loops),
        kp=[loop.compensator.kp for loop in loops],
        ki=[loop.compensator.ki for loop in loops],
        kd=[loop.compensator.kd for loop in loops],
        initial_duty=[loop.compensator.integral for loop in loops],
        min_duty=[loop.compensator.min_duty for loop in loops],
        max_duty=[loop.compensator.max_duty for loop in loops],
    )
    shared_load = loops[0].load
    loads = None
    if any(loop.load != shared_load for loop in loops[1:]):
        shared_load, loads = None, [loop.load for loop in loops]
    batch = BatchClosedLoop(
        parameters,
        quantizer,
        reference_v=[loop.reference_v for loop in loops],
        adc=loops[0].adc,
        compensator=compensator,
        load=shared_load,
        loads=loads,
        reference_profile=reference_profile,
        source_profile=source_profile,
        start_at_reference=False,
    )
    batch.output_voltage_v = np.array(
        [loop.power_stage.state.output_voltage_v for loop in loops]
    )
    batch.inductor_current_a = np.array(
        [loop.power_stage.state.inductor_current_a for loop in loops]
    )
    batch.compensator.previous_error = np.array(
        [loop.compensator.previous_error for loop in loops]
    )
    return batch

"""Discrete-event digital-logic simulator.

This package is the repository's substitute for the Verilog/QuestaSim flow the
paper uses for functional verification.  It provides:

* an event-driven :class:`~repro.simulation.simulator.Simulator` with
  picosecond time resolution,
* :class:`~repro.simulation.signals.Signal` objects with change notification
  and full waveform tracing,
* behavioural primitives (:mod:`repro.simulation.primitives`): buffers,
  inverters, multiplexers, D flip-flops with setup-time checking and an
  optional metastability model, set/reset flops, counters and comparators,
* clock and pulse generators (:mod:`repro.simulation.clocks`),
* waveform analysis helpers (:mod:`repro.simulation.waveform`) used to
  measure duty cycles and pulse widths for the DPWM timing figures, and
* the vectorized batch engine (:mod:`repro.simulation.batch`) that advances
  whole fleets of digitally controlled buck variants with exact
  state-space steps -- the workhorse of the Monte-Carlo regulation sweeps.
"""

from repro.simulation.batch import (
    BatchBuckParameters,
    BatchClosedLoop,
    BatchCompensator,
    BatchQuantizer,
    BatchRegulationResult,
    from_closed_loops,
)
from repro.simulation.clocks import ClockGenerator, PulseGenerator
from repro.simulation.primitives import (
    Buffer,
    Comparator,
    Counter,
    DFlipFlop,
    Inverter,
    Mux2,
    MuxN,
    SetResetFlop,
    TwoFlopSynchronizer,
)
from repro.simulation.signals import Signal
from repro.simulation.simulator import Simulator
from repro.simulation.vcd import dump_vcd, traces_to_vcd
from repro.simulation.waveform import WaveformTrace, duty_cycle_of, pulse_widths

__all__ = [
    "BatchBuckParameters",
    "BatchClosedLoop",
    "BatchCompensator",
    "BatchQuantizer",
    "BatchRegulationResult",
    "Buffer",
    "ClockGenerator",
    "from_closed_loops",
    "Comparator",
    "Counter",
    "DFlipFlop",
    "Inverter",
    "Mux2",
    "MuxN",
    "PulseGenerator",
    "SetResetFlop",
    "Signal",
    "Simulator",
    "TwoFlopSynchronizer",
    "WaveformTrace",
    "dump_vcd",
    "duty_cycle_of",
    "pulse_widths",
    "traces_to_vcd",
]

"""The discrete-event simulation kernel.

The kernel is deliberately small: a time-ordered event queue of callbacks.
All timing is expressed in picoseconds (floats); events scheduled at the same
time execute in FIFO order, which keeps combinational update chains
deterministic.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised when the simulation kernel detects an inconsistent request."""


@dataclass(order=True)
class _Event:
    """An entry in the event queue, ordered by (time, sequence number)."""

    time_ps: float
    sequence: int
    callback: Callable[[], None] = field(compare=False)


class Simulator:
    """Event-driven simulation kernel with picosecond resolution.

    Typical use::

        sim = Simulator()
        clk = Signal(sim, "clk")
        ClockGenerator(sim, clk, period_ps=10_000.0)
        sim.run_until(200_000.0)
    """

    def __init__(self) -> None:
        self._queue: list[_Event] = []
        self._now_ps: float = 0.0
        self._sequence: int = 0
        self._events_executed: int = 0

    @property
    def now_ps(self) -> float:
        """Current simulation time in picoseconds."""
        return self._now_ps

    @property
    def events_executed(self) -> int:
        """Number of events executed so far (for diagnostics and tests)."""
        return self._events_executed

    @property
    def pending_events(self) -> int:
        """Number of events still waiting in the queue."""
        return len(self._queue)

    def schedule(self, delay_ps: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` to run ``delay_ps`` after the current time.

        Raises:
            SimulationError: if ``delay_ps`` is negative.
        """
        if delay_ps < 0:
            raise SimulationError(f"cannot schedule into the past: {delay_ps} ps")
        self.schedule_at(self._now_ps + delay_ps, callback)

    def schedule_at(self, time_ps: float, callback: Callable[[], None]) -> None:
        """Schedule ``callback`` at an absolute simulation time.

        Raises:
            SimulationError: if ``time_ps`` is before the current time.
        """
        if time_ps < self._now_ps:
            raise SimulationError(
                f"cannot schedule at {time_ps} ps, current time is {self._now_ps} ps"
            )
        heapq.heappush(
            self._queue, _Event(time_ps=time_ps, sequence=self._sequence, callback=callback)
        )
        self._sequence += 1

    def step(self) -> bool:
        """Execute the next pending event.

        Returns:
            ``True`` if an event was executed, ``False`` if the queue is empty.
        """
        if not self._queue:
            return False
        event = heapq.heappop(self._queue)
        self._now_ps = event.time_ps
        event.callback()
        self._events_executed += 1
        return True

    def run_until(self, time_ps: float, max_events: int | None = None) -> None:
        """Run the simulation up to (and including) ``time_ps``.

        Events scheduled exactly at ``time_ps`` are executed.  Events beyond
        it stay queued, and the simulation clock is advanced to ``time_ps``.

        Args:
            time_ps: absolute stop time in picoseconds.
            max_events: optional safety bound on executed events.

        Raises:
            SimulationError: if ``max_events`` is exhausted before reaching
                ``time_ps`` (a strong hint of a runaway feedback loop).
        """
        if time_ps < self._now_ps:
            raise SimulationError(
                f"cannot run backwards to {time_ps} ps from {self._now_ps} ps"
            )
        executed = 0
        while self._queue and self._queue[0].time_ps <= time_ps:
            if max_events is not None and executed >= max_events:
                raise SimulationError(
                    f"exceeded {max_events} events before reaching {time_ps} ps; "
                    "possible combinational loop"
                )
            self.step()
            executed += 1
        self._now_ps = max(self._now_ps, time_ps)

    def run(self, max_events: int = 1_000_000) -> None:
        """Run until the event queue drains or ``max_events`` are executed.

        Raises:
            SimulationError: if the event budget is exhausted (runaway loop).
        """
        executed = 0
        while self._queue:
            if executed >= max_events:
                raise SimulationError(
                    f"exceeded {max_events} events; possible combinational loop"
                )
            self.step()
            executed += 1

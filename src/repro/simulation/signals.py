"""Signals (nets) with change notification and waveform tracing."""

from __future__ import annotations

from typing import Callable

from repro.simulation.simulator import Simulator
from repro.simulation.waveform import WaveformTrace

__all__ = ["Signal"]


class Signal:
    """A named net carrying an integer value (0/1 for single-bit nets).

    A signal records its full transition history in a
    :class:`~repro.simulation.waveform.WaveformTrace` and notifies connected
    callbacks whenever its value changes.  Multi-bit buses are represented as
    plain integers, which keeps the behavioural components simple (the paper's
    designs only need bus compare/add/select semantics, not per-bit wiring).
    """

    def __init__(
        self,
        simulator: Simulator,
        name: str,
        initial: int = 0,
        width: int = 1,
    ) -> None:
        if width < 1:
            raise ValueError(f"signal {name!r}: width must be >= 1")
        self._simulator = simulator
        self.name = name
        self.width = width
        self._value = int(initial)
        self._listeners: list[Callable[["Signal"], None]] = []
        self.trace = WaveformTrace(name=name)
        self.trace.record(simulator.now_ps, self._value)

    @property
    def simulator(self) -> Simulator:
        return self._simulator

    @property
    def value(self) -> int:
        """Current value of the signal."""
        return self._value

    @property
    def max_value(self) -> int:
        """Largest representable value for this signal's width."""
        return (1 << self.width) - 1

    def connect(self, listener: Callable[["Signal"], None]) -> None:
        """Register a callback invoked (with this signal) on every change."""
        self._listeners.append(listener)

    def set(self, value: int) -> None:
        """Drive a new value at the current simulation time.

        Setting the same value is a no-op (no trace entry, no notification),
        mirroring event-driven HDL semantics.
        """
        value = int(value) & self.max_value if self.width < 64 else int(value)
        if value == self._value:
            return
        self._value = value
        self.trace.record(self._simulator.now_ps, value)
        for listener in list(self._listeners):
            listener(self)

    def schedule_set(self, value: int, delay_ps: float) -> None:
        """Drive a new value after ``delay_ps`` (transport delay)."""
        self._simulator.schedule(delay_ps, lambda: self.set(value))

    def is_high(self) -> bool:
        """True when a single-bit signal is logic 1."""
        return self._value != 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Signal({self.name!r}, value={self._value})"

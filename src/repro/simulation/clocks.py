"""Clock and pulse generators."""

from __future__ import annotations

from repro.simulation.signals import Signal
from repro.simulation.simulator import Simulator

__all__ = ["ClockGenerator", "PulseGenerator"]


class ClockGenerator:
    """A free-running clock with configurable period and duty cycle.

    The switching clock of the voltage regulator (50--200 MHz in the paper)
    and the fast counter clock of the counter-based DPWM are both instances
    of this generator.
    """

    def __init__(
        self,
        simulator: Simulator,
        output_signal: Signal,
        period_ps: float,
        duty: float = 0.5,
        start_ps: float = 0.0,
    ) -> None:
        if period_ps <= 0:
            raise ValueError("clock period must be positive")
        if not 0.0 < duty < 1.0:
            raise ValueError("clock duty cycle must be in (0, 1)")
        self.simulator = simulator
        self.output_signal = output_signal
        self.period_ps = period_ps
        self.duty = duty
        self.high_time_ps = period_ps * duty
        simulator.schedule_at(start_ps, self._rise)

    @property
    def frequency_mhz(self) -> float:
        """Clock frequency in MHz."""
        return 1e6 / self.period_ps

    def _rise(self) -> None:
        self.output_signal.set(1)
        self.simulator.schedule(self.high_time_ps, self._fall)

    def _fall(self) -> None:
        self.output_signal.set(0)
        self.simulator.schedule(self.period_ps - self.high_time_ps, self._rise)


class PulseGenerator:
    """Generates a single pulse of a given width at a given start time."""

    def __init__(
        self,
        simulator: Simulator,
        output_signal: Signal,
        start_ps: float,
        width_ps: float,
    ) -> None:
        if width_ps <= 0:
            raise ValueError("pulse width must be positive")
        self.simulator = simulator
        self.output_signal = output_signal
        simulator.schedule_at(start_ps, lambda: output_signal.set(1))
        simulator.schedule_at(start_ps + width_ps, lambda: output_signal.set(0))

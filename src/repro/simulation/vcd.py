"""Value-change-dump (VCD) export for waveform traces.

The paper's verification flow inspects waveforms in a simulator GUI; this
module lets any set of :class:`~repro.simulation.waveform.WaveformTrace`
objects (or the signals of a live simulation) be written as a standard VCD
file so the same inspection can be done with GTKWave or any other VCD
viewer.  Only the small subset of VCD needed for single- and multi-bit
integer signals is produced: a timescale header, one scalar or vector
variable per trace, and time-ordered value changes.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from pathlib import Path

from repro.simulation.waveform import WaveformTrace

__all__ = ["dump_vcd", "traces_to_vcd"]

_IDENTIFIER_ALPHABET = (
    "!\"#$%&'()*+,-./0123456789:;<=>?@ABCDEFGHIJKLMNOPQRSTUVWXYZ"
)


def _identifier(index: int) -> str:
    """Short printable VCD identifier for the ``index``-th variable."""
    alphabet = _IDENTIFIER_ALPHABET
    if index < len(alphabet):
        return alphabet[index]
    return alphabet[index % len(alphabet)] + _identifier(index // len(alphabet) - 1)


def _width_of(trace: WaveformTrace) -> int:
    """Bit width needed to represent every value in the trace."""
    maximum = max((value for value in trace.values), default=0)
    return max(1, int(maximum).bit_length())


def traces_to_vcd(
    traces: Sequence[WaveformTrace],
    timescale: str = "1ps",
    module_name: str = "repro",
) -> str:
    """Render traces as VCD text.

    Args:
        traces: the waveform traces to export (names must be unique).
        timescale: VCD timescale directive (the simulator's unit is ps).
        module_name: name of the enclosing VCD scope.
    """
    names = [trace.name for trace in traces]
    if len(set(names)) != len(names):
        raise ValueError("trace names must be unique for VCD export")

    lines = [
        "$date reproduction run $end",
        "$version repro delay-line simulator $end",
        f"$timescale {timescale} $end",
        f"$scope module {module_name} $end",
    ]
    widths = []
    for index, trace in enumerate(traces):
        width = _width_of(trace)
        widths.append(width)
        lines.append(
            f"$var wire {width} {_identifier(index)} {trace.name} $end"
        )
    lines.append("$upscope $end")
    lines.append("$enddefinitions $end")

    # Merge all transitions into a single time-ordered stream.
    events: list[tuple[float, int, int]] = []
    for index, trace in enumerate(traces):
        for time_ps, value in trace.transitions():
            events.append((time_ps, index, value))
    events.sort(key=lambda item: (item[0], item[1]))

    current_time: float | None = None
    for time_ps, index, value in events:
        if current_time is None or time_ps != current_time:
            lines.append(f"#{int(round(time_ps))}")
            current_time = time_ps
        identifier = _identifier(index)
        if widths[index] == 1:
            lines.append(f"{value & 1}{identifier}")
        else:
            lines.append(f"b{value:b} {identifier}")
    return "\n".join(lines) + "\n"


def dump_vcd(
    traces: Iterable[WaveformTrace],
    path: str | Path,
    timescale: str = "1ps",
    module_name: str = "repro",
) -> Path:
    """Write traces to a VCD file and return the path."""
    path = Path(path)
    path.write_text(
        traces_to_vcd(list(traces), timescale=timescale, module_name=module_name)
    )
    return path

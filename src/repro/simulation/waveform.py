"""Waveform traces and timing measurements.

The paper's timing figures (19, 21, 23, 37, 39, 47, 48) are waveform plots of
a handful of signals.  A :class:`WaveformTrace` records every value change of
a signal as a ``(time_ps, value)`` pair and offers the measurements the
experiments need: value lookup, edge extraction, pulse widths and duty cycle
per switching period.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

__all__ = ["WaveformTrace", "duty_cycle_of", "pulse_widths"]


@dataclass
class WaveformTrace:
    """Transition history of one signal.

    Attributes:
        name: signal name.
        times_ps: transition times, non-decreasing.
        values: value after each transition (same length as ``times_ps``).
    """

    name: str
    times_ps: list[float] = field(default_factory=list)
    values: list[int] = field(default_factory=list)

    def record(self, time_ps: float, value: int) -> None:
        """Append a transition.

        Transitions must be recorded in non-decreasing time order; a
        same-time re-record replaces the previous value (delta-cycle update).
        """
        if self.times_ps and time_ps < self.times_ps[-1]:
            raise ValueError(
                f"trace {self.name!r}: transition at {time_ps} ps is earlier "
                f"than the last recorded time {self.times_ps[-1]} ps"
            )
        if self.times_ps and time_ps == self.times_ps[-1]:
            self.values[-1] = value
            return
        self.times_ps.append(time_ps)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times_ps)

    def value_at(self, time_ps: float) -> int:
        """Value of the signal at an arbitrary time (0 before the first record)."""
        index = bisect_right(self.times_ps, time_ps) - 1
        if index < 0:
            return 0
        return self.values[index]

    def transitions(self) -> list[tuple[float, int]]:
        """All transitions as ``(time_ps, new_value)`` pairs."""
        return list(zip(self.times_ps, self.values))

    def edges(self, rising: bool = True) -> list[float]:
        """Times of rising (0 -> nonzero) or falling (nonzero -> 0) edges."""
        result: list[float] = []
        previous = 0
        for time_ps, value in zip(self.times_ps, self.values):
            was_high = previous != 0
            is_high = value != 0
            if rising and not was_high and is_high:
                result.append(time_ps)
            if not rising and was_high and not is_high:
                result.append(time_ps)
            previous = value
        return result

    def high_time_ps(self, start_ps: float, stop_ps: float) -> float:
        """Total time the signal is nonzero inside ``[start_ps, stop_ps)``."""
        if stop_ps <= start_ps:
            return 0.0
        total = 0.0
        current_time = start_ps
        current_value = self.value_at(start_ps)
        start_index = bisect_right(self.times_ps, start_ps)
        for index in range(start_index, len(self.times_ps)):
            time_ps = self.times_ps[index]
            if time_ps >= stop_ps:
                break
            if current_value != 0:
                total += time_ps - current_time
            current_time = time_ps
            current_value = self.values[index]
        if current_value != 0:
            total += stop_ps - current_time
        return total

    def duty_cycle(self, period_ps: float, start_ps: float = 0.0) -> float:
        """Duty cycle (0..1) of the signal over one period starting at ``start_ps``."""
        if period_ps <= 0:
            raise ValueError("period must be positive")
        return self.high_time_ps(start_ps, start_ps + period_ps) / period_ps

    def to_ascii(self, stop_ps: float, step_ps: float) -> str:
        """Render a low-resolution ASCII strip chart (for examples/reports)."""
        if step_ps <= 0:
            raise ValueError("step must be positive")
        samples = []
        time_ps = 0.0
        while time_ps < stop_ps:
            samples.append("#" if self.value_at(time_ps) else "_")
            time_ps += step_ps
        return f"{self.name:>12s} " + "".join(samples)


def pulse_widths(trace: WaveformTrace) -> list[float]:
    """Widths (ps) of all completed high pulses in a trace."""
    widths: list[float] = []
    rising = trace.edges(rising=True)
    falling = trace.edges(rising=False)
    falling_iter = iter(falling)
    next_fall = next(falling_iter, None)
    for rise in rising:
        while next_fall is not None and next_fall <= rise:
            next_fall = next(falling_iter, None)
        if next_fall is None:
            break
        widths.append(next_fall - rise)
    return widths


def duty_cycle_of(
    trace: WaveformTrace, period_ps: float, period_index: int = 0
) -> float:
    """Duty cycle of a trace over the ``period_index``-th switching period."""
    start = period_index * period_ps
    return trace.duty_cycle(period_ps, start_ps=start)

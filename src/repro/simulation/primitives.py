"""Behavioural logic primitives.

These components are the behavioural equivalents of the standard cells the
paper's RTL elaborates to.  Each component connects to
:class:`~repro.simulation.signals.Signal` objects and reacts to their changes
through the event kernel, so structural compositions (a chain of buffers, a
flip-flop sampling an asynchronous tap, ...) behave like their HDL
counterparts at the timing granularity the paper works at.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.simulation.signals import Signal
from repro.simulation.simulator import Simulator

__all__ = [
    "Buffer",
    "Inverter",
    "Mux2",
    "MuxN",
    "DFlipFlop",
    "SetResetFlop",
    "Counter",
    "Comparator",
    "TwoFlopSynchronizer",
]


class Buffer:
    """A non-inverting buffer with transport delay.

    This is the delay element of both delay-line schemes (the paper's delay
    element is two cascaded inverters, i.e. exactly a buffer).
    """

    def __init__(
        self, simulator: Simulator, input_signal: Signal, output_signal: Signal, delay_ps: float
    ) -> None:
        if delay_ps < 0:
            raise ValueError("buffer delay must be non-negative")
        self.simulator = simulator
        self.input_signal = input_signal
        self.output_signal = output_signal
        self.delay_ps = delay_ps
        input_signal.connect(self._on_input)

    def _on_input(self, signal: Signal) -> None:
        value = signal.value
        self.output_signal.schedule_set(value, self.delay_ps)


class Inverter:
    """An inverting buffer with transport delay."""

    def __init__(
        self, simulator: Simulator, input_signal: Signal, output_signal: Signal, delay_ps: float
    ) -> None:
        if delay_ps < 0:
            raise ValueError("inverter delay must be non-negative")
        self.simulator = simulator
        self.input_signal = input_signal
        self.output_signal = output_signal
        self.delay_ps = delay_ps
        input_signal.connect(self._on_input)
        # Establish the inverted value of the initial input.
        output_signal.set(0 if input_signal.value else 1)

    def _on_input(self, signal: Signal) -> None:
        self.output_signal.schedule_set(0 if signal.value else 1, self.delay_ps)


class Mux2:
    """A 2:1 multiplexer: ``out = b if sel else a``."""

    def __init__(
        self,
        simulator: Simulator,
        input_a: Signal,
        input_b: Signal,
        select: Signal,
        output_signal: Signal,
        delay_ps: float = 0.0,
    ) -> None:
        self.simulator = simulator
        self.input_a = input_a
        self.input_b = input_b
        self.select = select
        self.output_signal = output_signal
        self.delay_ps = delay_ps
        for signal in (input_a, input_b, select):
            signal.connect(self._update)
        self._update(select)

    def _update(self, _signal: Signal) -> None:
        source = self.input_b if self.select.is_high() else self.input_a
        if self.delay_ps > 0:
            self.output_signal.schedule_set(source.value, self.delay_ps)
        else:
            self.output_signal.set(source.value)


class MuxN:
    """An N:1 multiplexer whose select input is an integer bus signal.

    The tap-selection multiplexers of both delay-line schemes are modelled
    with this component; its area is accounted for structurally (as a tree of
    2:1 muxes) by the netlist builders, while the behavioural view here keeps
    a single lumped propagation delay.
    """

    def __init__(
        self,
        simulator: Simulator,
        inputs: Sequence[Signal],
        select: Signal,
        output_signal: Signal,
        delay_ps: float = 0.0,
    ) -> None:
        if not inputs:
            raise ValueError("MuxN requires at least one input")
        self.simulator = simulator
        self.inputs = list(inputs)
        self.select = select
        self.output_signal = output_signal
        self.delay_ps = delay_ps
        select.connect(self._update)
        for signal in self.inputs:
            signal.connect(self._update)
        self._update(select)

    def _selected(self) -> Signal:
        index = min(max(self.select.value, 0), len(self.inputs) - 1)
        return self.inputs[index]

    def _update(self, signal: Signal) -> None:
        source = self._selected()
        # Changes on non-selected inputs must not propagate.
        if signal is not self.select and signal is not source:
            return
        if self.delay_ps > 0:
            self.output_signal.schedule_set(source.value, self.delay_ps)
        else:
            self.output_signal.set(source.value)


class DFlipFlop:
    """A positive-edge-triggered D flip-flop with a setup-time check.

    The controllers in both schemes sample asynchronous delay-line taps with
    flip-flops, which is why the paper spends a section on metastability and
    adds two-flop synchronizers.  The behavioural model flags a *setup
    violation* whenever the D input changed within ``setup_ps`` before the
    sampling clock edge; if a ``metastability_rng`` is supplied the sampled
    value is then resolved randomly (modelling the unpredictable resolution),
    otherwise the newest value wins deterministically.
    """

    def __init__(
        self,
        simulator: Simulator,
        clock: Signal,
        data: Signal,
        output_signal: Signal,
        clk_to_q_ps: float = 0.0,
        setup_ps: float = 0.0,
        metastability_rng: random.Random | None = None,
    ) -> None:
        self.simulator = simulator
        self.clock = clock
        self.data = data
        self.output_signal = output_signal
        self.clk_to_q_ps = clk_to_q_ps
        self.setup_ps = setup_ps
        self.metastability_rng = metastability_rng
        self.setup_violations = 0
        self._last_data_change_ps = simulator.now_ps
        self._previous_clock = clock.value
        clock.connect(self._on_clock)
        data.connect(self._on_data)

    def _on_data(self, _signal: Signal) -> None:
        self._last_data_change_ps = self.simulator.now_ps

    def _on_clock(self, signal: Signal) -> None:
        rising = self._previous_clock == 0 and signal.value != 0
        self._previous_clock = signal.value
        if not rising:
            return
        sampled = self.data.value
        if (
            self.setup_ps > 0
            and self.simulator.now_ps - self._last_data_change_ps < self.setup_ps
        ):
            self.setup_violations += 1
            if self.metastability_rng is not None:
                sampled = self.metastability_rng.randint(0, 1)
        if self.clk_to_q_ps > 0:
            self.output_signal.schedule_set(sampled, self.clk_to_q_ps)
        else:
            self.output_signal.set(sampled)


class SetResetFlop:
    """The trailing-edge modulation flop (paper Figure 16).

    The output goes high on the rising edge of ``set_signal`` (the switching
    clock, since ``D`` is tied to Vdd) and low on the rising edge of
    ``reset_signal`` (the delayed/compared pulse).  Both inputs are treated
    edge-triggered, matching the paper's timing diagrams where the output is
    re-set at every period start even while the (delayed-clock) reset line is
    still high.
    """

    def __init__(
        self,
        simulator: Simulator,
        set_signal: Signal,
        reset_signal: Signal,
        output_signal: Signal,
        delay_ps: float = 0.0,
    ) -> None:
        self.simulator = simulator
        self.set_signal = set_signal
        self.reset_signal = reset_signal
        self.output_signal = output_signal
        self.delay_ps = delay_ps
        self._previous_set = set_signal.value
        self._previous_reset = reset_signal.value
        set_signal.connect(self._on_set)
        reset_signal.connect(self._on_reset)

    def _drive(self, value: int) -> None:
        if self.delay_ps > 0:
            self.output_signal.schedule_set(value, self.delay_ps)
        else:
            self.output_signal.set(value)

    def _on_set(self, signal: Signal) -> None:
        rising = self._previous_set == 0 and signal.value != 0
        self._previous_set = signal.value
        if rising:
            self._drive(1)

    def _on_reset(self, signal: Signal) -> None:
        rising = self._previous_reset == 0 and signal.value != 0
        self._previous_reset = signal.value
        if rising:
            self._drive(0)


class Counter:
    """An n-bit synchronous up-counter with wrap-around.

    Used by the counter-based and hybrid DPWM architectures (paper Figures
    18 and 22).
    """

    def __init__(
        self,
        simulator: Simulator,
        clock: Signal,
        output_signal: Signal,
        width: int,
        clk_to_q_ps: float = 0.0,
        initial: int = 0,
    ) -> None:
        if width < 1:
            raise ValueError("counter width must be >= 1")
        self.simulator = simulator
        self.clock = clock
        self.output_signal = output_signal
        self.width = width
        self.clk_to_q_ps = clk_to_q_ps
        self._count = initial % (1 << width)
        self._previous_clock = clock.value
        clock.connect(self._on_clock)
        output_signal.set(self._count)

    @property
    def modulus(self) -> int:
        return 1 << self.width

    def _on_clock(self, signal: Signal) -> None:
        rising = self._previous_clock == 0 and signal.value != 0
        self._previous_clock = signal.value
        if not rising:
            return
        self._count = (self._count + 1) % self.modulus
        if self.clk_to_q_ps > 0:
            self.output_signal.schedule_set(self._count, self.clk_to_q_ps)
        else:
            self.output_signal.set(self._count)


class Comparator:
    """A combinational equality comparator: ``out = (a == b)``."""

    def __init__(
        self,
        simulator: Simulator,
        input_a: Signal,
        input_b: Signal,
        output_signal: Signal,
        delay_ps: float = 0.0,
    ) -> None:
        self.simulator = simulator
        self.input_a = input_a
        self.input_b = input_b
        self.output_signal = output_signal
        self.delay_ps = delay_ps
        input_a.connect(self._update)
        input_b.connect(self._update)
        self._update(input_a)

    def _update(self, _signal: Signal) -> None:
        value = 1 if self.input_a.value == self.input_b.value else 0
        if self.delay_ps > 0:
            self.output_signal.schedule_set(value, self.delay_ps)
        else:
            self.output_signal.set(value)


class TwoFlopSynchronizer:
    """The two-flip-flop synchronizer of paper Figure 38.

    Samples an asynchronous input into the clock domain; the first stage may
    go metastable (flagged as a setup violation), the second stage gives the
    downstream logic a full cycle of resolution time.
    """

    def __init__(
        self,
        simulator: Simulator,
        clock: Signal,
        async_input: Signal,
        output_signal: Signal,
        clk_to_q_ps: float = 0.0,
        setup_ps: float = 30.0,
        metastability_rng: random.Random | None = None,
    ) -> None:
        self.intermediate = Signal(simulator, f"{output_signal.name}_meta")
        # The second stage is constructed (and therefore connected to the
        # clock) first so that, on a shared clock edge with zero clock-to-q
        # delay, it samples the *previous* value of the intermediate signal
        # -- the behaviour of a real two-stage shift register.
        self.second_stage = DFlipFlop(
            simulator,
            clock=clock,
            data=self.intermediate,
            output_signal=output_signal,
            clk_to_q_ps=clk_to_q_ps,
            setup_ps=0.0,
        )
        self.first_stage = DFlipFlop(
            simulator,
            clock=clock,
            data=async_input,
            output_signal=self.intermediate,
            clk_to_q_ps=clk_to_q_ps,
            setup_ps=setup_ps,
            metastability_rng=metastability_rng,
        )

    @property
    def setup_violations(self) -> int:
        """Setup violations observed on the first (metastability-prone) stage."""
        return self.first_stage.setup_violations

"""repro -- synthesizable delay-line architectures for digitally controlled voltage regulators.

A reproduction of Haridy, "Synthesizable delay line architectures for
digitally controlled voltage regulators" (SOCC 2012 / AUC MSc thesis 2013).

Package map
-----------

* :mod:`repro.core` -- the paper's contribution: the conventional
  adjustable-cells delay line and the proposed variable-cell-count delay
  line, their controllers, the mapping block, the parameterized design
  procedure, linearity extraction and the scheme comparison harness.
* :mod:`repro.simulation` -- discrete-event digital-logic simulator
  (the QuestaSim substitute).
* :mod:`repro.technology` -- synthetic 32 nm-class standard-cell library,
  PVT corners, variation models and the structural synthesizer
  (the Design Compiler / Intel 32 nm substitute).
* :mod:`repro.dpwm` -- counter-based, delay-line and hybrid DPWM
  architectures, plus the calibrated delay-line DPWM built on the core.
* :mod:`repro.converter` -- digitally controlled buck converter and the
  background regulator topologies.
* :mod:`repro.pipeline` -- the fused silicon-to-regulation Monte-Carlo
  pipeline: variation -> calibration -> DPWM duty tables -> batch
  closed-loop regulation, with no per-instance Python loops.
* :mod:`repro.mc` -- streaming adaptive Monte-Carlo: confidence intervals
  on yields (Wilson / Clopper-Pearson), Welford running moments, and a
  chunked sampler that stops when the interval is tight enough.
* :mod:`repro.analysis` -- linearity/power/efficiency metrics and report
  rendering.
* :mod:`repro.experiments` -- one harness per paper table/figure plus a CLI
  (``repro-experiments``).

Quick start
-----------

>>> from repro.core import DesignSpec, design_proposed, ProposedController
>>> from repro.technology import OperatingConditions
>>> line = design_proposed(DesignSpec(clock_frequency_mhz=100, resolution_bits=6)).build_line()
>>> result = ProposedController(line).lock(OperatingConditions.slow())
>>> result.locked, result.control_state
(True, 31)
"""

__version__ = "1.0.0"

__all__ = [
    "analysis",
    "converter",
    "core",
    "dpwm",
    "experiments",
    "mc",
    "pipeline",
    "simulation",
    "technology",
]

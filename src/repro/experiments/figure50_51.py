"""Figures 50-51 -- proposed scheme linearity across frequencies and corners.

Post-APR, the proposed delay line's delay-versus-input-word curve is measured
at 50 / 100 / 200 MHz; the 100 MHz curve is multiplied by 2 and the 200 MHz
curve by 4 so all three share the 20 ns full scale.  Figure 50 shows the slow
corner (fewer cells locked, so several input words collapse onto the same
tap -- visible plateaus) and Figure 51 the fast corner (most of the line is
used, so the curve is finer-grained).  Linearity is better at lower
frequencies because each cell combines more buffers and their random
variation partially averages out.

The experiment rebuilds the three frequency configurations with per-buffer
mismatch, calibrates each at both corners through the vectorized ensemble
engine (closed-form batch lock + batch transfer curves) and reports the
scaled transfer curves plus summary linearity metrics.  The Monte-Carlo
companion experiment ``fig50_51_mc`` asks the same question at population
scale (1000 instances per configuration).
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reports import format_series, format_table
from repro.core.design import DesignSpec, design_proposed
from repro.core.ensemble import ProposedEnsemble
from repro.experiments.base import ExperimentResult, register
from repro.technology.corners import OperatingConditions, ProcessCorner
from repro.technology.library import TechnologyLibrary, intel32_like_library
from repro.technology.variation import VariationModel

__all__ = ["run", "FREQUENCIES_MHZ", "SCALE_FACTORS"]

FREQUENCIES_MHZ = (50.0, 100.0, 200.0)
#: Multipliers that bring every frequency onto the 50 MHz (20 ns) full scale.
SCALE_FACTORS = {50.0: 1.0, 100.0: 2.0, 200.0: 4.0}


def _run_corner(
    corner: ProcessCorner,
    library: TechnologyLibrary,
    variation: VariationModel,
) -> dict[float, dict[str, object]]:
    conditions = OperatingConditions(corner=corner)
    curves: dict[float, dict[str, object]] = {}
    for frequency in FREQUENCIES_MHZ:
        spec = DesignSpec(clock_frequency_mhz=frequency, resolution_bits=6)
        design = design_proposed(spec, library)
        config = design.build_line(library=library).config
        ensemble = ProposedEnsemble.sample(
            config, 1, variation, library=library, first_instance=int(frequency)
        )
        calibration = ensemble.lock(conditions)
        batch_curves = ensemble.transfer_curves(conditions, calibration=calibration)
        curve = batch_curves.curve(0)
        metrics = batch_curves.metrics().instance(0)
        curves[frequency] = {
            "input_words": curve.input_words,
            "scaled_delay_ns": curve.scaled_delays_ns(SCALE_FACTORS[frequency]),
            "tap_sel": int(calibration.control_state[0]),
            "distinct_levels": metrics.distinct_levels,
            "rms_inl_lsb": metrics.rms_inl_lsb,
            "max_inl_lsb": metrics.max_inl_lsb,
            "monotonic": metrics.monotonic,
            "max_error_fraction": float(
                batch_curves.max_error_fraction_of_period()[0]
            ),
        }
    return curves


@register("fig50_51")
def run() -> ExperimentResult:
    """Regenerate Figures 50 (slow corner) and 51 (fast corner)."""
    library = intel32_like_library()
    variation = VariationModel(random_sigma=0.04, gradient_peak=0.015, seed=2012)

    data = {}
    reports = []
    summary_rows = []
    for corner, figure in ((ProcessCorner.SLOW, "Figure 50"), (ProcessCorner.FAST, "Figure 51")):
        curves = _run_corner(corner, library, variation)
        data[corner.name.lower()] = curves
        words = curves[FREQUENCIES_MHZ[0]]["input_words"]
        series = {
            f"{frequency:.0f} MHz x {SCALE_FACTORS[frequency]:.0f}": curves[frequency][
                "scaled_delay_ns"
            ]
            for frequency in FREQUENCIES_MHZ
        }
        reports.append(
            format_series(
                x_label="input word",
                x_values=list(words),
                series={name: list(values) for name, values in series.items()},
                title=f"{figure} -- linearity at the {corner.name.lower()} corner "
                "(delay in ns, frequency-normalized)",
                max_rows=12,
            )
        )
        for frequency in FREQUENCIES_MHZ:
            entry = curves[frequency]
            summary_rows.append(
                [
                    corner.name.lower(),
                    f"{frequency:.0f}",
                    entry["tap_sel"],
                    entry["distinct_levels"],
                    f"{entry['rms_inl_lsb']:.3f}",
                    "yes" if entry["monotonic"] else "no",
                ]
            )

    summary = format_table(
        headers=[
            "Corner",
            "Frequency (MHz)",
            "Locked tap_sel",
            "Distinct output levels",
            "RMS INL (LSB)",
            "Monotonic",
        ],
        rows=summary_rows,
        title="Summary linearity metrics (Figures 50-51)",
    )
    report = "\n\n".join(reports + [summary])
    return ExperimentResult(
        experiment_id="fig50_51",
        title="Proposed scheme linearity across frequencies and corners "
        "(paper Figures 50-51)",
        data=data,
        report=report,
        paper_reference={
            "claims": [
                "curves for all three frequencies overlay on the 20 ns full scale",
                "linearity is better at lower frequencies (more buffers per cell)",
                "slow corner shows plateaus: several input words map to the same tap",
                "fast corner uses more cells, so more distinct output delays",
            ]
        },
    )

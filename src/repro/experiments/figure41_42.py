"""Figures 41-42 -- tuning-order scenarios and their linearity.

In the conventional scheme, which cells receive the extra delay elements is a
free choice (the arrangement of control bits in the shift register).  The
paper shows two scenarios on a four-cell example (Figure 41) and argues that
spreading the extra delay across the line is better for linearity than piling
it onto the first cells (Figure 42).

The experiment locks the 100 MHz conventional design at the typical corner
under three orderings (sequential, round-robin, distributed), reports the
per-cell tuning-level profiles (Figure 41) and the linearity of the resulting
transfer curves (Figure 42).  All three scenarios share one fabricated
instance and run through the vectorized ensemble engine (closed-form batch
lock + batch transfer curves); the scalar numbers reported are views of the
batch results.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reports import format_table
from repro.core.conventional import TuningOrder
from repro.core.design import DesignSpec, design_conventional
from repro.core.ensemble import ConventionalEnsemble
from repro.experiments.base import ExperimentResult, register
from repro.technology.corners import OperatingConditions
from repro.technology.library import intel32_like_library
from repro.technology.variation import VariationModel

__all__ = ["run"]


@register("fig41_42")
def run() -> ExperimentResult:
    """Regenerate Figures 41-42 (tuning scenarios and their linearity)."""
    library = intel32_like_library()
    spec = DesignSpec(clock_frequency_mhz=100.0, resolution_bits=6)
    conditions = OperatingConditions.typical()
    design = design_conventional(spec, library)
    variation = VariationModel(random_sigma=0.03, gradient_peak=0.01, seed=42)

    scenarios = {}
    rows = []
    for order in (
        TuningOrder.SEQUENTIAL,
        TuningOrder.ROUND_ROBIN,
        TuningOrder.DISTRIBUTED,
    ):
        config = design.build_line(library=library, tuning_order=order).config
        ensemble = ConventionalEnsemble.sample(config, 1, variation, library=library)
        calibration = ensemble.lock(conditions)
        levels = ensemble.levels_schedule()[int(calibration.control_state[0])]
        curves = ensemble.transfer_curves(conditions, calibration=calibration)
        metrics = curves.metrics().instance(0)
        max_error_fraction = float(curves.max_error_fraction_of_period()[0])
        scenarios[order.value] = {
            "levels": levels.tolist(),
            "lock_cycles": int(calibration.lock_cycles[0]),
            "max_inl_lsb": metrics.max_inl_lsb,
            "max_dnl_lsb": metrics.max_dnl_lsb,
            "max_error_fraction_of_period": max_error_fraction,
            "monotonic": metrics.monotonic,
        }
        level_counts = np.bincount(levels, minlength=design.branches)
        rows.append(
            [
                order.value,
                " / ".join(str(int(count)) for count in level_counts),
                f"{metrics.max_inl_lsb:.2f}",
                f"{metrics.max_dnl_lsb:.2f}",
                f"{100 * max_error_fraction:.2f} %",
            ]
        )

    report = format_table(
        headers=[
            "Tuning order (Fig. 41 scenario)",
            "Cells per level (0/1/2/3)",
            "Max |INL| (LSB)",
            "Max |DNL| (LSB)",
            "Max error (% of period)",
        ],
        rows=rows,
        title=(
            "Figures 41-42 -- conventional scheme locking scenarios and linearity "
            "(100 MHz, typical corner, post-APR mismatch)"
        ),
    )
    return ExperimentResult(
        experiment_id="fig41_42",
        title="Tuning-order scenarios and linearity (paper Figures 41-42)",
        data={"scenarios": scenarios},
        report=report,
        paper_reference={
            "claim": "spreading the tuned cells across the line is more linear "
            "than clustering them at the start"
        },
    )

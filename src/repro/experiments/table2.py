"""Table 2 -- counter-based vs delay-line DPWM comparison.

The paper's Table 2 is qualitative (clock frequency / power: High vs Low,
area: Small vs Large).  This experiment regenerates it quantitatively: for a
1 MHz switching regulator (the frequency range the paper cites from [28]) at
several resolutions -- including the 13-bit "state of the art" resolution the
paper quotes -- it reports each architecture's required clock frequency,
synthesized area and dynamic power, plus the hybrid compromise.
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.dpwm.counter_dpwm import CounterDPWM, CounterDPWMConfig
from repro.dpwm.delay_line_dpwm import DelayLineDPWM, DelayLineDPWMConfig
from repro.dpwm.hybrid_dpwm import HybridDPWM, HybridDPWMConfig
from repro.experiments.base import ExperimentResult, register
from repro.technology.library import intel32_like_library
from repro.technology.synthesis import Synthesizer

__all__ = ["run"]

SWITCHING_FREQUENCY_MHZ = 1.0
RESOLUTIONS_BITS = (4, 8, 13)


@register("table2")
def run() -> ExperimentResult:
    """Regenerate Table 2 (quantitative form)."""
    library = intel32_like_library()
    synthesizer = Synthesizer(library)

    rows = []
    records = []
    for bits in RESOLUTIONS_BITS:
        counter = CounterDPWM(
            CounterDPWMConfig(bits=bits, switching_frequency_mhz=SWITCHING_FREQUENCY_MHZ),
            library=library,
        )
        delay_line = DelayLineDPWM(
            DelayLineDPWMConfig(
                bits=bits, switching_frequency_mhz=SWITCHING_FREQUENCY_MHZ
            ),
            library=library,
        )
        msb_bits = max(1, bits // 2)
        hybrid = HybridDPWM(
            HybridDPWMConfig(
                msb_bits=msb_bits,
                lsb_bits=bits - msb_bits,
                switching_frequency_mhz=SWITCHING_FREQUENCY_MHZ,
            ),
            library=library,
        )

        counter_area = synthesizer.synthesize(counter.netlist()).total_area_um2
        line_area = synthesizer.synthesize(delay_line.netlist()).total_area_um2
        hybrid_area = synthesizer.synthesize(hybrid.netlist()).total_area_um2

        record = {
            "bits": bits,
            "counter_clock_mhz": counter.required_clock_frequency_mhz(),
            "delay_line_clock_mhz": delay_line.required_clock_frequency_mhz(),
            "hybrid_clock_mhz": hybrid.required_clock_frequency_mhz(),
            "counter_area_um2": counter_area,
            "delay_line_area_um2": line_area,
            "hybrid_area_um2": hybrid_area,
            "counter_power_uw": counter.dynamic_power_w() * 1e6,
            "hybrid_power_uw": hybrid.dynamic_power_w() * 1e6,
        }
        records.append(record)
        rows.append(
            [
                bits,
                f"{record['counter_clock_mhz']:.0f}",
                f"{record['delay_line_clock_mhz']:.0f}",
                f"{record['hybrid_clock_mhz']:.0f}",
                f"{counter_area:.0f}",
                f"{line_area:.0f}",
                f"{hybrid_area:.0f}",
            ]
        )

    report = format_table(
        headers=[
            "bits",
            "counter clk (MHz)",
            "line clk (MHz)",
            "hybrid clk (MHz)",
            "counter area (um2)",
            "line area (um2)",
            "hybrid area (um2)",
        ],
        rows=rows,
        title=(
            "Table 2 -- DPWM approaches at f_sw = 1 MHz "
            "(counter: high clock/power, small area; delay line: low clock, large area)"
        ),
    )
    return ExperimentResult(
        experiment_id="table2",
        title="DPWM approaches comparison (paper Table 2)",
        data={"rows": records, "switching_frequency_mhz": SWITCHING_FREQUENCY_MHZ},
        report=report,
        paper_reference={
            "counter": {"clock_power": "High", "area": "Small"},
            "delay_line": {"clock_power": "Low", "area": "Large"},
        },
    )

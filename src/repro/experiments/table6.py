"""Table 6 -- proposed scheme synthesis results for multiple frequencies.

The proposed scheme is parameterized: keeping 256 taps, the number of buffers
combined in one delay cell is 4 / 2 / 1 at 50 / 100 / 200 MHz, so the delay
line's share of the total area grows at lower frequencies while every other
block stays the same.  The paper reports totals of 1675 / 1337 / 1172 um^2.
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.core.design import DesignSpec, design_proposed
from repro.experiments.base import ExperimentResult, register
from repro.technology.library import intel32_like_library
from repro.technology.synthesis import Synthesizer

__all__ = ["run", "PAPER_TABLE6", "FREQUENCIES_MHZ"]

FREQUENCIES_MHZ = (50.0, 100.0, 200.0)

#: The values reported in the paper's Table 6.
PAPER_TABLE6 = {
    50.0: {"buffers_per_cell": 4, "total_area_um2": 1675.0, "delay_line_pct": 39.5},
    100.0: {"buffers_per_cell": 2, "total_area_um2": 1337.0, "delay_line_pct": 24.7},
    200.0: {"buffers_per_cell": 1, "total_area_um2": 1172.0, "delay_line_pct": 14.1},
}


@register("table6")
def run() -> ExperimentResult:
    """Regenerate Table 6 (proposed scheme across 50/100/200 MHz)."""
    library = intel32_like_library()
    synthesizer = Synthesizer(library)

    per_frequency = {}
    for frequency in FREQUENCIES_MHZ:
        spec = DesignSpec(clock_frequency_mhz=frequency, resolution_bits=6)
        design = design_proposed(spec, library)
        area_report = synthesizer.synthesize(design.build_line(library).netlist())
        per_frequency[frequency] = {
            "buffers_per_cell": design.buffers_per_cell,
            "num_cells": design.num_cells,
            "total_area_um2": area_report.total_area_um2,
            "distribution": area_report.distribution(),
        }

    block_names = list(per_frequency[FREQUENCIES_MHZ[0]]["distribution"])
    rows = [
        ["Buffers combined in one cell"]
        + [per_frequency[f]["buffers_per_cell"] for f in FREQUENCIES_MHZ],
        ["Total area (um^2)"]
        + [f"{per_frequency[f]['total_area_um2']:.0f}" for f in FREQUENCIES_MHZ],
    ]
    for name in block_names:
        rows.append(
            [f"Area share: {name}"]
            + [
                f"{per_frequency[f]['distribution'][name]:.1f} %"
                for f in FREQUENCIES_MHZ
            ]
        )

    report = format_table(
        headers=["Comparison parameter"]
        + [f"{frequency:.0f} MHz" for frequency in FREQUENCIES_MHZ],
        rows=rows,
        title="Table 6 -- proposed scheme synthesis results for multiple frequencies",
    )
    return ExperimentResult(
        experiment_id="table6",
        title="Proposed scheme area across frequencies (paper Table 6)",
        data={"per_frequency": per_frequency},
        report=report,
        paper_reference=PAPER_TABLE6,
    )

"""Section 4.2 -- the worked design examples.

The paper walks both schemes through a concrete specification: 100 MHz clock,
6-bit resolution, a technology with 20 ps (fast) / 80 ps (slow) buffers.  The
conventional design comes out at 64 cells x 4 branches x 2-buffer elements;
the proposed design at 256 cells x 2 buffers, both with a worst-case (fast
corner) line delay just above the 10 ns clock period so locking is guaranteed
at every corner.

The experiment runs the parameterized design procedure on the same
specification and reports every intermediate quantity next to the paper's
value.
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.core.design import DesignSpec, design_conventional, design_proposed
from repro.experiments.base import ExperimentResult, register
from repro.technology.corners import OperatingConditions
from repro.technology.library import intel32_like_library

__all__ = ["run", "PAPER_DESIGN_EXAMPLE"]

#: The quantities the paper derives in section 4.2.
PAPER_DESIGN_EXAMPLE = {
    "conventional": {
        "num_cells": 64,
        "branches": 4,
        "buffers_per_element": 2,
        "worst_case_total_delay_ns": 10.24,
    },
    "proposed": {
        "num_cells": 256,
        "buffers_per_cell": 2,
        "worst_case_total_delay_ns": 10.24,
    },
}


@register("design_example")
def run() -> ExperimentResult:
    """Regenerate the section 4.2 design examples."""
    library = intel32_like_library()
    spec = DesignSpec(clock_frequency_mhz=100.0, resolution_bits=6)
    fast = OperatingConditions.fast()
    slow = OperatingConditions.slow()

    conventional = design_conventional(spec, library)
    proposed = design_proposed(spec, library)

    rows = [
        [
            "Fast-corner buffer delay (ps)",
            f"{library.buffer_delay_ps(fast):.0f}",
            "20",
        ],
        [
            "Slow-corner buffer delay (ps)",
            f"{library.buffer_delay_ps(slow):.0f}",
            "80",
        ],
        ["Conventional: number of cells", conventional.num_cells, 64],
        ["Conventional: branches per cell", conventional.branches, 4],
        [
            "Conventional: buffers per element",
            conventional.buffers_per_element,
            2,
        ],
        [
            "Conventional: worst-case line delay (ns)",
            f"{conventional.worst_case_total_delay_ps(library) / 1000:.2f}",
            "10.24",
        ],
        ["Proposed: number of cells", proposed.num_cells, 256],
        ["Proposed: buffers per cell", proposed.buffers_per_cell, 2],
        [
            "Proposed: worst-case line delay (ns)",
            f"{proposed.worst_case_total_delay_ps(library) / 1000:.2f}",
            "10.24",
        ],
        [
            "Conventional guarantees locking",
            conventional.guarantees_locking(library),
            True,
        ],
        ["Proposed guarantees locking", proposed.guarantees_locking(library), True],
    ]
    report = format_table(
        headers=["Quantity", "This reproduction", "Paper (section 4.2)"],
        rows=rows,
        title="Design example -- 100 MHz, 6-bit, 20/80 ps buffers",
    )
    data = {
        "conventional": {
            "num_cells": conventional.num_cells,
            "branches": conventional.branches,
            "buffers_per_element": conventional.buffers_per_element,
            "worst_case_total_delay_ps": conventional.worst_case_total_delay_ps(
                library
            ),
            "guarantees_locking": conventional.guarantees_locking(library),
        },
        "proposed": {
            "num_cells": proposed.num_cells,
            "buffers_per_cell": proposed.buffers_per_cell,
            "worst_case_total_delay_ps": proposed.worst_case_total_delay_ps(library),
            "guarantees_locking": proposed.guarantees_locking(library),
        },
    }
    return ExperimentResult(
        experiment_id="design_example",
        title="Worked design examples (paper section 4.2)",
        data=data,
        report=report,
        paper_reference=PAPER_DESIGN_EXAMPLE,
    )

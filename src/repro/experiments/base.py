"""Experiment result container and registry."""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Callable

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.sweep import SweepOrchestrator

__all__ = [
    "ExperimentResult",
    "accepts_adaptive",
    "accepts_estimator",
    "accepts_mission",
    "accepts_parameter",
    "accepts_seed",
    "accepts_sweep",
    "registry",
    "register",
    "run_experiment",
]


@dataclass
class ExperimentResult:
    """The outcome of one experiment.

    Attributes:
        experiment_id: short id (``table5``, ``fig50`` ...).
        title: human-readable title referencing the paper artifact.
        data: structured results (rows, series, metrics) for programmatic use
            by the benchmarks and tests.
        report: formatted text rendering in the shape of the paper's table or
            figure series.
        paper_reference: the values the paper reports, where applicable, so
            reports can show paper-vs-measured side by side.
    """

    experiment_id: str
    title: str
    data: dict
    report: str
    paper_reference: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return f"[{self.experiment_id}] {self.title}\n{self.report}"


#: Global registry of experiment id -> run function (extra keywords such as
#: ``seed`` are threaded in by :func:`run_experiment` when declared).
registry: dict[str, Callable[..., ExperimentResult]] = {}


def register(
    experiment_id: str,
) -> Callable[[Callable[..., ExperimentResult]], Callable[..., ExperimentResult]]:
    """Decorator registering an experiment ``run`` function under an id."""

    def decorator(
        func: Callable[..., ExperimentResult],
    ) -> Callable[..., ExperimentResult]:
        if experiment_id in registry:
            raise ValueError(f"experiment id {experiment_id!r} already registered")
        registry[experiment_id] = func
        return func

    return decorator


def accepts_parameter(experiment_id: str, name: str) -> bool:
    """Whether an experiment's run function declares a keyword ``name``."""
    return name in inspect.signature(registry[experiment_id]).parameters


def accepts_seed(experiment_id: str) -> bool:
    """Whether an experiment's run function takes an RNG ``seed`` argument.

    The Monte-Carlo experiments (``fig15``, ``fig15_mc``, ``fig50_51_mc``)
    declare ``seed`` so one CLI flag can rethread their random draws; the
    deterministic table/figure regenerations do not.
    """
    return accepts_parameter(experiment_id, "seed")


def accepts_sweep(experiment_id: str) -> bool:
    """Whether an experiment's run function takes a ``sweep`` orchestrator.

    The grid experiments (``fig15``, ``fig15_mc``, ``fig50_51_mc``) declare
    ``sweep`` so the CLI's ``--workers`` / ``--cache-dir`` flags can fan
    their cells out across a worker pool and memoize them; the scalar
    regenerations do not.
    """
    return accepts_parameter(experiment_id, "sweep")


def accepts_adaptive(experiment_id: str) -> bool:
    """Whether an experiment supports adaptive confidence-bounded sampling.

    The Monte-Carlo experiments declare ``precision`` (and
    ``max_instances``) so the CLI's ``--precision`` / ``--max-instances``
    flags can replace their fixed per-cell instance counts with the
    streaming sampler of :mod:`repro.mc`.
    """
    return accepts_parameter(experiment_id, "precision")


def accepts_estimator(experiment_id: str) -> bool:
    """Whether an experiment supports rare-event estimator selection.

    The rare-event experiments (``fig15_rare``) declare ``estimator`` so
    the CLI's ``--estimator`` / ``--tilt-shift`` / ``--tilt-scale`` flags
    can pick between vanilla, stratified and importance sampling and
    parameterize the importance tilt.
    """
    return accepts_parameter(experiment_id, "estimator")


def accepts_mission(experiment_id: str) -> bool:
    """Whether an experiment supports mission-profile parameterization.

    The mission experiments (``fig15_mission``) declare ``mission_length``
    (plus ``mission_seed`` and ``correlation``) so the CLI's
    ``--mission-length`` / ``--mission-seed`` / ``--correlation`` flags can
    reshape the randomized missions and the component-correlation preset.
    """
    return accepts_parameter(experiment_id, "mission_length")


def run_experiment(
    experiment_id: str,
    seed: int | None = None,
    sweep: "SweepOrchestrator | None" = None,
    precision: float | None = None,
    max_instances: int | None = None,
    estimator: str | None = None,
    tilt_shift: float | None = None,
    tilt_scale: float | None = None,
    mission_length: int | None = None,
    mission_seed: int | None = None,
    correlation: str | None = None,
) -> ExperimentResult:
    """Run a registered experiment by id.

    Args:
        experiment_id: the registered id.
        seed: optional RNG seed threaded into experiments that accept one
            (see :func:`accepts_seed`); experiments without randomness
            ignore it.
        sweep: optional :class:`~repro.sweep.SweepOrchestrator` threaded
            into experiments that accept one (see :func:`accepts_sweep`);
            experiments without a parameter grid ignore it.
        precision: optional target confidence-interval half-width; switches
            the Monte-Carlo experiments that accept it (see
            :func:`accepts_adaptive`) from their fixed per-cell instance
            counts to the adaptive sampler of :mod:`repro.mc`.
        max_instances: optional hard per-cell sample cap for the adaptive
            sampler; only meaningful together with ``precision``.
        estimator: optional rare-event estimator name (``vanilla`` /
            ``stratified`` / ``importance``) threaded into experiments
            that accept one (see :func:`accepts_estimator`).
        tilt_shift: optional scale on the importance tilt direction;
            only reaches estimator-aware experiments.
        tilt_scale: optional proposal sigma widening of the importance
            tilt; only reaches estimator-aware experiments.
        mission_length: optional mission length in switching periods,
            threaded into experiments that accept missions (see
            :func:`accepts_mission`).
        mission_seed: optional seed of the per-instance mission draws;
            only reaches mission-aware experiments.
        correlation: optional component-correlation preset name (see
            :data:`repro.core.yield_analysis.CORRELATION_PRESETS`); only
            reaches mission-aware experiments.

    Raises:
        KeyError: if the id is unknown.
    """
    try:
        runner = registry[experiment_id]
    except KeyError as exc:
        known = ", ".join(sorted(registry))
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known experiments: {known}"
        ) from exc
    if max_instances is not None and precision is None:
        raise ValueError("max_instances is only meaningful with a precision")
    kwargs: dict[str, Any] = {}
    if seed is not None and accepts_seed(experiment_id):
        kwargs["seed"] = seed
    if sweep is not None and accepts_sweep(experiment_id):
        kwargs["sweep"] = sweep
    if precision is not None and accepts_adaptive(experiment_id):
        kwargs["precision"] = precision
        if max_instances is not None:
            kwargs["max_instances"] = max_instances
    if accepts_estimator(experiment_id):
        if estimator is not None:
            kwargs["estimator"] = estimator
        if tilt_shift is not None:
            kwargs["tilt_shift"] = tilt_shift
        if tilt_scale is not None:
            kwargs["tilt_scale"] = tilt_scale
    if accepts_mission(experiment_id):
        if mission_length is not None:
            kwargs["mission_length"] = mission_length
        if mission_seed is not None:
            kwargs["mission_seed"] = mission_seed
        if correlation is not None:
            kwargs["correlation"] = correlation
    return runner(**kwargs)

"""Figures 47-48 -- locking timing of the proposed controller.

The proposed controller walks ``tap_sel`` up one cell per clock cycle until
the watched tap's delay exceeds half the clock period, then steps back down;
the up/down toggling is the lock indication.  The experiment runs the
cycle-accurate model at the three corners, reports the tap_sel trajectory
(the data of the paper's locking diagrams) and compares the lock time against
the conventional controller -- the paper's "fast calibration" claim.
"""

from __future__ import annotations

from repro.analysis.reports import format_series, format_table
from repro.core.conventional import ShiftRegisterController
from repro.core.design import DesignSpec, design_conventional, design_proposed
from repro.core.proposed import ProposedController
from repro.experiments.base import ExperimentResult, register
from repro.technology.corners import OperatingConditions, ProcessCorner
from repro.technology.library import intel32_like_library

__all__ = ["run"]


@register("fig47_48")
def run() -> ExperimentResult:
    """Regenerate Figures 47-48 (proposed controller locking)."""
    library = intel32_like_library()
    spec = DesignSpec(clock_frequency_mhz=100.0, resolution_bits=6)
    proposed_line = design_proposed(spec, library).build_line(library=library)
    conventional_line = design_conventional(spec, library).build_line(library=library)

    rows = []
    per_corner = {}
    fast_trace = None
    for corner in ProcessCorner:
        conditions = OperatingConditions(corner=corner)
        proposed_result = ProposedController(proposed_line).lock(conditions)
        conventional_result = ShiftRegisterController(conventional_line).lock(
            conditions
        )
        per_corner[corner.name.lower()] = {
            "proposed_tap_sel": proposed_result.control_state,
            "proposed_lock_cycles": proposed_result.lock_cycles,
            "proposed_locked": proposed_result.locked,
            "conventional_lock_cycles": conventional_result.lock_cycles,
            "half_period_error_ps": proposed_result.residual_error_ps,
        }
        if corner is ProcessCorner.FAST:
            fast_trace = proposed_result.trace
        rows.append(
            [
                corner.name.lower(),
                proposed_result.control_state,
                proposed_result.lock_cycles,
                conventional_result.lock_cycles,
                "yes" if proposed_result.locked else "no",
            ]
        )

    summary = format_table(
        headers=[
            "Corner",
            "Locked tap_sel (cells per half period)",
            "Proposed lock cycles",
            "Conventional lock cycles",
            "Proposed locked",
        ],
        rows=rows,
        title="Figures 47-48 -- proposed controller locking vs the conventional DLL",
    )
    if fast_trace is None:
        raise RuntimeError("corner sweep did not visit the fast corner")
    trace_report = format_series(
        x_label="cycle",
        x_values=[step.cycle for step in fast_trace.steps],
        series={
            "tap_sel": [float(step.control_state) for step in fast_trace.steps],
            "watched tap delay (ps)": [
                step.line_delay_ps for step in fast_trace.steps
            ],
        },
        title="Fast-corner locking trace (half period = 5000 ps)",
        max_rows=16,
    )
    return ExperimentResult(
        experiment_id="fig47_48",
        title="Proposed controller locking (paper Figures 47-48)",
        data={"per_corner": per_corner},
        report=summary + "\n\n" + trace_report,
        paper_reference={
            "lock_indication": "up/down toggling around the half-period tap",
            "claim": "the controller updates every clock cycle, so calibration "
            "is faster than the conventional scheme",
        },
    )

"""Command-line runner for the experiment harnesses.

Usage::

    repro-experiments --list
    repro-experiments table5 fig50_51
    repro-experiments --all
    repro-experiments fig50_51_mc --json results.json
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from dataclasses import asdict, is_dataclass

import numpy as np

from repro.experiments import registry, run_experiment
from repro.experiments.base import accepts_seed

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (see --list)",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every registered experiment"
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiment ids"
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="dump the structured results (ExperimentResult.data and "
        "paper references) of the selected experiments as JSON",
    )
    parser.add_argument(
        "--seed",
        type=int,
        metavar="INT",
        help="RNG seed threaded into the Monte-Carlo experiments (fig15, "
        "fig15_mc, fig50_51_mc) in place of their built-in default; "
        "experiments without randomness ignore it",
    )
    return parser


def _jsonable(value):
    """Recursively convert experiment data into JSON-serializable types."""
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    if is_dataclass(value) and not isinstance(value, type):
        return _jsonable(asdict(value))
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    return value


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in sorted(registry):
            print(experiment_id)
        return 0

    if args.all and args.experiments:
        print(
            "--all runs every experiment and cannot be combined with "
            f"explicit ids ({', '.join(args.experiments)})",
            file=sys.stderr,
        )
        return 2

    if args.all:
        selected = sorted(registry)
    else:
        selected = list(args.experiments)
    if not selected:
        parser.print_help()
        return 1

    unknown = [name for name in selected if name not in registry]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known experiments: {', '.join(sorted(registry))}", file=sys.stderr)
        return 2

    if args.seed is not None:
        ignoring = [name for name in selected if not accepts_seed(name)]
        if ignoring:
            print(
                f"--seed only reaches the Monte-Carlo experiments; ignored by: "
                f"{', '.join(ignoring)}",
                file=sys.stderr,
            )

    collected: dict[str, dict] = {}
    failures: list[str] = []
    for experiment_id in selected:
        try:
            result = run_experiment(experiment_id, seed=args.seed)
        except Exception as error:  # noqa: BLE001 - report and keep going
            failures.append(experiment_id)
            print(
                f"experiment {experiment_id} failed: "
                f"{type(error).__name__}: {error}",
                file=sys.stderr,
            )
            continue
        print(f"=== {result.experiment_id}: {result.title} ===")
        print(result.report)
        print()
        collected[experiment_id] = {
            "title": result.title,
            "data": _jsonable(result.data),
            "paper_reference": _jsonable(result.paper_reference),
        }

    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(collected, handle, indent=2, sort_keys=True)
        print(f"wrote {len(collected)} experiment result(s) to {args.json}")

    if failures:
        print(f"failed experiments: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Command-line runner for the experiment harnesses.

Usage::

    repro-experiments --list
    repro-experiments table5 fig50_51
    repro-experiments --all
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from repro.experiments import registry, run_experiment

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (see --list)",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every registered experiment"
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiment ids"
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in sorted(registry):
            print(experiment_id)
        return 0

    if args.all:
        selected = sorted(registry)
    else:
        selected = list(args.experiments)
    if not selected:
        parser.print_help()
        return 1

    unknown = [name for name in selected if name not in registry]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known experiments: {', '.join(sorted(registry))}", file=sys.stderr)
        return 2

    for experiment_id in selected:
        result = run_experiment(experiment_id)
        print(f"=== {result.experiment_id}: {result.title} ===")
        print(result.report)
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

"""Command-line runner for the experiment harnesses.

Usage::

    repro-experiments --list
    repro-experiments table5 fig50_51
    repro-experiments --all --workers 8 --cache-dir .sweep-cache
    repro-experiments fig50_51_mc --json results.json
    repro-experiments fig50_51_mc --precision 0.02 --max-instances 4000
    repro-experiments fig15_mc --executor shared-cache --cache-dir /shared \\
        --progress

``--workers`` fans the grid experiments' sweep cells out across a
``multiprocessing`` pool and ``--cache-dir`` memoizes each cell's payload
in an on-disk content-addressed cache (see :mod:`repro.sweep`), so
``--all`` saturates the machine on a cold run and warm re-runs are
near-instant -- with bit-identical ``--json`` output either way.
``--executor`` picks the execution strategy explicitly (``serial``,
``process-pool`` or ``shared-cache``); under ``shared-cache`` any number
of independent invocations pointed at the same ``--cache-dir``
cooperatively drain one grid, claiming cells idempotently, and a killed
run resumes with zero recomputation (see ``docs/sweeps.md``).
``--progress`` streams cells done/total, the hit/computed split,
cells/sec and an ETA to stderr while the sweep runs.
``--precision`` switches the Monte-Carlo experiments from their fixed
per-cell instance counts to confidence-bounded adaptive sampling
(:mod:`repro.mc`): each cell stops as soon as the 95 % confidence
interval on its yield has the requested half-width, or when the
``--max-instances`` cap is spent.  See ``docs/monte_carlo.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from collections.abc import Sequence

from repro.experiments import registry, run_experiment
from repro.experiments.base import (
    accepts_adaptive,
    accepts_estimator,
    accepts_mission,
    accepts_seed,
    accepts_sweep,
)
from repro.sweep import SweepConfig, SweepOrchestrator, jsonable

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "experiments",
        nargs="*",
        help="experiment ids to run (see --list)",
    )
    parser.add_argument(
        "--all", action="store_true", help="run every registered experiment"
    )
    parser.add_argument(
        "--list", action="store_true", help="list available experiment ids"
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="dump the structured results (ExperimentResult.data and "
        "paper references) of the selected experiments as JSON; refuses "
        "to overwrite an existing file unless --force is given",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing --json output file",
    )
    parser.add_argument(
        "--seed",
        type=int,
        metavar="INT",
        help="RNG seed threaded into the Monte-Carlo experiments (fig15, "
        "fig15_mc, fig50_51_mc) in place of their built-in default; "
        "experiments without randomness ignore it",
    )
    parser.add_argument(
        "--precision",
        type=float,
        metavar="FLOAT",
        help="adaptive Monte-Carlo: replace the fixed per-cell instance "
        "counts of fig15/fig15_mc/fig50_51_mc with confidence-bounded "
        "sampling that stops once the 95 %% CI on each cell's yield has "
        "this half-width (e.g. 0.02); other experiments ignore it",
    )
    parser.add_argument(
        "--max-instances",
        type=int,
        metavar="N",
        help="hard per-cell sample cap for --precision (default: 4x the "
        "experiment's fixed instance count); requires --precision",
    )
    parser.add_argument(
        "--estimator",
        choices=("vanilla", "stratified", "importance"),
        metavar="NAME",
        help="rare-event estimator for the experiments that support one "
        "(fig15_rare): 'vanilla' (brute-force adaptive sampling), "
        "'stratified' (sigma-shell strata, Neyman allocation) or "
        "'importance' (tilted draws, self-normalized reweighting; the "
        "default); recorded in the sweep cache key, so estimator variants "
        "of a cell never collide (see docs/monte_carlo.md)",
    )
    parser.add_argument(
        "--tilt-shift",
        type=float,
        metavar="FLOAT",
        help="importance sampling: scale on the experiment's built-in tilt "
        "direction (1.0 keeps the stock tilt, 0 disables the mean shift); "
        "requires --estimator importance (or the default)",
    )
    parser.add_argument(
        "--tilt-scale",
        type=float,
        metavar="FLOAT",
        help="importance sampling: sigma widening of the tilted proposal "
        "(must be > 0; values > 1 guard against weight degeneracy); "
        "requires --estimator importance (or the default)",
    )
    parser.add_argument(
        "--mission-length",
        type=int,
        metavar="N",
        help="mission experiments (fig15_mission): mission length in "
        "switching periods (must cover the experiment's segment count); "
        "a sweep-cache-key coordinate, so length variants never collide",
    )
    parser.add_argument(
        "--mission-seed",
        type=int,
        metavar="INT",
        help="mission experiments: seed of the per-instance mission draws, "
        "independent of --seed so workloads can be rethreaded without "
        "refabricating the fleet; a sweep-cache-key coordinate",
    )
    parser.add_argument(
        "--correlation",
        metavar="PRESET",
        help="mission experiments: component-correlation preset coupling "
        "the per-chip electrical spreads ('identity', 'passives' or "
        "'thermal'; see docs/monte_carlo.md); a sweep-cache-key coordinate",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for the grid experiments' sweep cells "
        "(fig15, fig15_mc, fig50_51_mc); experiments without a parameter "
        "grid run unchanged",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        help="on-disk content-addressed cache for sweep-cell results; "
        "warm re-runs only recompute cells whose experiment id, "
        "parameters, seed or package sources changed",
    )
    parser.add_argument(
        "--executor",
        metavar="NAME",
        help="sweep execution strategy (see docs/sweeps.md): 'serial' "
        "(in-process loop), 'process-pool' (one box, all --workers cores, "
        "unordered fan-out) or 'shared-cache' (cooperating invocations "
        "claim cells idempotently through --cache-dir, which it requires); "
        "default: process-pool when --workers > 1, serial otherwise",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="stream sweep progress to stderr while cells run: cells "
        "done/total, cache-hit/computed split, cells/sec and ETA (one "
        "line per second; format documented in docs/sweeps.md)",
    )
    parser.add_argument(
        "--prune-cache",
        action="store_true",
        help="before running, delete cache entries written by other "
        "versions of the package sources (they can never be hits again); "
        "requires --cache-dir",
    )
    parser.add_argument(
        "--backend",
        metavar="NAME",
        help="kernel backend for the vectorized engines (see "
        "docs/backends.md): 'numpy' (default) or 'numba' (JIT-compiled "
        "per-period kernels; silently falls back to numpy when numba is "
        "not installed); exported as REPRO_BACKEND so sweep workers "
        "inherit it, and recorded in the sweep cache key",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list:
        for experiment_id in sorted(registry):
            print(experiment_id)
        return 0

    if args.all and args.experiments:
        print(
            "--all runs every experiment and cannot be combined with "
            f"explicit ids ({', '.join(args.experiments)})",
            file=sys.stderr,
        )
        return 2

    if args.workers < 1:
        print(f"--workers must be >= 1, got {args.workers}", file=sys.stderr)
        return 2

    if args.executor is not None:
        from repro.sweep import EXECUTOR_NAMES

        if args.executor not in EXECUTOR_NAMES:
            print(
                f"unknown --executor {args.executor!r}; available: "
                f"{', '.join(EXECUTOR_NAMES)}",
                file=sys.stderr,
            )
            return 2
        if args.executor == "shared-cache" and args.cache_dir is None:
            print(
                "--executor shared-cache coordinates workers through the "
                "result cache; it requires --cache-dir",
                file=sys.stderr,
            )
            return 2

    if args.backend is not None:
        from repro.kernels import ENV_VAR, active_backend_name, available_backends

        if args.backend not in available_backends():
            print(
                f"unknown --backend {args.backend!r}; available: "
                f"{', '.join(available_backends())}",
                file=sys.stderr,
            )
            return 2
        # The env var is the selection channel every engine and every
        # multiprocessing sweep worker reads (explicit args aside).
        os.environ[ENV_VAR] = args.backend
        effective = active_backend_name()
        if effective != args.backend:
            print(
                f"--backend {args.backend}: not available in this "
                f"environment, running on the {effective!r} backend",
                file=sys.stderr,
            )

    if args.prune_cache and args.cache_dir is None:
        print("--prune-cache requires --cache-dir", file=sys.stderr)
        return 2

    if args.precision is not None and not 0.0 < args.precision < 0.5:
        print(
            f"--precision must be in (0, 0.5), got {args.precision}",
            file=sys.stderr,
        )
        return 2

    if args.max_instances is not None:
        if args.precision is None:
            print("--max-instances requires --precision", file=sys.stderr)
            return 2
        if args.max_instances < 1:
            print(
                f"--max-instances must be >= 1, got {args.max_instances}",
                file=sys.stderr,
            )
            return 2

    if args.estimator is not None and args.estimator != "importance":
        if args.tilt_shift is not None or args.tilt_scale is not None:
            print(
                "--tilt-shift/--tilt-scale parameterize the importance "
                f"estimator; they cannot be combined with --estimator "
                f"{args.estimator}",
                file=sys.stderr,
            )
            return 2

    if args.tilt_scale is not None and args.tilt_scale <= 0.0:
        print(
            f"--tilt-scale must be > 0, got {args.tilt_scale}", file=sys.stderr
        )
        return 2

    if args.mission_length is not None and args.mission_length < 1:
        print(
            f"--mission-length must be >= 1, got {args.mission_length}",
            file=sys.stderr,
        )
        return 2

    if args.correlation is not None:
        from repro.core.yield_analysis import CORRELATION_PRESETS

        if args.correlation not in CORRELATION_PRESETS:
            print(
                f"unknown --correlation {args.correlation!r}; available: "
                f"{', '.join(sorted(CORRELATION_PRESETS))}",
                file=sys.stderr,
            )
            return 2

    if args.json is not None and not args.force and os.path.exists(args.json):
        print(
            f"refusing to overwrite existing {args.json}; pass --force to "
            "replace it",
            file=sys.stderr,
        )
        return 2

    if args.all:
        selected = sorted(registry)
    else:
        selected = list(args.experiments)
    if not selected:
        parser.print_help()
        return 1

    unknown = [name for name in selected if name not in registry]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"known experiments: {', '.join(sorted(registry))}", file=sys.stderr)
        return 2

    if args.seed is not None:
        ignoring = [name for name in selected if not accepts_seed(name)]
        if ignoring:
            print(
                f"--seed only reaches the Monte-Carlo experiments; ignored by: "
                f"{', '.join(ignoring)}",
                file=sys.stderr,
            )

    if args.precision is not None:
        ignoring = [name for name in selected if not accepts_adaptive(name)]
        if ignoring:
            print(
                f"--precision only reaches the Monte-Carlo experiments; "
                f"ignored by: {', '.join(ignoring)}",
                file=sys.stderr,
            )

    if (
        args.estimator is not None
        or args.tilt_shift is not None
        or args.tilt_scale is not None
    ):
        ignoring = [name for name in selected if not accepts_estimator(name)]
        if ignoring:
            print(
                "--estimator/--tilt-shift/--tilt-scale only reach the "
                f"rare-event experiments; ignored by: {', '.join(ignoring)}",
                file=sys.stderr,
            )

    if (
        args.mission_length is not None
        or args.mission_seed is not None
        or args.correlation is not None
    ):
        ignoring = [name for name in selected if not accepts_mission(name)]
        if ignoring:
            print(
                "--mission-length/--mission-seed/--correlation only reach "
                f"the mission experiments; ignored by: {', '.join(ignoring)}",
                file=sys.stderr,
            )

    sweep = None
    if (
        args.workers > 1
        or args.cache_dir is not None
        or args.executor is not None
        or args.progress
    ):
        ignoring = [name for name in selected if not accepts_sweep(name)]
        if ignoring:
            print(
                "--workers/--cache-dir/--executor/--progress only reach the "
                f"grid experiments; ignored by: {', '.join(ignoring)}",
                file=sys.stderr,
            )
        sweep = SweepOrchestrator(
            SweepConfig(
                workers=args.workers,
                cache_dir=args.cache_dir,
                executor=args.executor,
                progress=args.progress,
            )
        )
        if args.prune_cache:
            pruned = sweep.cache.prune()
            print(
                f"sweep cache: pruned {pruned} stale entr"
                f"{'y' if pruned == 1 else 'ies'}",
                file=sys.stderr,
            )

    collected: dict[str, dict[str, object]] = {}
    failures: list[str] = []
    try:
        for experiment_id in selected:
            try:
                result = run_experiment(
                    experiment_id,
                    seed=args.seed,
                    sweep=sweep,
                    precision=args.precision,
                    max_instances=args.max_instances,
                    estimator=args.estimator,
                    tilt_shift=args.tilt_shift,
                    tilt_scale=args.tilt_scale,
                    mission_length=args.mission_length,
                    mission_seed=args.mission_seed,
                    correlation=args.correlation,
                )
            except Exception as error:  # noqa: BLE001 - report and keep going
                failures.append(experiment_id)
                print(
                    f"experiment {experiment_id} failed: "
                    f"{type(error).__name__}: {error}",
                    file=sys.stderr,
                )
                continue
            print(f"=== {result.experiment_id}: {result.title} ===")
            print(result.report)
            print()
            collected[experiment_id] = {
                "title": result.title,
                "data": jsonable(result.data),
                "paper_reference": jsonable(result.paper_reference),
            }
    finally:
        if sweep is not None:
            sweep.close()

    if sweep is not None and sweep.cache is not None:
        print(
            f"sweep cache: {sweep.hits} hit(s), {sweep.misses} miss(es) "
            f"in {sweep.cache.root}",
            file=sys.stderr,
        )

    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(collected, handle, indent=2, sort_keys=True)
        print(f"wrote {len(collected)} experiment result(s) to {args.json}")

    if failures:
        print(f"failed experiments: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

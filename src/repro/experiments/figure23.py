"""Figure 23 -- timing diagram of the hybrid DPWM.

The paper's worked example: a 5-bit hybrid DPWM (3 counter bits + 2
delay-line bits) driven with duty word 10110.  The comparator match (delclk)
fires when the counter reaches the MSBs (101), the delay-line tap selected by
the LSBs (10) resets the output, producing a duty of 23/32 = 71.9 %.

The experiment simulates that exact case plus a sweep of all 32 duty words to
show the hybrid covers the full range with its coarse clock and short line.
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.dpwm.hybrid_dpwm import HybridDPWM, HybridDPWMConfig
from repro.experiments.base import ExperimentResult, register

__all__ = ["run"]

MSB_BITS = 3
LSB_BITS = 2
SWITCHING_FREQUENCY_MHZ = 1.0
PAPER_DUTY_WORD = 0b10110


@register("fig23")
def run() -> ExperimentResult:
    """Regenerate Figure 23 (hybrid DPWM timing, duty word 10110)."""
    dpwm = HybridDPWM(
        HybridDPWMConfig(
            msb_bits=MSB_BITS,
            lsb_bits=LSB_BITS,
            switching_frequency_mhz=SWITCHING_FREQUENCY_MHZ,
        )
    )
    featured = dpwm.generate(PAPER_DUTY_WORD)

    sweep_rows = []
    sweep = {}
    for word in range(1 << (MSB_BITS + LSB_BITS)):
        waveform = dpwm.generate(word)
        sweep[word] = waveform.measured_duty
        if word % 8 == 6 or word == PAPER_DUTY_WORD:
            sweep_rows.append(
                [
                    format(word, "05b"),
                    f"{100 * waveform.request.ideal_duty:.2f} %",
                    f"{100 * waveform.measured_duty:.2f} %",
                ]
            )

    table = format_table(
        headers=["Duty word", "Ideal duty", "Measured duty"],
        rows=sweep_rows,
        title=(
            "Figure 23 -- hybrid DPWM (3 msb counter + 2 lsb delay line), "
            f"featured word {PAPER_DUTY_WORD:05b}"
        ),
    )
    report = table + "\n\n" + featured.timing_diagram()
    data = {
        "featured_word": PAPER_DUTY_WORD,
        "featured_duty": featured.measured_duty,
        "featured_ideal": featured.request.ideal_duty,
        "sweep": sweep,
        "counter_clock_mhz": dpwm.required_clock_frequency_mhz(),
        "num_cells": dpwm.config.num_cells,
    }
    return ExperimentResult(
        experiment_id="fig23",
        title="Hybrid DPWM timing (paper Figure 23)",
        data=data,
        report=report,
        paper_reference={
            "featured_duty": 23 / 32,
            "clock_vs_switching": 8,
            "pure_counter_clock_vs_switching": 32,
            "pure_delay_line_cells": 32,
        },
    )

"""Figure 15, mission edition -- yield over randomized long-horizon missions.

The other Figure 15 experiments score the closed loop against a *single*
workload event (a static load, one load step).  Real regulators are
qualified over missions: long randomized chains of the load primitives in
which ramps, pulse trains and bursts follow each other while the die's
temperature drifts.  Per (scheme, corner) cell this experiment:

* draws every instance its own mission from a seeded, chunk-invariant
  :class:`~repro.converter.missions.MissionGenerator` (``--mission-length``
  / ``--mission-seed`` are cell coordinates, so mission variants occupy
  distinct sweep-cache slots);
* rides the whole fleet over a hot-middle temperature trace (25 -> 85 ->
  25 degC in thirds): at each thermal epoch the silicon is re-locked
  through the corner model and the electricals re-derated
  (:mod:`repro.technology.thermal`), with exact state carry-over;
* couples the component spreads through a named correlation preset
  (``--correlation``; see
  :data:`~repro.core.yield_analysis.CORRELATION_PRESETS`); and
* scores each instance with :func:`~repro.core.yield_analysis
  .mission_yield`: a chip survives only when *every* segment window of its
  mission meets the :class:`~repro.core.yield_analysis.MissionSpec`, and
  the payload carries per-segment failure attribution (which leg of the
  mission kills chips).

See ``docs/monte_carlo.md`` for the mission composition semantics and the
correlation math.
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.converter.missions import MissionGenerator
from repro.core.design import DesignSpec
from repro.core.yield_analysis import (
    CORRELATION_PRESETS,
    ComponentVariation,
    MissionSpec,
    component_correlation_preset,
    mission_yield,
)
from repro.experiments.base import ExperimentResult, register
from repro.sweep import ParameterGrid, SweepOrchestrator, sweep_map
from repro.technology.corners import OperatingConditions, ProcessCorner
from repro.technology.thermal import TemperatureTrace, ThermalDerating
from repro.technology.variation import VariationModel

__all__ = [
    "run",
    "run_cell",
    "GRID",
    "DEFAULT_MISSION_LENGTH",
    "DEFAULT_MISSION_SEED",
    "DEFAULT_CORRELATION",
    "NUM_INSTANCES",
    "NUM_SEGMENTS",
    "HOT_TEMPERATURE_C",
    "LIGHT_OHM",
    "HEAVY_OHM",
]

FREQUENCY_MHZ = 100.0
RESOLUTION_BITS = 6
REFERENCE_V = 0.9
DEFAULT_SEED = 2012
NUM_INSTANCES = 48
NUM_SEGMENTS = 6
DEFAULT_MISSION_LENGTH = 360
DEFAULT_MISSION_SEED = 2012
DEFAULT_CORRELATION = "passives"
#: Hot-middle junction temperature of the 25 -> 85 -> 25 degC trace.
HOT_TEMPERATURE_C = 85.0
#: Mission load levels.  The loop's load-step recovery spans tens of
#: periods, so the heavy leg is chosen milder than the single-event
#: experiments' 0.9 ohm: random segment cuts land mid-recovery, and at
#: 0.9 ohm every instance fails some segment (degenerate yield).
LIGHT_OHM = 2.0
HEAVY_OHM = 1.4
#: Per-segment spec: the tail of every segment window must settle within
#: the tolerance and the whole window must stay above the dip limit (the
#: segment-boundary transient is scored, not skipped).  Calibrated so the
#: 48-instance fleet's worst-segment statistics straddle the limits
#: (yields around 0.5-0.6, not 0 or 1).
SPEC = MissionSpec(tolerance_v=0.10, dip_limit_v=0.20, tail_fraction=0.25)

GRID = ParameterGrid(
    scheme=("proposed", "conventional"),
    corner=tuple(
        c.name.lower() for c in (ProcessCorner.TYPICAL, ProcessCorner.SLOW)
    ),
)


def _temperature_trace(mission_length: int) -> TemperatureTrace:
    """The shared hot-middle trace, in thirds of the mission length."""
    third = mission_length // 3
    return TemperatureTrace(
        temperatures_c=(25.0, HOT_TEMPERATURE_C, 25.0),
        durations_periods=(third, third, mission_length - 2 * third),
    )


def run_cell(params: dict) -> dict:
    """Mission-yield payload of one (scheme, corner) cell.

    Module-level and driven entirely by scalar ``params`` (scheme, corner,
    seed, mission length/seed, correlation preset name), so the sweep
    orchestrator can pickle it into workers and content-address the
    result -- mission and correlation variants never collide in the cache.
    """
    conditions = OperatingConditions(
        corner=ProcessCorner[params["corner"].upper()]
    )
    missions = MissionGenerator(
        total_periods=params["mission_length"],
        num_segments=NUM_SEGMENTS,
        seed=params["mission_seed"],
        light_ohm=LIGHT_OHM,
        heavy_ohm=HEAVY_OHM,
    )
    result = mission_yield(
        params["scheme"],
        DesignSpec(
            clock_frequency_mhz=FREQUENCY_MHZ, resolution_bits=RESOLUTION_BITS
        ),
        conditions,
        missions=missions,
        mission_spec=SPEC,
        reference_v=REFERENCE_V,
        variation=VariationModel(seed=params["seed"]),
        component_variation=ComponentVariation(seed=params["seed"]),
        correlation=component_correlation_preset(params["correlation"]),
        temperature_trace=_temperature_trace(params["mission_length"]),
        thermal=ThermalDerating(),
        num_instances=NUM_INSTANCES,
    )
    payload = result.summary()
    payload["correlation"] = params["correlation"]
    payload["mission_length"] = params["mission_length"]
    return payload


@register("fig15_mission")
def run(
    seed: int | None = None,
    sweep: SweepOrchestrator | None = None,
    mission_length: int | None = None,
    mission_seed: int | None = None,
    correlation: str | None = None,
) -> ExperimentResult:
    """Mission-survival yield per (scheme, process corner) cell.

    Args:
        seed: RNG seed for the silicon and component draws (the CLI's
            ``--seed``).
        sweep: optional :class:`~repro.sweep.SweepOrchestrator` (the CLI's
            ``--workers`` / ``--cache-dir`` flags).
        mission_length: mission length in switching periods (the CLI's
            ``--mission-length``); must cover the generator's
            :data:`NUM_SEGMENTS`.
        mission_seed: seed of the per-instance mission draws (the CLI's
            ``--mission-seed``), independent of ``seed`` so workloads can
            be rethreaded without refabricating the fleet.
        correlation: component correlation preset name (the CLI's
            ``--correlation``); one of
            :data:`~repro.core.yield_analysis.CORRELATION_PRESETS`.
    """
    mission_length = (
        DEFAULT_MISSION_LENGTH if mission_length is None else mission_length
    )
    if mission_length < NUM_SEGMENTS:
        raise ValueError(
            f"mission_length must cover the {NUM_SEGMENTS} segments; "
            f"got {mission_length}"
        )
    correlation = DEFAULT_CORRELATION if correlation is None else correlation
    if correlation not in CORRELATION_PRESETS:
        raise ValueError(
            f"unknown correlation preset {correlation!r}; available: "
            f"{', '.join(sorted(CORRELATION_PRESETS))}"
        )
    cells = GRID.cells(
        seed=DEFAULT_SEED if seed is None else seed,
        mission_length=mission_length,
        mission_seed=DEFAULT_MISSION_SEED if mission_seed is None else mission_seed,
        correlation=correlation,
    )
    payloads = sweep_map(
        run_cell, cells, experiment_id="fig15_mission", sweep=sweep
    )

    data: dict[str, dict] = {}
    rows = []
    for cell, entry in zip(cells, payloads):
        data.setdefault(cell["scheme"], {})[cell["corner"]] = entry
        failing = sum(entry["first_failure_counts"])
        worst = entry["worst_segment"]
        rows.append(
            [
                cell["scheme"],
                cell["corner"],
                f"{entry['mission_yield']:.3f}",
                f"{failing}/{entry['num_instances']}",
                "-" if worst is None else str(worst),
                " ".join(str(count) for count in entry["segment_failure_counts"]),
            ]
        )

    report = format_table(
        headers=[
            "Scheme",
            "Corner",
            "Mission yield",
            "Failing",
            "Worst seg",
            "Per-segment failures",
        ],
        rows=rows,
        title=(
            f"Figure 15 mission -- {NUM_SEGMENTS}-segment randomized "
            f"missions over {mission_length} periods, 25->{HOT_TEMPERATURE_C:.0f}"
            f"->25 degC, correlation preset '{correlation}' "
            f"({NUM_INSTANCES} instances/cell)"
        ),
    )
    return ExperimentResult(
        experiment_id="fig15_mission",
        title="Mission-profile survival yield per scheme and process corner "
        "(long-horizon Figure 15)",
        data=data,
        report=report,
        paper_reference={
            "claims": [
                "regulators are qualified over composed workload missions, "
                "not single events",
                "temperature drift moves the delay-line operating point "
                "through the corner model during a mission",
            ]
        },
    )

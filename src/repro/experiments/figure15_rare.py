"""Figure 15, rare-event edition -- ppm-regime load-step failure rates.

The ``fig15_mc`` experiment scores yields that live in the percent range,
where a few hundred vanilla samples resolve the interval.  This experiment
asks the tail question instead: *how often does the closed loop's load-step
undershoot cross a guard-banded dip limit?*  At the shipped limit that is a
~1e-4 event -- vanilla adaptive sampling needs hundreds of thousands of
fleet simulations before the Wilson interval says anything, which is
exactly the regime the variance-reduced estimators of :mod:`repro.mc` are
for.

Per (process corner) cell, one ideal proposed delay line is designed and
calibrated at the corner, its duty table is shared across the fleet, and
the component spreads (:class:`~repro.core.yield_analysis.ComponentVariation`)
drive the failure statistics through
:func:`~repro.core.yield_analysis.rare_event_regulation_yield`.  The
estimator is a cell coordinate (the CLI's ``--estimator``), so vanilla,
stratified and importance runs of the same cell occupy distinct slots in
the sweep cache:

* ``importance`` (default) -- draws are tilted toward slow inductors and
  small capacitors (the axes the dip correlates with) and reweighted back
  through per-instance likelihood ratios; the stopping rule requires both
  the target CI half-width and a minimum effective sample size.
* ``stratified`` -- sigma-shells of the capacitance draw with Neyman
  chunk allocation.
* ``vanilla`` -- the brute-force baseline (expect it to exhaust the cap).

``--tilt-shift`` scales the built-in tilt direction and ``--tilt-scale``
sets the proposal's sigma widening; both join the cache key.  See
``docs/monte_carlo.md`` for the estimator math and tilt guidance.
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.converter.buck import BuckParameters
from repro.converter.load import SteppedLoad
from repro.core.design import DesignSpec
from repro.core.yield_analysis import (
    ComponentStratification,
    ComponentTilt,
    ComponentVariation,
    rare_event_regulation_yield,
)
from repro.experiments.base import ExperimentResult, register
from repro.pipeline import fabricate_ensemble
from repro.simulation.batch import BatchQuantizer
from repro.sweep import ParameterGrid, SweepOrchestrator, sweep_map
from repro.technology.corners import OperatingConditions, ProcessCorner
from repro.technology.library import intel32_like_library

__all__ = [
    "run",
    "run_cell",
    "GRID",
    "DIP_LIMIT_V",
    "DEFAULT_PRECISION",
    "DEFAULT_MAX_INSTANCES",
    "CHUNK_SIZE",
    "ESTIMATORS",
    "TILT_INDUCTANCE_SHIFT",
    "TILT_CAPACITANCE_SHIFT",
    "DEFAULT_TILT_SCALE",
]

FREQUENCY_MHZ = 100.0
RESOLUTION_BITS = 6
REFERENCE_V = 0.9
DEFAULT_SEED = 2012
PERIODS = 160
#: Periods excluded from the dip measurement while the loop settles; the
#: load step lands on this period, so the window scores the transient.
SETTLE_PERIODS = 60
#: Undershoot threshold defining failure.  Calibrated against a 262144-
#: sample brute-force run of the slow-corner cell: the dip distribution's
#: 1.1e-4 quantile, i.e. a guard band that a nominal fleet crosses at ppm
#: rates (the regime the estimators are built for).
DIP_LIMIT_V = 0.5930
#: Target CI half-width on the failure probability -- about half the
#: slow-corner cell's true failure rate, so a resolved interval actually
#: separates the estimate from zero.
DEFAULT_PRECISION = 5e-5
DEFAULT_MAX_INSTANCES = 16384
CHUNK_SIZE = 2048
ESTIMATORS = ("vanilla", "stratified", "importance")
#: Built-in tilt direction, from the dip's component correlations (slower
#: inductors and smaller capacitors deepen the undershoot); ``--tilt-shift``
#: scales both components together.
TILT_INDUCTANCE_SHIFT = 1.2
TILT_CAPACITANCE_SHIFT = -2.5
#: Proposal sigma widening; >1 keeps the importance weights well behaved
#: (see docs/monte_carlo.md).
DEFAULT_TILT_SCALE = 1.3
#: The load step: light to heavy at the settle boundary, no step back
#: within the run, so the minimum after settling is the step transient.
LOAD = SteppedLoad(
    light_ohm=2.0, heavy_ohm=0.9, step_up_period=60, step_down_period=100000
)

GRID = ParameterGrid(
    corner=tuple(c.name.lower() for c in (ProcessCorner.SLOW, ProcessCorner.FAST)),
)


def _duty_levels(corner: str) -> "BatchQuantizer":
    """Calibrate one ideal proposed line at the corner; share its duty table.

    The rare-event question here is about the *electrical* tails, so the
    silicon side is held at its nominal design point: one mismatch-free
    instance, locked closed-form at the corner, its quantizer levels
    broadcast over the whole component-varied fleet.
    """
    spec = DesignSpec(
        clock_frequency_mhz=FREQUENCY_MHZ, resolution_bits=RESOLUTION_BITS
    )
    conditions = OperatingConditions(corner=ProcessCorner[corner.upper()])
    ensemble = fabricate_ensemble(
        "proposed", spec, None, 1, library=intel32_like_library()
    )
    calibration = ensemble.lock(conditions)
    curves = ensemble.transfer_curves(conditions, calibration=calibration)
    return BatchQuantizer.from_ensemble(curves)


def run_cell(params: dict) -> dict:
    """Rare-event failure payload of one (corner) cell.

    Module-level and driven entirely by scalar ``params`` (corner, seed,
    estimator, precision, budget, tilt coordinates), so the sweep
    orchestrator can pickle it into workers and content-address the
    result -- estimator and tilt variants never collide in the cache.
    """
    estimator = params["estimator"]
    tilt = None
    stratification = None
    if estimator == "importance":
        tilt = ComponentTilt(
            inductance_shift=TILT_INDUCTANCE_SHIFT * params["tilt_shift"],
            capacitance_shift=TILT_CAPACITANCE_SHIFT * params["tilt_shift"],
            sigma_scale=params["tilt_scale"],
        )
    elif estimator == "stratified":
        stratification = ComponentStratification()
    quantizer = _duty_levels(params["corner"])
    result = rare_event_regulation_yield(
        BuckParameters(switching_frequency_hz=FREQUENCY_MHZ * 1e6),
        REFERENCE_V,
        dip_limit_v=DIP_LIMIT_V,
        variation=ComponentVariation(seed=params["seed"]),
        estimator=estimator,
        tilt=tilt,
        stratification=stratification,
        load=LOAD,
        quantizer_levels=quantizer.levels[0],
        periods=PERIODS,
        settle_periods=SETTLE_PERIODS,
        precision=params["precision"],
        max_instances=params["max_instances"],
        chunk_size=min(CHUNK_SIZE, params["max_instances"]),
    )
    payload = result.summary()
    payload["failure_ppm"] = result.failure_probability * 1e6
    payload["ci_lower_ppm"] = result.lower * 1e6
    payload["ci_upper_ppm"] = result.upper * 1e6
    return payload


@register("fig15_rare")
def run(
    seed: int | None = None,
    sweep: SweepOrchestrator | None = None,
    precision: float | None = None,
    max_instances: int | None = None,
    estimator: str | None = None,
    tilt_shift: float | None = None,
    tilt_scale: float | None = None,
) -> ExperimentResult:
    """Rare-event load-step failure rate per process corner.

    Args:
        seed: RNG seed for the component draws (the CLI's ``--seed``).
        sweep: optional :class:`~repro.sweep.SweepOrchestrator` (the CLI's
            ``--workers`` / ``--cache-dir`` flags).
        precision: CI half-width target on the failure probability (the
            CLI's ``--precision``); defaults to :data:`DEFAULT_PRECISION` --
            this experiment is always adaptive.
        max_instances: per-cell sample cap (the CLI's ``--max-instances``).
        estimator: ``"vanilla"`` / ``"stratified"`` / ``"importance"``
            (the CLI's ``--estimator``); defaults to importance.
        tilt_shift: scale on the built-in tilt direction (the CLI's
            ``--tilt-shift``); importance estimator only.
        tilt_scale: proposal sigma widening (the CLI's ``--tilt-scale``);
            importance estimator only.
    """
    estimator = "importance" if estimator is None else estimator
    if estimator not in ESTIMATORS:
        raise ValueError(
            f"estimator must be one of {ESTIMATORS}; got {estimator!r}"
        )
    if estimator != "importance":
        if tilt_shift is not None or tilt_scale is not None:
            raise ValueError(
                "tilt parameters only apply to the importance estimator"
            )
    seed = DEFAULT_SEED if seed is None else seed
    cells = GRID.cells(
        seed=seed,
        estimator=estimator,
        precision=DEFAULT_PRECISION if precision is None else precision,
        max_instances=(
            DEFAULT_MAX_INSTANCES if max_instances is None else max_instances
        ),
        tilt_shift=1.0 if tilt_shift is None else tilt_shift,
        tilt_scale=DEFAULT_TILT_SCALE if tilt_scale is None else tilt_scale,
    )
    payloads = sweep_map(run_cell, cells, experiment_id="fig15_rare", sweep=sweep)

    data = {}
    rows = []
    for cell, entry in zip(cells, payloads):
        data[cell["corner"]] = entry
        ess = entry.get("effective_sample_size")
        rows.append(
            [
                cell["corner"],
                entry["estimator"],
                f"{entry['failure_ppm']:.1f}",
                f"[{entry['ci_lower_ppm']:.1f}, {entry['ci_upper_ppm']:.1f}]",
                str(entry["samples"]),
                "-" if ess is None else f"{ess:.0f}",
                entry["stop_reason"],
                f"{entry['mean_dip_v'] * 1e3:.1f}",
            ]
        )

    report = format_table(
        headers=[
            "Corner",
            "Estimator",
            "Failure (ppm)",
            "95 % CI (ppm)",
            "Samples",
            "ESS",
            "Stop",
            "Mean dip (mV)",
        ],
        rows=rows,
        title=(
            f"Figure 15 rare-event -- load-step dip below "
            f"{DIP_LIMIT_V * 1e3:.0f} mV "
            f"(+/- {(DEFAULT_PRECISION if precision is None else precision):g} "
            f"CI target, cap "
            f"{DEFAULT_MAX_INSTANCES if max_instances is None else max_instances} "
            f"instances/cell)"
        ),
    )
    return ExperimentResult(
        experiment_id="fig15_rare",
        title="Rare-event load-step undershoot probability per process "
        "corner (ppm-regime Figure 15 tail)",
        data=data,
        report=report,
        paper_reference={
            "claims": [
                "yield claims at guard-banded limits live in the ppm tail",
                "variance-reduced estimators resolve ppm failure rates at a "
                "fraction of the vanilla sample budget",
            ]
        },
    )

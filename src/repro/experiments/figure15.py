"""Figure 15 -- the digitally controlled buck converter, batch-simulated.

The paper's Figure 15 is the application the delay-line DPWM exists for: a
buck power stage closed through a windowed ADC, PID compensator and DPWM.
This experiment exercises that loop at scale with the vectorized batch
engine (:mod:`repro.simulation.batch`):

* **Architecture comparison** -- the ideal 6-bit DPWM and the calibrated
  proposed / conventional delay-line DPWMs regulate the same load-step
  scenario side by side (one 3-variant batch), reporting steady state, the
  transient dip and recovery.
* **Monte-Carlo regulation yield** -- a 256-variant fleet with component
  spreads drawn from :class:`~repro.core.yield_analysis.ComponentVariation`
  is advanced in one vectorized run, extending the paper's Section 5.2
  statistical-sizing mindset from the delay line to the regulation loop.
* **Silicon Monte-Carlo** -- the fused silicon-to-regulation pipeline
  (:mod:`repro.pipeline` via
  :func:`~repro.core.yield_analysis.closed_loop_yield`): 256 fabricated
  proposed-scheme delay lines, each calibrated and closed around its own
  component-varied buck, scored against the composed linearity +
  regulation specification.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.reports import format_table
from repro.converter.buck import BuckParameters
from repro.converter.closed_loop import IdealDPWM
from repro.converter.load import SteppedLoad
from repro.core.design import DesignSpec, design_conventional, design_proposed
from repro.core.yield_analysis import (
    ComponentVariation,
    LinearitySpec,
    RegulationSpec,
    adaptive_closed_loop_yield,
    adaptive_regulation_yield,
    regulation_yield,
)
from repro.dpwm.calibrated import CalibratedDelayLineDPWM
from repro.experiments.base import ExperimentResult, register
from repro.pipeline import closed_loop_cell
from repro.simulation.batch import (
    BatchBuckParameters,
    BatchClosedLoop,
    BatchQuantizer,
)
from repro.sweep import SweepOrchestrator, sweep_map
from repro.technology.corners import OperatingConditions
from repro.technology.library import intel32_like_library
from repro.technology.variation import VariationModel

__all__ = [
    "run",
    "run_cell",
    "REFERENCE_V",
    "NUM_MONTE_CARLO_VARIANTS",
    "DEFAULT_MAX_INSTANCES",
]

REFERENCE_V = 0.9
NUM_MONTE_CARLO_VARIANTS = 256
#: Default per-section sample cap of the adaptive (``--precision``) mode.
DEFAULT_MAX_INSTANCES = 4 * NUM_MONTE_CARLO_VARIANTS
DEFAULT_SEED = 2012
_FREQUENCY_MHZ = 100.0
_MC_PERIODS = 300
_PERIODS = 900
_STEP_UP = 300
_STEP_DOWN = 600


def run_cell(params: dict) -> dict:
    """Payload of one Monte-Carlo section of the experiment.

    Two cell kinds share this entry point (``params["section"]`` selects):
    ``component_mc`` is the 256-variant component-variation regulation
    sweep, ``silicon_mc`` the fused silicon-to-regulation pipeline run.
    Both are pure functions of their scalar parameters, so the sweep
    orchestrator can fan them out and cache them independently.  When the
    dict carries ``precision`` / ``max_instances`` coordinates, both
    sections run their adaptive siblings
    (:func:`~repro.core.yield_analysis.adaptive_regulation_yield` /
    :func:`~repro.core.yield_analysis.adaptive_closed_loop_yield`) and
    report streaming summaries instead of per-variant arrays.
    """
    nominal = BuckParameters(
        input_voltage_v=1.8,
        switching_frequency_hz=params["frequency_mhz"] * 1e6,
    )
    if "precision" in params:
        return _run_adaptive_cell(params, nominal)
    if params["section"] == "component_mc":
        result = regulation_yield(
            nominal,
            reference_v=REFERENCE_V,
            variation=ComponentVariation(seed=params["seed"]),
            num_variants=params["num_instances"],
            periods=_MC_PERIODS,
            tolerance_v=0.02,
        )
        return {
            "regulation_yield": result.regulation_yield,
            "steady_state_voltages_v": result.steady_state_voltages_v,
            "steady_state_ripples_v": result.steady_state_ripples_v,
            "worst_error_v": result.worst_error_v,
        }
    if params["section"] == "silicon_mc":
        silicon = closed_loop_cell(
            "proposed",
            frequency_mhz=params["frequency_mhz"],
            corner="typical",
            seed=params["seed"],
            reference_v=REFERENCE_V,
            num_instances=params["num_instances"],
            periods=_MC_PERIODS,
            linearity_spec=LinearitySpec(error_limit_fraction=0.045),
            regulation_spec=RegulationSpec(tolerance_v=0.02),
            nominal=nominal,
            library=intel32_like_library(),
        )
        return {
            "closed_loop_yield": silicon.closed_loop_yield,
            "linearity_yield": silicon.linearity_yield,
            "regulation_yield": silicon.regulation_yield,
            "lock_yield": silicon.lock_yield,
            "worst_error_v": silicon.worst_error_v,
            "limit_cycle_amplitudes_v": silicon.limit_cycle_amplitudes_v,
        }
    raise ValueError(f"unknown fig15 cell section {params['section']!r}")


def _run_adaptive_cell(params: dict, nominal: BuckParameters) -> dict:
    """Adaptive payload of one Monte-Carlo section (``precision`` given)."""
    if params["section"] == "component_mc":
        adaptive = adaptive_regulation_yield(
            nominal,
            reference_v=REFERENCE_V,
            variation=ComponentVariation(seed=params["seed"]),
            precision=params["precision"],
            max_instances=params.get("max_instances", DEFAULT_MAX_INSTANCES),
            periods=_MC_PERIODS,
            tolerance_v=0.02,
        )
        return {
            "regulation_yield": adaptive.yield_estimate,
            "mean_steady_state_v": adaptive.value_stats["steady_state_v"]["mean"],
            "std_steady_state_v": adaptive.value_stats["steady_state_v"]["std"],
            "worst_error_v": adaptive.value_stats["error_v"]["max"],
            "worst_ripple_v": adaptive.value_stats["ripple_v"]["max"],
            "ci_lower": adaptive.lower,
            "ci_upper": adaptive.upper,
            "confidence": adaptive.confidence,
            "samples": adaptive.samples,
            "stop_reason": adaptive.stop_reason,
        }
    if params["section"] == "silicon_mc":
        adaptive = adaptive_closed_loop_yield(
            "proposed",
            DesignSpec(
                clock_frequency_mhz=params["frequency_mhz"], resolution_bits=6
            ),
            OperatingConditions.typical(),
            nominal=nominal,
            reference_v=REFERENCE_V,
            variation=VariationModel(seed=params["seed"]),
            component_variation=ComponentVariation(seed=params["seed"]),
            precision=params["precision"],
            max_instances=params.get("max_instances", DEFAULT_MAX_INSTANCES),
            periods=_MC_PERIODS,
            linearity_spec=LinearitySpec(error_limit_fraction=0.045),
            regulation_spec=RegulationSpec(tolerance_v=0.02),
            library=intel32_like_library(),
        )
        return {
            "closed_loop_yield": adaptive.yield_estimate,
            "linearity_yield": adaptive.spec_yields["linearity"],
            "regulation_yield": adaptive.spec_yields["regulation"],
            "lock_yield": adaptive.spec_yields["lock"],
            "worst_error_v": adaptive.value_stats["error_v"]["max"],
            "worst_limit_cycle_amplitude_v": (
                adaptive.value_stats["limit_cycle_amplitude_v"]["max"]
            ),
            "ci_lower": adaptive.lower,
            "ci_upper": adaptive.upper,
            "confidence": adaptive.confidence,
            "samples": adaptive.samples,
            "stop_reason": adaptive.stop_reason,
        }
    raise ValueError(f"unknown fig15 cell section {params['section']!r}")


def _fixed_sections(
    monte_carlo: dict[str, object], silicon: dict[str, object]
) -> tuple[str, str, dict[str, object], dict[str, object]]:
    """Tables + data payloads of the two fixed-N Monte-Carlo sections."""
    spread = np.asarray(monte_carlo["steady_state_voltages_v"])
    ripples = np.asarray(monte_carlo["steady_state_ripples_v"])
    yield_table = format_table(
        headers=["Metric", "Value"],
        rows=[
            ["Variants", str(NUM_MONTE_CARLO_VARIANTS)],
            ["Regulation yield (|Vss - Vref| <= 20 mV)", f"{monte_carlo['regulation_yield']:.3f}"],
            ["Mean steady-state Vout (V)", f"{spread.mean():.4f}"],
            ["Std of steady-state Vout (mV)", f"{spread.std() * 1e3:.2f}"],
            ["Worst |Vss - Vref| (mV)", f"{monte_carlo['worst_error_v'] * 1e3:.2f}"],
            [
                "Worst tail ripple (mV)",
                f"{ripples.max() * 1e3:.2f}",
            ],
        ],
        title="Monte-Carlo regulation yield under component variation",
    )

    amplitudes = np.asarray(silicon["limit_cycle_amplitudes_v"])
    silicon_table = format_table(
        headers=["Metric", "Value"],
        rows=[
            ["Fabricated instances", str(NUM_MONTE_CARLO_VARIANTS)],
            ["Closed-loop yield (linearity AND regulation)", f"{silicon['closed_loop_yield']:.3f}"],
            ["Linearity yield", f"{silicon['linearity_yield']:.3f}"],
            ["Regulation yield", f"{silicon['regulation_yield']:.3f}"],
            ["Lock yield", f"{silicon['lock_yield']:.3f}"],
            ["Worst |Vss - Vref| (mV)", f"{silicon['worst_error_v'] * 1e3:.2f}"],
            [
                "Worst limit-cycle amplitude (mV)",
                f"{amplitudes.max() * 1e3:.2f}",
            ],
        ],
        title=(
            "Silicon-to-regulation pipeline -- every fabricated proposed-scheme "
            "delay line closed around its own component-varied buck"
        ),
    )
    mc_data = {
        "regulation_yield": monte_carlo["regulation_yield"],
        "steady_state_voltages_v": spread,
        "steady_state_ripples_v": ripples,
        "worst_error_v": monte_carlo["worst_error_v"],
    }
    silicon_data = {
        "closed_loop_yield": silicon["closed_loop_yield"],
        "linearity_yield": silicon["linearity_yield"],
        "regulation_yield": silicon["regulation_yield"],
        "lock_yield": silicon["lock_yield"],
        "worst_error_v": silicon["worst_error_v"],
        "limit_cycle_amplitudes_v": amplitudes,
    }
    return yield_table, silicon_table, mc_data, silicon_data


def _adaptive_sections(
    monte_carlo: dict[str, object], silicon: dict[str, object]
) -> tuple[str, str, dict[str, object], dict[str, object]]:
    """Tables + data payloads of the two adaptive Monte-Carlo sections.

    The adaptive sampler streams its statistics, so the payloads carry
    scalar summaries plus the confidence bookkeeping instead of
    per-variant arrays.
    """

    def ci(entry: dict) -> str:
        return f"[{entry['ci_lower']:.3f}, {entry['ci_upper']:.3f}]"

    yield_table = format_table(
        headers=["Metric", "Value"],
        rows=[
            ["Samples drawn (adaptive)", str(monte_carlo["samples"])],
            ["Stop reason", monte_carlo["stop_reason"]],
            ["Regulation yield (|Vss - Vref| <= 20 mV)", f"{monte_carlo['regulation_yield']:.3f}"],
            ["95 % CI on the yield", ci(monte_carlo)],
            ["Mean steady-state Vout (V)", f"{monte_carlo['mean_steady_state_v']:.4f}"],
            ["Std of steady-state Vout (mV)", f"{monte_carlo['std_steady_state_v'] * 1e3:.2f}"],
            ["Worst |Vss - Vref| (mV)", f"{monte_carlo['worst_error_v'] * 1e3:.2f}"],
            ["Worst tail ripple (mV)", f"{monte_carlo['worst_ripple_v'] * 1e3:.2f}"],
        ],
        title="Monte-Carlo regulation yield under component variation (adaptive)",
    )
    silicon_table = format_table(
        headers=["Metric", "Value"],
        rows=[
            ["Samples drawn (adaptive)", str(silicon["samples"])],
            ["Stop reason", silicon["stop_reason"]],
            ["Closed-loop yield (linearity AND regulation)", f"{silicon['closed_loop_yield']:.3f}"],
            ["95 % CI on the yield", ci(silicon)],
            ["Linearity yield", f"{silicon['linearity_yield']:.3f}"],
            ["Regulation yield", f"{silicon['regulation_yield']:.3f}"],
            ["Lock yield", f"{silicon['lock_yield']:.3f}"],
            ["Worst |Vss - Vref| (mV)", f"{silicon['worst_error_v'] * 1e3:.2f}"],
            [
                "Worst limit-cycle amplitude (mV)",
                f"{silicon['worst_limit_cycle_amplitude_v'] * 1e3:.2f}",
            ],
        ],
        title=(
            "Silicon-to-regulation pipeline (adaptive) -- every fabricated "
            "proposed-scheme delay line closed around its own "
            "component-varied buck"
        ),
    )
    return yield_table, silicon_table, dict(monte_carlo), dict(silicon)


@register("fig15")
def run(
    seed: int | None = None,
    sweep: SweepOrchestrator | None = None,
    precision: float | None = None,
    max_instances: int | None = None,
) -> ExperimentResult:
    """Regenerate Figure 15 (closed-loop regulation) as batch simulations.

    Args:
        seed: RNG seed for the Monte-Carlo draws (the CLI's ``--seed``
            flag); defaults to the experiment's stock seed.
        sweep: optional :class:`~repro.sweep.SweepOrchestrator` (the CLI's
            ``--workers`` / ``--cache-dir`` flags); the two Monte-Carlo
            sections then run as cacheable sweep cells.
        precision: optional CI half-width target (the CLI's ``--precision``
            flag); switches both Monte-Carlo sections from their fixed
            256-variant budget to the adaptive sampler (the architecture
            comparison is deterministic and unaffected).
        max_instances: per-section sample cap of the adaptive mode (the
            CLI's ``--max-instances`` flag); requires ``precision``.
    """
    if max_instances is not None and precision is None:
        raise ValueError("max_instances is only meaningful with a precision")
    seed = DEFAULT_SEED if seed is None else seed
    library = intel32_like_library()
    spec = DesignSpec(clock_frequency_mhz=_FREQUENCY_MHZ, resolution_bits=6)
    conditions = OperatingConditions.typical()
    parameters = BuckParameters(
        input_voltage_v=1.8, switching_frequency_hz=_FREQUENCY_MHZ * 1e6
    )

    architectures = {
        "ideal 6-bit": IdealDPWM(bits=6),
        "calibrated proposed": CalibratedDelayLineDPWM(
            design_proposed(spec, library).build_line(library=library), conditions
        ),
        "calibrated conventional": CalibratedDelayLineDPWM(
            design_conventional(spec, library).build_line(library=library), conditions
        ),
    }

    # One batch advances all three architectures through the load step.
    load = SteppedLoad(
        light_ohm=2.0, heavy_ohm=0.9, step_up_period=_STEP_UP, step_down_period=_STEP_DOWN
    )
    batch = BatchClosedLoop(
        BatchBuckParameters.uniform(parameters, len(architectures)),
        BatchQuantizer.from_quantizers(list(architectures.values())),
        reference_v=REFERENCE_V,
        load=load,
    )
    result = batch.run(_PERIODS)
    voltages = result.output_voltages_v

    comparison = {}
    rows = []
    for column, name in enumerate(architectures):
        trace = voltages[:, column]
        entry = {
            "pre_step_v": float(trace[_STEP_UP - 50 : _STEP_UP].mean()),
            "dip_v": float(trace[_STEP_UP : _STEP_UP + 120].min()),
            "heavy_v": float(trace[_STEP_DOWN - 50 : _STEP_DOWN].mean()),
            "final_v": float(trace[-50:].mean()),
            "ripple_v": float(trace[-50:].max() - trace[-50:].min()),
        }
        comparison[name] = entry
        rows.append(
            [
                name,
                f"{entry['pre_step_v']:.4f}",
                f"{entry['dip_v']:.4f}",
                f"{entry['heavy_v']:.4f}",
                f"{entry['final_v']:.4f}",
                f"{entry['ripple_v'] * 1e3:.1f}",
            ]
        )
    architecture_table = format_table(
        headers=[
            "DPWM architecture",
            "Vout before step (V)",
            "Worst dip (V)",
            "Vout heavy load (V)",
            "Vout after release (V)",
            "Tail ripple (mV)",
        ],
        rows=rows,
        title=(
            "Figure 15 -- digitally controlled buck, 1.8 V -> 0.9 V at 100 MHz: "
            "load-step regulation per DPWM architecture (one batch run)"
        ),
    )

    # The two Monte-Carlo sections run as sweep cells: the 256-variant
    # component sweep and the fused silicon pipeline fan out (and cache)
    # independently when an orchestrator is threaded in.
    cell_common = {"frequency_mhz": _FREQUENCY_MHZ, "seed": seed}
    if precision is None:
        cell_common["num_instances"] = NUM_MONTE_CARLO_VARIANTS
    else:
        # The adaptive cell's budget coordinates replace the fixed count
        # (which the adaptive path never reads) in the cache key.
        cell_common["precision"] = precision
        cell_common["max_instances"] = max_instances or DEFAULT_MAX_INSTANCES
    monte_carlo, silicon = sweep_map(
        run_cell,
        [
            {"section": "component_mc", **cell_common},
            {"section": "silicon_mc", **cell_common},
        ],
        experiment_id="fig15",
        sweep=sweep,
    )
    if precision is not None:
        yield_table, silicon_table, mc_data, silicon_data = _adaptive_sections(
            monte_carlo, silicon
        )
    else:
        yield_table, silicon_table, mc_data, silicon_data = _fixed_sections(
            monte_carlo, silicon
        )

    return ExperimentResult(
        experiment_id="fig15",
        title="Digitally controlled buck regulation at scale (paper Figure 15)",
        data={
            "architectures": comparison,
            "monte_carlo": mc_data,
            "silicon_monte_carlo": silicon_data,
        },
        report=architecture_table + "\n\n" + yield_table + "\n\n" + silicon_table,
        paper_reference={
            "claims": [
                "the loop regulates Vout to Duty * Vg (paper eq. 11)",
                "calibrated delay-line DPWMs regulate as well as the ideal quantizer",
                "regulation survives the paper's load transients at every architecture",
                "fabricated silicon under process + component variation still yields",
            ]
        },
    )

"""Figure 37 -- locking operation of the conventional controller.

The conventional DLL-style controller compares the clock edge against the
last two taps of the line and shifts a one into the control shift register
until the edge falls between them.  The experiment runs the cycle-accurate
locking model at the three process corners and reports the step-by-step line
delay (the data of the paper's locking timing diagram) plus the cycles needed
to lock.
"""

from __future__ import annotations

from repro.analysis.reports import format_series, format_table
from repro.core.conventional import ShiftRegisterController
from repro.core.design import DesignSpec, design_conventional
from repro.experiments.base import ExperimentResult, register
from repro.technology.corners import OperatingConditions, ProcessCorner
from repro.technology.library import intel32_like_library

__all__ = ["run"]


@register("fig37")
def run() -> ExperimentResult:
    """Regenerate Figure 37 (conventional controller locking)."""
    library = intel32_like_library()
    spec = DesignSpec(clock_frequency_mhz=100.0, resolution_bits=6)
    design = design_conventional(spec, library)
    line = design.build_line(library=library)
    controller = ShiftRegisterController(line)

    summary_rows = []
    per_corner = {}
    typical_trace = None
    for corner in ProcessCorner:
        conditions = OperatingConditions(corner=corner)
        result = controller.lock(conditions)
        per_corner[corner.name.lower()] = {
            "locked": result.locked,
            "lock_cycles": result.lock_cycles,
            "shift_steps": result.control_state,
            "locked_delay_ps": result.locked_delay_ps,
            "residual_error_ps": result.residual_error_ps,
        }
        if corner is ProcessCorner.TYPICAL:
            typical_trace = result.trace
        summary_rows.append(
            [
                corner.name.lower(),
                "yes" if result.locked else "no",
                result.lock_cycles,
                result.control_state,
                f"{result.locked_delay_ps / 1000:.2f}",
                f"{result.residual_error_ps:.0f}",
            ]
        )

    summary = format_table(
        headers=[
            "Corner",
            "Locked",
            "Lock cycles",
            "Shift steps",
            "Locked line delay (ns)",
            "Residual error (ps)",
        ],
        rows=summary_rows,
        title="Figure 37 -- conventional controller locking at each corner",
    )
    if typical_trace is None:
        raise RuntimeError("corner sweep did not visit the typical corner")
    trace_report = format_series(
        x_label="cycle",
        x_values=[step.cycle for step in typical_trace.steps],
        series={
            "line delay (ps)": [step.line_delay_ps for step in typical_trace.steps],
            "shift steps": [
                float(step.control_state) for step in typical_trace.steps
            ],
        },
        title="Typical-corner locking trace (clock period = 10000 ps)",
        max_rows=16,
    )
    return ExperimentResult(
        experiment_id="fig37",
        title="Conventional controller locking operation (paper Figure 37)",
        data={"per_corner": per_corner},
        report=summary + "\n\n" + trace_report,
        paper_reference={
            "lock_condition": "clock edge between the last two taps (taps = 01)"
        },
    )

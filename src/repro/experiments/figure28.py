"""Figure 28 -- cell delays at different process corners.

The paper's motivation for calibration: a delay cell with typical delay ``d``
runs at ``d/2`` in the fast corner and ``2d`` in the slow corner (a 4x
spread), so an *uncalibrated* delay line produces a different duty cycle for
the same tap at every corner, and at the fast corner part of the switching
period is not covered by the line at all.

The experiment reports the per-buffer and per-cell delays at each corner and
quantifies the duty-cycle error of an uncalibrated mid-scale tap -- the error
the calibrated schemes of chapter 3 remove.
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.core.proposed import ProposedDelayLine, ProposedDelayLineConfig
from repro.experiments.base import ExperimentResult, register
from repro.technology.corners import OperatingConditions, ProcessCorner
from repro.technology.library import intel32_like_library

__all__ = ["run"]

CLOCK_PERIOD_PS = 10_000.0  # 100 MHz
NUM_CELLS = 256
BUFFERS_PER_CELL = 2


@register("fig28")
def run() -> ExperimentResult:
    """Regenerate Figure 28 (corner-dependent delays and uncalibrated error)."""
    library = intel32_like_library()
    line = ProposedDelayLine(
        ProposedDelayLineConfig(
            num_cells=NUM_CELLS,
            buffers_per_cell=BUFFERS_PER_CELL,
            clock_period_ps=CLOCK_PERIOD_PS,
        ),
        library=library,
    )
    # The tap an uncalibrated design would use for a 50 % duty cycle assuming
    # typical-corner delays.
    typical_conditions = OperatingConditions.typical()
    typical_tap_delays = line.tap_delays_ps(typical_conditions)
    target_delay = CLOCK_PERIOD_PS / 2.0
    uncalibrated_tap = int((typical_tap_delays >= target_delay).argmax()) + 1

    rows = []
    per_corner = {}
    for corner in ProcessCorner:
        conditions = OperatingConditions(corner=corner)
        buffer_delay = library.buffer_delay_ps(conditions)
        cell_delay = buffer_delay * BUFFERS_PER_CELL
        taps = line.tap_delays_ps(conditions)
        total = float(taps[-1])
        uncalibrated_duty = float(taps[uncalibrated_tap - 1]) / CLOCK_PERIOD_PS
        covered = total >= CLOCK_PERIOD_PS
        per_corner[corner.name.lower()] = {
            "buffer_delay_ps": buffer_delay,
            "cell_delay_ps": cell_delay,
            "total_line_delay_ps": total,
            "uncalibrated_duty_at_mid_tap": uncalibrated_duty,
            "covers_clock_period": covered,
        }
        rows.append(
            [
                corner.name.lower(),
                f"{buffer_delay:.0f}",
                f"{cell_delay:.0f}",
                f"{total / 1000:.2f}",
                f"{100 * uncalibrated_duty:.0f} %",
                "yes" if covered else "no",
            ]
        )

    report = format_table(
        headers=[
            "Corner",
            "Buffer delay (ps)",
            "Cell delay (ps)",
            "Total line delay (ns)",
            "Duty of the 'typical 50 %' tap",
            "Line covers clock period",
        ],
        rows=rows,
        title="Figure 28 -- cell delays at different corners (uncalibrated line)",
    )
    return ExperimentResult(
        experiment_id="fig28",
        title="Cell delay across process corners (paper Figure 28)",
        data={
            "per_corner": per_corner,
            "uncalibrated_tap": uncalibrated_tap,
            "clock_period_ps": CLOCK_PERIOD_PS,
        },
        report=report,
        paper_reference={
            "fast_buffer_delay_ps": 20.0,
            "slow_buffer_delay_ps": 80.0,
            "fast_to_slow_ratio": 4.0,
        },
    )

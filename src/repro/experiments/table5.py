"""Table 5 -- post-synthesis area of both schemes at 100 MHz.

The paper's headline quantitative result: at 100 MHz (6-bit guaranteed
resolution), the proposed scheme (256 identical cells of two buffers) costs
1337 um^2 against 2330 um^2 for the conventional scheme (64 tunable cells of
four branches), with the conventional area dominated by the tunable delay
line itself (52.4 %) and the shift-register controller (46.6 %).

The experiment sizes both schemes with the paper's design procedure,
elaborates their structural netlists and synthesizes them against the
calibrated 32 nm-class library, reporting the same rows as the paper's table
(number of taps, total area, per-block distribution).
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.core.design import DesignSpec, design_conventional, design_proposed
from repro.experiments.base import ExperimentResult, register
from repro.technology.library import intel32_like_library
from repro.technology.synthesis import Synthesizer

__all__ = ["run", "PAPER_TABLE5"]

#: The values reported in the paper's Table 5.
PAPER_TABLE5 = {
    "proposed": {
        "taps": 256,
        "total_area_um2": 1337.0,
        "distribution": {
            "Delay Line": 24.7,
            "Output MUX": 14.9,
            "Calibration MUX": 30.3,
            "Controller": 9.8,
            "Mapper": 20.3,
        },
    },
    "conventional": {
        "taps": 64,
        "total_area_um2": 2330.0,
        "distribution": {
            "Delay Line": 52.4,
            "Output MUX": 3.0,
            "Controller": 46.6,
        },
    },
}


@register("table5")
def run() -> ExperimentResult:
    """Regenerate Table 5 (post-synthesis area at 100 MHz)."""
    library = intel32_like_library()
    synthesizer = Synthesizer(library)
    spec = DesignSpec(clock_frequency_mhz=100.0, resolution_bits=6)

    proposed = design_proposed(spec, library)
    conventional = design_conventional(spec, library)
    proposed_report = synthesizer.synthesize(proposed.build_line(library).netlist())
    conventional_report = synthesizer.synthesize(
        conventional.build_line(library).netlist()
    )

    rows = [
        ["Number of taps", proposed.num_cells, conventional.num_cells],
        [
            "Total area (um^2)",
            f"{proposed_report.total_area_um2:.0f}",
            f"{conventional_report.total_area_um2:.0f}",
        ],
    ]
    proposed_distribution = proposed_report.distribution()
    conventional_distribution = conventional_report.distribution()
    block_names = list(
        dict.fromkeys(list(proposed_distribution) + list(conventional_distribution))
    )
    for name in block_names:
        rows.append(
            [
                f"Area share: {name}",
                f"{proposed_distribution.get(name, 0.0):.1f} %",
                f"{conventional_distribution.get(name, 0.0):.1f} %",
            ]
        )

    report = format_table(
        headers=["Parameter", "Proposed scheme", "Conventional scheme"],
        rows=rows,
        title="Table 5 -- post-synthesis results at 100 MHz",
    )
    data = {
        "proposed": {
            "taps": proposed.num_cells,
            "buffers_per_cell": proposed.buffers_per_cell,
            "total_area_um2": proposed_report.total_area_um2,
            "distribution": proposed_distribution,
        },
        "conventional": {
            "taps": conventional.num_cells,
            "branches": conventional.branches,
            "buffers_per_element": conventional.buffers_per_element,
            "total_area_um2": conventional_report.total_area_um2,
            "distribution": conventional_distribution,
        },
        "area_ratio": conventional_report.total_area_um2
        / proposed_report.total_area_um2,
    }
    return ExperimentResult(
        experiment_id="table5",
        title="Post-synthesis area at 100 MHz (paper Table 5)",
        data=data,
        report=report,
        paper_reference=PAPER_TABLE5,
    )

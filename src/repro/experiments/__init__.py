"""Experiment harnesses: one module per paper table / figure.

Every experiment module exposes a ``run()`` function returning an
:class:`~repro.experiments.base.ExperimentResult` whose ``data`` holds the
regenerated rows/series and whose ``report`` is a formatted text rendering in
the same shape as the paper's artifact.  The registry in
:mod:`repro.experiments.base` maps experiment ids (``table5``, ``fig50`` ...)
to these functions; the CLI in :mod:`repro.experiments.runner` runs them.

The Monte-Carlo experiments additionally expose their sweeps as
:class:`~repro.sweep.ParameterGrid` cells (module-level ``run_cell``
functions), which the CLI's ``--workers`` / ``--cache-dir`` flags fan out
and memoize through :mod:`repro.sweep`.

See ``docs/experiments.md`` for the full catalog (paper artifact,
parameters, seed behavior, sample ``--json`` output per experiment) and
``docs/architecture.md`` for where the experiments sit in the stack.
"""

from repro.experiments.base import ExperimentResult, registry, run_experiment
from repro.experiments import (  # noqa: F401  (imported for registration)
    design_example,
    figure15,
    figure15_mc,
    figure15_mission,
    figure15_rare,
    figure19,
    figure21,
    figure23,
    figure28,
    figure37,
    figure41_42,
    figure47_48,
    figure50_51,
    figure50_51_mc,
    table2,
    table4,
    table5,
    table6,
)

__all__ = ["ExperimentResult", "registry", "run_experiment"]

"""Table 4 -- preliminary comparison of the two delay-line schemes.

The paper's preliminary comparison lists the structural trade-offs before the
synthesis results: the conventional scheme has a complex tunable cell, worse
linearity and no mapper; the proposed scheme has a simple cell, better
linearity, but needs a mapper and an extra multiplexer.  The experiment
regenerates those rows from the actual models (cell structure, measured
linearity, measured calibration time).
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.core.comparison import compare_schemes
from repro.core.design import DesignSpec
from repro.experiments.base import ExperimentResult, register

__all__ = ["run"]


@register("table4")
def run() -> ExperimentResult:
    """Regenerate Table 4 from the 100 MHz / 6-bit comparison design."""
    spec = DesignSpec(clock_frequency_mhz=100.0, resolution_bits=6)
    comparison = compare_schemes(spec)

    rows = [
        (criterion, conventional, proposed)
        for criterion, conventional, proposed in comparison.preliminary_rows()
    ]
    report = format_table(
        headers=["Criterion", "Conventional adjustable cells", "Proposed"],
        rows=rows,
        title="Table 4 -- preliminary comparison (100 MHz, 6-bit specification)",
    )
    data = {
        "rows": rows,
        "proposed_wins_linearity": comparison.proposed_wins_linearity,
        "proposed_wins_calibration_time": comparison.proposed_wins_calibration_time,
        "proposed_max_error_fraction": comparison.proposed_max_error_fraction,
        "conventional_max_error_fraction": comparison.conventional_max_error_fraction,
        "proposed_lock_cycles": comparison.proposed_calibration.lock_cycles,
        "conventional_lock_cycles": comparison.conventional_calibration.lock_cycles,
        "conventional_branches": comparison.conventional_design.branches,
    }
    return ExperimentResult(
        experiment_id="table4",
        title="Preliminary scheme comparison (paper Table 4)",
        data=data,
        report=report,
        paper_reference={
            "conventional": ["complex delay cell", "worse linearity", "no mapper"],
            "proposed": [
                "simple delay cell",
                "better linearity",
                "requires mapper and extra multiplexer",
            ],
        },
    )

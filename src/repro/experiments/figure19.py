"""Figure 19 -- timing diagram of a 2-bit counter-based DPWM.

The paper walks a 2-bit counter DPWM through all four duty words and shows
the resulting 25 / 50 / 75 / 100 % output pulses.  The experiment simulates
the structural counter + comparator + trailing-edge flop for each word and
reports the measured duty cycles together with ASCII timing diagrams.
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.dpwm.counter_dpwm import CounterDPWM, CounterDPWMConfig
from repro.experiments.base import ExperimentResult, register

__all__ = ["run"]

BITS = 2
SWITCHING_FREQUENCY_MHZ = 1.0


@register("fig19")
def run() -> ExperimentResult:
    """Regenerate Figure 19 (2-bit counter DPWM waveforms)."""
    dpwm = CounterDPWM(
        CounterDPWMConfig(bits=BITS, switching_frequency_mhz=SWITCHING_FREQUENCY_MHZ)
    )
    rows = []
    waveforms = {}
    diagrams = []
    for word in range(1 << BITS):
        waveform = dpwm.generate(word)
        waveforms[word] = waveform
        rows.append(
            [
                format(word, f"0{BITS}b"),
                f"{100 * waveform.request.ideal_duty:.0f} %",
                f"{100 * waveform.measured_duty:.1f} %",
            ]
        )
        diagrams.append(f"Duty = {format(word, f'0{BITS}b')}")
        diagrams.append(waveform.timing_diagram())

    table = format_table(
        headers=["Duty word", "Ideal duty", "Measured duty"],
        rows=rows,
        title="Figure 19 -- 2-bit counter-based DPWM",
    )
    report = table + "\n\n" + "\n".join(diagrams)
    data = {
        "measured_duties": {
            word: waveform.measured_duty for word, waveform in waveforms.items()
        },
        "ideal_duties": {
            word: waveform.request.ideal_duty for word, waveform in waveforms.items()
        },
        "counter_clock_mhz": dpwm.required_clock_frequency_mhz(),
    }
    return ExperimentResult(
        experiment_id="fig19",
        title="Counter-based DPWM timing (paper Figure 19)",
        data=data,
        report=report,
        paper_reference={"duties_pct": [25, 50, 75, 100]},
    )

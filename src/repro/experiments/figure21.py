"""Figure 21 -- timing diagram of a 2-bit delay-line DPWM.

Four delay cells, each a quarter of the switching period; the tap selected by
the duty word resets the output, giving 25 / 50 / 75 / 100 % pulses.  The
experiment simulates the structural buffer chain + multiplexer + output flop.
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.dpwm.delay_line_dpwm import DelayLineDPWM, DelayLineDPWMConfig
from repro.experiments.base import ExperimentResult, register

__all__ = ["run"]

BITS = 2
SWITCHING_FREQUENCY_MHZ = 1.0


@register("fig21")
def run() -> ExperimentResult:
    """Regenerate Figure 21 (2-bit delay-line DPWM waveforms)."""
    dpwm = DelayLineDPWM(
        DelayLineDPWMConfig(bits=BITS, switching_frequency_mhz=SWITCHING_FREQUENCY_MHZ)
    )
    rows = []
    measured = {}
    diagrams = []
    for word in range(1 << BITS):
        waveform = dpwm.generate(word)
        measured[word] = waveform.measured_duty
        rows.append(
            [
                format(word, f"0{BITS}b"),
                f"Tap {word}",
                f"{100 * waveform.request.ideal_duty:.0f} %",
                f"{100 * waveform.measured_duty:.1f} %",
            ]
        )
        diagrams.append(f"Duty = {format(word, f'0{BITS}b')} (tap {word})")
        diagrams.append(waveform.timing_diagram())

    table = format_table(
        headers=["Duty word", "Selected tap", "Ideal duty", "Measured duty"],
        rows=rows,
        title="Figure 21 -- 2-bit delay-line DPWM",
    )
    report = table + "\n\n" + "\n".join(diagrams)
    data = {
        "measured_duties": measured,
        "required_clock_mhz": dpwm.required_clock_frequency_mhz(),
    }
    return ExperimentResult(
        experiment_id="fig21",
        title="Delay-line DPWM timing (paper Figure 21)",
        data=data,
        report=report,
        paper_reference={"duties_pct": [25, 50, 75, 100]},
    )

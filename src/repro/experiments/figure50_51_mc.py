"""Figures 50-51, Monte-Carlo edition -- linearity *yield* across corners.

The paper's Figures 50-51 show the post-APR linearity of *one* fabricated
instance per frequency.  The interesting production question is statistical:
what fraction of fabricated delay lines meets a DNL/INL/monotonicity
specification at each corner and frequency?  This experiment answers it for
both schemes with the vectorized ensemble engine: 1000 post-APR instances
per (scheme, corner, frequency) cell are drawn, calibrated with the
closed-form batch lock and swept into a full transfer-curve matrix in one
numpy pass, then scored against the specification -- the delay-line analogue
of the ``fig15`` experiment's regulation yield, in the spirit of the paper's
Section 5.2 statistical-sizing proposal.

The sweep itself is declarative: :data:`GRID` names the cell axes and
:func:`run_cell` computes one (scheme, corner, frequency) cell from its
scalar coordinates, so the orchestrator (:mod:`repro.sweep`) can fan cells
out across worker processes and memoize each one in the result cache.
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.core.design import DesignSpec
from repro.core.yield_analysis import linearity_yield
from repro.experiments.base import ExperimentResult, register
from repro.sweep import ParameterGrid, sweep_map
from repro.technology.corners import OperatingConditions, ProcessCorner
from repro.technology.library import intel32_like_library
from repro.technology.variation import VariationModel

__all__ = [
    "run",
    "run_cell",
    "GRID",
    "FREQUENCIES_MHZ",
    "NUM_INSTANCES",
    "DNL_LIMIT_LSB",
    "INL_LIMIT_LSB",
]

FREQUENCIES_MHZ = (50.0, 100.0, 200.0)
NUM_INSTANCES = 1000
DEFAULT_SEED = 2012
#: Linearity specification.  DNL/INL are scheme-referred LSB limits sized to
#: bind against mismatch rather than the mapper's inherent quantization
#: staircase; the deviation limit is referred to the switching period, the
#: scale that compares both schemes fairly (paper eq. 12) and the binding
#: constraint for most cells.  Monotonicity and a valid lock are required.
DNL_LIMIT_LSB = 4.0
INL_LIMIT_LSB = 4.0
ERROR_LIMIT_FRACTION = 0.045

#: The sweep axes; one cell per (scheme, corner, frequency), visited in the
#: same order as the original nested loops so the report rows are stable.
GRID = ParameterGrid(
    scheme=("proposed", "conventional"),
    corner=tuple(c.name.lower() for c in (ProcessCorner.SLOW, ProcessCorner.FAST)),
    frequency_mhz=FREQUENCIES_MHZ,
)


def run_cell(params: dict) -> dict:
    """Linearity-yield payload of one (scheme, corner, frequency) cell.

    Module-level and driven entirely by the scalar ``params`` dict (the
    grid coordinates plus the RNG seed), so the sweep orchestrator can
    pickle it into worker processes and content-address the result.
    """
    result = linearity_yield(
        scheme=params["scheme"],
        spec=DesignSpec(
            clock_frequency_mhz=params["frequency_mhz"], resolution_bits=6
        ),
        conditions=OperatingConditions(
            corner=ProcessCorner[params["corner"].upper()]
        ),
        variation=VariationModel(
            random_sigma=0.04, gradient_peak=0.015, seed=params["seed"]
        ),
        num_instances=NUM_INSTANCES,
        dnl_limit_lsb=DNL_LIMIT_LSB,
        inl_limit_lsb=INL_LIMIT_LSB,
        error_limit_fraction=ERROR_LIMIT_FRACTION,
        library=intel32_like_library(),
    )
    return {
        "linearity_yield": result.linearity_yield,
        "lock_yield": result.lock_yield,
        "monotonic_fraction": float(result.monotonic.mean()),
        "mean_max_dnl_lsb": float(result.max_dnl_lsb.mean()),
        "mean_max_inl_lsb": float(result.max_inl_lsb.mean()),
        "worst_max_inl_lsb": float(result.max_inl_lsb.max()),
        "mean_rms_inl_lsb": float(result.rms_inl_lsb.mean()),
        "worst_error_fraction": float(result.max_error_fraction_of_period.max()),
    }


@register("fig50_51_mc")
def run(seed: int | None = None, sweep=None) -> ExperimentResult:
    """Monte-Carlo linearity yield per corner x frequency for both schemes.

    Args:
        seed: RNG seed for the variation draws (the CLI's ``--seed`` flag);
            defaults to the experiment's stock seed.
        sweep: optional :class:`~repro.sweep.SweepOrchestrator` (the CLI's
            ``--workers`` / ``--cache-dir`` flags); cells run serially
            without one, with bit-identical results.
    """
    seed = DEFAULT_SEED if seed is None else seed
    cells = GRID.cells(seed=seed)
    payloads = sweep_map(run_cell, cells, experiment_id="fig50_51_mc", sweep=sweep)

    data = {}
    rows = []
    for cell, entry in zip(cells, payloads):
        scheme, corner = cell["scheme"], cell["corner"]
        frequency = cell["frequency_mhz"]
        data.setdefault(scheme, {}).setdefault(corner, {})[frequency] = entry
        rows.append(
            [
                scheme,
                corner,
                f"{frequency:.0f}",
                f"{entry['linearity_yield']:.3f}",
                f"{entry['lock_yield']:.3f}",
                f"{entry['monotonic_fraction']:.3f}",
                f"{entry['mean_max_inl_lsb']:.2f}",
                f"{100 * entry['worst_error_fraction']:.2f} %",
            ]
        )

    report = format_table(
        headers=[
            "Scheme",
            "Corner",
            "Freq (MHz)",
            "Linearity yield",
            "Lock yield",
            "Monotonic",
            "Mean max |INL| (LSB)",
            "Worst error (% period)",
        ],
        rows=rows,
        title=(
            f"Figures 50-51 Monte-Carlo -- linearity yield over {NUM_INSTANCES} "
            f"post-APR instances per cell (spec: |DNL| <= {DNL_LIMIT_LSB} LSB, "
            f"|INL| <= {INL_LIMIT_LSB} LSB, error <= "
            f"{100 * ERROR_LIMIT_FRACTION:.1f} % of period, monotonic, locked)"
        ),
    )
    return ExperimentResult(
        experiment_id="fig50_51_mc",
        title="Monte-Carlo linearity yield across corners and frequencies "
        "(population-scale Figures 50-51)",
        data=data,
        report=report,
        paper_reference={
            "claims": [
                "linearity is better at lower frequencies (more buffers per cell)",
                "the proposed scheme stays monotonic and linear across corners",
                "post-APR mismatch turns single-instance figures into a yield question",
            ]
        },
    )

"""Figures 50-51, Monte-Carlo edition -- linearity *yield* across corners.

The paper's Figures 50-51 show the post-APR linearity of *one* fabricated
instance per frequency.  The interesting production question is statistical:
what fraction of fabricated delay lines meets a DNL/INL/monotonicity
specification at each corner and frequency?  This experiment answers it for
both schemes with the vectorized ensemble engine: 1000 post-APR instances
per (scheme, corner, frequency) cell are drawn, calibrated with the
closed-form batch lock and swept into a full transfer-curve matrix in one
numpy pass, then scored against the specification -- the delay-line analogue
of the ``fig15`` experiment's regulation yield, in the spirit of the paper's
Section 5.2 statistical-sizing proposal.

The sweep itself is declarative: :data:`GRID` names the cell axes and
:func:`run_cell` computes one (scheme, corner, frequency) cell from its
scalar coordinates, so the orchestrator (:mod:`repro.sweep`) can fan cells
out across worker processes and memoize each one in the result cache.

With a ``precision`` (the CLI's ``--precision``), the fixed 1000-instance
budget per cell is replaced by the adaptive sampler
(:func:`repro.core.yield_analysis.adaptive_linearity_yield`): each cell
draws chunks until the confidence interval on its linearity yield has the
requested half-width or the ``max_instances`` cap is spent.  The adaptive
coordinates join the cell dicts -- and therefore the cache keys -- so
fixed-N and adaptive results never collide in the sweep cache.
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.core.design import DesignSpec
from repro.core.yield_analysis import adaptive_linearity_yield, linearity_yield
from repro.experiments.base import ExperimentResult, register
from repro.sweep import ParameterGrid, SweepOrchestrator, sweep_map
from repro.technology.corners import OperatingConditions, ProcessCorner
from repro.technology.library import intel32_like_library
from repro.technology.variation import VariationModel

__all__ = [
    "run",
    "run_cell",
    "GRID",
    "FREQUENCIES_MHZ",
    "NUM_INSTANCES",
    "DEFAULT_MAX_INSTANCES",
    "DNL_LIMIT_LSB",
    "INL_LIMIT_LSB",
]

FREQUENCIES_MHZ = (50.0, 100.0, 200.0)
NUM_INSTANCES = 1000
#: Default per-cell sample cap of the adaptive (``--precision``) mode: four
#: times the fixed budget, so hard cells can buy extra confidence with the
#: samples the pinned cells no longer burn.
DEFAULT_MAX_INSTANCES = 4 * NUM_INSTANCES
DEFAULT_SEED = 2012
#: Linearity specification.  DNL/INL are scheme-referred LSB limits sized to
#: bind against mismatch rather than the mapper's inherent quantization
#: staircase; the deviation limit is referred to the switching period, the
#: scale that compares both schemes fairly (paper eq. 12) and the binding
#: constraint for most cells.  Monotonicity and a valid lock are required.
DNL_LIMIT_LSB = 4.0
INL_LIMIT_LSB = 4.0
ERROR_LIMIT_FRACTION = 0.045

#: The sweep axes; one cell per (scheme, corner, frequency), visited in the
#: same order as the original nested loops so the report rows are stable.
GRID = ParameterGrid(
    scheme=("proposed", "conventional"),
    corner=tuple(c.name.lower() for c in (ProcessCorner.SLOW, ProcessCorner.FAST)),
    frequency_mhz=FREQUENCIES_MHZ,
)


def run_cell(params: dict) -> dict:
    """Linearity-yield payload of one (scheme, corner, frequency) cell.

    Module-level and driven entirely by the scalar ``params`` dict (the
    grid coordinates plus the RNG seed), so the sweep orchestrator can
    pickle it into worker processes and content-address the result.  When
    the dict carries ``precision`` / ``max_instances`` coordinates, the
    cell runs the adaptive sampler instead of the fixed instance count and
    reports the extra confidence bookkeeping (CI bounds, samples drawn,
    stop reason) alongside the same metric keys.
    """
    spec = DesignSpec(
        clock_frequency_mhz=params["frequency_mhz"], resolution_bits=6
    )
    conditions = OperatingConditions(
        corner=ProcessCorner[params["corner"].upper()]
    )
    variation = VariationModel(
        random_sigma=0.04, gradient_peak=0.015, seed=params["seed"]
    )
    if "precision" in params:
        adaptive = adaptive_linearity_yield(
            scheme=params["scheme"],
            spec=spec,
            conditions=conditions,
            variation=variation,
            precision=params["precision"],
            max_instances=params.get("max_instances", DEFAULT_MAX_INSTANCES),
            dnl_limit_lsb=DNL_LIMIT_LSB,
            inl_limit_lsb=INL_LIMIT_LSB,
            error_limit_fraction=ERROR_LIMIT_FRACTION,
            library=intel32_like_library(),
        )
        return {
            "linearity_yield": adaptive.yield_estimate,
            "lock_yield": adaptive.spec_yields["lock"],
            "monotonic_fraction": adaptive.spec_yields["monotonic"],
            "mean_max_dnl_lsb": adaptive.value_stats["max_dnl_lsb"]["mean"],
            "mean_max_inl_lsb": adaptive.value_stats["max_inl_lsb"]["mean"],
            "worst_max_inl_lsb": adaptive.value_stats["max_inl_lsb"]["max"],
            "mean_rms_inl_lsb": adaptive.value_stats["rms_inl_lsb"]["mean"],
            "worst_error_fraction": adaptive.value_stats["error_fraction"]["max"],
            "ci_lower": adaptive.lower,
            "ci_upper": adaptive.upper,
            "confidence": adaptive.confidence,
            "samples": adaptive.samples,
            "stop_reason": adaptive.stop_reason,
        }
    result = linearity_yield(
        scheme=params["scheme"],
        spec=spec,
        conditions=conditions,
        variation=variation,
        num_instances=NUM_INSTANCES,
        dnl_limit_lsb=DNL_LIMIT_LSB,
        inl_limit_lsb=INL_LIMIT_LSB,
        error_limit_fraction=ERROR_LIMIT_FRACTION,
        library=intel32_like_library(),
    )
    return {
        "linearity_yield": result.linearity_yield,
        "lock_yield": result.lock_yield,
        "monotonic_fraction": float(result.monotonic.mean()),
        "mean_max_dnl_lsb": float(result.max_dnl_lsb.mean()),
        "mean_max_inl_lsb": float(result.max_inl_lsb.mean()),
        "worst_max_inl_lsb": float(result.max_inl_lsb.max()),
        "mean_rms_inl_lsb": float(result.rms_inl_lsb.mean()),
        "worst_error_fraction": float(result.max_error_fraction_of_period.max()),
    }


@register("fig50_51_mc")
def run(
    seed: int | None = None,
    sweep: SweepOrchestrator | None = None,
    precision: float | None = None,
    max_instances: int | None = None,
) -> ExperimentResult:
    """Monte-Carlo linearity yield per corner x frequency for both schemes.

    Args:
        seed: RNG seed for the variation draws (the CLI's ``--seed`` flag);
            defaults to the experiment's stock seed.
        sweep: optional :class:`~repro.sweep.SweepOrchestrator` (the CLI's
            ``--workers`` / ``--cache-dir`` flags); cells run serially
            without one, with bit-identical results.
        precision: optional CI half-width target (the CLI's ``--precision``
            flag); switches every cell from the fixed 1000-instance budget
            to the adaptive sampler.
        max_instances: per-cell sample cap of the adaptive mode (the CLI's
            ``--max-instances`` flag); requires ``precision``.
    """
    if max_instances is not None and precision is None:
        raise ValueError("max_instances is only meaningful with a precision")
    seed = DEFAULT_SEED if seed is None else seed
    if precision is None:
        cells = GRID.cells(seed=seed)
    else:
        cells = GRID.cells(
            seed=seed,
            precision=precision,
            max_instances=max_instances or DEFAULT_MAX_INSTANCES,
        )
    payloads = sweep_map(run_cell, cells, experiment_id="fig50_51_mc", sweep=sweep)

    data = {}
    rows = []
    for cell, entry in zip(cells, payloads):
        scheme, corner = cell["scheme"], cell["corner"]
        frequency = cell["frequency_mhz"]
        data.setdefault(scheme, {}).setdefault(corner, {})[frequency] = entry
        row = [
            scheme,
            corner,
            f"{frequency:.0f}",
            f"{entry['linearity_yield']:.3f}",
            f"{entry['lock_yield']:.3f}",
            f"{entry['monotonic_fraction']:.3f}",
            f"{entry['mean_max_inl_lsb']:.2f}",
            f"{100 * entry['worst_error_fraction']:.2f} %",
        ]
        if precision is not None:
            row.extend(
                [
                    f"[{entry['ci_lower']:.3f}, {entry['ci_upper']:.3f}]",
                    str(entry["samples"]),
                    entry["stop_reason"],
                ]
            )
        rows.append(row)

    headers = [
        "Scheme",
        "Corner",
        "Freq (MHz)",
        "Linearity yield",
        "Lock yield",
        "Monotonic",
        "Mean max |INL| (LSB)",
        "Worst error (% period)",
    ]
    if precision is None:
        budget = f"over {NUM_INSTANCES} post-APR instances per cell"
    else:
        headers.extend(["95 % CI", "Samples", "Stop"])
        budget = (
            f"adaptive to +/- {precision:g} CI half-width "
            f"(cap {max_instances or DEFAULT_MAX_INSTANCES} instances/cell)"
        )
    report = format_table(
        headers=headers,
        rows=rows,
        title=(
            f"Figures 50-51 Monte-Carlo -- linearity yield {budget} "
            f"(spec: |DNL| <= {DNL_LIMIT_LSB} LSB, "
            f"|INL| <= {INL_LIMIT_LSB} LSB, error <= "
            f"{100 * ERROR_LIMIT_FRACTION:.1f} % of period, monotonic, locked)"
        ),
    )
    return ExperimentResult(
        experiment_id="fig50_51_mc",
        title="Monte-Carlo linearity yield across corners and frequencies "
        "(population-scale Figures 50-51)",
        data=data,
        report=report,
        paper_reference={
            "claims": [
                "linearity is better at lower frequencies (more buffers per cell)",
                "the proposed scheme stays monotonic and linear across corners",
                "post-APR mismatch turns single-instance figures into a yield question",
            ]
        },
    )

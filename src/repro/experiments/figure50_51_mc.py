"""Figures 50-51, Monte-Carlo edition -- linearity *yield* across corners.

The paper's Figures 50-51 show the post-APR linearity of *one* fabricated
instance per frequency.  The interesting production question is statistical:
what fraction of fabricated delay lines meets a DNL/INL/monotonicity
specification at each corner and frequency?  This experiment answers it for
both schemes with the vectorized ensemble engine: 1000 post-APR instances
per (scheme, corner, frequency) cell are drawn, calibrated with the
closed-form batch lock and swept into a full transfer-curve matrix in one
numpy pass, then scored against the specification -- the delay-line analogue
of the ``fig15`` experiment's regulation yield, in the spirit of the paper's
Section 5.2 statistical-sizing proposal.
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.core.design import DesignSpec
from repro.core.yield_analysis import linearity_yield
from repro.experiments.base import ExperimentResult, register
from repro.technology.corners import OperatingConditions, ProcessCorner
from repro.technology.library import intel32_like_library
from repro.technology.variation import VariationModel

__all__ = ["run", "FREQUENCIES_MHZ", "NUM_INSTANCES", "DNL_LIMIT_LSB", "INL_LIMIT_LSB"]

FREQUENCIES_MHZ = (50.0, 100.0, 200.0)
NUM_INSTANCES = 1000
DEFAULT_SEED = 2012
#: Linearity specification.  DNL/INL are scheme-referred LSB limits sized to
#: bind against mismatch rather than the mapper's inherent quantization
#: staircase; the deviation limit is referred to the switching period, the
#: scale that compares both schemes fairly (paper eq. 12) and the binding
#: constraint for most cells.  Monotonicity and a valid lock are required.
DNL_LIMIT_LSB = 4.0
INL_LIMIT_LSB = 4.0
ERROR_LIMIT_FRACTION = 0.045


@register("fig50_51_mc")
def run(seed: int | None = None) -> ExperimentResult:
    """Monte-Carlo linearity yield per corner x frequency for both schemes.

    Args:
        seed: RNG seed for the variation draws (the CLI's ``--seed`` flag);
            defaults to the experiment's stock seed.
    """
    library = intel32_like_library()
    variation = VariationModel(
        random_sigma=0.04,
        gradient_peak=0.015,
        seed=DEFAULT_SEED if seed is None else seed,
    )

    data = {}
    rows = []
    for scheme in ("proposed", "conventional"):
        data[scheme] = {}
        for corner in (ProcessCorner.SLOW, ProcessCorner.FAST):
            conditions = OperatingConditions(corner=corner)
            data[scheme][corner.name.lower()] = {}
            for frequency in FREQUENCIES_MHZ:
                result = linearity_yield(
                    scheme=scheme,
                    spec=DesignSpec(
                        clock_frequency_mhz=frequency, resolution_bits=6
                    ),
                    conditions=conditions,
                    variation=variation,
                    num_instances=NUM_INSTANCES,
                    dnl_limit_lsb=DNL_LIMIT_LSB,
                    inl_limit_lsb=INL_LIMIT_LSB,
                    error_limit_fraction=ERROR_LIMIT_FRACTION,
                    library=library,
                )
                entry = {
                    "linearity_yield": result.linearity_yield,
                    "lock_yield": result.lock_yield,
                    "monotonic_fraction": float(result.monotonic.mean()),
                    "mean_max_dnl_lsb": float(result.max_dnl_lsb.mean()),
                    "mean_max_inl_lsb": float(result.max_inl_lsb.mean()),
                    "worst_max_inl_lsb": float(result.max_inl_lsb.max()),
                    "mean_rms_inl_lsb": float(result.rms_inl_lsb.mean()),
                    "worst_error_fraction": float(
                        result.max_error_fraction_of_period.max()
                    ),
                }
                data[scheme][corner.name.lower()][frequency] = entry
                rows.append(
                    [
                        scheme,
                        corner.name.lower(),
                        f"{frequency:.0f}",
                        f"{entry['linearity_yield']:.3f}",
                        f"{entry['lock_yield']:.3f}",
                        f"{entry['monotonic_fraction']:.3f}",
                        f"{entry['mean_max_inl_lsb']:.2f}",
                        f"{100 * entry['worst_error_fraction']:.2f} %",
                    ]
                )

    report = format_table(
        headers=[
            "Scheme",
            "Corner",
            "Freq (MHz)",
            "Linearity yield",
            "Lock yield",
            "Monotonic",
            "Mean max |INL| (LSB)",
            "Worst error (% period)",
        ],
        rows=rows,
        title=(
            f"Figures 50-51 Monte-Carlo -- linearity yield over {NUM_INSTANCES} "
            f"post-APR instances per cell (spec: |DNL| <= {DNL_LIMIT_LSB} LSB, "
            f"|INL| <= {INL_LIMIT_LSB} LSB, error <= "
            f"{100 * ERROR_LIMIT_FRACTION:.1f} % of period, monotonic, locked)"
        ),
    )
    return ExperimentResult(
        experiment_id="fig50_51_mc",
        title="Monte-Carlo linearity yield across corners and frequencies "
        "(population-scale Figures 50-51)",
        data=data,
        report=report,
        paper_reference={
            "claims": [
                "linearity is better at lower frequencies (more buffers per cell)",
                "the proposed scheme stays monotonic and linear across corners",
                "post-APR mismatch turns single-instance figures into a yield question",
            ]
        },
    )

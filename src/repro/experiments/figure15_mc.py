"""Figure 15, Monte-Carlo edition -- silicon-to-regulation yield at scale.

The ``fig15`` experiment shows *one* converter per DPWM architecture and a
component-only Monte-Carlo sweep; the ``fig50_51_mc`` experiment scores the
delay-line silicon but never closes a loop.  This experiment fuses the two
halves with the silicon-to-regulation pipeline (:mod:`repro.pipeline` via
:func:`~repro.core.yield_analysis.closed_loop_yield`): for every
(scheme x corner x frequency x load scenario) cell, a population of
fabricated delay-line instances is drawn, calibrated closed-form, converted
into per-instance DPWM duty tables and closed around its own
component-varied buck -- one vectorized run per cell, no per-instance Python
loop anywhere.  Each cell reports the per-chip steady-state limit-cycle
amplitude and the composed closed-loop yield (linearity AND regulation).

The composition is the payoff: at the slow corner the conventional DLL's
lock yield collapses (paper Figure 37 as a population statement), yet the
unlocked chips still *regulate* -- the loop servos the duty word around the
mis-scaled table -- so a regulation-only screen would ship silicon whose
DPWM never calibrated.  The composed specification catches it.
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.converter.load import SteppedLoad
from repro.core.design import DesignSpec
from repro.core.yield_analysis import (
    ComponentVariation,
    LinearitySpec,
    RegulationSpec,
    closed_loop_yield,
)
from repro.experiments.base import ExperimentResult, register
from repro.technology.corners import OperatingConditions, ProcessCorner
from repro.technology.library import intel32_like_library
from repro.technology.variation import VariationModel

__all__ = [
    "run",
    "FREQUENCIES_MHZ",
    "LOAD_SCENARIOS",
    "NUM_INSTANCES",
    "PERIODS",
]

FREQUENCIES_MHZ = (100.0, 200.0)
NUM_INSTANCES = 128
PERIODS = 400
DEFAULT_SEED = 2012
REFERENCE_V = 0.9
#: The composed specification: the silicon side mirrors ``fig50_51_mc``'s
#: period-referred deviation limit, the loop side is the 20 mV regulation
#: window of ``fig15``.
LINEARITY_SPEC = LinearitySpec(error_limit_fraction=0.045)
REGULATION_SPEC = RegulationSpec(tolerance_v=0.02)
#: Load scenarios; the step lands early so the steady-state tail scores the
#: recovered loop at every frequency (slower-switching fleets need more
#: periods per time constant to settle).
LOAD_SCENARIOS = {
    "constant": None,
    "load_step": SteppedLoad(
        light_ohm=2.0, heavy_ohm=0.9, step_up_period=60, step_down_period=120
    ),
}


@register("fig15_mc")
def run(seed: int | None = None) -> ExperimentResult:
    """Monte-Carlo closed-loop yield per scheme x corner x frequency x load.

    Args:
        seed: RNG seed for the silicon and component draws (the CLI's
            ``--seed`` flag); defaults to the experiment's stock seed.
    """
    seed = DEFAULT_SEED if seed is None else seed
    library = intel32_like_library()
    variation = VariationModel(seed=seed)
    component_variation = ComponentVariation(seed=seed)

    data = {}
    rows = []
    for scheme in ("proposed", "conventional"):
        data[scheme] = {}
        for corner in (ProcessCorner.SLOW, ProcessCorner.FAST):
            conditions = OperatingConditions(corner=corner)
            data[scheme][corner.name.lower()] = {}
            for frequency in FREQUENCIES_MHZ:
                per_load = {}
                for scenario, load in LOAD_SCENARIOS.items():
                    result = closed_loop_yield(
                        scheme,
                        DesignSpec(
                            clock_frequency_mhz=frequency, resolution_bits=6
                        ),
                        conditions,
                        reference_v=REFERENCE_V,
                        variation=variation,
                        component_variation=component_variation,
                        num_instances=NUM_INSTANCES,
                        periods=PERIODS,
                        linearity_spec=LINEARITY_SPEC,
                        regulation_spec=REGULATION_SPEC,
                        load=load,
                        library=library,
                    )
                    amplitudes = result.limit_cycle_amplitudes_v
                    entry = {
                        "closed_loop_yield": result.closed_loop_yield,
                        "linearity_yield": result.linearity_yield,
                        "regulation_yield": result.regulation_yield,
                        "lock_yield": result.lock_yield,
                        "worst_error_v": result.worst_error_v,
                        "mean_limit_cycle_amplitude_v": float(amplitudes.mean()),
                        "worst_limit_cycle_amplitude_v": float(amplitudes.max()),
                    }
                    per_load[scenario] = entry
                    rows.append(
                        [
                            scheme,
                            corner.name.lower(),
                            f"{frequency:.0f}",
                            scenario,
                            f"{entry['closed_loop_yield']:.3f}",
                            f"{entry['regulation_yield']:.3f}",
                            f"{entry['lock_yield']:.3f}",
                            f"{entry['mean_limit_cycle_amplitude_v'] * 1e3:.1f}",
                            f"{entry['worst_error_v'] * 1e3:.1f}",
                        ]
                    )
                data[scheme][corner.name.lower()][frequency] = per_load

    report = format_table(
        headers=[
            "Scheme",
            "Corner",
            "Freq (MHz)",
            "Load",
            "Closed-loop yield",
            "Regulation yield",
            "Lock yield",
            "Mean limit cycle (mV)",
            "Worst |Vss-Vref| (mV)",
        ],
        rows=rows,
        title=(
            f"Figure 15 Monte-Carlo -- silicon-to-regulation yield over "
            f"{NUM_INSTANCES} fabricated instances per cell (spec: deviation "
            f"<= {100 * LINEARITY_SPEC.error_limit_fraction:.1f} % of period, "
            f"monotonic, locked, AND |Vss - Vref| <= "
            f"{REGULATION_SPEC.tolerance_v * 1e3:.0f} mV)"
        ),
    )
    return ExperimentResult(
        experiment_id="fig15_mc",
        title="Monte-Carlo silicon-to-regulation yield across corners, "
        "frequencies and load scenarios (population-scale Figure 15)",
        data=data,
        report=report,
        paper_reference={
            "claims": [
                "process variation in the delay line decides closed-loop quality",
                "the proposed scheme's population locks and regulates at every corner",
                "the conventional DLL's slow-corner lock collapse survives the loop: "
                "regulation alone cannot screen it",
            ]
        },
    )

"""Figure 15, Monte-Carlo edition -- silicon-to-regulation yield at scale.

The ``fig15`` experiment shows *one* converter per DPWM architecture and a
component-only Monte-Carlo sweep; the ``fig50_51_mc`` experiment scores the
delay-line silicon but never closes a loop.  This experiment fuses the two
halves with the silicon-to-regulation pipeline (:mod:`repro.pipeline` via
:func:`~repro.core.yield_analysis.closed_loop_yield`): for every
(scheme x corner x frequency x load scenario) cell, a population of
fabricated delay-line instances is drawn, calibrated closed-form, converted
into per-instance DPWM duty tables and closed around its own
component-varied buck -- one vectorized run per cell, no per-instance Python
loop anywhere.  Each cell reports the per-chip steady-state limit-cycle
amplitude and the composed closed-loop yield (linearity AND regulation).

The composition is the payoff: at the slow corner the conventional DLL's
lock yield collapses (paper Figure 37 as a population statement), yet the
unlocked chips still *regulate* -- the loop servos the duty word around the
mis-scaled table -- so a regulation-only screen would ship silicon whose
DPWM never calibrated.  The composed specification catches it.

The sweep itself is declarative: :data:`GRID` names the cell axes and
:func:`run_cell` computes one cell from its scalar coordinates through
:func:`repro.pipeline.closed_loop_cell`, so the orchestrator
(:mod:`repro.sweep`) can fan cells out across worker processes and memoize
each one in the result cache.

With a ``precision`` (the CLI's ``--precision``), the fixed 128-instance
budget per cell is replaced by the adaptive sampler
(:func:`repro.core.yield_analysis.adaptive_closed_loop_yield`): each cell
fabricates and regulates chunks until the confidence interval on its
composed closed-loop yield has the requested half-width or the
``max_instances`` cap is spent.  The adaptive coordinates join the cell
dicts -- and therefore the cache keys -- so fixed-N and adaptive results
never collide in the sweep cache.
"""

from __future__ import annotations

from repro.analysis.reports import format_table
from repro.converter.load import SteppedLoad
from repro.core.design import DesignSpec
from repro.core.yield_analysis import (
    ComponentVariation,
    LinearitySpec,
    RegulationSpec,
    adaptive_closed_loop_yield,
)
from repro.experiments.base import ExperimentResult, register
from repro.pipeline import closed_loop_cell
from repro.sweep import ParameterGrid, SweepOrchestrator, sweep_map
from repro.technology.corners import OperatingConditions, ProcessCorner
from repro.technology.library import intel32_like_library
from repro.technology.variation import VariationModel

__all__ = [
    "run",
    "run_cell",
    "GRID",
    "FREQUENCIES_MHZ",
    "LOAD_SCENARIOS",
    "NUM_INSTANCES",
    "DEFAULT_MAX_INSTANCES",
    "PERIODS",
]

FREQUENCIES_MHZ = (100.0, 200.0)
NUM_INSTANCES = 128
#: Default per-cell sample cap of the adaptive (``--precision``) mode.
DEFAULT_MAX_INSTANCES = 4 * NUM_INSTANCES
PERIODS = 400
DEFAULT_SEED = 2012
REFERENCE_V = 0.9
#: The composed specification: the silicon side mirrors ``fig50_51_mc``'s
#: period-referred deviation limit, the loop side is the 20 mV regulation
#: window of ``fig15``.
LINEARITY_SPEC = LinearitySpec(error_limit_fraction=0.045)
REGULATION_SPEC = RegulationSpec(tolerance_v=0.02)
#: Load scenarios; the step lands early so the steady-state tail scores the
#: recovered loop at every frequency (slower-switching fleets need more
#: periods per time constant to settle).
LOAD_SCENARIOS = {
    "constant": None,
    "load_step": SteppedLoad(
        light_ohm=2.0, heavy_ohm=0.9, step_up_period=60, step_down_period=120
    ),
}

#: The sweep axes; one cell per (scheme, corner, frequency, load scenario),
#: visited in the same order as the original nested loops so the report
#: rows are stable.
GRID = ParameterGrid(
    scheme=("proposed", "conventional"),
    corner=tuple(c.name.lower() for c in (ProcessCorner.SLOW, ProcessCorner.FAST)),
    frequency_mhz=FREQUENCIES_MHZ,
    load=tuple(LOAD_SCENARIOS),
)


def run_cell(params: dict) -> dict:
    """Closed-loop-yield payload of one (scheme, corner, frequency, load) cell.

    Module-level and driven entirely by the scalar ``params`` dict (the
    grid coordinates plus the RNG seed), so the sweep orchestrator can
    pickle it into worker processes and content-address the result.  The
    load *scenario name* is the cell coordinate; the scenario object is
    looked up here, inside the worker.  When the dict carries
    ``precision`` / ``max_instances`` coordinates, the cell runs the
    adaptive sampler instead of the fixed instance count and reports the
    extra confidence bookkeeping alongside the same metric keys.
    """
    if "precision" in params:
        adaptive = adaptive_closed_loop_yield(
            params["scheme"],
            DesignSpec(
                clock_frequency_mhz=params["frequency_mhz"], resolution_bits=6
            ),
            OperatingConditions(corner=ProcessCorner[params["corner"].upper()]),
            reference_v=REFERENCE_V,
            variation=VariationModel(seed=params["seed"]),
            component_variation=ComponentVariation(seed=params["seed"]),
            precision=params["precision"],
            max_instances=params.get("max_instances", DEFAULT_MAX_INSTANCES),
            periods=PERIODS,
            linearity_spec=LINEARITY_SPEC,
            regulation_spec=REGULATION_SPEC,
            load=LOAD_SCENARIOS[params["load"]],
            library=intel32_like_library(),
        )
        amplitude = adaptive.value_stats["limit_cycle_amplitude_v"]
        return {
            "closed_loop_yield": adaptive.yield_estimate,
            "linearity_yield": adaptive.spec_yields["linearity"],
            "regulation_yield": adaptive.spec_yields["regulation"],
            "lock_yield": adaptive.spec_yields["lock"],
            "worst_error_v": adaptive.value_stats["error_v"]["max"],
            "mean_limit_cycle_amplitude_v": amplitude["mean"],
            "worst_limit_cycle_amplitude_v": amplitude["max"],
            "ci_lower": adaptive.lower,
            "ci_upper": adaptive.upper,
            "confidence": adaptive.confidence,
            "samples": adaptive.samples,
            "stop_reason": adaptive.stop_reason,
        }
    result = closed_loop_cell(
        params["scheme"],
        frequency_mhz=params["frequency_mhz"],
        corner=params["corner"],
        seed=params["seed"],
        reference_v=REFERENCE_V,
        num_instances=NUM_INSTANCES,
        periods=PERIODS,
        linearity_spec=LINEARITY_SPEC,
        regulation_spec=REGULATION_SPEC,
        load=LOAD_SCENARIOS[params["load"]],
        library=intel32_like_library(),
    )
    amplitudes = result.limit_cycle_amplitudes_v
    return {
        "closed_loop_yield": result.closed_loop_yield,
        "linearity_yield": result.linearity_yield,
        "regulation_yield": result.regulation_yield,
        "lock_yield": result.lock_yield,
        "worst_error_v": result.worst_error_v,
        "mean_limit_cycle_amplitude_v": float(amplitudes.mean()),
        "worst_limit_cycle_amplitude_v": float(amplitudes.max()),
    }


@register("fig15_mc")
def run(
    seed: int | None = None,
    sweep: SweepOrchestrator | None = None,
    precision: float | None = None,
    max_instances: int | None = None,
) -> ExperimentResult:
    """Monte-Carlo closed-loop yield per scheme x corner x frequency x load.

    Args:
        seed: RNG seed for the silicon and component draws (the CLI's
            ``--seed`` flag); defaults to the experiment's stock seed.
        sweep: optional :class:`~repro.sweep.SweepOrchestrator` (the CLI's
            ``--workers`` / ``--cache-dir`` flags); cells run serially
            without one, with bit-identical results.
        precision: optional CI half-width target (the CLI's ``--precision``
            flag); switches every cell from the fixed 128-instance budget
            to the adaptive sampler.
        max_instances: per-cell sample cap of the adaptive mode (the CLI's
            ``--max-instances`` flag); requires ``precision``.
    """
    if max_instances is not None and precision is None:
        raise ValueError("max_instances is only meaningful with a precision")
    seed = DEFAULT_SEED if seed is None else seed
    if precision is None:
        cells = GRID.cells(seed=seed)
    else:
        cells = GRID.cells(
            seed=seed,
            precision=precision,
            max_instances=max_instances or DEFAULT_MAX_INSTANCES,
        )
    payloads = sweep_map(run_cell, cells, experiment_id="fig15_mc", sweep=sweep)

    data = {}
    rows = []
    for cell, entry in zip(cells, payloads):
        scheme, corner = cell["scheme"], cell["corner"]
        frequency, scenario = cell["frequency_mhz"], cell["load"]
        per_frequency = data.setdefault(scheme, {}).setdefault(corner, {})
        per_frequency.setdefault(frequency, {})[scenario] = entry
        row = [
            scheme,
            corner,
            f"{frequency:.0f}",
            scenario,
            f"{entry['closed_loop_yield']:.3f}",
            f"{entry['regulation_yield']:.3f}",
            f"{entry['lock_yield']:.3f}",
            f"{entry['mean_limit_cycle_amplitude_v'] * 1e3:.1f}",
            f"{entry['worst_error_v'] * 1e3:.1f}",
        ]
        if precision is not None:
            row.extend(
                [
                    f"[{entry['ci_lower']:.3f}, {entry['ci_upper']:.3f}]",
                    str(entry["samples"]),
                    entry["stop_reason"],
                ]
            )
        rows.append(row)

    headers = [
        "Scheme",
        "Corner",
        "Freq (MHz)",
        "Load",
        "Closed-loop yield",
        "Regulation yield",
        "Lock yield",
        "Mean limit cycle (mV)",
        "Worst |Vss-Vref| (mV)",
    ]
    if precision is None:
        budget = f"over {NUM_INSTANCES} fabricated instances per cell"
    else:
        headers.extend(["95 % CI", "Samples", "Stop"])
        budget = (
            f"adaptive to +/- {precision:g} CI half-width "
            f"(cap {max_instances or DEFAULT_MAX_INSTANCES} instances/cell)"
        )
    report = format_table(
        headers=headers,
        rows=rows,
        title=(
            f"Figure 15 Monte-Carlo -- silicon-to-regulation yield {budget} "
            f"(spec: deviation "
            f"<= {100 * LINEARITY_SPEC.error_limit_fraction:.1f} % of period, "
            f"monotonic, locked, AND |Vss - Vref| <= "
            f"{REGULATION_SPEC.tolerance_v * 1e3:.0f} mV)"
        ),
    )
    return ExperimentResult(
        experiment_id="fig15_mc",
        title="Monte-Carlo silicon-to-regulation yield across corners, "
        "frequencies and load scenarios (population-scale Figure 15)",
        data=data,
        report=report,
        paper_reference={
            "claims": [
                "process variation in the delay line decides closed-loop quality",
                "the proposed scheme's population locks and regulates at every corner",
                "the conventional DLL's slow-corner lock collapse survives the loop: "
                "regulation alone cannot screen it",
            ]
        },
    )

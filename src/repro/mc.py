"""Streaming Monte-Carlo engine with confidence-bounded adaptive stopping.

Every Monte-Carlo study in the repo used to burn a fixed instance count per
cell -- 128 or 1000 samples whether the yield was pinned at 100 % or
teetering at a corner.  This module turns those fixed budgets into
precision targets: draw variation batches in *chunks*, fold each chunk
through the vectorized engines, maintain running pass/fail statistics, and
stop as soon as the confidence interval on the primary yield is tight
enough (or a hard sample cap is hit).

The pieces are deliberately generic -- nothing here knows about delay
lines or buck converters:

* :func:`wilson_interval` / :func:`clopper_pearson_interval` -- binomial
  confidence intervals on a yield.  Wilson is the default (tight, well
  behaved at the 0 %/100 % edges); Clopper-Pearson is the conservative
  exact alternative.  Both are implemented on the standard library alone
  (no scipy at runtime) and cross-checked against scipy in the test suite.
* :class:`RunningMoments` -- streaming mean/variance via Welford's
  algorithm with Chan's parallel merge for whole-chunk updates, plus
  running min/max.  Continuous statistics (limit-cycle amplitude, INL)
  stream through these so no per-instance history is retained.
* :func:`adaptive_sample` -- the engine: repeatedly calls a chunk-drawing
  function with ``(first_instance, count)`` coordinates, folds the
  returned :class:`SampleChunk` into the running statistics, and stops on
  precision or on the cap, reporting an :class:`AdaptiveSampleResult`.

Chunked seeding is the caller's contract: the chunk function must derive
instance ``i``'s randomness from a per-instance stream (e.g.
``np.random.default_rng((seed, i))``), so the same seed yields the same
sample stream regardless of chunk size.  The repo's variation models
honour this (see :meth:`repro.technology.variation.VariationModel.sample`
and :meth:`repro.core.yield_analysis.ComponentVariation.sample_instances`),
which is what makes chunked and one-shot adaptive runs bit-identical --
hypothesis-tested in ``tests/test_mc.py``.

Example -- a synthetic 97 %-yield process stops long before a 4096-sample
cap once the 95 % Wilson interval is +/- 2 % tight:

    >>> import numpy as np
    >>> from repro.mc import SampleChunk, adaptive_sample
    >>> def draw(first_instance, count):
    ...     passes = np.array([
    ...         np.random.default_rng((7, i)).uniform() < 0.97
    ...         for i in range(first_instance, first_instance + count)
    ...     ])
    ...     return SampleChunk(passes={"yield": passes},
    ...                        values={"score": passes.astype(float)})
    >>> result = adaptive_sample(draw, primary="yield", precision=0.02,
    ...                          chunk_size=64, max_samples=4096)
    >>> result.stop_reason
    'precision'
    >>> result.trials
    320
    >>> result.intervals["yield"].half_width <= 0.02
    True
    >>> round(result.estimates["yield"], 3)
    0.969

and the same seed gives the same stream at any chunk size:

    >>> chunked = adaptive_sample(draw, primary="yield", precision=0.0,
    ...                           chunk_size=17, max_samples=320)
    >>> chunked.successes["yield"] == result.successes["yield"]
    True
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Mapping

import numpy as np
import numpy.typing as npt

__all__ = [
    "AdaptiveSampleResult",
    "ConfidenceInterval",
    "ImportanceSampleResult",
    "RunningMoments",
    "SampleChunk",
    "StratifiedSampleResult",
    "Stratum",
    "StratumResult",
    "WeightedRunningMoments",
    "WeightedSampleChunk",
    "adaptive_sample",
    "clopper_pearson_interval",
    "importance_sample",
    "interval_function",
    "normal_cdf",
    "normal_ppf",
    "stratified_sample",
    "wilson_interval",
]


# --------------------------------------------------------------------------
# Confidence intervals on a binomial proportion (standard library only).
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided confidence interval on a proportion.

    Attributes:
        lower / upper: interval bounds, clipped to ``[0, 1]``.
        confidence: the two-sided confidence level the bounds realize.
    """

    lower: float
    upper: float
    confidence: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.lower <= self.upper <= 1.0:
            raise ValueError(
                f"bounds must satisfy 0 <= lower <= upper <= 1; "
                f"got [{self.lower}, {self.upper}]"
            )

    @property
    def half_width(self) -> float:
        """Half the interval width -- the adaptive engine's precision measure."""
        return 0.5 * (self.upper - self.lower)

    def contains(self, proportion: float) -> bool:
        return self.lower <= proportion <= self.upper


def normal_ppf(quantile: float) -> float:
    """Inverse standard-normal CDF (Acklam's rational approximation).

    Refined with one Halley step against the exact :func:`math.erf` CDF, so
    the result is accurate to machine precision -- cross-checked against
    ``scipy.stats.norm.ppf`` in the tests.
    """
    if not 0.0 < quantile < 1.0:
        raise ValueError(f"quantile must be in (0, 1); got {quantile}")
    # Acklam's coefficients.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    if quantile < p_low:
        q = math.sqrt(-2.0 * math.log(quantile))
        x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    elif quantile <= 1.0 - p_low:
        q = quantile - 0.5
        r = q * q
        x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
            ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
        )
    else:
        q = math.sqrt(-2.0 * math.log(1.0 - quantile))
        x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        )
    # One Halley refinement step against the exact CDF.
    error = 0.5 * math.erfc(-x / math.sqrt(2.0)) - quantile
    u = error * math.sqrt(2.0 * math.pi) * math.exp(0.5 * x * x)
    return x - u / (1.0 + 0.5 * x * u)


def normal_cdf(x: float) -> float:
    """Standard normal CDF, exact via :func:`math.erfc`.

    The inverse of :func:`normal_ppf`; the stratified estimators use it to
    turn sigma-shell boundaries into exact stratum probability masses.
    """
    return 0.5 * math.erfc(-x / math.sqrt(2.0))


def _validate_counts(successes: int, trials: int, confidence: float) -> None:
    if trials < 1:
        raise ValueError(f"trials must be >= 1; got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(f"successes must be in [0, {trials}]; got {successes}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1); got {confidence}")


def wilson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> ConfidenceInterval:
    """Wilson score interval on a binomial proportion.

    The default interval of the adaptive engine: unlike the normal
    (Wald) approximation it never collapses to zero width at 0 %/100 %
    observed yield, so "all passed so far" still carries honest
    uncertainty -- exactly the regime high-yield cells live in.
    """
    _validate_counts(successes, trials, confidence)
    z = normal_ppf(0.5 * (1.0 + confidence))
    phat = successes / trials
    z2_n = z * z / trials
    denominator = 1.0 + z2_n
    center = (phat + 0.5 * z2_n) / denominator
    margin = (
        z
        * math.sqrt(phat * (1.0 - phat) / trials + 0.25 * z2_n / trials)
        / denominator
    )
    # At the boundaries the closed form is exactly 0/1; pin it so float
    # round-off cannot leak an epsilon past the estimate.
    return ConfidenceInterval(
        lower=0.0 if successes == 0 else max(0.0, center - margin),
        upper=1.0 if successes == trials else min(1.0, center + margin),
        confidence=confidence,
    )


def _log_beta(a: float, b: float) -> float:
    return math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b)


def _beta_continued_fraction(a: float, b: float, x: float) -> float:
    """Continued fraction for the regularized incomplete beta (NR's betacf)."""
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 200):
        m2 = 2 * m
        numerator = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        numerator = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + numerator * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + numerator / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-15:
            return h
    return h  # pragma: no cover - 200 iterations always converge for our a, b


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """The regularized incomplete beta function I_x(a, b) (the Beta CDF)."""
    if a <= 0 or b <= 0:
        raise ValueError("shape parameters must be positive")
    if x <= 0.0:
        return 0.0
    if x >= 1.0:
        return 1.0
    log_front = (
        a * math.log(x) + b * math.log1p(-x) - _log_beta(a, b)
    )
    front = math.exp(log_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _beta_continued_fraction(a, b, x) / a
    return 1.0 - front * _beta_continued_fraction(b, a, 1.0 - x) / b


def _beta_quantile(probability: float, a: float, b: float) -> float:
    """Inverse Beta CDF by bisection (monotone, so always converges)."""
    if not 0.0 < probability < 1.0:
        raise ValueError(f"probability must be in (0, 1); got {probability}")
    low, high = 0.0, 1.0
    for _ in range(100):
        mid = 0.5 * (low + high)
        if regularized_incomplete_beta(a, b, mid) < probability:
            low = mid
        else:
            high = mid
    return 0.5 * (low + high)


def clopper_pearson_interval(
    successes: int, trials: int, confidence: float = 0.95
) -> ConfidenceInterval:
    """Clopper-Pearson ("exact") interval on a binomial proportion.

    Guaranteed coverage at the cost of width -- the conservative choice
    when a yield number feeds a ship/no-ship decision.  The Beta quantiles
    are computed from the regularized incomplete beta function, so no
    scipy is needed at runtime.
    """
    _validate_counts(successes, trials, confidence)
    alpha = 1.0 - confidence
    lower = (
        0.0
        if successes == 0
        else _beta_quantile(0.5 * alpha, successes, trials - successes + 1)
    )
    upper = (
        1.0
        if successes == trials
        else _beta_quantile(1.0 - 0.5 * alpha, successes + 1, trials - successes)
    )
    return ConfidenceInterval(lower=lower, upper=upper, confidence=confidence)


#: Named interval methods the adaptive engine accepts.
_INTERVAL_METHODS: dict[str, Callable[[int, int, float], ConfidenceInterval]] = {
    "wilson": wilson_interval,
    "clopper_pearson": clopper_pearson_interval,
}


def interval_function(method: str) -> Callable[[int, int, float], ConfidenceInterval]:
    """Resolve an interval method name (``"wilson"``/``"clopper_pearson"``)."""
    try:
        return _INTERVAL_METHODS[method]
    except KeyError:
        known = ", ".join(sorted(_INTERVAL_METHODS))
        raise ValueError(
            f"unknown interval method {method!r}; known methods: {known}"
        ) from None


# --------------------------------------------------------------------------
# Streaming moments (Welford + Chan merge).
# --------------------------------------------------------------------------


class RunningMoments:
    """Streaming mean/variance/extrema of a value stream.

    Scalar updates use Welford's algorithm; whole-chunk updates
    (:meth:`extend`) compute the chunk's moments vectorized and fold them
    in with Chan et al.'s parallel-merge formula, so a chunked stream costs
    one numpy pass per chunk and the result is independent of how the
    stream was chunked (up to float round-off).

    Edge-case contract (tested in ``tests/test_mc_statistics.py``):

    * ``extend([])`` is a strict no-op -- the count, moments and min/max
      are untouched, so an empty chunk can never inject NaN extrema;
    * merging into an empty accumulator is *exact*: after ``extend(data)``
      on a fresh instance the moments equal the directly computed ones bit
      for bit (Chan's merge with one empty side degenerates to a copy);
    * :meth:`variance` with ``ddof`` >= ``count`` (notably the ``ddof=1``
      sample variance of a single observation) deliberately returns
      ``NaN`` rather than raising -- a streaming consumer polling after
      every chunk should see "not defined yet", not an exception.
    """

    def __init__(self) -> None:
        self.count = 0
        self.mean = 0.0
        self._m2 = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def push(self, value: float) -> None:
        """Fold one scalar observation into the stream."""
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self._m2 += delta * (value - self.mean)
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)

    def extend(self, values: npt.ArrayLike) -> None:
        """Fold a whole chunk of observations into the stream."""
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            return
        chunk_count = int(values.size)
        chunk_mean = float(values.mean())
        chunk_m2 = float(((values - chunk_mean) ** 2).sum())
        delta = chunk_mean - self.mean
        total = self.count + chunk_count
        self._m2 += chunk_m2 + delta * delta * self.count * chunk_count / total
        self.mean += delta * chunk_count / total
        self.count = total
        self.minimum = min(self.minimum, float(values.min()))
        self.maximum = max(self.maximum, float(values.max()))

    def variance(self, ddof: int = 0) -> float:
        """Variance of the stream so far (``ddof=1`` for the sample variance).

        Returns ``NaN`` (never raises) while ``count <= ddof`` -- in
        particular the ``ddof=1`` sample variance of a single observation
        is undefined, and a streaming consumer polling after every chunk
        relies on reading "undefined" rather than catching an error.
        """
        if self.count <= ddof:
            return math.nan
        return self._m2 / (self.count - ddof)

    def std(self, ddof: int = 0) -> float:
        variance = self.variance(ddof)
        return math.sqrt(variance) if not math.isnan(variance) else math.nan

    def summary(self) -> dict[str, float]:
        """Mean/std/min/max/count as a plain JSON-able dict."""
        return {
            "count": self.count,
            "mean": self.mean if self.count else math.nan,
            "std": self.std(),
            "min": self.minimum if self.count else math.nan,
            "max": self.maximum if self.count else math.nan,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"RunningMoments(count={self.count}, mean={self.mean:.6g}, "
            f"std={self.std():.6g})"
        )


# --------------------------------------------------------------------------
# The adaptive sampling engine.
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class SampleChunk:
    """What one drawn chunk contributed to the running statistics.

    Attributes:
        passes: mapping of statistic name to a per-instance boolean array
            (one entry per instance of the chunk).  Every named statistic
            accumulates its own success count and confidence interval; the
            engine's stopping rule watches the *primary* one.
        values: mapping of metric name to a per-instance float array;
            each streams through a :class:`RunningMoments`.
    """

    passes: Mapping[str, npt.NDArray[np.bool_]]
    values: Mapping[str, npt.NDArray[np.float64]] = field(default_factory=dict)


@dataclass(frozen=True)
class AdaptiveSampleResult:
    """Outcome of one adaptive sampling run.

    Attributes:
        primary: name of the pass statistic that drove the stopping rule.
        trials: total instances drawn.
        chunks: number of chunks drawn.
        stop_reason: ``"precision"`` (the primary interval's half-width hit
            the target) or ``"max_samples"`` (the cap was exhausted first).
        successes: per-statistic success counts.
        estimates: per-statistic maximum-likelihood yields
            (``successes / trials``).
        intervals: per-statistic confidence intervals (same method and
            confidence for all).
        moments: per-metric streaming moments.
        precision / confidence / method / max_samples / chunk_size: the
            configuration the run used.
    """

    primary: str
    trials: int
    chunks: int
    stop_reason: str
    successes: dict[str, int]
    estimates: dict[str, float]
    intervals: dict[str, ConfidenceInterval]
    moments: dict[str, RunningMoments]
    precision: float
    confidence: float
    method: str
    max_samples: int
    chunk_size: int

    @property
    def estimate(self) -> float:
        """The primary statistic's maximum-likelihood yield."""
        return self.estimates[self.primary]

    @property
    def interval(self) -> ConfidenceInterval:
        """The primary statistic's confidence interval."""
        return self.intervals[self.primary]


def adaptive_sample(
    draw: Callable[[int, int], SampleChunk],
    *,
    primary: str,
    precision: float,
    confidence: float = 0.95,
    max_samples: int = 4096,
    chunk_size: int = 64,
    min_samples: int | None = None,
    method: str = "wilson",
) -> AdaptiveSampleResult:
    """Draw chunks until the primary yield's confidence interval is tight.

    Args:
        draw: chunk function mapping ``(first_instance, count)`` to a
            :class:`SampleChunk` covering instances ``first_instance ..
            first_instance + count - 1``.  It must derive instance ``i``'s
            randomness from a per-instance stream so the sample stream is
            independent of the chunking.
        primary: name of the pass statistic the stopping rule watches.
        precision: target half-width of the primary confidence interval;
            ``0.0`` disables early stopping (the run always exhausts the
            cap -- useful for chunk-invariance testing).
        confidence: two-sided confidence level of all intervals.
        max_samples: hard cap on total instances; the final chunk is
            clipped so the cap is met exactly.
        chunk_size: instances per chunk.
        min_samples: instances required before the stopping rule may fire
            (defaults to one chunk); prevents a lucky first handful of
            passes from stopping a run that has seen nothing yet.
        method: interval method, ``"wilson"`` or ``"clopper_pearson"``.

    Returns:
        an :class:`AdaptiveSampleResult`; ``result.trials`` is the spent
        sample budget, the quantity the adaptive engine exists to shrink.
    """
    if precision < 0:
        raise ValueError(f"precision must be non-negative; got {precision}")
    if max_samples < 1:
        raise ValueError(f"max_samples must be >= 1; got {max_samples}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1; got {chunk_size}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1); got {confidence}")
    if min_samples is None:
        min_samples = min(chunk_size, max_samples)
    if min_samples < 1:
        raise ValueError(f"min_samples must be >= 1; got {min_samples}")
    interval_of = interval_function(method)

    successes: dict[str, int] = {}
    moments: dict[str, RunningMoments] = {}
    trials = 0
    chunks = 0
    stop_reason = "max_samples"
    while trials < max_samples:
        count = min(chunk_size, max_samples - trials)
        chunk = draw(trials, count)
        if primary not in chunk.passes:
            raise ValueError(
                f"chunk has no primary pass statistic {primary!r}; "
                f"got {sorted(chunk.passes)}"
            )
        if chunks and set(chunk.passes) != set(successes):
            raise ValueError(
                f"chunk pass statistics changed mid-run: "
                f"{sorted(chunk.passes)} vs {sorted(successes)}"
            )
        if chunks and set(chunk.values) != set(moments):
            raise ValueError(
                f"chunk value streams changed mid-run: "
                f"{sorted(chunk.values)} vs {sorted(moments)}"
            )
        for name, flags in chunk.passes.items():
            flags = np.asarray(flags, dtype=bool)
            if flags.shape != (count,):
                raise ValueError(
                    f"pass statistic {name!r} has shape {flags.shape}; "
                    f"expected ({count},)"
                )
            successes[name] = successes.get(name, 0) + int(flags.sum())
        for name, stream in chunk.values.items():
            stream = np.asarray(stream, dtype=float)
            if stream.shape != (count,):
                raise ValueError(
                    f"value stream {name!r} has shape {stream.shape}; "
                    f"expected ({count},)"
                )
            moments.setdefault(name, RunningMoments()).extend(stream)
        trials += count
        chunks += 1
        if trials >= min_samples and precision > 0.0:
            interval = interval_of(successes[primary], trials, confidence)
            if interval.half_width <= precision:
                stop_reason = "precision"
                break

    return AdaptiveSampleResult(
        primary=primary,
        trials=trials,
        chunks=chunks,
        stop_reason=stop_reason,
        successes=dict(successes),
        estimates={name: count / trials for name, count in successes.items()},
        intervals={
            name: interval_of(count, trials, confidence)
            for name, count in successes.items()
        },
        moments=moments,
        precision=precision,
        confidence=confidence,
        method=method,
        max_samples=max_samples,
        chunk_size=chunk_size,
    )


# --------------------------------------------------------------------------
# Weighted streaming moments (self-normalized importance sampling).
# --------------------------------------------------------------------------


class WeightedRunningMoments:
    """Streaming statistics of a weighted value stream.

    The importance-sampling engine reweights every observation by its
    likelihood ratio between the nominal and the tilted sampling
    distribution.  This accumulator streams the sums that the
    *self-normalized* estimator needs -- ``sum(w)``, ``sum(w^2)``,
    ``sum(w*x)`` and the second-order cross terms -- so an arbitrarily
    long run holds O(1) state, exactly like :class:`RunningMoments` does
    for the unweighted statistics.

    Weights arrive in *log* space and are stored relative to the largest
    log-weight seen so far: when a later chunk raises the maximum, the
    accumulated sums are rescaled once.  Likelihood ratios of strongly
    tilted draws span hundreds of nats, so exponentiating them naively
    would overflow long before the estimator itself is in trouble.

    The headline outputs:

    * :attr:`mean` -- the self-normalized estimate
      ``sum(w*x) / sum(w)`` (biased at finite n, consistent, and immune
      to an unknown normalizing constant in the weights);
    * :meth:`variance_of_mean` -- its delta-method variance
      ``sum(w^2 * (x - mean)^2) / sum(w)^2``;
    * :meth:`effective_sample_size` -- Kish's
      ``sum(w)^2 / sum(w^2)``, the equivalent number of unweighted
      samples; the stopping rule refuses to trust a tight-looking
      interval until this clears a floor (see :func:`importance_sample`).
    """

    def __init__(self) -> None:
        self.count = 0
        self._offset = -math.inf
        self._sum_w = 0.0
        self._sum_w2 = 0.0
        self._sum_wx = 0.0
        self._sum_w2x = 0.0
        self._sum_w2x2 = 0.0

    def push(self, value: float, log_weight: float) -> None:
        """Fold one weighted observation into the stream."""
        self.extend(np.array([float(value)]), np.array([float(log_weight)]))

    def extend(self, values: npt.ArrayLike, log_weights: npt.ArrayLike) -> None:
        """Fold a chunk of observations with per-observation log-weights.

        An empty chunk is a strict no-op, mirroring
        :meth:`RunningMoments.extend`.
        """
        data = np.asarray(values, dtype=float).ravel()
        logs = np.asarray(log_weights, dtype=float).ravel()
        if data.shape != logs.shape:
            raise ValueError(
                f"values and log_weights must align; got {data.shape} "
                f"vs {logs.shape}"
            )
        if data.size == 0:
            return
        if np.isnan(logs).any() or np.isposinf(logs).any():
            raise ValueError("log-weights must be finite or -inf")
        chunk_max = float(logs.max())
        if math.isinf(chunk_max):
            # Every weight in the chunk is exactly zero: the observations
            # count toward the budget but carry no estimator mass.
            self.count += int(data.size)
            return
        if chunk_max > self._offset:
            rescale = math.exp(self._offset - chunk_max) if self.count else 0.0
            self._sum_w *= rescale
            self._sum_wx *= rescale
            squared = rescale * rescale
            self._sum_w2 *= squared
            self._sum_w2x *= squared
            self._sum_w2x2 *= squared
            self._offset = chunk_max
        weights = np.exp(logs - self._offset)
        self._sum_w += float(weights.sum())
        self._sum_w2 += float((weights * weights).sum())
        self._sum_wx += float((weights * data).sum())
        self._sum_w2x += float((weights * weights * data).sum())
        self._sum_w2x2 += float((weights * weights * data * data).sum())
        self.count += int(data.size)

    @property
    def mean(self) -> float:
        """Self-normalized weighted mean (``NaN`` until a weight arrives)."""
        if self.count == 0 or self._sum_w <= 0.0:
            return math.nan
        return self._sum_wx / self._sum_w

    def effective_sample_size(self) -> float:
        """Kish effective sample size ``sum(w)^2 / sum(w^2)`` (0 when empty)."""
        if self.count == 0 or self._sum_w2 <= 0.0:
            return 0.0
        return self._sum_w * self._sum_w / self._sum_w2

    def variance_of_mean(self) -> float:
        """Delta-method variance of the self-normalized mean.

        ``sum(w^2 (x - mean)^2) / sum(w)^2``, expanded into the streamed
        second-order sums; clamped at zero against round-off.
        """
        if self.count == 0 or self._sum_w <= 0.0:
            return math.nan
        mean = self.mean
        quadratic = (
            self._sum_w2x2 - 2.0 * mean * self._sum_w2x + mean * mean * self._sum_w2
        )
        return max(0.0, quadratic) / (self._sum_w * self._sum_w)

    def standard_error(self) -> float:
        variance = self.variance_of_mean()
        return math.sqrt(variance) if not math.isnan(variance) else math.nan

    def interval(self, confidence: float = 0.95) -> ConfidenceInterval:
        """Normal-approximation interval on the weighted mean of pass flags.

        Meaningful when the values are 0/1 indicators (the mean is then a
        probability); the bounds are clipped to ``[0, 1]``.  Degenerates
        to the vacuous ``[0, 1]`` interval while no weight has arrived --
        honest "know nothing yet", the same spirit as Wilson never
        collapsing at the edges.
        """
        if not 0.0 < confidence < 1.0:
            raise ValueError(f"confidence must be in (0, 1); got {confidence}")
        half_width = normal_ppf(0.5 * (1.0 + confidence)) * self.standard_error()
        mean = self.mean
        if not math.isfinite(mean) or not math.isfinite(half_width):
            return ConfidenceInterval(lower=0.0, upper=1.0, confidence=confidence)
        mean = min(1.0, max(0.0, mean))
        return ConfidenceInterval(
            lower=max(0.0, mean - half_width),
            upper=min(1.0, mean + half_width),
            confidence=confidence,
        )

    def summary(self) -> dict[str, float]:
        """Count/mean/standard-error/ESS as a plain JSON-able dict."""
        return {
            "count": float(self.count),
            "mean": self.mean,
            "standard_error": self.standard_error(),
            "effective_sample_size": self.effective_sample_size(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging convenience
        return (
            f"WeightedRunningMoments(count={self.count}, mean={self.mean:.6g}, "
            f"ess={self.effective_sample_size():.6g})"
        )


# --------------------------------------------------------------------------
# Importance sampling (tilted draws, self-normalized reweighting).
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class WeightedSampleChunk:
    """One drawn chunk of tilted observations plus their log-likelihood ratios.

    Attributes:
        passes: mapping of statistic name to a per-instance boolean array,
            as in :class:`SampleChunk` -- but the flags were evaluated on
            *tilted* draws.
        log_weights: per-instance ``log p(x) - log q(x)`` where ``p`` is
            the nominal distribution and ``q`` the tilted one the chunk
            was actually drawn from.  One array per chunk: every statistic
            shares the instance draws, hence the weights.
        values: mapping of metric name to a per-instance float array;
            each streams through a :class:`WeightedRunningMoments`, so the
            reported summaries describe the *nominal* population.
    """

    passes: Mapping[str, npt.NDArray[np.bool_]]
    log_weights: npt.NDArray[np.float64]
    values: Mapping[str, npt.NDArray[np.float64]] = field(default_factory=dict)


@dataclass(frozen=True)
class ImportanceSampleResult:
    """Outcome of one self-normalized importance-sampling run.

    Attributes:
        primary: name of the pass statistic that drove the stopping rule.
        trials: total instances drawn (from the tilted distribution).
        chunks: number of chunks drawn.
        stop_reason: ``"precision"`` (interval tight enough *and* the
            effective sample size cleared ``min_ess``) or
            ``"max_samples"``.
        estimates: per-statistic self-normalized probability estimates.
        intervals: per-statistic delta-method normal intervals.
        effective_sample_size: Kish ESS of the final weight stream.
        weighted: per-statistic weighted accumulators (full precision).
        value_moments: per-metric weighted accumulators.
        log_weight_moments: unweighted moments of the log-likelihood
            ratios -- the tilt-diagnostic stream (a large spread here is
            the signature of an overdone tilt).
        precision / confidence / min_ess / max_samples / chunk_size: the
            configuration the run used.
    """

    primary: str
    trials: int
    chunks: int
    stop_reason: str
    estimates: dict[str, float]
    intervals: dict[str, ConfidenceInterval]
    effective_sample_size: float
    weighted: dict[str, WeightedRunningMoments]
    value_moments: dict[str, WeightedRunningMoments]
    log_weight_moments: RunningMoments
    precision: float
    confidence: float
    min_ess: float
    max_samples: int
    chunk_size: int

    @property
    def estimate(self) -> float:
        """The primary statistic's self-normalized estimate."""
        return self.estimates[self.primary]

    @property
    def interval(self) -> ConfidenceInterval:
        """The primary statistic's confidence interval."""
        return self.intervals[self.primary]


def importance_sample(
    draw: Callable[[int, int], WeightedSampleChunk],
    *,
    primary: str,
    precision: float,
    confidence: float = 0.95,
    max_samples: int = 4096,
    chunk_size: int = 64,
    min_samples: int | None = None,
    min_ess: float = 32.0,
) -> ImportanceSampleResult:
    """Draw tilted chunks until the reweighted interval is tight and trusted.

    The importance-sampling sibling of :func:`adaptive_sample`: the chunk
    function draws from a *tilted* distribution concentrated on the event
    of interest and reports per-instance log-likelihood ratios back to the
    nominal distribution; the engine folds the reweighted pass flags into
    :class:`WeightedRunningMoments` and stops once the delta-method
    interval on the primary estimate has half-width ``<= precision`` --
    but only after the effective sample size has cleared ``min_ess``.
    The ESS guard is what makes the stopping rule honest: early in a
    strongly tilted run a handful of draws can carry nearly all the
    weight, the delta-method variance is then a wild underestimate, and
    without the guard the run would stop on a fictitiously tight
    interval.

    Args:
        draw: chunk function mapping ``(first_instance, count)`` to a
            :class:`WeightedSampleChunk`.  Same chunk-stable seeding
            contract as :func:`adaptive_sample`: instance ``i``'s draw
            (and therefore its weight) must not depend on the chunking.
        primary: name of the pass statistic the stopping rule watches.
        precision: target half-width of the primary interval; ``0.0``
            disables early stopping.
        confidence: two-sided confidence level of all intervals.
        max_samples: hard cap on total instances.
        chunk_size: instances per chunk.
        min_samples: instances required before the stopping rule may fire
            (defaults to one chunk).
        min_ess: effective-sample-size floor the stopping rule additionally
            requires; has no effect on the cap.

    Returns:
        an :class:`ImportanceSampleResult`; ``result.trials`` is the spent
        (tilted) sample budget.
    """
    if precision < 0:
        raise ValueError(f"precision must be non-negative; got {precision}")
    if max_samples < 1:
        raise ValueError(f"max_samples must be >= 1; got {max_samples}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1; got {chunk_size}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1); got {confidence}")
    if min_ess < 0:
        raise ValueError(f"min_ess must be non-negative; got {min_ess}")
    if min_samples is None:
        min_samples = min(chunk_size, max_samples)
    if min_samples < 1:
        raise ValueError(f"min_samples must be >= 1; got {min_samples}")

    weighted: dict[str, WeightedRunningMoments] = {}
    value_moments: dict[str, WeightedRunningMoments] = {}
    log_weight_moments = RunningMoments()
    trials = 0
    chunks = 0
    stop_reason = "max_samples"
    while trials < max_samples:
        count = min(chunk_size, max_samples - trials)
        chunk = draw(trials, count)
        if primary not in chunk.passes:
            raise ValueError(
                f"chunk has no primary pass statistic {primary!r}; "
                f"got {sorted(chunk.passes)}"
            )
        if chunks and set(chunk.passes) != set(weighted):
            raise ValueError(
                f"chunk pass statistics changed mid-run: "
                f"{sorted(chunk.passes)} vs {sorted(weighted)}"
            )
        if chunks and set(chunk.values) != set(value_moments):
            raise ValueError(
                f"chunk value streams changed mid-run: "
                f"{sorted(chunk.values)} vs {sorted(value_moments)}"
            )
        log_weights = np.asarray(chunk.log_weights, dtype=float)
        if log_weights.shape != (count,):
            raise ValueError(
                f"log_weights has shape {log_weights.shape}; expected ({count},)"
            )
        for name, flags in chunk.passes.items():
            flags = np.asarray(flags, dtype=bool)
            if flags.shape != (count,):
                raise ValueError(
                    f"pass statistic {name!r} has shape {flags.shape}; "
                    f"expected ({count},)"
                )
            weighted.setdefault(name, WeightedRunningMoments()).extend(
                flags.astype(float), log_weights
            )
        for name, stream in chunk.values.items():
            stream = np.asarray(stream, dtype=float)
            if stream.shape != (count,):
                raise ValueError(
                    f"value stream {name!r} has shape {stream.shape}; "
                    f"expected ({count},)"
                )
            value_moments.setdefault(name, WeightedRunningMoments()).extend(
                stream, log_weights
            )
        log_weight_moments.extend(log_weights)
        trials += count
        chunks += 1
        if trials >= min_samples and precision > 0.0:
            stat = weighted[primary]
            interval = stat.interval(confidence)
            if (
                interval.half_width <= precision
                and stat.effective_sample_size() >= min_ess
            ):
                stop_reason = "precision"
                break

    return ImportanceSampleResult(
        primary=primary,
        trials=trials,
        chunks=chunks,
        stop_reason=stop_reason,
        estimates={name: stat.mean for name, stat in weighted.items()},
        intervals={
            name: stat.interval(confidence) for name, stat in weighted.items()
        },
        effective_sample_size=weighted[primary].effective_sample_size(),
        weighted=weighted,
        value_moments=value_moments,
        log_weight_moments=log_weight_moments,
        precision=precision,
        confidence=confidence,
        min_ess=min_ess,
        max_samples=max_samples,
        chunk_size=chunk_size,
    )


# --------------------------------------------------------------------------
# Stratified sampling (Neyman allocation, post-stratified estimate).
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class Stratum:
    """One stratum of a stratified run: a probability mass plus a sampler.

    Attributes:
        name: stable identifier (reported per stratum in the result).
        weight: the stratum's exact probability mass under the nominal
            distribution; all weights of a run must sum to 1.
        draw: chunk function mapping ``(first_instance, count)`` to a
            :class:`SampleChunk` drawn *conditionally on the stratum*.
            Per-stratum chunk-stable seeding contract: instance ``i`` of
            this stratum must key its randomness on ``i`` (and the
            stratum), independent of the chunking and of how many samples
            other strata received.
    """

    name: str
    weight: float
    draw: Callable[[int, int], SampleChunk]

    def __post_init__(self) -> None:
        if not 0.0 < self.weight <= 1.0:
            raise ValueError(
                f"stratum weight must be in (0, 1]; got {self.weight}"
            )


@dataclass(frozen=True)
class StratumResult:
    """Per-stratum bookkeeping of one stratified run."""

    name: str
    weight: float
    trials: int
    successes: dict[str, int]

    def estimate(self, statistic: str) -> float:
        """Within-stratum success fraction of one pass statistic."""
        return self.successes[statistic] / self.trials if self.trials else math.nan


@dataclass(frozen=True)
class StratifiedSampleResult:
    """Outcome of one post-stratified adaptive run.

    Attributes:
        primary: name of the pass statistic that drove the stopping rule
            and the Neyman allocation.
        trials: total instances drawn across all strata.
        chunks: number of chunks drawn.
        stop_reason: ``"precision"`` or ``"max_samples"``.
        estimates: per-statistic post-stratified probability estimates
            (``sum_h W_h * p_h``).
        intervals: per-statistic normal intervals from the post-stratified
            variance ``sum_h W_h^2 p~_h (1 - p~_h) / n_h`` (Laplace-
            smoothed within-stratum variances, so an all-pass stratum
            still carries honest width).
        strata: per-stratum trials and success counts, in input order.
        value_means: per-metric post-stratified means
            (``sum_h W_h * mean_h``).
        precision / confidence / max_samples / chunk_size: configuration.
    """

    primary: str
    trials: int
    chunks: int
    stop_reason: str
    estimates: dict[str, float]
    intervals: dict[str, ConfidenceInterval]
    strata: tuple[StratumResult, ...]
    value_means: dict[str, float]
    precision: float
    confidence: float
    max_samples: int
    chunk_size: int

    @property
    def estimate(self) -> float:
        """The primary statistic's post-stratified estimate."""
        return self.estimates[self.primary]

    @property
    def interval(self) -> ConfidenceInterval:
        """The primary statistic's confidence interval."""
        return self.intervals[self.primary]


def _smoothed_stratum_variance(successes: int, trials: int) -> float:
    """Laplace-smoothed Bernoulli variance ``p~ (1 - p~)`` of one stratum.

    The smoothing keeps a stratum that has not failed (or not passed) yet
    from claiming zero variance, which would freeze both the Neyman
    allocation and the interval at a fiction.
    """
    smoothed = (successes + 1.0) / (trials + 2.0)
    return smoothed * (1.0 - smoothed)


def stratified_sample(
    strata: Sequence[Stratum],
    *,
    primary: str,
    precision: float,
    confidence: float = 0.95,
    max_samples: int = 4096,
    chunk_size: int = 64,
    min_samples_per_stratum: int | None = None,
) -> StratifiedSampleResult:
    """Allocate chunks across strata by Neyman allocation until the CI is tight.

    The stratified sibling of :func:`adaptive_sample`: the variation space
    is partitioned into caller-declared strata of known probability mass,
    each with its own conditional sampler.  After an exploration pass that
    gives every stratum ``min_samples_per_stratum`` draws, each subsequent
    chunk goes to the stratum where it buys the largest reduction of the
    post-stratified variance -- the greedy chunked form of Neyman's
    ``n_h proportional to W_h * s_h`` allocation, driven by the running
    (Laplace-smoothed) per-stratum moments.  The run stops when the
    normal interval on the post-stratified primary estimate has
    half-width ``<= precision`` or the cap is spent.

    Args:
        strata: the partition; weights must sum to 1 (use
            :func:`normal_cdf` for sigma-shell masses).  Order is the
            tie-break order of the allocation, so it is part of the run's
            reproducible configuration.
        primary: name of the pass statistic the allocation and stopping
            rule watch.
        precision: target half-width of the primary interval; ``0.0``
            disables early stopping.
        confidence: two-sided confidence level of all intervals.
        max_samples: hard cap on total instances (must cover at least one
            draw per stratum).
        chunk_size: instances per chunk.
        min_samples_per_stratum: exploration floor per stratum before the
            Neyman allocation and the stopping rule take over (defaults
            to one chunk, clipped to an equal share of the cap).

    Returns:
        a :class:`StratifiedSampleResult`; ``result.trials`` is the spent
        sample budget across all strata.
    """
    if not strata:
        raise ValueError("need at least one stratum")
    names = [stratum.name for stratum in strata]
    if len(set(names)) != len(names):
        raise ValueError(f"stratum names must be unique; got {names}")
    total_weight = sum(stratum.weight for stratum in strata)
    if abs(total_weight - 1.0) > 1e-9:
        raise ValueError(
            f"stratum weights must sum to 1; got {total_weight!r}"
        )
    if precision < 0:
        raise ValueError(f"precision must be non-negative; got {precision}")
    if max_samples < len(strata):
        raise ValueError(
            f"max_samples must cover at least one draw per stratum; "
            f"got {max_samples} for {len(strata)} strata"
        )
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1; got {chunk_size}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1); got {confidence}")
    if min_samples_per_stratum is None:
        min_samples_per_stratum = min(chunk_size, max_samples // len(strata))
    if min_samples_per_stratum < 1:
        raise ValueError(
            f"min_samples_per_stratum must be >= 1; got {min_samples_per_stratum}"
        )

    z = normal_ppf(0.5 * (1.0 + confidence))
    trials_h = [0 for _ in strata]
    successes_h: list[dict[str, int]] = [{} for _ in strata]
    moments_h: list[dict[str, RunningMoments]] = [{} for _ in strata]
    stat_names: set[str] | None = None
    value_names: set[str] | None = None
    trials = 0
    chunks = 0
    stop_reason = "max_samples"

    def fold(index: int, count: int) -> None:
        nonlocal trials, chunks, stat_names, value_names
        chunk = strata[index].draw(trials_h[index], count)
        if primary not in chunk.passes:
            raise ValueError(
                f"stratum {strata[index].name!r} chunk has no primary pass "
                f"statistic {primary!r}; got {sorted(chunk.passes)}"
            )
        if stat_names is None:
            stat_names = set(chunk.passes)
            value_names = set(chunk.values)
        elif set(chunk.passes) != stat_names or set(chunk.values) != value_names:
            raise ValueError(
                f"stratum {strata[index].name!r} changed the statistic set "
                f"mid-run: {sorted(chunk.passes)} / {sorted(chunk.values)}"
            )
        for name, flags in chunk.passes.items():
            flag_array = np.asarray(flags, dtype=bool)
            if flag_array.shape != (count,):
                raise ValueError(
                    f"pass statistic {name!r} has shape {flag_array.shape}; "
                    f"expected ({count},)"
                )
            bucket = successes_h[index]
            bucket[name] = bucket.get(name, 0) + int(flag_array.sum())
        for name, stream in chunk.values.items():
            stream_array = np.asarray(stream, dtype=float)
            if stream_array.shape != (count,):
                raise ValueError(
                    f"value stream {name!r} has shape {stream_array.shape}; "
                    f"expected ({count},)"
                )
            moments_h[index].setdefault(name, RunningMoments()).extend(stream_array)
        trials_h[index] += count
        trials += count
        chunks += 1

    def primary_half_width() -> float:
        variance = 0.0
        for index, stratum in enumerate(strata):
            if trials_h[index] == 0:
                return math.inf
            variance += (
                stratum.weight
                * stratum.weight
                * _smoothed_stratum_variance(
                    successes_h[index].get(primary, 0), trials_h[index]
                )
                / trials_h[index]
            )
        return z * math.sqrt(variance)

    explored = False
    while trials < max_samples:
        budget = max_samples - trials
        if not explored:
            index = min(range(len(strata)), key=lambda h: trials_h[h])
            if trials_h[index] >= min_samples_per_stratum:
                explored = True
                continue
            count = min(
                chunk_size, budget, min_samples_per_stratum - trials_h[index]
            )
        else:
            count = min(chunk_size, budget)

            def variance_drop(h: int) -> float:
                spread = _smoothed_stratum_variance(
                    successes_h[h].get(primary, 0), trials_h[h]
                )
                n = trials_h[h]
                weight = strata[h].weight
                return weight * weight * spread * (1.0 / n - 1.0 / (n + count))

            index = max(range(len(strata)), key=variance_drop)
        fold(index, count)
        if (
            explored
            and precision > 0.0
            and min(trials_h) >= min_samples_per_stratum
            and primary_half_width() <= precision
        ):
            stop_reason = "precision"
            break
        if not explored and min(trials_h) >= min_samples_per_stratum:
            explored = True
            if precision > 0.0 and primary_half_width() <= precision:
                stop_reason = "precision"
                break

    resolved_stats = sorted(stat_names or {primary})
    estimates: dict[str, float] = {}
    intervals: dict[str, ConfidenceInterval] = {}
    for name in resolved_stats:
        estimate = 0.0
        variance = 0.0
        for index, stratum in enumerate(strata):
            if trials_h[index] == 0:
                raise RuntimeError(
                    f"stratum {stratum.name!r} received no samples; "
                    "raise max_samples"
                )
            estimate += (
                stratum.weight * successes_h[index].get(name, 0) / trials_h[index]
            )
            variance += (
                stratum.weight
                * stratum.weight
                * _smoothed_stratum_variance(
                    successes_h[index].get(name, 0), trials_h[index]
                )
                / trials_h[index]
            )
        half_width = z * math.sqrt(variance)
        estimates[name] = estimate
        intervals[name] = ConfidenceInterval(
            lower=max(0.0, estimate - half_width),
            upper=min(1.0, estimate + half_width),
            confidence=confidence,
        )

    value_means: dict[str, float] = {}
    for name in sorted(value_names or set()):
        value_means[name] = sum(
            stratum.weight * moments_h[index][name].mean
            for index, stratum in enumerate(strata)
        )

    return StratifiedSampleResult(
        primary=primary,
        trials=trials,
        chunks=chunks,
        stop_reason=stop_reason,
        estimates=estimates,
        intervals=intervals,
        strata=tuple(
            StratumResult(
                name=stratum.name,
                weight=stratum.weight,
                trials=trials_h[index],
                successes=dict(successes_h[index]),
            )
            for index, stratum in enumerate(strata)
        ),
        value_means=value_means,
        precision=precision,
        confidence=confidence,
        max_samples=max_samples,
        chunk_size=chunk_size,
    )

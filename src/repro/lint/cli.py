"""The ``repro-lint`` command line: lint paths, report, exit non-zero.

Usage::

    repro-lint src/ tests/
    repro-lint --list-rules
    repro-lint --select determinism,seeding-contract src/
    repro-lint --no-project-rules some/other/tree

File rules run over every ``*.py`` under the given paths.  The
repository-level drift rules additionally run when a project root is found
(a directory holding both ``pyproject.toml`` and ``docs/``, located by
walking up from the first path); ``--no-project-rules`` skips them and
``--project-root`` pins the root explicitly.  Violations print as
``path:line:col: rule: message`` sorted by location; the exit code is 0
when clean, 1 when violations survive, 2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.lint.core import all_rules, lint_paths, lint_project

__all__ = ["find_project_root", "main"]


def find_project_root(start: str | Path) -> Path | None:
    """Nearest ancestor of ``start`` holding ``pyproject.toml`` and ``docs/``."""
    current = Path(start).resolve()
    if current.is_file():
        current = current.parent
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file() and (candidate / "docs").is_dir():
            return candidate
    return None


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Contract-checking static analysis for the repro package.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (directories recurse over *.py)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every registered rule with its description and exit",
    )
    parser.add_argument(
        "--select",
        metavar="RULES",
        help="comma-separated rule names to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULES",
        help="comma-separated rule names to skip",
    )
    parser.add_argument(
        "--project-root",
        metavar="PATH",
        help="repository root for the project-level drift rules "
        "(default: auto-detected from the first path)",
    )
    parser.add_argument(
        "--no-project-rules",
        action="store_true",
        help="skip the repository-level drift rules",
    )
    return parser


def _split(value: str | None) -> list[str] | None:
    if value is None:
        return None
    return [name.strip() for name in value.split(",") if name.strip()]


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for registered in all_rules():
            print(f"{registered.name}: {registered.description}")
        return 0

    if not args.paths:
        parser.print_usage(sys.stderr)
        print("repro-lint: error: no paths given", file=sys.stderr)
        return 2

    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(
            f"repro-lint: error: no such path: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2

    select = _split(args.select)
    ignore = _split(args.ignore)
    known = {registered.name for registered in all_rules()}
    unknown = [name for name in (select or []) + (ignore or []) if name not in known]
    if unknown:
        print(
            f"repro-lint: error: unknown rule(s): {', '.join(unknown)}; "
            f"known rules: {', '.join(sorted(known))}",
            file=sys.stderr,
        )
        return 2

    violations = lint_paths(args.paths, select=select, ignore=ignore)

    if not args.no_project_rules:
        root = (
            Path(args.project_root)
            if args.project_root is not None
            else find_project_root(args.paths[0])
        )
        if args.project_root is not None and not Path(args.project_root).is_dir():
            print(
                f"repro-lint: error: --project-root {args.project_root} is "
                "not a directory",
                file=sys.stderr,
            )
            return 2
        if root is not None:
            violations = sorted(violations + lint_project(root, select, ignore))

    for violation in violations:
        print(violation.format())
    checked = len({violation.path for violation in violations})
    if violations:
        print(
            f"repro-lint: {len(violations)} violation(s) in {checked} file(s)",
            file=sys.stderr,
        )
        return 1
    print("repro-lint: clean", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

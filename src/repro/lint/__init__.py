"""Contract-checking static analysis for the seven-layer engine.

The repo rests on invariants no general-purpose linter knows about:

* **Determinism** -- a content-addressed sweep cache and bit-identical
  serial/parallel/chunked runs only hold if nothing in :mod:`repro` reads a
  wall clock or an unseeded RNG.  One stray ``time.time()`` or
  ``np.random.normal()`` silently poisons every cache key downstream.
* **The chunked seeding contract** -- :mod:`repro.mc` requires that a
  function drawing per-instance randomness keys instance ``i``'s stream on
  ``i`` itself (``default_rng((seed, i))``), so the sample stream is
  independent of chunk boundaries.
* **Sweep cache safety** -- :mod:`repro.sweep` fans cells out across a
  ``multiprocessing`` pool and addresses them by canonical JSON, so every
  ``run_cell`` must be module-level (picklable by reference) and every cell
  dict JSON-scalar.
* **Registry/docs lockstep** -- experiment ids, CLI flags, layer packages
  and doc links must agree between code and ``docs/``.
* **Numerical hygiene** -- exact ``==`` on floats, mutable default
  arguments, bare ``except`` and ``assert``-as-validation (asserts vanish
  under ``python -O``) are the classic ways reproduction code rots.

:mod:`repro.lint` machine-checks all five as a custom AST pass on the
standard library alone -- no new runtime dependencies.  Rules live in a
pluggable registry (:mod:`repro.lint.rules`); the ``repro-lint`` console
entry point (:mod:`repro.lint.cli`) reports violations as
``path:line:col: rule: message`` and exits non-zero when any survive.
Suppress a finding with a trailing ``# repro-lint: disable=<rule>`` comment
(see ``docs/static_analysis.md`` for the catalog and the rationale behind
each contract).
"""

from repro.lint.core import (
    PROJECT_RULES,
    RULES,
    SourceFile,
    Violation,
    all_rules,
    lint_paths,
    lint_project,
    lint_source,
    project_rule,
    rule,
)

# Importing the rules package registers every built-in rule.
import repro.lint.rules  # noqa: F401  (imported for registration)

__all__ = [
    "PROJECT_RULES",
    "RULES",
    "SourceFile",
    "Violation",
    "all_rules",
    "lint_paths",
    "lint_project",
    "lint_source",
    "project_rule",
    "rule",
]

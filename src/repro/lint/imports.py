"""Resolving names in a module to canonical dotted import paths.

The determinism and seeding rules need to know that ``np.random.normal``
*is* ``numpy.random.normal`` whatever the file imported ``numpy`` as, and
that a bare ``default_rng(...)`` call refers to
``numpy.random.default_rng`` when the file did ``from numpy.random import
default_rng``.  :class:`ImportTable` records every binding an ``import``
statement creates and :meth:`ImportTable.resolve` maps a ``Name`` /
``Attribute`` chain back to the canonical dotted path -- purely
syntactically, nothing is imported.

Unresolvable roots (locals, relative imports, attributes of call results)
resolve to ``None``; rules treat that as "not provably banned" and stay
silent, preferring false negatives over false positives.
"""

from __future__ import annotations

import ast

__all__ = ["ImportTable"]


class ImportTable:
    """Alias -> canonical dotted-path table for one parsed module."""

    def __init__(self, tree: ast.Module) -> None:
        self._aliases: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname is not None:
                        self._aliases[alias.asname] = alias.name
                    else:
                        # ``import numpy.random`` binds the *root* name.
                        root = alias.name.split(".", 1)[0]
                        self._aliases[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports cannot name stdlib/numpy
                for alias in node.names:
                    bound = alias.asname or alias.name
                    self._aliases[bound] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.expr) -> str | None:
        """Canonical dotted path of a ``Name``/``Attribute`` chain, if known.

        ``np.random.default_rng`` resolves to
        ``"numpy.random.default_rng"`` under ``import numpy as np``;
        anything rooted in a local variable or call result resolves to
        ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = self._aliases.get(node.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))

"""``python -m repro.lint`` runs the :mod:`repro.lint.cli` entry point."""

from repro.lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())

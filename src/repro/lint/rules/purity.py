"""Kernel-purity rule: ``repro.kernels`` functions stay stateless.

The kernel layer's contract (``docs/backends.md``) is that every kernel is
a pure function of its array arguments: no randomness, no module-level
state, no captured mutable context.  That is what makes a kernel swappable
between backends -- a numba transcription can only be proven equivalent to
the numpy reference if both are functions of their inputs alone -- and
what keeps the sweep cache sound (a cell key records the backend *name*;
hidden state would make that name a lie).

One rule id, three checks over every module under ``repro/kernels/``
(except the ``backend`` registry and ``__init__``, which are orchestration,
not kernels):

* no RNG imports (``random``, ``secrets``, ``numpy.random``) -- draws
  belong in the orchestration layer, kernels only see drawn arrays;
* no function-body reads of module-level *state*: a name assigned at
  module scope may be read inside a kernel only if it is bound to a scalar
  constant (imports, functions, classes and scalar ALL-CAPS constants are
  the allowed vocabulary);
* no closures: a function nested inside a kernel must not capture the
  enclosing function's bindings (state smuggled past the argument list).
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterator

from repro.lint.core import SourceFile, Violation, rule

RULE = "kernel-purity"

#: Modules whose import into a kernel module breaks the RNG-free contract.
_RNG_MODULES = ("random", "secrets", "numpy.random")

#: Kernel-package files that are registry/orchestration, not kernels.
_EXEMPT_FILES = frozenset({"backend.py", "__init__.py"})


def _is_kernel_module(path: str) -> bool:
    parts = Path(path).parts
    if not parts or parts[-1] in _EXEMPT_FILES:
        return False
    return any(
        parts[i : i + 2] == ("repro", "kernels") for i in range(len(parts) - 1)
    )


def _is_rng_module(module: str) -> bool:
    return any(
        module == name or module.startswith(name + ".") for name in _RNG_MODULES
    )


def _is_scalar_constant(node: ast.expr) -> bool:
    """Literal ints/floats/strings/bools/None, possibly sign-prefixed."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.UAdd, ast.USub)):
        node = node.operand
    return isinstance(node, ast.Constant)


def _stateful_globals(tree: ast.Module) -> dict[str, ast.stmt]:
    """Module-level assigned names whose value is not a scalar constant."""
    stateful: dict[str, ast.stmt] = {}
    for statement in tree.body:
        if isinstance(statement, ast.Assign):
            value, targets = statement.value, statement.targets
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            value, targets = statement.value, [statement.target]
        else:
            continue
        if _is_scalar_constant(value):
            continue
        for target in targets:
            for name_node in ast.walk(target):
                if isinstance(name_node, ast.Name):
                    stateful.setdefault(name_node.id, statement)
    return stateful


def _bound_names(function: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Names the function binds: arguments plus assignment/loop targets."""
    args = function.args
    bound = {
        arg.arg
        for arg in (
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
            *filter(None, (args.vararg, args.kwarg)),
        )
    }
    for node in ast.walk(function):
        if isinstance(node, ast.Name) and isinstance(node.ctx, (ast.Store, ast.Del)):
            bound.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            if node is not function:
                bound.add(node.name)
    return bound


def _body_reads(function: ast.FunctionDef | ast.AsyncFunctionDef) -> Iterator[ast.Name]:
    """Load-context names in the function body (decorators excluded)."""
    for statement in function.body:
        for node in ast.walk(statement):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
                yield node


@rule(
    RULE,
    "repro.kernels functions must be stateless: no RNG imports, no "
    "module-global state reads, no closures",
    scopes=("src",),
)
def check_kernel_purity(source: SourceFile) -> Iterator[Violation]:
    if not _is_kernel_module(source.path):
        return
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if _is_rng_module(alias.name):
                    yield source.violation(
                        node,
                        RULE,
                        f"kernel module imports RNG module {alias.name!r}; "
                        "random draws belong in the orchestration layer -- "
                        "kernels only see drawn arrays",
                    )
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            names = {alias.name for alias in node.names}
            if _is_rng_module(module) or (module == "numpy" and "random" in names):
                yield source.violation(
                    node,
                    RULE,
                    f"kernel module imports from RNG module {module!r}; "
                    "random draws belong in the orchestration layer -- "
                    "kernels only see drawn arrays",
                )

    stateful = _stateful_globals(source.tree)
    functions = [
        node
        for node in ast.walk(source.tree)
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    nested = {
        inner
        for outer in functions
        for statement in outer.body
        for inner in ast.walk(statement)
        if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    for function in functions:
        local = _bound_names(function)
        for name in _body_reads(function):
            if name.id in stateful and name.id not in local:
                yield source.violation(
                    name,
                    RULE,
                    f"kernel {function.name!r} reads module-level state "
                    f"{name.id!r}; kernels must be pure functions of their "
                    "arguments (scalar constants and imports are fine)",
                )
        if function in nested:
            continue
        for statement in function.body:
            for inner in ast.walk(statement):
                if not isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                inner_local = _bound_names(inner)
                captured = sorted(
                    {
                        name.id
                        for name in _body_reads(inner)
                        if name.id in local and name.id not in inner_local
                    }
                )
                if captured:
                    yield source.violation(
                        inner,
                        RULE,
                        f"nested function {inner.name!r} closes over "
                        f"{', '.join(repr(name) for name in captured)} from "
                        f"kernel {function.name!r}; pass state through "
                        "arguments instead",
                    )

"""Sweep cache safety: picklable cells, JSON-scalar dicts, atomic claims.

The sweep executors (:mod:`repro.sweep.executors`) dispatch cache misses
to worker processes -- the cell function pickles *by reference*, so it
must be importable at module level; a lambda or a nested closure dies at
dispatch time (and only when more than one worker is configured, which is
exactly when nobody is looking).  Cell dicts are content-addressed through
canonical JSON, so axis values and cell extras must be JSON scalars
(``str``/``int``/``float``/``bool``/``None``); richer objects belong
*inside* the cell function, reconstructed from scalar coordinates.  And
the shared-cache executor's crash safety rests on claim files only ever
being *published* atomically -- written to a private temporary name, then
linked or renamed into place -- so no code may open a claim path for
writing directly.

Three checks:

* the function handed to ``sweep_map(...)`` / ``.map_cells(...)`` /
  ``.run_missing(...)`` (the executor-layer worker entry point) must not
  be a ``lambda`` or a function defined in a nested scope of the same file;
* literal axis values in ``ParameterGrid(...)`` calls and literal keyword
  values in ``.cells(...)`` calls on module-level grids must be JSON
  scalars;
* a write to a claim file (``open(..., "w")`` / ``.write_text(...)`` /
  ``.write_bytes(...)`` on a path mentioning ``claim``) must live inside
  the designated atomic helper (a function whose name contains
  ``atomic``), which is the tmp+rename/tmp+link implementation everything
  else must call.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import SourceFile, Violation, rule
from repro.lint.imports import ImportTable

RULE = "cache-safety"

_SCALARS = (str, int, float, bool, type(None))


def _module_level_names(tree: ast.Module) -> set[str]:
    """Names bound at module level (defs, classes, imports, assignments)."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".", 1)[0])
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name in ast.walk(target):
                    if isinstance(name, ast.Name):
                        names.add(name.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


def _nested_function_names(tree: ast.Module) -> set[str]:
    """Names of functions defined inside another function's body."""
    nested: set[str] = set()
    for outer in ast.walk(tree):
        if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for inner in ast.walk(outer):
            if inner is outer:
                continue
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(inner.name)
    return nested


def _grid_names(tree: ast.Module, imports: ImportTable) -> set[str]:
    """Module-level names assigned from a ``ParameterGrid(...)`` call."""
    names: set[str] = set()
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and _is_parameter_grid(node.value.func, imports)
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _is_parameter_grid(func: ast.expr, imports: ImportTable) -> bool:
    dotted = imports.resolve(func)
    if dotted is not None:
        return dotted.rsplit(".", 1)[-1] == "ParameterGrid"
    return isinstance(func, ast.Name) and func.id == "ParameterGrid"


def _is_sweep_dispatch(func: ast.expr) -> bool:
    if isinstance(func, ast.Name):
        return func.id == "sweep_map"
    if isinstance(func, ast.Attribute):
        # map_cells is the orchestrator entry; run_missing is the executor
        # layer's worker entry point -- both ship the function into worker
        # processes, so both demand module-level picklability.
        return func.attr in {"sweep_map", "map_cells", "run_missing"}
    return False


def _non_scalar_literals(value: ast.expr) -> Iterator[ast.expr]:
    """Literal elements of a (possibly nested) literal that break JSON-scalar."""
    if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
        for element in value.elts:
            if isinstance(element, ast.Constant):
                if not isinstance(element.value, _SCALARS):
                    yield element
            elif isinstance(element, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
                yield element
    elif isinstance(value, ast.Constant) and not isinstance(value.value, _SCALARS):
        yield value
    elif isinstance(value, ast.Dict):
        yield value


def _mentions_claim(value: ast.expr) -> bool:
    """Whether a path expression visibly refers to a claim file."""
    for sub in ast.walk(value):
        if (
            isinstance(sub, ast.Constant)
            and isinstance(sub.value, str)
            and "claim" in sub.value.lower()
        ):
            return True
        if isinstance(sub, ast.Name) and "claim" in sub.id.lower():
            return True
        if isinstance(sub, ast.Attribute) and "claim" in sub.attr.lower():
            return True
    return False


def _open_mode(node: ast.Call) -> str:
    """The literal mode string of an ``open(...)`` call (default ``"r"``)."""
    mode = "r"
    if len(node.args) >= 2:
        arg = node.args[1]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            mode = arg.value
    for keyword in node.keywords:
        if (
            keyword.arg == "mode"
            and isinstance(keyword.value, ast.Constant)
            and isinstance(keyword.value.value, str)
        ):
            mode = keyword.value.value
    return mode


def _claim_write_path(node: ast.Call) -> ast.expr | None:
    """The claim-path expression of a direct claim-file write, if any."""
    if (
        isinstance(node.func, ast.Name)
        and node.func.id == "open"
        and node.args
        and any(flag in _open_mode(node) for flag in "wxa+")
        and _mentions_claim(node.args[0])
    ):
        return node.args[0]
    if (
        isinstance(node.func, ast.Attribute)
        and node.func.attr in {"write_text", "write_bytes"}
        and _mentions_claim(node.func.value)
    ):
        return node.func.value
    return None


def _calls_with_enclosing(
    tree: ast.Module,
) -> Iterator[tuple[ast.Call, tuple[str, ...]]]:
    """Every call node paired with the names of its enclosing functions."""

    def visit(
        node: ast.AST, stack: tuple[str, ...]
    ) -> Iterator[tuple[ast.Call, tuple[str, ...]]]:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack = stack + (node.name,)
        if isinstance(node, ast.Call):
            yield node, stack
        for child in ast.iter_child_nodes(node):
            yield from visit(child, stack)

    yield from visit(tree, ())


@rule(
    RULE,
    "sweep cell functions must be module-level; cell dicts JSON-scalar; "
    "claim writes atomic",
    scopes=("src",),
)
def check(source: SourceFile) -> Iterator[Violation]:
    tree = source.tree
    imports = ImportTable(tree)
    module_names = _module_level_names(tree)
    nested_names = _nested_function_names(tree)
    grid_names = _grid_names(tree, imports)

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue

        if _is_sweep_dispatch(node.func):
            candidates = list(node.args[:1]) + [
                kw.value for kw in node.keywords if kw.arg == "func"
            ]
            for candidate in candidates:
                if isinstance(candidate, ast.Lambda):
                    yield source.violation(
                        candidate,
                        RULE,
                        "sweep cell function is a lambda; it cannot pickle "
                        "into worker processes -- define it at module level",
                    )
                elif (
                    isinstance(candidate, ast.Name)
                    and candidate.id in nested_names
                    and candidate.id not in module_names
                ):
                    yield source.violation(
                        candidate,
                        RULE,
                        f"sweep cell function {candidate.id!r} is defined in "
                        "a nested scope; it cannot pickle into worker "
                        "processes -- define it at module level",
                    )

        if _is_parameter_grid(node.func, imports):
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                for bad in _non_scalar_literals(keyword.value):
                    yield source.violation(
                        bad,
                        RULE,
                        f"axis {keyword.arg!r} has a non-JSON-scalar value; "
                        "cells content-address through canonical JSON, so "
                        "axis values must be str/int/float/bool/None "
                        "(reconstruct rich objects inside the cell function)",
                    )

        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "cells"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in grid_names
        ):
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                for bad in _non_scalar_literals(keyword.value):
                    yield source.violation(
                        bad,
                        RULE,
                        f"cell extra {keyword.arg!r} has a non-JSON-scalar "
                        "value; cell extras join the content-addressed cell "
                        "dict and must be str/int/float/bool/None",
                    )

    for call, enclosing in _calls_with_enclosing(tree):
        if _claim_write_path(call) is None:
            continue
        if any("atomic" in name.lower() for name in enclosing):
            continue
        yield source.violation(
            call,
            RULE,
            "claim-file write bypasses the atomic publish helper; claims "
            "must be written to a private temporary name and linked or "
            "renamed into place (put the write in a function whose name "
            "marks it atomic, e.g. _claim_write_atomic)",
        )

"""Sweep cache safety: picklable cell functions, JSON-scalar cell dicts.

The sweep orchestrator (:mod:`repro.sweep`) dispatches cache misses to a
``multiprocessing`` pool -- the cell function pickles *by reference*, so it
must be importable at module level; a lambda or a nested closure dies at
dispatch time (and only when more than one worker is configured, which is
exactly when nobody is looking).  Cell dicts are content-addressed through
canonical JSON, so axis values and cell extras must be JSON scalars
(``str``/``int``/``float``/``bool``/``None``); richer objects belong
*inside* the cell function, reconstructed from scalar coordinates.

Two checks:

* the function handed to ``sweep_map(...)`` / ``.map_cells(...)`` must not
  be a ``lambda`` or a function defined in a nested scope of the same file;
* literal axis values in ``ParameterGrid(...)`` calls and literal keyword
  values in ``.cells(...)`` calls on module-level grids must be JSON
  scalars.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import SourceFile, Violation, rule
from repro.lint.imports import ImportTable

RULE = "cache-safety"

_SCALARS = (str, int, float, bool, type(None))


def _module_level_names(tree: ast.Module) -> set[str]:
    """Names bound at module level (defs, classes, imports, assignments)."""
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, (ast.Import, ast.ImportFrom)):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".", 1)[0])
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name in ast.walk(target):
                    if isinstance(name, ast.Name):
                        names.add(name.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


def _nested_function_names(tree: ast.Module) -> set[str]:
    """Names of functions defined inside another function's body."""
    nested: set[str] = set()
    for outer in ast.walk(tree):
        if not isinstance(outer, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        for inner in ast.walk(outer):
            if inner is outer:
                continue
            if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                nested.add(inner.name)
    return nested


def _grid_names(tree: ast.Module, imports: ImportTable) -> set[str]:
    """Module-level names assigned from a ``ParameterGrid(...)`` call."""
    names: set[str] = set()
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and _is_parameter_grid(node.value.func, imports)
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _is_parameter_grid(func: ast.expr, imports: ImportTable) -> bool:
    dotted = imports.resolve(func)
    if dotted is not None:
        return dotted.rsplit(".", 1)[-1] == "ParameterGrid"
    return isinstance(func, ast.Name) and func.id == "ParameterGrid"


def _is_sweep_dispatch(func: ast.expr) -> bool:
    if isinstance(func, ast.Name):
        return func.id == "sweep_map"
    if isinstance(func, ast.Attribute):
        return func.attr in {"sweep_map", "map_cells"}
    return False


def _non_scalar_literals(value: ast.expr) -> Iterator[ast.expr]:
    """Literal elements of a (possibly nested) literal that break JSON-scalar."""
    if isinstance(value, (ast.List, ast.Tuple, ast.Set)):
        for element in value.elts:
            if isinstance(element, ast.Constant):
                if not isinstance(element.value, _SCALARS):
                    yield element
            elif isinstance(element, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
                yield element
    elif isinstance(value, ast.Constant) and not isinstance(value.value, _SCALARS):
        yield value
    elif isinstance(value, ast.Dict):
        yield value


@rule(
    RULE,
    "sweep cell functions must be module-level; cell dicts JSON-scalar",
    scopes=("src",),
)
def check(source: SourceFile) -> Iterator[Violation]:
    tree = source.tree
    imports = ImportTable(tree)
    module_names = _module_level_names(tree)
    nested_names = _nested_function_names(tree)
    grid_names = _grid_names(tree, imports)

    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue

        if _is_sweep_dispatch(node.func):
            candidates = list(node.args[:1]) + [
                kw.value for kw in node.keywords if kw.arg == "func"
            ]
            for candidate in candidates:
                if isinstance(candidate, ast.Lambda):
                    yield source.violation(
                        candidate,
                        RULE,
                        "sweep cell function is a lambda; it cannot pickle "
                        "into worker processes -- define it at module level",
                    )
                elif (
                    isinstance(candidate, ast.Name)
                    and candidate.id in nested_names
                    and candidate.id not in module_names
                ):
                    yield source.violation(
                        candidate,
                        RULE,
                        f"sweep cell function {candidate.id!r} is defined in "
                        "a nested scope; it cannot pickle into worker "
                        "processes -- define it at module level",
                    )

        if _is_parameter_grid(node.func, imports):
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                for bad in _non_scalar_literals(keyword.value):
                    yield source.violation(
                        bad,
                        RULE,
                        f"axis {keyword.arg!r} has a non-JSON-scalar value; "
                        "cells content-address through canonical JSON, so "
                        "axis values must be str/int/float/bool/None "
                        "(reconstruct rich objects inside the cell function)",
                    )

        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "cells"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in grid_names
        ):
            for keyword in node.keywords:
                if keyword.arg is None:
                    continue
                for bad in _non_scalar_literals(keyword.value):
                    yield source.violation(
                        bad,
                        RULE,
                        f"cell extra {keyword.arg!r} has a non-JSON-scalar "
                        "value; cell extras join the content-addressed cell "
                        "dict and must be str/int/float/bool/None",
                    )

"""Built-in rules; importing this package registers every one of them.

Each module holds one contract's rules and registers them with
:func:`repro.lint.core.rule` (per-file AST analyses) or
:func:`repro.lint.core.project_rule` (repository-level gates).  Adding a
rule is: write a module here, decorate a check function, import the module
below -- the CLI, the suppression syntax and the tests pick it up through
the registry.  See ``docs/static_analysis.md``.
"""

from repro.lint.rules import (  # noqa: F401  (imported for registration)
    cache_safety,
    determinism,
    drift,
    hygiene,
    purity,
    seeding,
)

__all__ = ["cache_safety", "determinism", "drift", "hygiene", "purity", "seeding"]

"""Registry drift: code and docs must name the same ids, flags and layers.

The experiment registry (:mod:`repro.experiments`), the runner's argparse
spec (:mod:`repro.experiments.runner`) and the documentation under
``docs/`` describe the same catalog from three angles; any one drifting
makes the other two lie.  This repository-level rule generalizes the
ad-hoc gates that used to live in ``tests/test_docs.py``:

* every registered experiment id appears as a ``###`` heading in
  ``docs/experiments.md``, and every documented id is registered;
* every ``--flag`` the runner accepts is mentioned in
  ``docs/experiments.md``, and every documented flag exists;
* every first-level layer of the ``repro`` package (discovered from the
  filesystem, so new layers are picked up automatically) is named in
  ``docs/architecture.md``;
* every markdown file under ``docs/`` is linked from the README.

``tests/test_docs.py`` now asserts through this rule, so the pytest gate
and ``repro-lint`` share one implementation.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Iterator

from repro.lint.core import Violation, project_rule

RULE = "registry-drift"


def catalog_ids(root: Path) -> set[str]:
    """Experiment ids named in ``###`` headings of ``docs/experiments.md``."""
    text = (root / "docs" / "experiments.md").read_text(encoding="utf-8")
    ids: set[str] = set()
    for heading in re.findall(r"^###\s+(.*)$", text, flags=re.MULTILINE):
        ids.update(re.findall(r"`([a-z0-9_]+)`", heading))
    return ids


def documented_flags(root: Path) -> set[str]:
    """Every ``--flag`` mentioned anywhere in ``docs/experiments.md``."""
    text = (root / "docs" / "experiments.md").read_text(encoding="utf-8")
    return set(re.findall(r"(?<![\w-])--[a-z][a-z0-9-]+", text))


def registered_ids() -> set[str]:
    """Every id in the experiment registry."""
    from repro.experiments import registry

    return set(registry)


def cli_flags() -> set[str]:
    """Every ``--flag`` the runner's argparse spec actually accepts."""
    from repro.experiments.runner import _build_parser

    flags: set[str] = set()
    for action in _build_parser()._actions:
        for option in action.option_strings:
            if option.startswith("--") and option != "--help":
                flags.add(option)
    return flags


def layer_packages(root: Path) -> set[str]:
    """First-level layers of the ``repro`` package, from the filesystem.

    Subpackages (directories with an ``__init__.py``) and top-level modules
    both count, so a new layer is gated into ``docs/architecture.md`` the
    moment its file exists -- no hand-maintained list to forget.
    """
    package = root / "src" / "repro"
    layers: set[str] = set()
    for path in package.iterdir():
        if path.is_dir() and (path / "__init__.py").is_file():
            layers.add(f"repro.{path.name}")
        elif path.suffix == ".py" and path.name != "__init__.py":
            layers.add(f"repro.{path.stem}")
    return layers


def _line_of(path: Path, needle: str) -> int:
    """1-based line of the first occurrence of ``needle`` (1 if absent)."""
    for number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if needle in line:
            return number
    return 1


def _missing_doc(root: Path, relative: str) -> Violation:
    return Violation(
        path=str(root / relative),
        line=1,
        col=0,
        rule=RULE,
        message=f"{relative} is missing; the drift gates cannot run without it",
    )


@project_rule(
    RULE,
    "experiment ids, CLI flags, layer packages and doc links in lockstep",
)
def check(root: Path) -> Iterator[Violation]:
    catalog = root / "docs" / "experiments.md"
    architecture = root / "docs" / "architecture.md"
    readme = root / "README.md"
    if not catalog.is_file():
        yield _missing_doc(root, "docs/experiments.md")
        return

    documented_ids = catalog_ids(root)
    registered = registered_ids()
    for experiment_id in sorted(registered - documented_ids):
        yield Violation(
            path=str(catalog),
            line=1,
            col=0,
            rule=RULE,
            message=f"registered experiment {experiment_id!r} has no "
            "### heading in docs/experiments.md",
        )
    for experiment_id in sorted(documented_ids - registered):
        yield Violation(
            path=str(catalog),
            line=_line_of(catalog, f"`{experiment_id}`"),
            col=0,
            rule=RULE,
            message=f"docs/experiments.md documents unknown experiment "
            f"{experiment_id!r}",
        )

    accepted = cli_flags()
    documented = documented_flags(root)
    for flag in sorted(documented - accepted):
        yield Violation(
            path=str(catalog),
            line=_line_of(catalog, flag),
            col=0,
            rule=RULE,
            message=f"docs/experiments.md mentions CLI flag {flag} that the "
            "runner does not accept",
        )
    for flag in sorted(accepted - documented):
        yield Violation(
            path=str(catalog),
            line=1,
            col=0,
            rule=RULE,
            message=f"runner flag {flag} is not documented in "
            "docs/experiments.md",
        )

    if not architecture.is_file():
        yield _missing_doc(root, "docs/architecture.md")
    else:
        text = architecture.read_text(encoding="utf-8")
        for layer in sorted(layer_packages(root)):
            if layer not in text:
                yield Violation(
                    path=str(architecture),
                    line=1,
                    col=0,
                    rule=RULE,
                    message=f"docs/architecture.md does not mention the "
                    f"layer package {layer}",
                )

    if not readme.is_file():
        yield _missing_doc(root, "README.md")
    else:
        text = readme.read_text(encoding="utf-8")
        for doc in sorted((root / "docs").glob("*.md")):
            link = f"docs/{doc.name}"
            if link not in text:
                yield Violation(
                    path=str(readme),
                    line=1,
                    col=0,
                    rule=RULE,
                    message=f"README.md does not link {link}",
                )

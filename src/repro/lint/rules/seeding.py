"""The chunked seeding contract: per-instance randomness keys on the index.

:mod:`repro.mc` draws Monte-Carlo populations in chunks and promises that
the sample stream is independent of the chunking.  That only holds when a
function drawing per-instance randomness derives instance ``i``'s RNG from
``i`` itself -- the documented pattern of
:meth:`repro.technology.variation.VariationModel.sample` and
:meth:`repro.core.yield_analysis.ComponentVariation.sample_instances`::

    rng = np.random.default_rng((self.seed, instance))          # OK
    rng = np.random.default_rng((seed, tag, first_instance + i))  # OK
    rng = np.random.default_rng(self.seed)                      # VIOLATION

The rule fires when a function that declares an instance-index parameter
(``instance`` / ``first_instance`` / ``instance_index``) constructs a
generator whose seed expression never mentions that parameter: every
instance would then share one stream and the draw would depend on how the
population was chunked.  Functions without an instance parameter are not
per-instance draws and are never flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import SourceFile, Violation, rule
from repro.lint.imports import ImportTable

RULE = "seeding-contract"

#: Parameter names that mark a function as drawing per-instance randomness.
INSTANCE_PARAMS = frozenset({"instance", "first_instance", "instance_index"})

#: Generator constructors whose seed expression must key on the index.
_CONSTRUCTORS = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
    "random.Random",
}


def _own_body_nodes(function: ast.AST) -> Iterator[ast.AST]:
    """Walk a function's body without descending into nested scopes."""
    stack: list[ast.AST] = list(ast.iter_child_nodes(function))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue  # nested scope: it declares (or not) its own params
        stack.extend(ast.iter_child_nodes(node))


def _instance_params(function: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    arguments = function.args
    names = {
        arg.arg
        for arg in (*arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs)
    }
    return names & INSTANCE_PARAMS


@rule(
    RULE,
    "per-instance RNG must derive its seed from the instance index",
    scopes=("src",),
)
def check(source: SourceFile) -> Iterator[Violation]:
    imports = ImportTable(source.tree)
    for function in ast.walk(source.tree):
        if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params = _instance_params(function)
        if not params:
            continue
        for node in _own_body_nodes(function):
            if not isinstance(node, ast.Call):
                continue
            if imports.resolve(node.func) not in _CONSTRUCTORS:
                continue
            referenced = {
                name.id
                for argument in (*node.args, *(kw.value for kw in node.keywords))
                for name in ast.walk(argument)
                if isinstance(name, ast.Name)
            }
            if not referenced & params:
                names = " / ".join(sorted(params))
                yield source.violation(
                    node,
                    RULE,
                    f"RNG seed does not mention the instance index ({names}); "
                    "chunked draws must key instance i's stream on i itself "
                    "(e.g. default_rng((seed, instance))) or the sample "
                    "stream depends on the chunk size",
                )

"""Numerical and error-handling hygiene for reproduction code.

Four classic rot patterns, each its own rule id (suppress them
individually, never wholesale):

* ``float-equality`` -- ``==`` / ``!=`` against a float literal.  Exact
  float comparison encodes an accident of rounding as a contract; compare
  against a tolerance, or restructure so the intent ("is the feature
  disabled?") reads from the code.  Scoped to package code: the test suite
  legitimately asserts *bit-identity* (``==`` on floats is the point
  there).
* ``mutable-default`` -- ``def f(x=[])`` / ``def f(x={})`` shares one
  mutable object across every call; use ``None`` plus an inline default.
* ``bare-except`` -- ``except:`` swallows ``KeyboardInterrupt`` and
  ``SystemExit`` along with the error it meant to handle; name the
  exception type (or ``Exception``).
* ``assert-validation`` -- ``assert`` for runtime validation in package
  code vanishes under ``python -O``, turning a loud contract breach into
  silent corruption; raise a typed error instead.  Scoped to package code:
  ``assert`` is pytest's assertion idiom in the suite.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import SourceFile, Violation, rule

_MUTABLE_FACTORIES = {"list", "dict", "set"}


def _is_float_constant(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


@rule(
    "float-equality",
    "no == / != against float literals; use a tolerance or restructure",
    scopes=("src",),
)
def check_float_equality(source: SourceFile) -> Iterator[Violation]:
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if _is_float_constant(left) or _is_float_constant(right):
                yield source.violation(
                    node,
                    "float-equality",
                    "exact ==/!= against a float literal; compare with a "
                    "tolerance (math.isclose / np.isclose) or restructure "
                    "the condition to state its intent",
                )


@rule(
    "mutable-default",
    "no mutable default arguments (list/dict/set literals or calls)",
)
def check_mutable_default(source: SourceFile) -> Iterator[Violation]:
    for node in ast.walk(source.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        defaults = [*node.args.defaults, *node.args.kw_defaults]
        for default in defaults:
            if default is None:
                continue
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in _MUTABLE_FACTORIES
                and not default.args
                and not default.keywords
            )
            if mutable:
                yield source.violation(
                    default,
                    "mutable-default",
                    "mutable default argument is shared across calls; "
                    "default to None and construct inside the function",
                )


@rule("bare-except", "no bare except: clauses; name the exception type")
def check_bare_except(source: SourceFile) -> Iterator[Violation]:
    for node in ast.walk(source.tree):
        if isinstance(node, ast.ExceptHandler) and node.type is None:
            yield source.violation(
                node,
                "bare-except",
                "bare except: catches KeyboardInterrupt/SystemExit too; "
                "name the exception type (or Exception)",
            )


@rule(
    "assert-validation",
    "no assert for runtime validation in package code (gone under -O)",
    scopes=("src",),
)
def check_assert_validation(source: SourceFile) -> Iterator[Violation]:
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Assert):
            yield source.violation(
                node,
                "assert-validation",
                "assert statements are stripped under python -O; raise a "
                "typed error (ValueError/RuntimeError/TypeError) instead",
            )

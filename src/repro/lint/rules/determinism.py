"""Determinism: no wall clocks, no global or unseeded RNG in package code.

The sweep layer content-addresses every cell result by ``(experiment id,
parameter cell, source fingerprint)`` and trusts that a cell is a pure
function of those inputs; the Monte-Carlo engines promise bit-identical
serial/parallel/chunked runs.  Both guarantees die silently the moment any
package code reads a wall clock (``time.time``, ``datetime.now``) or draws
from a global or unseeded RNG (``np.random.normal``, ``random.random()``,
``default_rng()`` with no seed): results still *look* right, but cache
entries stop being reproducible and equivalence tests start flaking.

Seeded construction is always fine: ``np.random.default_rng(seed)``,
``np.random.Generator`` used as an annotation, ``random.Random(seed)``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.core import SourceFile, Violation, rule
from repro.lint.imports import ImportTable

RULE = "determinism"

#: Wall-clock reads: each call poisons content-addressed cache keys.
_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: numpy.random names that are legitimate *seeded-stream* constructors.
#: Anything else called under ``numpy.random`` uses the legacy global
#: state and is banned outright.
_NUMPY_CONSTRUCTORS = {
    "default_rng",
    "Generator",
    "RandomState",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "MT19937",
    "SFC64",
}

#: Seedable constructors that are only deterministic *with* a seed
#: argument; calling them empty falls back to OS entropy.
_SEED_REQUIRED = {
    "numpy.random.default_rng",
    "numpy.random.RandomState",
    "numpy.random.SeedSequence",
    "numpy.random.PCG64",
    "numpy.random.PCG64DXSM",
    "numpy.random.Philox",
    "numpy.random.MT19937",
    "numpy.random.SFC64",
    "random.Random",
}

#: stdlib ``random`` attributes that do not draw from the global stream.
_STDLIB_RANDOM_ALLOWED = {"Random"}


def _is_empty_call(node: ast.Call) -> bool:
    return not node.args and not node.keywords


@rule(
    RULE,
    "no wall clocks, no global numpy/stdlib RNG, no unseeded generators",
    scopes=("src",),
)
def check(source: SourceFile) -> Iterator[Violation]:
    imports = ImportTable(source.tree)
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = imports.resolve(node.func)
        if dotted is None:
            continue
        if dotted in _CLOCK_CALLS:
            yield source.violation(
                node,
                RULE,
                f"{dotted}() reads the wall clock; results must be pure "
                "functions of their parameters (cache keys and bit-identity "
                "depend on it)",
            )
        elif dotted in _SEED_REQUIRED and _is_empty_call(node):
            yield source.violation(
                node,
                RULE,
                f"{dotted}() without a seed draws OS entropy; pass an "
                "explicit seed (derived from the cell parameters)",
            )
        elif dotted.startswith("numpy.random."):
            name = dotted.removeprefix("numpy.random.")
            if "." not in name and name not in _NUMPY_CONSTRUCTORS:
                yield source.violation(
                    node,
                    RULE,
                    f"{dotted}() uses numpy's global RNG state; draw from a "
                    "seeded np.random.default_rng(...) generator instead",
                )
        elif dotted.startswith("random."):
            name = dotted.removeprefix("random.")
            if "." not in name and name not in _STDLIB_RANDOM_ALLOWED:
                yield source.violation(
                    node,
                    RULE,
                    f"{dotted}() uses the global stdlib RNG; construct a "
                    "seeded random.Random(seed) instead",
                )

"""The lint engine: violations, the rule registries and the file walker.

Two kinds of rules plug into the engine:

* **File rules** (:func:`rule`) receive one parsed :class:`SourceFile` and
  yield :class:`Violation` objects anchored to lines of that file.  They
  are pure AST/text analyses -- nothing is imported or executed.
* **Project rules** (:func:`project_rule`) receive the repository root and
  check cross-file invariants (the registry-vs-docs drift gates); they may
  import :mod:`repro` itself, since they run inside this repository.

Rules declare the *scopes* they apply to: ``"src"`` (package sources) or
``"tests"`` (anything under a ``tests``/``benchmarks`` directory, or files
named ``test_*.py``/``conftest.py``).  The determinism and seeding
contracts bind the package, not the suite -- pytest's ``assert`` idiom, for
instance, must not trip the assert-as-validation rule.

Suppression is per line or per file, always naming the rule it silences::

    value = legacy_api()  # repro-lint: disable=float-equality
    # repro-lint: disable-file=determinism   (anywhere in the file)

``disable=all`` silences every rule on that line.  Suppressions are scoped
on purpose -- a bare blanket switch would hide exactly the violations this
tool exists to keep out.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Sequence

__all__ = [
    "PROJECT_RULES",
    "RULES",
    "FileRule",
    "ProjectRule",
    "SourceFile",
    "Violation",
    "all_rules",
    "lint_paths",
    "lint_project",
    "lint_source",
    "project_rule",
    "rule",
]

#: Scope labels a file rule may declare.
SCOPES = frozenset({"src", "tests"})

#: Directory / file-name markers classifying a path as test code.
_TEST_DIRS = frozenset({"tests", "benchmarks"})

_DISABLE_LINE = re.compile(r"#\s*repro-lint:\s*disable=([A-Za-z0-9_\-, ]+)")
_DISABLE_FILE = re.compile(r"#\s*repro-lint:\s*disable-file=([A-Za-z0-9_\-, ]+)")


@dataclass(frozen=True, order=True)
class Violation:
    """One finding, anchored to a file position.

    Attributes:
        path: file the violation lives in (as given to the linter).
        line / col: 1-based line and 0-based column of the offending node.
        rule: name of the rule that fired.
        message: human-readable description of the contract breach.
    """

    path: str
    line: int
    col: int
    rule: str
    message: str

    def format(self) -> str:
        """The canonical ``path:line:col: rule: message`` report line."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule}: {self.message}"


class SourceFile:
    """One parsed source file plus its suppression table.

    Attributes:
        path: the path the file was read from (used in reports).
        text: the raw source text.
        tree: the parsed :mod:`ast` module node.
        scope: ``"tests"`` for suite/benchmark code, ``"src"`` otherwise.
    """

    def __init__(self, path: str | Path, text: str) -> None:
        self.path = str(path)
        self.text = text
        self.tree = ast.parse(text, filename=self.path)
        self.lines = text.splitlines()
        self._line_disabled: dict[int, set[str]] = {}
        self._file_disabled: set[str] = set()
        for number, line in enumerate(self.lines, start=1):
            match = _DISABLE_LINE.search(line)
            if match:
                self._line_disabled[number] = {
                    name.strip() for name in match.group(1).split(",") if name.strip()
                }
            match = _DISABLE_FILE.search(line)
            if match:
                self._file_disabled.update(
                    name.strip() for name in match.group(1).split(",") if name.strip()
                )

    @property
    def scope(self) -> str:
        """``"tests"`` for suite/benchmark files, ``"src"`` for package code."""
        path = Path(self.path)
        if any(part in _TEST_DIRS for part in path.parts):
            return "tests"
        if path.name == "conftest.py" or path.name.startswith("test_"):
            return "tests"
        return "src"

    def is_disabled(self, rule_name: str, line: int) -> bool:
        """Whether a suppression comment silences ``rule_name`` at ``line``."""
        if {"all", rule_name} & self._file_disabled:
            return True
        disabled = self._line_disabled.get(line, set())
        return "all" in disabled or rule_name in disabled

    def violation(self, node: ast.AST, rule_name: str, message: str) -> Violation:
        """A :class:`Violation` anchored at an AST node of this file."""
        return Violation(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule_name,
            message=message,
        )


@dataclass(frozen=True)
class FileRule:
    """A registered per-file rule."""

    name: str
    description: str
    scopes: frozenset[str]
    check: Callable[[SourceFile], Iterable[Violation]] = field(compare=False)


@dataclass(frozen=True)
class ProjectRule:
    """A registered repository-level rule."""

    name: str
    description: str
    check: Callable[[Path], Iterable[Violation]] = field(compare=False)


#: Registry of per-file rules, by name.  :func:`rule` populates it.
RULES: dict[str, FileRule] = {}

#: Registry of repository-level rules, by name.
PROJECT_RULES: dict[str, ProjectRule] = {}


def rule(
    name: str, description: str, scopes: Sequence[str] = ("src", "tests")
) -> Callable[
    [Callable[[SourceFile], Iterable[Violation]]],
    Callable[[SourceFile], Iterable[Violation]],
]:
    """Register a per-file rule under a name (the pluggable entry point).

    Args:
        name: the rule id used in reports and suppression comments.
        description: one-line summary shown by ``repro-lint --list-rules``.
        scopes: which file scopes the rule binds (``"src"``/``"tests"``).
    """
    scope_set = frozenset(scopes)
    if not scope_set <= SCOPES:
        raise ValueError(f"unknown scopes {sorted(scope_set - SCOPES)}")
    if name in RULES:
        raise ValueError(f"rule {name!r} already registered")

    def decorator(
        check: Callable[[SourceFile], Iterable[Violation]],
    ) -> Callable[[SourceFile], Iterable[Violation]]:
        RULES[name] = FileRule(
            name=name, description=description, scopes=scope_set, check=check
        )
        return check

    return decorator


def project_rule(
    name: str, description: str
) -> Callable[
    [Callable[[Path], Iterable[Violation]]],
    Callable[[Path], Iterable[Violation]],
]:
    """Register a repository-level rule under a name."""
    if name in PROJECT_RULES:
        raise ValueError(f"project rule {name!r} already registered")

    def decorator(
        check: Callable[[Path], Iterable[Violation]],
    ) -> Callable[[Path], Iterable[Violation]]:
        PROJECT_RULES[name] = ProjectRule(
            name=name, description=description, check=check
        )
        return check

    return decorator


def all_rules() -> list[FileRule | ProjectRule]:
    """Every registered rule (file rules first), for ``--list-rules``."""
    return [*RULES.values(), *PROJECT_RULES.values()]


def _selected(
    name: str, select: Sequence[str] | None, ignore: Sequence[str] | None
) -> bool:
    if select is not None and name not in select:
        return False
    return not (ignore is not None and name in ignore)


def lint_source(
    path: str | Path,
    text: str,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Violation]:
    """All (unsuppressed) violations of the registered file rules in a file.

    A file that does not parse yields a single ``parse-error`` violation --
    the linter never raises on malformed input.
    """
    try:
        source = SourceFile(path, text)
    except SyntaxError as error:
        return [
            Violation(
                path=str(path),
                line=error.lineno or 1,
                col=(error.offset or 1) - 1,
                rule="parse-error",
                message=f"file does not parse: {error.msg}",
            )
        ]
    violations: list[Violation] = []
    for registered in RULES.values():
        if not _selected(registered.name, select, ignore):
            continue
        if source.scope not in registered.scopes:
            continue
        for violation in registered.check(source):
            if not source.is_disabled(violation.rule, violation.line):
                violations.append(violation)
    return sorted(violations)


def _python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    seen: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        candidates = sorted(path.rglob("*.py")) if path.is_dir() else [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def lint_paths(
    paths: Sequence[str | Path],
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Violation]:
    """Lint files and directories (recursively) with the file rules."""
    violations: list[Violation] = []
    for path in _python_files(paths):
        violations.extend(
            lint_source(path, path.read_text(encoding="utf-8"), select, ignore)
        )
    return sorted(violations)


def lint_project(
    root: str | Path,
    select: Sequence[str] | None = None,
    ignore: Sequence[str] | None = None,
) -> list[Violation]:
    """Run the repository-level rules against a project root."""
    violations: list[Violation] = []
    for registered in PROJECT_RULES.values():
        if _selected(registered.name, select, ignore):
            violations.extend(registered.check(Path(root)))
    return sorted(violations)

"""Converter efficiency and loss models (paper chapter 2).

These formulas support the regulator substrate and the background comparison
between linear and switching regulators:

* efficiency ``eta = P_out / P_in`` and loss ``P_loss = P_out (1/eta - 1)``
  (paper eqs. 1-2);
* linear-regulator efficiency from the dropout/ground-current model
  (paper eqs. 3-5);
* a first-order buck-converter efficiency estimate combining conduction and
  switching losses, used to illustrate the switching-frequency/efficiency
  trade-off the paper cites for on-chip regulators.
"""

from __future__ import annotations

__all__ = [
    "efficiency",
    "power_loss_w",
    "linear_regulator_efficiency",
    "buck_efficiency_estimate",
]


def efficiency(p_out_w: float, p_in_w: float) -> float:
    """Converter efficiency ``P_out / P_in`` (paper eq. 1)."""
    if p_in_w <= 0:
        raise ValueError("input power must be positive")
    if p_out_w < 0:
        raise ValueError("output power must be non-negative")
    return p_out_w / p_in_w


def power_loss_w(p_out_w: float, eta: float) -> float:
    """Power dissipated for a given output power and efficiency (paper eq. 2)."""
    if not 0.0 < eta <= 1.0:
        raise ValueError("efficiency must be in (0, 1]")
    if p_out_w < 0:
        raise ValueError("output power must be non-negative")
    return p_out_w * (1.0 / eta - 1.0)


def linear_regulator_efficiency(
    v_in_v: float,
    v_out_v: float,
    i_load_a: float,
    i_ground_a: float = 0.0,
) -> float:
    """Efficiency of a linear regulator (paper eqs. 3-5).

    ``P_out = V_out * I_load`` and ``P_in = V_in * (I_load + I_ground)``; the
    efficiency degrades linearly with the output/input voltage ratio, the
    main drawback the paper lists for linear regulators.
    """
    if v_in_v <= 0 or v_out_v <= 0:
        raise ValueError("voltages must be positive")
    if v_out_v > v_in_v:
        raise ValueError("a linear regulator can only step down")
    if i_load_a <= 0:
        raise ValueError("load current must be positive")
    if i_ground_a < 0:
        raise ValueError("ground-pin current must be non-negative")
    p_out = v_out_v * i_load_a
    p_in = v_in_v * (i_load_a + i_ground_a)
    return p_out / p_in


def buck_efficiency_estimate(
    v_in_v: float,
    v_out_v: float,
    i_load_a: float,
    switch_resistance_ohm: float = 0.05,
    inductor_resistance_ohm: float = 0.02,
    switching_frequency_hz: float = 100e6,
    switch_charge_c: float = 1e-10,
) -> float:
    """First-order buck-converter efficiency estimate.

    Combines conduction losses (switch and inductor series resistance) with
    frequency-proportional switching losses, exposing the trade-off the paper
    cites: pushing the switching frequency up (to shrink the on-chip L and C)
    costs efficiency.
    """
    if v_in_v <= 0 or v_out_v <= 0 or v_out_v > v_in_v:
        raise ValueError("require 0 < v_out <= v_in")
    if i_load_a <= 0:
        raise ValueError("load current must be positive")
    if switching_frequency_hz <= 0:
        raise ValueError("switching frequency must be positive")
    p_out = v_out_v * i_load_a
    conduction = i_load_a**2 * (switch_resistance_ohm + inductor_resistance_ohm)
    switching = switch_charge_c * v_in_v * switching_frequency_hz * v_in_v
    p_in = p_out + conduction + switching
    return p_out / p_in

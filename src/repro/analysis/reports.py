"""Plain-text rendering of experiment tables and series.

The experiment harnesses print their results in the same row/column shape as
the paper's tables and figure series; these helpers keep the formatting in
one place.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

__all__ = ["format_table", "format_series"]


def _stringify(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render a list of rows as an aligned plain-text table."""
    string_rows = [[_stringify(cell) for cell in row] for row in rows]
    for index, row in enumerate(string_rows):
        if len(row) != len(headers):
            raise ValueError(
                f"row {index} has {len(row)} cells but there are {len(headers)} headers"
            )
    widths = [len(header) for header in headers]
    for row in string_rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in string_rows)
    return "\n".join(lines)


def format_series(
    x_label: str,
    x_values: Sequence[object],
    series: dict[str, Sequence[float]],
    title: str | None = None,
    max_rows: int | None = None,
) -> str:
    """Render one or more y-series against a shared x-axis as a table.

    Args:
        x_label: header of the x column.
        x_values: the x-axis values.
        series: mapping series name -> y values (same length as ``x_values``).
        title: optional title line.
        max_rows: if given, subsample the rows evenly down to this count
            (long figure series are summarized rather than dumped).
    """
    for name, values in series.items():
        if len(values) != len(x_values):
            raise ValueError(
                f"series {name!r} has {len(values)} points, x-axis has {len(x_values)}"
            )
    indices = list(range(len(x_values)))
    if max_rows is not None and len(indices) > max_rows > 0:
        step = max(1, len(indices) // max_rows)
        indices = indices[::step]
        if indices[-1] != len(x_values) - 1:
            indices.append(len(x_values) - 1)
    headers = [x_label, *series.keys()]
    rows = [
        [x_values[index], *(values[index] for values in series.values())]
        for index in indices
    ]
    return format_table(headers, rows, title=title)

"""Metastability MTBF estimation for the controller synchronizers.

Both delay-line controllers sample asynchronous delay-line taps with clocked
flip-flops (paper section 3.2.1, Figures 38-39): the sampled tap can change
inside the flop's setup window, the flop can go metastable, and the paper
adds a two-flop synchronizer to make the failure probability negligible.  The
paper cites the standard mean-time-between-failures model ([37], [38]):

    MTBF = exp(t_resolve / tau) / (T0 * f_clock * f_data)

where ``tau`` is the regeneration time constant of the flop, ``T0`` its
metastability window, ``f_clock`` the sampling clock frequency, ``f_data``
the average transition rate of the asynchronous input, and ``t_resolve`` the
time available for the metastable state to decay before the next stage
samples it.  Adding a synchronizer stage adds one full clock period of
resolving time, multiplying the MTBF by ``exp(T_clk / tau)``.

The default flop parameters are representative of a 32 nm standard-cell
flip-flop (tau = 10 ps, T0 = 20 ps).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["FlipFlopMetastabilityModel", "synchronizer_mtbf_years", "SECONDS_PER_YEAR"]

SECONDS_PER_YEAR = 365.25 * 24 * 3600.0


@dataclass(frozen=True)
class FlipFlopMetastabilityModel:
    """Metastability characterization of a flip-flop.

    Attributes:
        tau_ps: regeneration time constant.
        t0_ps: metastability capture window.
    """

    tau_ps: float = 10.0
    t0_ps: float = 20.0

    def __post_init__(self) -> None:
        if self.tau_ps <= 0 or self.t0_ps <= 0:
            raise ValueError("tau and T0 must be positive")

    def mtbf_seconds(
        self,
        clock_frequency_hz: float,
        data_frequency_hz: float,
        resolve_time_ps: float,
    ) -> float:
        """MTBF for a single sampling flop with the given resolving time."""
        if clock_frequency_hz <= 0 or data_frequency_hz <= 0:
            raise ValueError("frequencies must be positive")
        if resolve_time_ps < 0:
            raise ValueError("resolve time must be non-negative")
        exponent = resolve_time_ps / self.tau_ps
        # Cap the exponent so the result stays a finite float; anything this
        # large is "longer than the age of the universe" for reporting.
        exponent = min(exponent, 700.0)
        numerator = math.exp(exponent)
        denominator = self.t0_ps * 1e-12 * clock_frequency_hz * data_frequency_hz
        return numerator / denominator


def synchronizer_mtbf_years(
    clock_frequency_mhz: float,
    data_frequency_mhz: float,
    synchronizer_stages: int = 2,
    logic_settling_ps: float = 200.0,
    flop: FlipFlopMetastabilityModel | None = None,
) -> float:
    """MTBF (in years) of an n-stage synchronizer sampling a delay-line tap.

    Args:
        clock_frequency_mhz: controller clock (the regulator switching clock).
        data_frequency_mhz: average transition rate of the sampled tap; for a
            delay-line tap this is at most the switching frequency.
        synchronizer_stages: total sampling flops (1 = no synchronizer,
            2 = the paper's two-flop synchronizer, ...).
        logic_settling_ps: part of the clock period consumed by downstream
            logic setup, which reduces the resolving time of the last stage.
        flop: flip-flop characterization (defaults to the 32 nm-class model).

    Returns:
        the MTBF in years (may be astronomically large for >= 2 stages).
    """
    if synchronizer_stages < 1:
        raise ValueError("need at least one sampling stage")
    flop = flop or FlipFlopMetastabilityModel()
    clock_period_ps = 1e6 / clock_frequency_mhz
    if logic_settling_ps >= clock_period_ps:
        raise ValueError("logic settling time exceeds the clock period")
    # The first stage gets whatever is left of the first cycle; each extra
    # stage adds a full clock period of resolving time.
    resolve_time_ps = (clock_period_ps - logic_settling_ps) + (
        synchronizer_stages - 1
    ) * clock_period_ps
    mtbf_s = flop.mtbf_seconds(
        clock_frequency_hz=clock_frequency_mhz * 1e6,
        data_frequency_hz=data_frequency_mhz * 1e6,
        resolve_time_ps=resolve_time_ps,
    )
    return mtbf_s / SECONDS_PER_YEAR

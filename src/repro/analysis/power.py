"""Dynamic-power model (paper eq. 14).

The paper compares the counter-based and delay-line DPWM approaches on clock
frequency and hence dynamic power:

    P_dynamic = alpha * C_total * Vdd^2 * f_clk

``C_total`` is the total switched capacitance, which the synthesis substrate
rolls up from the per-cell input capacitances of a netlist.
"""

from __future__ import annotations

from repro.technology.library import TechnologyLibrary
from repro.technology.netlist import Netlist

__all__ = ["dynamic_power_w", "netlist_dynamic_power_w", "leakage_power_w"]


def dynamic_power_w(
    switched_capacitance_f: float,
    vdd_v: float,
    frequency_hz: float,
    activity: float = 0.5,
) -> float:
    """Dynamic power in watts (paper eq. 14).

    Args:
        switched_capacitance_f: total switched capacitance in farads.
        vdd_v: supply voltage in volts.
        frequency_hz: clock frequency in hertz.
        activity: switching activity factor ``alpha`` (0..1).
    """
    if switched_capacitance_f < 0:
        raise ValueError("capacitance must be non-negative")
    if vdd_v <= 0:
        raise ValueError("supply voltage must be positive")
    if frequency_hz < 0:
        raise ValueError("frequency must be non-negative")
    if not 0.0 <= activity <= 1.0:
        raise ValueError("activity factor must be in [0, 1]")
    return activity * switched_capacitance_f * vdd_v * vdd_v * frequency_hz


def netlist_dynamic_power_w(
    netlist: Netlist,
    library: TechnologyLibrary,
    vdd_v: float,
    frequency_hz: float,
    activity: float = 0.5,
) -> float:
    """Dynamic power of a synthesized block clocked at ``frequency_hz``."""
    total_capacitance_ff = sum(
        library.input_capacitance_ff(kind) * count
        for kind, count in netlist.cell_counts().items()
    )
    return dynamic_power_w(
        switched_capacitance_f=total_capacitance_ff * 1e-15,
        vdd_v=vdd_v,
        frequency_hz=frequency_hz,
        activity=activity,
    )


def leakage_power_w(netlist: Netlist, library: TechnologyLibrary) -> float:
    """Total leakage power of a synthesized block in watts."""
    total_nw = sum(
        library.leakage_nw(kind) * count
        for kind, count in netlist.cell_counts().items()
    )
    return total_nw * 1e-9

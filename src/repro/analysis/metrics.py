"""Linearity and regulation metrics.

The paper judges the delay-line schemes on *linearity*: how closely the
delay-versus-input-word transfer curve follows the ideal straight line
(Figures 42, 50 and 51).  The standard data-converter metrics are used here:

* **DNL** (differential nonlinearity): deviation of each step from the ideal
  LSB step, in LSB units.
* **INL** (integral nonlinearity): deviation of each point from the best-fit
  ideal line, in LSB units.
* **monotonicity**: whether the curve never decreases with the input word.

Regulation metrics (ripple, settling time, duty error) support the buck
converter substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "LinearityMetrics",
    "differential_nonlinearity",
    "integral_nonlinearity",
    "is_monotonic",
    "linearity_metrics",
    "duty_cycle_error",
    "peak_to_peak_ripple",
    "settling_time_s",
]


def _validate_curve(values: np.ndarray) -> np.ndarray:
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.size < 2:
        raise ValueError("a transfer curve needs at least two points")
    return values


def differential_nonlinearity(values: np.ndarray, lsb: float | None = None) -> np.ndarray:
    """Per-code DNL in LSB units.

    Args:
        values: transfer-curve output (e.g. delay in ps) for consecutive
            input codes.
        lsb: the ideal step size; defaults to the average step of the curve
            (endpoint-fit convention).
    """
    values = _validate_curve(values)
    steps = np.diff(values)
    if lsb is None:
        lsb = (values[-1] - values[0]) / (values.size - 1)
    if lsb == 0:
        raise ValueError("ideal LSB step is zero; curve is degenerate")
    return steps / lsb - 1.0


def integral_nonlinearity(values: np.ndarray, lsb: float | None = None) -> np.ndarray:
    """Per-code INL in LSB units (endpoint-fit)."""
    values = _validate_curve(values)
    if lsb is None:
        lsb = (values[-1] - values[0]) / (values.size - 1)
    if lsb == 0:
        raise ValueError("ideal LSB step is zero; curve is degenerate")
    codes = np.arange(values.size)
    ideal = values[0] + codes * lsb
    return (values - ideal) / lsb


def is_monotonic(values: np.ndarray, strict: bool = False) -> bool:
    """Whether the transfer curve never decreases (or strictly increases)."""
    values = _validate_curve(values)
    steps = np.diff(values)
    if strict:
        return bool(np.all(steps > 0))
    return bool(np.all(steps >= 0))


@dataclass(frozen=True)
class LinearityMetrics:
    """Summary linearity metrics of one transfer curve.

    Attributes:
        max_dnl_lsb: worst-case |DNL|.
        max_inl_lsb: worst-case |INL|.
        rms_inl_lsb: RMS INL.
        monotonic: whether the curve is non-decreasing.
        distinct_levels: number of distinct output values (collapses at the
            slow corner of the proposed scheme, paper Figure 50).
    """

    max_dnl_lsb: float
    max_inl_lsb: float
    rms_inl_lsb: float
    monotonic: bool
    distinct_levels: int


def linearity_metrics(values: np.ndarray, lsb: float | None = None) -> LinearityMetrics:
    """Compute the summary linearity metrics of a transfer curve."""
    values = _validate_curve(values)
    dnl = differential_nonlinearity(values, lsb)
    inl = integral_nonlinearity(values, lsb)
    return LinearityMetrics(
        max_dnl_lsb=float(np.max(np.abs(dnl))),
        max_inl_lsb=float(np.max(np.abs(inl))),
        rms_inl_lsb=float(np.sqrt(np.mean(inl**2))),
        monotonic=is_monotonic(values),
        distinct_levels=int(np.unique(values).size),
    )


def duty_cycle_error(achieved: float, requested: float) -> float:
    """Absolute duty-cycle error (fractions of the switching period)."""
    return abs(achieved - requested)


def peak_to_peak_ripple(samples: np.ndarray, settle_fraction: float = 0.5) -> float:
    """Peak-to-peak ripple of a steady-state waveform.

    Only the tail of the record (after ``settle_fraction`` of the samples) is
    used, so start-up transients do not inflate the ripple estimate.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.size < 4:
        raise ValueError("need at least 4 samples to estimate ripple")
    start = int(samples.size * settle_fraction)
    tail = samples[start:]
    return float(tail.max() - tail.min())


def settling_time_s(
    times_s: np.ndarray,
    samples: np.ndarray,
    target: float,
    tolerance: float = 0.01,
) -> float:
    """Time after which the waveform stays within ``tolerance`` of ``target``.

    Returns ``inf`` when the waveform never settles inside the band.
    """
    times_s = np.asarray(times_s, dtype=float)
    samples = np.asarray(samples, dtype=float)
    if times_s.shape != samples.shape:
        raise ValueError("times and samples must have the same shape")
    if target == 0:
        raise ValueError("settling target must be nonzero")
    inside = np.abs(samples - target) <= abs(target) * tolerance
    if not inside[-1]:
        return float("inf")
    # Find the last sample that is outside the band; settling happens at the
    # following sample.
    outside_indices = np.nonzero(~inside)[0]
    if outside_indices.size == 0:
        return float(times_s[0])
    last_outside = outside_indices[-1]
    if last_outside + 1 >= times_s.size:
        return float("inf")
    return float(times_s[last_outside + 1])

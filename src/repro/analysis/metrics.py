"""Linearity and regulation metrics.

The paper judges the delay-line schemes on *linearity*: how closely the
delay-versus-input-word transfer curve follows the ideal straight line
(Figures 42, 50 and 51).  The standard data-converter metrics are used here:

* **DNL** (differential nonlinearity): deviation of each step from the ideal
  LSB step, in LSB units.
* **INL** (integral nonlinearity): deviation of each point from the best-fit
  ideal line, in LSB units.
* **monotonicity**: whether the curve never decreases with the input word.

Regulation metrics (ripple, settling time, duty error) support the buck
converter substrate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "BatchLinearityMetrics",
    "LinearityMetrics",
    "batch_linearity_metrics",
    "differential_nonlinearity",
    "distinct_level_counts",
    "integral_nonlinearity",
    "is_monotonic",
    "linearity_metrics",
    "duty_cycle_error",
    "peak_to_peak_ripple",
    "settling_time_s",
]


def _validate_curve(values: np.ndarray) -> np.ndarray:
    """Validate a transfer curve or a stack of them.

    Curves live along the *last* axis, so a 1-D array is one curve and a 2-D
    ``(instances, words)`` array is an ensemble of curves; every metric below
    operates along that axis and broadcasts over any leading axes.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim == 0 or values.shape[-1] < 2:
        raise ValueError("a transfer curve needs at least two points")
    return values


def _endpoint_lsb(values: np.ndarray, lsb: float | np.ndarray | None) -> np.ndarray:
    """The endpoint-fit LSB step, shaped to broadcast against ``values``."""
    if lsb is None:
        lsb = (values[..., -1] - values[..., 0]) / (values.shape[-1] - 1)
    lsb = np.asarray(lsb, dtype=float)
    if np.any(lsb == 0):
        raise ValueError("ideal LSB step is zero; curve is degenerate")
    return lsb


def differential_nonlinearity(
    values: np.ndarray, lsb: float | np.ndarray | None = None
) -> np.ndarray:
    """Per-code DNL in LSB units.

    Args:
        values: transfer-curve output (e.g. delay in ps) for consecutive
            input codes; a 2-D array is treated as a batch of curves (one per
            row).
        lsb: the ideal step size; defaults to the average step of each curve
            (endpoint-fit convention).
    """
    values = _validate_curve(values)
    steps = np.diff(values, axis=-1)
    lsb = _endpoint_lsb(values, lsb)
    return steps / lsb[..., np.newaxis] - 1.0


def integral_nonlinearity(
    values: np.ndarray, lsb: float | np.ndarray | None = None
) -> np.ndarray:
    """Per-code INL in LSB units (endpoint-fit); batches along leading axes."""
    values = _validate_curve(values)
    lsb = _endpoint_lsb(values, lsb)
    codes = np.arange(values.shape[-1])
    ideal = values[..., 0, np.newaxis] + codes * lsb[..., np.newaxis]
    return (values - ideal) / lsb[..., np.newaxis]


def is_monotonic(values: np.ndarray, strict: bool = False) -> bool | np.ndarray:
    """Whether the transfer curve never decreases (or strictly increases).

    Returns a plain bool for one curve, a boolean array (one entry per curve)
    for a batch.
    """
    values = _validate_curve(values)
    steps = np.diff(values, axis=-1)
    flags = np.all(steps > 0 if strict else steps >= 0, axis=-1)
    return bool(flags) if values.ndim == 1 else flags


def distinct_level_counts(values: np.ndarray) -> int | np.ndarray:
    """Number of distinct output values per curve (vectorized over batches)."""
    values = _validate_curve(values)
    ordered = np.sort(values, axis=-1)
    counts = 1 + np.count_nonzero(np.diff(ordered, axis=-1) != 0, axis=-1)
    return int(counts) if values.ndim == 1 else counts


@dataclass(frozen=True)
class LinearityMetrics:
    """Summary linearity metrics of one transfer curve.

    Attributes:
        max_dnl_lsb: worst-case |DNL|.
        max_inl_lsb: worst-case |INL|.
        rms_inl_lsb: RMS INL.
        monotonic: whether the curve is non-decreasing.
        distinct_levels: number of distinct output values (collapses at the
            slow corner of the proposed scheme, paper Figure 50).
    """

    max_dnl_lsb: float
    max_inl_lsb: float
    rms_inl_lsb: float
    monotonic: bool
    distinct_levels: int


def linearity_metrics(values: np.ndarray, lsb: float | None = None) -> LinearityMetrics:
    """Compute the summary linearity metrics of one transfer curve."""
    values = _validate_curve(values)
    if values.ndim != 1:
        raise ValueError(
            "linearity_metrics summarizes one curve; "
            "use batch_linearity_metrics for curve batches"
        )
    dnl = differential_nonlinearity(values, lsb)
    inl = integral_nonlinearity(values, lsb)
    return LinearityMetrics(
        max_dnl_lsb=float(np.max(np.abs(dnl))),
        max_inl_lsb=float(np.max(np.abs(inl))),
        rms_inl_lsb=float(np.sqrt(np.mean(inl**2))),
        monotonic=is_monotonic(values),
        distinct_levels=int(np.unique(values).size),
    )


@dataclass(frozen=True)
class BatchLinearityMetrics:
    """Summary linearity metrics of a batch of transfer curves.

    Every attribute is an array with one entry per curve (instance), computed
    in one vectorized pass over the ``(instances, words)`` curve matrix.
    """

    max_dnl_lsb: np.ndarray
    max_inl_lsb: np.ndarray
    rms_inl_lsb: np.ndarray
    monotonic: np.ndarray
    distinct_levels: np.ndarray

    @property
    def num_instances(self) -> int:
        return int(self.max_dnl_lsb.shape[0])

    def instance(self, index: int) -> LinearityMetrics:
        """The scalar metrics of one curve of the batch."""
        return LinearityMetrics(
            max_dnl_lsb=float(self.max_dnl_lsb[index]),
            max_inl_lsb=float(self.max_inl_lsb[index]),
            rms_inl_lsb=float(self.rms_inl_lsb[index]),
            monotonic=bool(self.monotonic[index]),
            distinct_levels=int(self.distinct_levels[index]),
        )


def batch_linearity_metrics(
    values: np.ndarray, lsb: float | np.ndarray | None = None
) -> BatchLinearityMetrics:
    """Summary linearity metrics of an ``(instances, words)`` curve batch."""
    values = _validate_curve(np.atleast_2d(np.asarray(values, dtype=float)))
    dnl = differential_nonlinearity(values, lsb)
    inl = integral_nonlinearity(values, lsb)
    return BatchLinearityMetrics(
        max_dnl_lsb=np.max(np.abs(dnl), axis=-1),
        max_inl_lsb=np.max(np.abs(inl), axis=-1),
        rms_inl_lsb=np.sqrt(np.mean(inl**2, axis=-1)),
        monotonic=is_monotonic(values),
        distinct_levels=distinct_level_counts(values),
    )


def duty_cycle_error(achieved: float, requested: float) -> float:
    """Absolute duty-cycle error (fractions of the switching period)."""
    return abs(achieved - requested)


def peak_to_peak_ripple(samples: np.ndarray, settle_fraction: float = 0.5) -> float:
    """Peak-to-peak ripple of a steady-state waveform.

    Only the tail of the record (after ``settle_fraction`` of the samples) is
    used, so start-up transients do not inflate the ripple estimate.
    """
    samples = np.asarray(samples, dtype=float)
    if samples.size < 4:
        raise ValueError("need at least 4 samples to estimate ripple")
    start = int(samples.size * settle_fraction)
    tail = samples[start:]
    return float(tail.max() - tail.min())


def settling_time_s(
    times_s: np.ndarray,
    samples: np.ndarray,
    target: float,
    tolerance: float = 0.01,
) -> float:
    """Time after which the waveform stays within ``tolerance`` of ``target``.

    Returns ``inf`` when the waveform never settles inside the band.
    """
    times_s = np.asarray(times_s, dtype=float)
    samples = np.asarray(samples, dtype=float)
    if times_s.shape != samples.shape:
        raise ValueError("times and samples must have the same shape")
    if target == 0:
        raise ValueError("settling target must be nonzero")
    inside = np.abs(samples - target) <= abs(target) * tolerance
    if not inside[-1]:
        return float("inf")
    # Find the last sample that is outside the band; settling happens at the
    # following sample.
    outside_indices = np.nonzero(~inside)[0]
    if outside_indices.size == 0:
        return float(times_s[0])
    last_outside = outside_indices[-1]
    if last_outside + 1 >= times_s.size:
        return float("inf")
    return float(times_s[last_outside + 1])

"""Metrics, power/efficiency models and report rendering.

* :mod:`repro.analysis.metrics` -- DNL/INL/monotonicity of delay-line
  transfer curves, duty-cycle error, settling/ripple measurements.
* :mod:`repro.analysis.power` -- the dynamic-power model of paper eq. 14 and
  leakage roll-ups over synthesized netlists.
* :mod:`repro.analysis.efficiency` -- converter efficiency and loss models
  (paper eqs. 1-8) for the regulator substrate.
* :mod:`repro.analysis.reports` -- plain-text table/series rendering used by
  the experiment harnesses and examples.
"""

from repro.analysis.efficiency import (
    buck_efficiency_estimate,
    linear_regulator_efficiency,
    power_loss_w,
)
from repro.analysis.metastability import (
    FlipFlopMetastabilityModel,
    synchronizer_mtbf_years,
)
from repro.analysis.metrics import (
    BatchLinearityMetrics,
    LinearityMetrics,
    batch_linearity_metrics,
    differential_nonlinearity,
    distinct_level_counts,
    duty_cycle_error,
    integral_nonlinearity,
    is_monotonic,
    linearity_metrics,
    peak_to_peak_ripple,
    settling_time_s,
)
from repro.analysis.power import dynamic_power_w, netlist_dynamic_power_w
from repro.analysis.reports import format_series, format_table

__all__ = [
    "BatchLinearityMetrics",
    "FlipFlopMetastabilityModel",
    "LinearityMetrics",
    "batch_linearity_metrics",
    "buck_efficiency_estimate",
    "differential_nonlinearity",
    "distinct_level_counts",
    "duty_cycle_error",
    "dynamic_power_w",
    "format_series",
    "format_table",
    "integral_nonlinearity",
    "is_monotonic",
    "linear_regulator_efficiency",
    "linearity_metrics",
    "netlist_dynamic_power_w",
    "peak_to_peak_ripple",
    "power_loss_w",
    "settling_time_s",
    "synchronizer_mtbf_years",
]

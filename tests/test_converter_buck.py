"""Tests for the buck power stage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.converter.buck import BuckParameters, BuckPowerStage


def make_params(**overrides):
    base = dict(
        input_voltage_v=1.8,
        inductance_h=100e-9,
        capacitance_f=100e-9,
        switching_frequency_hz=100e6,
        switch_resistance_ohm=0.0,
        inductor_resistance_ohm=0.0,
    )
    base.update(overrides)
    return BuckParameters(**base)


class TestBuckParameters:
    def test_switching_period(self):
        assert make_params().switching_period_s == pytest.approx(10e-9)

    def test_lc_cutoff_well_below_switching_frequency(self):
        params = make_params()
        # The filter corner must sit far below the switching frequency so the
        # output is the average of the switched node (paper section 2.1.2).
        assert params.lc_cutoff_frequency_hz < params.switching_frequency_hz / 10

    def test_steady_state_output(self):
        params = make_params()
        assert params.steady_state_output_v(0.5) == pytest.approx(0.9)
        assert params.steady_state_output_v(0.0) == 0.0
        with pytest.raises(ValueError):
            params.steady_state_output_v(1.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"input_voltage_v": 0.0},
            {"inductance_h": 0.0},
            {"capacitance_f": -1e-9},
            {"switching_frequency_hz": 0.0},
            {"switch_resistance_ohm": -0.1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            make_params(**kwargs)


class TestBuckPowerStage:
    @pytest.mark.parametrize("duty", [0.25, 0.5, 0.75])
    def test_ideal_converter_settles_to_duty_times_vg(self, duty):
        stage = BuckPowerStage(make_params())
        settled = stage.settle(duty, load_resistance_ohm=1.0)
        assert settled == pytest.approx(1.8 * duty, rel=0.03)

    def test_parasitics_reduce_output(self):
        ideal = BuckPowerStage(make_params()).settle(0.5, 1.0)
        lossy = BuckPowerStage(
            make_params(switch_resistance_ohm=0.05, inductor_resistance_ohm=0.05)
        ).settle(0.5, 1.0)
        assert lossy < ideal

    def test_zero_duty_discharges_to_zero(self):
        stage = BuckPowerStage(make_params())
        stage.reset(output_voltage_v=0.9, inductor_current_a=0.9)
        settled = stage.settle(0.0, 1.0)
        assert settled == pytest.approx(0.0, abs=0.02)

    def test_full_duty_reaches_input_voltage(self):
        stage = BuckPowerStage(make_params())
        settled = stage.settle(1.0, 1.0)
        assert settled == pytest.approx(1.8, rel=0.02)

    def test_inductor_current_matches_load_current(self):
        stage = BuckPowerStage(make_params())
        stage.settle(0.5, 2.0)
        expected_current = stage.state.output_voltage_v / 2.0
        assert stage.state.inductor_current_a == pytest.approx(
            expected_current, rel=0.05
        )

    def test_run_periods_returns_trajectory(self):
        stage = BuckPowerStage(make_params())
        outputs = stage.run_periods(0.5, 1.0, periods=50)
        assert outputs.shape == (50,)
        assert np.all(np.isfinite(outputs))
        assert outputs[-1] > outputs[0]

    def test_heavier_load_increases_ripple_current(self):
        params = make_params()
        light = BuckPowerStage(params)
        light.settle(0.5, 10.0)
        heavy = BuckPowerStage(params)
        heavy.settle(0.5, 0.5)
        assert heavy.state.inductor_current_a > light.state.inductor_current_a

    def test_reset_clears_state(self):
        stage = BuckPowerStage(make_params())
        stage.settle(0.5, 1.0)
        stage.reset()
        assert stage.state.output_voltage_v == 0.0
        assert stage.state.inductor_current_a == 0.0

    def test_invalid_inputs_rejected(self):
        stage = BuckPowerStage(make_params())
        with pytest.raises(ValueError):
            stage.run_period(1.5, 1.0)
        with pytest.raises(ValueError):
            stage.run_period(0.5, 0.0)
        with pytest.raises(ValueError):
            stage.run_periods(0.5, 1.0, periods=0)
        with pytest.raises(ValueError):
            BuckPowerStage(make_params(), substeps_per_interval=2)

"""Golden-output regression gate over the Monte-Carlo experiment family.

The mission/correlation/thermal machinery added around these experiments is
contractually invisible when unused: the identity correlation branches to
the verbatim IID draw, a missing temperature trace runs the original chunk
body, and ``OffsetLoad.wrap(load, 0)`` returns the load itself.  This gate
enforces that end to end: the ``--json`` artifact of each vanilla
experiment, bytes on disk, must hash to the value pinned here.

If a hash moves, either the change is an intentional behavioural revision
(update the pin *and* say so in the commit message) or the new machinery
leaked into the default path (fix the regression).  JSON key order is
deterministic (insertion order), floats round-trip via ``repr``, and every
experiment seeds its RNGs, so the byte stream is stable across runs and
machines for a given numpy generation.
"""

from __future__ import annotations

import hashlib
from pathlib import Path

import pytest

from repro.experiments.runner import main as runner_main

#: experiment id -> sha256 of its ``--json`` artifact at the pinned seed.
GOLDEN_SHA256 = {
    "fig15": "ec57c3b466e0a47a5adf0170255819f439c7266eba56bd55194a6cdeea8ae36c",
    "fig15_mc": "134a20a6541c2c5307c8e6a7422ccf858f179bbef0c302bcc503fa48f8612098",
    "fig50_51_mc": "a808eb11de7f21a23a867307c448a3a53ffd284cd08e48a1f2f2d14cee009f53",
    "fig15_rare": "1ed556d4619721acea08bc20a7f97fc7097b741865efa176d949b1c4fa9523c2",
}


@pytest.mark.parametrize("experiment_id", sorted(GOLDEN_SHA256))
def test_json_artifact_is_byte_identical(
    experiment_id: str, tmp_path: Path, capsys: pytest.CaptureFixture[str]
) -> None:
    artifact = tmp_path / f"{experiment_id}.json"
    assert runner_main([experiment_id, "--json", str(artifact)]) == 0
    capsys.readouterr()  # The table report is not under test here.
    digest = hashlib.sha256(artifact.read_bytes()).hexdigest()
    assert digest == GOLDEN_SHA256[experiment_id], (
        f"{experiment_id} --json output drifted: sha256 {digest} != pinned "
        f"{GOLDEN_SHA256[experiment_id]}. If the behavioural change is "
        "intentional, update GOLDEN_SHA256; otherwise new machinery has "
        "leaked into the default path."
    )
